//! Job configuration.

use serde::{Deserialize, Serialize};

use crate::stage::Stage;

/// Configuration of an AgileML training job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgileConfig {
    /// SSP staleness slack in clocks (0 = bulk-synchronous).
    pub slack: u64,
    /// Number of fixed parameter partitions `N`. The paper sets `N` to
    /// half the maximum resource footprint so partitions never need
    /// re-sharding (Sec. 3.3).
    pub partitions: u32,
    /// Number of fixed input-data blocks assigned to workers.
    pub data_blocks: u32,
    /// Transient:reliable ratio above which stage 2 is used (paper: 1.0).
    pub stage2_threshold: f64,
    /// Transient:reliable ratio above which stage 3 is used (paper: 15.0).
    pub stage3_threshold: f64,
    /// Fraction of transient nodes hosting an ActivePS (paper: 0.5).
    pub activeps_fraction: f64,
    /// Pin the job to one stage regardless of ratio (tiering ablations).
    pub force_stage: Option<Stage>,
    /// Experiment seed (parameter init and any sampling).
    pub seed: u64,
}

impl Default for AgileConfig {
    fn default() -> Self {
        AgileConfig {
            slack: 0,
            partitions: 8,
            data_blocks: 32,
            stage2_threshold: 1.0,
            stage3_threshold: 15.0,
            activeps_fraction: 0.5,
            force_stage: None,
            seed: 0,
        }
    }
}

impl AgileConfig {
    /// Validates invariants, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.partitions == 0 {
            return Err("partitions must be positive".into());
        }
        if self.data_blocks == 0 {
            return Err("data_blocks must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.activeps_fraction) {
            return Err("activeps_fraction must be in [0, 1]".into());
        }
        if self.stage3_threshold < self.stage2_threshold {
            return Err("stage3_threshold must be >= stage2_threshold".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let c = AgileConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.stage2_threshold, 1.0);
        assert_eq!(c.stage3_threshold, 15.0);
        assert_eq!(c.activeps_fraction, 0.5);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = AgileConfig {
            partitions: 0,
            ..AgileConfig::default()
        };
        assert!(c.validate().is_err());
        c.partitions = 4;
        c.data_blocks = 0;
        assert!(c.validate().is_err());
        c.data_blocks = 4;
        c.activeps_fraction = 1.5;
        assert!(c.validate().is_err());
        c.activeps_fraction = 0.5;
        c.stage3_threshold = 0.5;
        assert!(c.validate().is_err());
    }
}
