//! The elasticity controller (paper Sec. 3.2–3.3).
//!
//! A single controller per job — hosted on a reliable machine — tracks
//! which resources participate, assigns input data to workers, starts new
//! ActivePSs, selects the stage from the transient:reliable ratio, and
//! orchestrates scale-up, warned evictions, and failure recovery.
//!
//! The controller is a pure event loop over its simnet mailbox: node
//! `Hello`/`Ready`/`ClockDone` traffic, backup clock reports, and
//! harness [`Command`]s. Mutating commands are serialized: while one
//! elasticity action awaits `Ready` acknowledgements, later commands
//! queue.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use crossbeam::channel::Sender;
use proteus_mlapps::app::MlApp;
use proteus_ps::{ClockTable, DenseVec, ParamKey, PartitionId, PartitionMap};
use proteus_simnet::{Control, Incoming, NodeClass, NodeCtx, NodeId, RecvError};
use proteus_simtime::rng::seeded_stream;

use crate::config::AgileConfig;
use crate::error::JobFault;
use crate::events::{JobEvent, JobStatus};
use crate::job::ModelSnapshot;
use crate::msg::{AgileMsg, Command, NodeAssignment, Values};
use crate::stage::{select_stage, Stage};
use crate::topology::{DataAssignment, Topology};

/// Runs the elasticity controller until shut down.
pub fn run_controller<A: MlApp>(
    ctx: NodeCtx<AgileMsg>,
    cfg: AgileConfig,
    app: Arc<A>,
    dataset_len: usize,
    events: Sender<JobEvent>,
    checkpoint: Option<ModelSnapshot>,
) {
    let mut ctl = Controller::new(&ctx, cfg, app, dataset_len, events, checkpoint);
    loop {
        match ctx.recv() {
            Ok(Incoming::App(env)) => {
                if !ctl.handle(env.from, env.msg, &ctx) {
                    break;
                }
            }
            Ok(Incoming::Control(Control::Shutdown)) => break,
            Ok(Incoming::Control(_)) | Err(RecvError::Killed) => break,
            Err(_) => break,
        }
    }
}

/// Multi-step actions the controller may have in flight.
#[derive(Debug)]
enum Pending {
    /// Initial start: waiting for every member's `Ready`.
    StartJob,
    /// Node addition: waiting for the added nodes' `Hello`s
    /// (`configured: false`), then for configured nodes' `Ready`. The
    /// flag keeps a duplicated `Hello` from re-running integration.
    AddNodes {
        added: Vec<NodeId>,
        configured: bool,
    },
    /// Failure recovery phase 1: collecting backup clock reports.
    RecoveryQuery {
        failed: Vec<NodeId>,
        replies: BTreeMap<NodeId, u64>,
        expect: BTreeSet<NodeId>,
    },
    /// Failure recovery phase 2: waiting for recovered owners' `Ready`.
    RecoveryInstall { failed: Vec<NodeId>, clock: u64 },
    /// In-job reliable-tier repair: waiting for the surviving reliable
    /// nodes receiving re-replicated backup partitions to report
    /// `Ready` (all fills installed).
    ReliableRepair { nodes: Vec<NodeId>, partitions: u64 },
}

/// In-flight snapshot collection.
struct SnapshotCollect {
    reply: Sender<ModelSnapshot>,
    images: BTreeMap<PartitionId, Values>,
    expect: BTreeSet<PartitionId>,
}

struct Controller<A: MlApp> {
    cfg: AgileConfig,
    app: Arc<A>,
    layout: PartitionMap,

    members: BTreeMap<NodeId, NodeClass>,
    join_order: Vec<NodeId>,
    helloed: BTreeSet<NodeId>,

    clock: ClockTable,
    epoch: u64,
    started: bool,
    last_min_broadcast: u64,

    stage: Stage,
    topo_version: u64,
    partition_owner: Vec<NodeId>,
    backup_owner: Vec<Option<NodeId>>,
    active_hosts: BTreeSet<NodeId>,
    assignment: Option<DataAssignment>,

    pending: Option<Pending>,
    pending_ready: BTreeSet<NodeId>,
    queued: VecDeque<Command>,
    snapshot: Option<SnapshotCollect>,
    /// Partition migrations ordered but not yet acknowledged:
    /// source → `(destination, partitions)` batches. A source that dies
    /// with an entry here may have taken the only serving copy with it,
    /// so its failure must trigger full rollback recovery even if the
    /// source was already removed from membership (eviction in flight).
    migrations: BTreeMap<NodeId, Vec<(NodeId, Vec<PartitionId>)>>,
    /// Backup re-replications in flight after a reliable-tier loss:
    /// partition → `(serving source, new backup destination)`. While an
    /// entry exists the destination holds no usable copy yet; if the
    /// source dies first the partition's only surviving state is gone
    /// and the job must restart from an external checkpoint. Entries
    /// clear when the destination reports `Ready`.
    filling: BTreeMap<PartitionId, (NodeId, NodeId)>,
    /// Nodes reported dead while another action was pending. Their
    /// `NodesFailed` sits in the command queue, but until it runs no new
    /// pending action may count on them (as a `Ready` sender, a new
    /// partition owner, or a clock participant) — a recovery that waits
    /// on a corpse never finishes. Cleared when the queued report runs.
    known_dead: BTreeSet<NodeId>,
    /// Parameter values to start from (checkpoint restore); `None`
    /// means fresh random initialization.
    initial_model: Option<BTreeMap<ParamKey, DenseVec>>,

    events: Sender<JobEvent>,
    /// Protocol tracing via [`JobEvent::Trace`], enabled by `AGILE_DEBUG=1`.
    debug: bool,
}

impl<A: MlApp> Controller<A> {
    fn new(
        ctx: &NodeCtx<AgileMsg>,
        cfg: AgileConfig,
        app: Arc<A>,
        dataset_len: usize,
        events: Sender<JobEvent>,
        checkpoint: Option<ModelSnapshot>,
    ) -> Self {
        // `AgileConfig::validate` rejects zero partitions before any
        // controller is spawned.
        #[allow(clippy::expect_used)]
        let layout = PartitionMap::new(cfg.partitions).expect("validated config");
        let _ = (ctx.id(), dataset_len); // Reserved for richer diagnostics.

        // Restarting from a checkpoint resumes the consistent clock and
        // epoch the snapshot captured: workers register at that clock,
        // so progress (and the obs timeline) never time-travels back to
        // zero across a session restart.
        let (initial_model, resume_clock, resume_epoch) = match checkpoint {
            Some(snap) => (Some(snap.params), snap.clock, snap.epoch),
            None => (None, 0, 0),
        };
        Controller {
            cfg,
            app,
            layout,
            members: BTreeMap::new(),
            join_order: Vec::new(),
            helloed: BTreeSet::new(),
            clock: ClockTable::new(cfg.slack),
            epoch: resume_epoch,
            started: false,
            last_min_broadcast: resume_clock,
            stage: Stage::Stage1,
            topo_version: 0,
            partition_owner: Vec::new(),
            backup_owner: Vec::new(),
            active_hosts: BTreeSet::new(),
            assignment: None,
            pending: None,
            pending_ready: BTreeSet::new(),
            queued: VecDeque::new(),
            snapshot: None,
            migrations: BTreeMap::new(),
            filling: BTreeMap::new(),
            known_dead: BTreeSet::new(),
            initial_model,
            events,
            debug: std::env::var_os("AGILE_DEBUG").is_some(),
        }
    }

    fn dbg(&self, make: impl FnOnce() -> String) {
        if self.debug {
            self.emit(JobEvent::Trace { msg: make() });
        }
    }

    // ------------------------------------------------------------------
    // Membership helpers
    // ------------------------------------------------------------------

    fn reliable(&self) -> Vec<NodeId> {
        self.join_order
            .iter()
            .filter(|n| self.members.get(n) == Some(&NodeClass::Reliable))
            .copied()
            .collect()
    }

    fn transient(&self) -> Vec<NodeId> {
        self.join_order
            .iter()
            .filter(|n| self.members.get(n) == Some(&NodeClass::Transient))
            .copied()
            .collect()
    }

    /// Worker nodes under `stage`: transient always, reliable unless
    /// stage 3.
    fn worker_nodes(&self, stage: Stage) -> Vec<NodeId> {
        self.join_order
            .iter()
            .filter(|n| match self.members.get(n) {
                Some(NodeClass::Transient) => true,
                Some(NodeClass::Reliable) => stage.workers_on_reliable(),
                None => false,
            })
            .copied()
            .collect()
    }

    fn pick_stage(&self) -> Stage {
        if let Some(forced) = self.cfg.force_stage {
            return forced;
        }
        select_stage(
            self.transient().len(),
            self.reliable().len(),
            self.cfg.stage2_threshold,
            self.cfg.stage3_threshold,
        )
    }

    /// Target number of ActivePS hosts for the current transient pool.
    fn target_active_count(&self) -> usize {
        let t = self.transient().len();
        ((t as f64 * self.cfg.activeps_fraction).ceil() as usize)
            .clamp(usize::from(t > 0), t.max(1))
    }

    /// Extends `active_hosts` to the target count, preferring the
    /// longest-running transient nodes without an ActivePS (paper
    /// Sec. 3.3). Never shrinks the set.
    fn grow_active_hosts(&mut self) {
        let target = self.target_active_count();
        let transient = self.transient();
        self.active_hosts.retain(|n| self.members.contains_key(n));
        for n in &transient {
            if self.active_hosts.len() >= target {
                break;
            }
            self.active_hosts.insert(*n);
        }
    }

    /// Round-robin partition→owner map over `owners` (sorted by join
    /// order for stability).
    fn round_robin_owners(&self, owners: &[NodeId]) -> Vec<NodeId> {
        assert!(!owners.is_empty(), "cannot place partitions on zero nodes");
        (0..self.layout.count())
            .map(|p| owners[(p as usize) % owners.len()])
            .collect()
    }

    fn topology(&self, stage: Stage) -> Arc<Topology> {
        Arc::new(Topology {
            version: self.topo_version,
            stage,
            partition_owner: self.partition_owner.clone(),
            backup_owner: self.backup_owner.clone(),
            workers: self.worker_nodes(stage),
        })
    }

    fn broadcast(&self, ctx: &NodeCtx<AgileMsg>, msg: &AgileMsg) {
        for n in self.members.keys() {
            let _ = ctx.send(*n, msg.clone());
        }
    }

    fn emit(&self, ev: JobEvent) {
        let _ = self.events.send(ev);
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    /// Handles one message; returns `false` to stop the controller.
    fn handle(&mut self, from: NodeId, msg: AgileMsg, ctx: &NodeCtx<AgileMsg>) -> bool {
        match msg {
            AgileMsg::Hello { class } => {
                self.helloed.insert(from);
                // Classes must agree with what the driver announced.
                debug_assert!(self.members.get(&from).is_none_or(|c| *c == class));
                self.try_progress_membership(ctx);
            }
            AgileMsg::Ready => {
                self.pending_ready.remove(&from);
                // Migrations into this node have landed (Ready is sent
                // only after all awaited installs arrive, and per-sender
                // FIFO orders it after the last install's relay chain).
                for batches in self.migrations.values_mut() {
                    batches.retain(|(dest, _)| *dest != from);
                }
                self.migrations.retain(|_, batches| !batches.is_empty());
                // Backup fills into this node have landed too (same
                // `Ready`-after-installs argument).
                self.filling.retain(|_, (_, dst)| *dst != from);
                self.dbg(|| format!("Ready from {from:?}, remaining {:?}", self.pending_ready));
                self.try_finish_pending(ctx);
            }
            // A node relayed the provider's warning directly. Route it
            // through the command path so it queues behind any in-flight
            // action exactly like a driver-issued warning.
            AgileMsg::EvictionNotice { .. } if self.members.contains_key(&from) => {
                return self.handle_command(Command::EvictWarned { nodes: vec![from] }, ctx);
            }
            AgileMsg::EvictionNotice { .. } => {}
            AgileMsg::ClockDone { clock, epoch } => {
                if epoch != self.epoch {
                    return true;
                }
                self.clock.advance(from.0, clock);
                self.maybe_broadcast_min(ctx);
            }
            AgileMsg::BackupClockInfo { min_clock } => {
                self.on_backup_clock_info(from, min_clock, ctx);
            }
            AgileMsg::InstallPartition {
                partition, image, ..
            } => {
                // Snapshot collection replies land here.
                if let Some(snap) = self.snapshot.as_mut() {
                    if snap.expect.remove(&partition) {
                        snap.images.insert(partition, image);
                    }
                }
                self.finish_snapshot_if_complete(ctx);
            }
            AgileMsg::Cmd(cmd) => return self.handle_command(cmd, ctx),
            // Data-plane traffic never targets the controller.
            _ => {}
        }
        true
    }

    fn busy(&self) -> bool {
        self.pending.is_some() || self.snapshot.is_some()
    }

    fn handle_command(&mut self, cmd: Command, ctx: &NodeCtx<AgileMsg>) -> bool {
        match cmd {
            Command::Status { reply } => {
                let _ = reply.send(JobStatus {
                    stage: self.stage,
                    reliable: self.reliable().len(),
                    transient: self.transient().len(),
                    active_ps: if self.stage.uses_backups() {
                        self.active_hosts.len()
                    } else {
                        0
                    },
                    workers: self.clock.worker_count(),
                    min_clock: self.clock.min_clock().unwrap_or(0),
                });
                true
            }
            Command::Shutdown { reply } => {
                for n in self.members.keys() {
                    let _ = ctx.send(*n, AgileMsg::Stop);
                }
                let _ = reply.send(());
                false
            }
            Command::NodesFailed { nodes } if self.busy() => {
                // The dead nodes can no longer acknowledge anything the
                // in-flight action is waiting on — strip them from its
                // expectations, or the queued recovery never runs. Queue
                // first: unwedging the pending action drains the queue.
                self.queued.push_back(Command::NodesFailed {
                    nodes: nodes.clone(),
                });
                self.note_dead_during_pending(&nodes, ctx);
                true
            }
            cmd if self.busy() => {
                self.dbg(|| {
                    format!(
                        "queueing {cmd:?} behind pending={:?} ready={:?} snapshot={}",
                        self.pending,
                        self.pending_ready,
                        self.snapshot.is_some()
                    )
                });
                self.queued.push_back(cmd);
                true
            }
            Command::AddNodes { nodes } => {
                for (n, class) in &nodes {
                    if self.members.insert(*n, *class).is_none() {
                        self.join_order.push(*n);
                    }
                }
                if !self.started {
                    self.pending = Some(Pending::StartJob);
                } else {
                    self.pending = Some(Pending::AddNodes {
                        added: nodes.iter().map(|(n, _)| *n).collect(),
                        configured: false,
                    });
                }
                self.try_progress_membership(ctx);
                true
            }
            Command::EvictWarned { nodes } => {
                self.dbg(|| format!("EvictWarned {nodes:?}"));
                self.handle_eviction(nodes, ctx);
                true
            }
            Command::PreDrain { nodes } => {
                self.dbg(|| format!("PreDrain {nodes:?}"));
                self.handle_predrain(nodes, ctx);
                true
            }
            Command::NodesFailed { nodes } => {
                self.handle_failure(nodes, ctx);
                true
            }
            Command::Snapshot { reply } => {
                let expect: BTreeSet<PartitionId> = self.layout.partitions().collect();
                let mut snap = SnapshotCollect {
                    reply,
                    images: BTreeMap::new(),
                    expect,
                };
                for p in self.layout.partitions() {
                    let owner = self.partition_owner[p.0 as usize];
                    if ctx
                        .send(owner, AgileMsg::ExportPartition { partition: p })
                        .is_err()
                    {
                        // Owner died mid-request: deliver what we can.
                        snap.expect.remove(&p);
                    }
                }
                if snap.expect.is_empty() {
                    let _ = snap.reply.send(ModelSnapshot {
                        params: BTreeMap::new(),
                        clock: self.clock.min_clock().unwrap_or(self.last_min_broadcast),
                        epoch: self.epoch,
                        stage: self.stage,
                    });
                } else {
                    self.snapshot = Some(snap);
                }
                true
            }
        }
    }

    fn drain_queue(&mut self, ctx: &NodeCtx<AgileMsg>) {
        while !self.busy() {
            match self.queued.pop_front() {
                Some(cmd) => {
                    if !self.handle_command(cmd, ctx) {
                        break;
                    }
                }
                None => break,
            }
        }
    }

    /// Delivers an in-flight snapshot once every expected partition
    /// image arrived (or its expectation was stripped because the owner
    /// died), then resumes queued commands.
    fn finish_snapshot_if_complete(&mut self, ctx: &NodeCtx<AgileMsg>) {
        if !self
            .snapshot
            .as_ref()
            .is_some_and(|snap| snap.expect.is_empty())
        {
            return;
        }
        // The `is_some_and` guard above returns early unless a snapshot
        // is present and complete.
        #[allow(clippy::expect_used)]
        let snap = self.snapshot.take().expect("checked above");
        let mut params = BTreeMap::new();
        for (_, image) in snap.images {
            for (k, v) in image {
                params.insert(k, v);
            }
        }
        let _ = snap.reply.send(ModelSnapshot {
            params,
            clock: self.clock.min_clock().unwrap_or(self.last_min_broadcast),
            epoch: self.epoch,
            stage: self.stage,
        });
        self.drain_queue(ctx);
    }

    fn maybe_broadcast_min(&mut self, ctx: &NodeCtx<AgileMsg>) {
        if let Some(min) = self.clock.min_clock() {
            if min > self.last_min_broadcast {
                self.last_min_broadcast = min;
                self.broadcast(
                    ctx,
                    &AgileMsg::GlobalClock {
                        min,
                        epoch: self.epoch,
                    },
                );
                self.emit(JobEvent::ClockAdvanced { min });
            }
        }
    }

    // ------------------------------------------------------------------
    // Initial start & node addition
    // ------------------------------------------------------------------

    /// Runs whenever membership knowledge changes: begins the initial
    /// layout or integrates added nodes once all expected `Hello`s are in.
    fn try_progress_membership(&mut self, ctx: &NodeCtx<AgileMsg>) {
        match &self.pending {
            Some(Pending::StartJob)
                if self.members.keys().all(|n| self.helloed.contains(n))
                    && !self.members.is_empty() =>
            {
                self.initial_layout(ctx);
            }
            Some(Pending::AddNodes {
                added,
                configured: false,
            }) => {
                let added = added.clone();
                if added.iter().all(|n| self.helloed.contains(n)) {
                    self.integrate_nodes(&added, ctx);
                }
            }
            _ => {}
        }
    }

    /// Computes the first layout, configures every member, and installs
    /// the initial parameter images.
    fn initial_layout(&mut self, ctx: &NodeCtx<AgileMsg>) {
        let stage = self.pick_stage();
        self.stage = stage;
        let reliable = self.reliable();
        assert!(
            !reliable.is_empty(),
            "AgileML requires at least one reliable node to hold solution state"
        );
        if stage.uses_backups() {
            self.grow_active_hosts();
            let actives: Vec<NodeId> = self
                .join_order
                .iter()
                .filter(|n| self.active_hosts.contains(n))
                .copied()
                .collect();
            self.partition_owner = self.round_robin_owners(&actives);
            self.backup_owner = self
                .round_robin_owners(&reliable)
                .into_iter()
                .map(Some)
                .collect();
        } else {
            self.partition_owner = self.round_robin_owners(&reliable);
            self.backup_owner = vec![None; self.layout.count() as usize];
        }
        let workers = self.worker_nodes(stage);
        self.assignment = DataAssignment::new(self.cfg.data_blocks, &workers);
        self.topo_version += 1;

        // Configure every member; all state arrives via installs. The
        // resume clock is zero on a fresh start and the checkpoint's
        // consistent clock on a restart-from-checkpoint.
        let resume = self.last_min_broadcast;
        let topo = self.topology(stage);
        self.pending_ready.clear();
        for n in self.members.keys().copied().collect::<Vec<_>>() {
            let serve = self.owned_by(n);
            let backup = self.backed_by(n);
            let blocks = self
                .assignment
                .as_ref()
                .map(|a| a.blocks_of(n))
                .unwrap_or_default();
            let await_installs: Vec<PartitionId> =
                serve.iter().chain(backup.iter()).copied().collect();
            let assign = NodeAssignment {
                serve_partitions: serve,
                backup_partitions: backup,
                is_active_ps: stage.uses_backups() && self.active_hosts.contains(&n),
                data_blocks: blocks,
                await_installs,
                topology: Arc::clone(&topo),
                resume_clock: resume,
                epoch: self.epoch,
            };
            let _ = ctx.send(n, AgileMsg::Configure(Box::new(assign)));
            self.pending_ready.insert(n);
        }

        // Generate and ship the initial parameter images.
        let images = self.initial_images();
        for (p, image) in images {
            let owner = self.partition_owner[p.0 as usize];
            let _ = ctx.send(
                owner,
                AgileMsg::InstallPartition {
                    partition: p,
                    image: image.clone(),
                    clock: resume,
                },
            );
            if let Some(backup) = self.backup_owner[p.0 as usize] {
                let _ = ctx.send(
                    backup,
                    AgileMsg::InstallPartition {
                        partition: p,
                        image,
                        clock: resume,
                    },
                );
            }
        }
        // Register workers at the resume clock (zero on a fresh start).
        for w in &workers {
            self.clock.register_at(w.0, resume);
        }
    }

    /// Initial parameter values grouped by partition: the restored
    /// checkpoint when one was provided (the paper's Sec. 3.3
    /// reliable-resource checkpointing), the app's random initialization
    /// otherwise. Keys absent from a checkpoint fall back to the
    /// initializer so model-shape growth stays possible.
    fn initial_images(&self) -> BTreeMap<PartitionId, Values> {
        let mut rng = seeded_stream(self.cfg.seed, 0x1217);
        let mut images: BTreeMap<PartitionId, Values> = BTreeMap::new();
        for k in 0..self.app.key_count() {
            let key = ParamKey(k);
            let value: DenseVec = self
                .initial_model
                .as_ref()
                .and_then(|m| m.get(&key).cloned())
                .unwrap_or_else(|| self.app.init_value(key, &mut rng));
            let p = self.layout.partition_of(key);
            images.entry(p).or_default().push((key, value));
        }
        images
    }

    fn owned_by(&self, n: NodeId) -> Vec<PartitionId> {
        self.partition_owner
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == n)
            .map(|(i, _)| PartitionId(i as u32))
            .collect()
    }

    fn backed_by(&self, n: NodeId) -> Vec<PartitionId> {
        self.backup_owner
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(n))
            .map(|(i, _)| PartitionId(i as u32))
            .collect()
    }

    /// Integrates added nodes into a running job: stage recheck, ActivePS
    /// placement with migrations, data rebalance, reconfiguration.
    fn integrate_nodes(&mut self, added: &[NodeId], ctx: &NodeCtx<AgileMsg>) {
        let old_stage = self.stage;
        let old_owner = self.partition_owner.clone();
        let new_stage = self.pick_stage();
        let reliable = self.reliable();

        if new_stage.uses_backups() {
            self.grow_active_hosts();
            let actives: Vec<NodeId> = self
                .join_order
                .iter()
                .filter(|n| self.active_hosts.contains(n))
                .copied()
                .collect();
            self.partition_owner = self.round_robin_owners(&actives);
            self.backup_owner = self
                .round_robin_owners(&reliable)
                .into_iter()
                .map(Some)
                .collect();
        } else {
            self.partition_owner = self.round_robin_owners(&reliable);
            self.backup_owner = vec![None; self.layout.count() as usize];
        }

        // Data rebalance across the new worker set.
        let workers = self.worker_nodes(new_stage);
        match self.assignment.as_mut() {
            Some(a) => {
                a.rebalance(&workers);
            }
            None => self.assignment = DataAssignment::new(self.cfg.data_blocks, &workers),
        }

        self.stage = new_stage;
        self.topo_version += 1;
        let topo = self.topology(new_stage);
        let resume = self.last_min_broadcast;

        // Issue migrations for partitions whose owner changed.
        let mut moves: BTreeMap<(NodeId, NodeId), Vec<PartitionId>> = BTreeMap::new();
        for (i, (old, new)) in old_owner
            .iter()
            .zip(self.partition_owner.iter())
            .enumerate()
        {
            if old != new {
                moves
                    .entry((*old, *new))
                    .or_default()
                    .push(PartitionId(i as u32));
            }
        }
        let mut awaits: BTreeMap<NodeId, Vec<PartitionId>> = BTreeMap::new();
        for ((old, new), parts) in &moves {
            // A reliable old owner handing partitions to a new ActivePS
            // retains them as the backup copy (stage 1→2 transition).
            let retain =
                self.members.get(old) == Some(&NodeClass::Reliable) && new_stage.uses_backups();
            let _ = ctx.send(
                *old,
                AgileMsg::MigratePartitions {
                    to: *new,
                    partitions: parts.clone(),
                    retain_as_backup: retain,
                },
            );
            self.migrations
                .entry(*old)
                .or_default()
                .push((*new, parts.clone()));
            awaits
                .entry(*new)
                .or_default()
                .extend(parts.iter().copied());
        }

        // Reconfigure every member with its new duties.
        self.pending_ready.clear();
        for n in self.members.keys().copied().collect::<Vec<_>>() {
            let serve = self.owned_by(n);
            let backup = self.backed_by(n);
            let blocks = self
                .assignment
                .as_ref()
                .map(|a| a.blocks_of(n))
                .unwrap_or_default();
            let await_installs = awaits.get(&n).cloned().unwrap_or_default();
            if !await_installs.is_empty() || added.contains(&n) {
                self.pending_ready.insert(n);
            }
            let assign = NodeAssignment {
                serve_partitions: serve,
                backup_partitions: backup,
                is_active_ps: new_stage.uses_backups() && self.active_hosts.contains(&n),
                data_blocks: blocks,
                await_installs,
                topology: Arc::clone(&topo),
                resume_clock: resume,
                epoch: self.epoch,
            };
            let _ = ctx.send(n, AgileMsg::Configure(Box::new(assign)));
        }

        if old_stage != new_stage {
            self.emit(JobEvent::StageChanged {
                from: old_stage,
                to: new_stage,
            });
        }
        // Register new workers (and deregister reliable ones on 2→3).
        // `register_at` keeps a rejoining worker from dragging the
        // consistent clock back to zero.
        for w in &workers {
            self.clock.register_at(w.0, resume);
        }
        let worker_set: BTreeSet<NodeId> = workers.iter().copied().collect();
        let registered: Vec<u32> = self
            .members
            .keys()
            .filter(|n| !worker_set.contains(n))
            .map(|n| n.0)
            .collect();
        for w in registered {
            self.clock.deregister(w);
        }
        self.maybe_broadcast_min(ctx);

        self.dbg(|| {
            format!(
                "integrate_nodes {added:?}: pending_ready={:?}",
                self.pending_ready
            )
        });
        if self.pending_ready.is_empty() {
            self.finish_add(added.to_vec(), ctx);
        } else {
            self.pending = Some(Pending::AddNodes {
                added: added.to_vec(),
                configured: true,
            });
        }
    }

    fn finish_add(&mut self, added: Vec<NodeId>, ctx: &NodeCtx<AgileMsg>) {
        self.pending = None;
        self.topo_version += 1;
        let topo = self.topology(self.stage);
        self.broadcast(ctx, &AgileMsg::Topology(topo));
        self.broadcast(ctx, &AgileMsg::Start);
        self.emit(JobEvent::NodesAdded { nodes: added });
        self.drain_queue(ctx);
    }

    fn try_finish_pending(&mut self, ctx: &NodeCtx<AgileMsg>) {
        if !self.pending_ready.is_empty() {
            return;
        }
        match self.pending.take() {
            Some(Pending::StartJob) => {
                self.started = true;
                self.topo_version += 1;
                let topo = self.topology(self.stage);
                self.broadcast(ctx, &AgileMsg::Topology(topo));
                self.broadcast(ctx, &AgileMsg::Start);
                self.broadcast(
                    ctx,
                    &AgileMsg::GlobalClock {
                        min: self.last_min_broadcast,
                        epoch: self.epoch,
                    },
                );
                self.emit(JobEvent::Started {
                    nodes: self.members.len(),
                });
                self.drain_queue(ctx);
            }
            Some(Pending::AddNodes { added, .. }) => self.finish_add(added, ctx),
            Some(Pending::RecoveryInstall { failed, clock }) => {
                self.broadcast(ctx, &AgileMsg::Start);
                self.broadcast(
                    ctx,
                    &AgileMsg::GlobalClock {
                        min: clock,
                        epoch: self.epoch,
                    },
                );
                self.emit(JobEvent::NodesFailedRecovered {
                    nodes: failed,
                    rolled_back_to: clock,
                });
                self.drain_queue(ctx);
            }
            Some(Pending::ReliableRepair { nodes, partitions }) => {
                self.emit(JobEvent::ReliableRepaired { nodes, partitions });
                self.drain_queue(ctx);
            }
            other => self.pending = other,
        }
    }

    // ------------------------------------------------------------------
    // Eviction (warned) path
    // ------------------------------------------------------------------

    fn handle_eviction(&mut self, nodes: Vec<NodeId>, ctx: &NodeCtx<AgileMsg>) {
        let (victims, reliable_victims): (Vec<NodeId>, Vec<NodeId>) = nodes
            .into_iter()
            .filter(|n| self.members.contains_key(n))
            .partition(|n| self.members.get(n) == Some(&NodeClass::Transient));
        // Warned reliable victims drain through the in-job repair path
        // when surviving reliable capacity can absorb their state:
        // serving partitions migrate, backup partitions re-replicate,
        // no restart needed. When no survivor can take the state (or a
        // victim is mid-protocol), refuse with a typed fault — the
        // session treats it as a restart-from-checkpoint trigger.
        let mut drained_reliable: Vec<NodeId> = Vec::new();
        if !reliable_victims.is_empty() {
            if self.reliable_drainable(&reliable_victims, &victims) {
                drained_reliable = reliable_victims;
            } else {
                self.emit(JobEvent::Faulted {
                    fault: JobFault::ReliableNodesEvicted {
                        nodes: reliable_victims,
                    },
                });
            }
        }
        if victims.is_empty() && drained_reliable.is_empty() {
            // Nothing to do (unknown or already-gone nodes); report the
            // no-op so drivers waiting on the eviction don't hang.
            self.emit(JobEvent::NodesEvicted { nodes: Vec::new() });
            return;
        }
        let old_stage = self.stage;

        // Compute post-eviction membership.
        for v in victims.iter().chain(drained_reliable.iter()) {
            self.members.remove(v);
        }
        self.join_order
            .retain(|n| !victims.contains(n) && !drained_reliable.contains(n));
        self.helloed
            .retain(|n| !victims.contains(n) && !drained_reliable.contains(n));

        let mut new_stage = self.pick_stage();
        if self.transient().is_empty() && new_stage.uses_backups() {
            // Even a forced stage 2/3 cannot host ActivePSs once an
            // eviction storm took every transient machine: fall back to
            // the stage the thresholds dictate and re-serve from the
            // BackupPSs.
            new_stage = Stage::Stage1;
        }
        let victim_actives: Vec<NodeId> = victims
            .iter()
            .filter(|v| self.active_hosts.contains(v))
            .copied()
            .collect();
        self.active_hosts.retain(|n| !victims.contains(n));
        // Partitions in flight to each surviving new owner: those nodes
        // buffer updates and defer exports until the image lands.
        let mut migrating_to: BTreeMap<NodeId, Vec<PartitionId>> = BTreeMap::new();

        if old_stage.uses_backups() && !new_stage.uses_backups() {
            // Full fall-back to stage 1: every ActivePS (evicted or not)
            // drains to its backup, then backups promote to ParamServs.
            let drain_set: Vec<NodeId> = victim_actives
                .iter()
                .chain(self.active_hosts.iter())
                .copied()
                .collect();
            for a in &drain_set {
                let _ = ctx.send(*a, AgileMsg::DrainToBackup);
            }
            self.active_hosts.clear();
            self.promote_backups_to_serving();
        } else if old_stage.uses_backups() && !victim_actives.is_empty() {
            // Partial eviction in stage 2/3: migrate victims' partitions
            // to surviving transient nodes, preferring ones without an
            // ActivePS (paper Sec. 3.3).
            let survivors_without: Vec<NodeId> = self
                .transient()
                .into_iter()
                .filter(|n| !self.active_hosts.contains(n) && !self.known_dead.contains(n))
                .collect();
            let mut fresh = survivors_without.into_iter();
            for victim in &victim_actives {
                let parts = self.owned_by(*victim);
                if parts.is_empty() {
                    continue;
                }
                // Merge into the surviving ActivePS with the fewest
                // partitions when no fresh host remains. A node whose
                // `NodesFailed` is still queued must not become an
                // owner: images shipped to a corpse are lost.
                let new_owner = fresh.next().or_else(|| {
                    self.active_hosts
                        .iter()
                        .filter(|n| !self.known_dead.contains(n))
                        .min_by_key(|n| self.owned_by(**n).len())
                        .copied()
                });
                let Some(new_owner) = new_owner else {
                    // No transient survivor can host these partitions
                    // (a storm took every candidate): drain the victim
                    // and re-serve from the BackupPS copies instead.
                    let _ = ctx.send(*victim, AgileMsg::DrainToBackup);
                    for p in parts {
                        let i = p.0 as usize;
                        if let Some(b) = self.backup_owner[i] {
                            self.partition_owner[i] = b;
                            self.backup_owner[i] = None;
                        } else {
                            self.emit(JobEvent::Faulted {
                                fault: JobFault::PartitionStateLost { partition: p.0 },
                            });
                        }
                    }
                    continue;
                };
                self.active_hosts.insert(new_owner);
                let _ = ctx.send(
                    *victim,
                    AgileMsg::MigratePartitions {
                        to: new_owner,
                        partitions: parts.clone(),
                        retain_as_backup: false,
                    },
                );
                self.migrations
                    .entry(*victim)
                    .or_default()
                    .push((new_owner, parts.clone()));
                migrating_to
                    .entry(new_owner)
                    .or_default()
                    .extend(parts.iter().copied());
                for p in parts {
                    self.partition_owner[p.0 as usize] = new_owner;
                }
            }
        } else if !old_stage.uses_backups() {
            // Stage 1: parameter state lives on reliable nodes; evicted
            // transient nodes are workers only. Owners are unchanged
            // unless a reliable node was (incorrectly) named - filtered
            // by class above.
            debug_assert!(victims.iter().all(|v| !self.partition_owner.contains(v)));
        }

        // Drain warned reliable victims while they are still alive:
        // serving partitions (stage 1) migrate to the least-loaded
        // reliable survivor; backup partitions re-replicate out of the
        // victim's own backup store at the current broadcast floor.
        // Per-sender FIFO orders all exports before the victim's `Stop`
        // below, so the warning window is spent exactly on this drain.
        let mut repair_fills = 0u64;
        if !drained_reliable.is_empty() {
            // Victims are already out of membership; the gate above
            // guarantees at least one survivor remains.
            let survivors = self.reliable();
            for victim in &drained_reliable.clone() {
                let serve = self.owned_by(*victim);
                if !serve.is_empty() {
                    if let Some(dst) = survivors
                        .iter()
                        .filter(|n| !self.known_dead.contains(n))
                        .min_by_key(|n| (self.owned_by(**n).len(), n.0))
                        .copied()
                    {
                        let _ = ctx.send(
                            *victim,
                            AgileMsg::MigratePartitions {
                                to: dst,
                                partitions: serve.clone(),
                                retain_as_backup: false,
                            },
                        );
                        self.migrations
                            .entry(*victim)
                            .or_default()
                            .push((dst, serve.clone()));
                        migrating_to
                            .entry(dst)
                            .or_default()
                            .extend(serve.iter().copied());
                        for p in serve {
                            self.partition_owner[p.0 as usize] = dst;
                        }
                    }
                }
                let backed = self.backed_by(*victim);
                let mut by_dst: BTreeMap<NodeId, Vec<PartitionId>> = BTreeMap::new();
                for p in backed {
                    let Some(dst) = survivors
                        .iter()
                        .filter(|n| !self.known_dead.contains(n))
                        .min_by_key(|n| (self.backed_by(**n).len(), n.0))
                        .copied()
                    else {
                        continue;
                    };
                    self.backup_owner[p.0 as usize] = Some(dst);
                    self.filling.insert(p, (*victim, dst));
                    by_dst.entry(dst).or_default().push(p);
                    repair_fills += 1;
                }
                for (dst, parts) in by_dst {
                    migrating_to
                        .entry(dst)
                        .or_default()
                        .extend(parts.iter().copied());
                    let _ = ctx.send(
                        *victim,
                        AgileMsg::RecoverPartitions {
                            partitions: parts,
                            new_owner: dst,
                            clock: self.last_min_broadcast,
                        },
                    );
                }
            }
        }
        let all_victims: Vec<NodeId> = victims
            .iter()
            .chain(drained_reliable.iter())
            .copied()
            .collect();

        // Data blocks fall back to previous owners.
        let workers = self.worker_nodes(new_stage);
        if let Some(a) = self.assignment.as_mut() {
            for v in &all_victims {
                a.remove_worker(*v, &workers);
            }
            a.rebalance(&workers);
        }

        // Deregister victim workers; reliable workers too on 2→3 flips,
        // re-register them on 3→2 flips.
        for v in &all_victims {
            self.clock.deregister(v.0);
        }
        let worker_set: BTreeSet<NodeId> = workers.iter().copied().collect();
        for n in self.members.keys() {
            if worker_set.contains(n) && !self.known_dead.contains(n) {
                // Re-registering at the broadcast floor (not zero) keeps
                // stage flips from regressing the consistent clock. A
                // corpse awaiting its queued `NodesFailed` is skipped:
                // registering it would pin the minimum forever.
                self.clock.register_at(n.0, self.last_min_broadcast);
            } else {
                self.clock.deregister(n.0);
            }
        }

        self.stage = new_stage;
        self.topo_version += 1;
        let topo = self.topology(new_stage);
        let resume = self.last_min_broadcast;

        // Reconfigure all survivors with their (possibly promoted) roles.
        for n in self.members.keys().copied().collect::<Vec<_>>() {
            let serve = self.owned_by(n);
            let backup = self.backed_by(n);
            let blocks = self
                .assignment
                .as_ref()
                .map(|a| a.blocks_of(n))
                .unwrap_or_default();
            let assign = NodeAssignment {
                serve_partitions: serve,
                backup_partitions: backup,
                is_active_ps: new_stage.uses_backups() && self.active_hosts.contains(&n),
                data_blocks: blocks,
                // Migrated-in partitions stream in concurrently; marking
                // them awaited makes the recipient buffer their updates
                // and defer exports until the image lands. The eviction
                // itself does not gate on the resulting `Ready` (the
                // controller has no pending action here).
                await_installs: migrating_to.get(&n).cloned().unwrap_or_default(),
                topology: Arc::clone(&topo),
                resume_clock: resume,
                epoch: self.epoch,
            };
            let _ = ctx.send(n, AgileMsg::Configure(Box::new(assign)));
        }
        self.broadcast(ctx, &AgileMsg::Topology(Arc::clone(&topo)));
        self.broadcast(ctx, &AgileMsg::Start);

        // Victims: stop after their drain/migration work (per-sender
        // FIFO guarantees ordering).
        for v in &all_victims {
            let _ = ctx.send(*v, AgileMsg::Stop);
        }

        if old_stage != new_stage {
            self.emit(JobEvent::StageChanged {
                from: old_stage,
                to: new_stage,
            });
        }
        self.emit(JobEvent::NodesEvicted { nodes: all_victims });
        if !drained_reliable.is_empty() {
            if repair_fills > 0 {
                // Gate later commands on the fills landing: a recovery
                // quorum run before a fresh backup installs its fill
                // would read a meaningless zero clock from it.
                self.pending_ready = self
                    .filling
                    .values()
                    .filter(|(src, _)| drained_reliable.contains(src))
                    .map(|(_, dst)| *dst)
                    .collect();
                self.pending = Some(Pending::ReliableRepair {
                    nodes: drained_reliable,
                    partitions: repair_fills,
                });
            } else {
                self.emit(JobEvent::ReliableRepaired {
                    nodes: drained_reliable,
                    partitions: 0,
                });
            }
        }
        self.maybe_broadcast_min(ctx);
    }

    /// Whether warned reliable victims can drain in-job: at least one
    /// reliable survivor must remain to absorb their state, and no
    /// victim may be mid-protocol (an unacknowledged outbound migration
    /// or an in-flight backup fill touching it cannot be handed over
    /// consistently within the warning window).
    fn reliable_drainable(
        &self,
        reliable_victims: &[NodeId],
        transient_victims: &[NodeId],
    ) -> bool {
        let survivors = self
            .reliable()
            .into_iter()
            .filter(|n| !reliable_victims.contains(n) && !self.known_dead.contains(n))
            .count();
        if survivors == 0 {
            return false;
        }
        let doomed = |n: &NodeId| reliable_victims.contains(n) || transient_victims.contains(n);
        if self.migrations.keys().any(doomed) {
            return false;
        }
        !self
            .filling
            .values()
            .any(|(src, dst)| doomed(src) || doomed(dst))
    }

    /// Proactive demotion on a forecast alert: move the suspects'
    /// ActivePS partitions to safer transient hosts (or drain to the
    /// BackupPS copies when none exists) while the suspects *keep
    /// working*. Membership, stage, and worker clocks are untouched, so
    /// a false-positive forecast costs only the migration traffic; if
    /// the eviction does land, the suspects own nothing and the warned
    /// drain is trivial.
    fn handle_predrain(&mut self, nodes: Vec<NodeId>, ctx: &NodeCtx<AgileMsg>) {
        // Only live transient members can be demoted; reliable nodes are
        // never evicted (paper Sec. 2) and unknown nodes are stale alerts.
        let suspects: Vec<NodeId> = nodes
            .into_iter()
            .filter(|n| {
                self.members.get(n) == Some(&NodeClass::Transient) && !self.known_dead.contains(n)
            })
            .collect();
        if suspects.is_empty() || !self.stage.uses_backups() {
            // Stage 1 keeps all parameter state on the reliable tier, so
            // the suspects are already safe. Report the no-op so drivers
            // waiting on the pre-drain don't hang.
            self.emit(JobEvent::NodesPreDrained {
                nodes: suspects,
                partitions: 0,
            });
            return;
        }

        let suspect_actives: Vec<NodeId> = suspects
            .iter()
            .filter(|n| self.active_hosts.contains(n))
            .copied()
            .collect();
        if suspect_actives.is_empty() {
            // Workers only: nothing to move, the nodes are already safe.
            self.emit(JobEvent::NodesPreDrained {
                nodes: suspects,
                partitions: 0,
            });
            return;
        }

        // Destination preference mirrors the eviction path: a fresh
        // un-suspected transient node without an ActivePS, else the
        // least-loaded surviving un-suspected ActivePS, else drain to
        // the BackupPS copies.
        let survivors_without: Vec<NodeId> = self
            .transient()
            .into_iter()
            .filter(|n| {
                !self.active_hosts.contains(n)
                    && !self.known_dead.contains(n)
                    && !suspects.contains(n)
            })
            .collect();
        let mut fresh = survivors_without.into_iter();
        let mut migrating_to: BTreeMap<NodeId, Vec<PartitionId>> = BTreeMap::new();
        let mut moved = 0u64;
        for suspect in &suspect_actives {
            let parts = self.owned_by(*suspect);
            if parts.is_empty() {
                self.active_hosts.remove(suspect);
                continue;
            }
            let new_owner = fresh.next().or_else(|| {
                self.active_hosts
                    .iter()
                    .filter(|n| {
                        !self.known_dead.contains(n)
                            && !suspects.contains(n)
                            && !suspect_actives.contains(n)
                    })
                    .min_by_key(|n| self.owned_by(**n).len())
                    .copied()
            });
            let Some(new_owner) = new_owner else {
                // Alert storm over the whole transient tier: drain to the
                // backups and serve from the reliable copies, exactly the
                // established eviction fallback.
                let _ = ctx.send(*suspect, AgileMsg::DrainToBackup);
                for p in parts {
                    let i = p.0 as usize;
                    if let Some(b) = self.backup_owner[i] {
                        self.partition_owner[i] = b;
                        self.backup_owner[i] = None;
                        moved += 1;
                    } else {
                        self.emit(JobEvent::Faulted {
                            fault: JobFault::PartitionStateLost { partition: p.0 },
                        });
                    }
                }
                self.active_hosts.remove(suspect);
                continue;
            };
            self.active_hosts.insert(new_owner);
            let _ = ctx.send(
                *suspect,
                AgileMsg::MigratePartitions {
                    to: new_owner,
                    partitions: parts.clone(),
                    retain_as_backup: false,
                },
            );
            // Track the in-flight images so a suspect dying mid-handover
            // triggers the same rollback as any interrupted migration.
            self.migrations
                .entry(*suspect)
                .or_default()
                .push((new_owner, parts.clone()));
            migrating_to
                .entry(new_owner)
                .or_default()
                .extend(parts.iter().copied());
            moved += parts.len() as u64;
            for p in parts {
                self.partition_owner[p.0 as usize] = new_owner;
            }
            self.active_hosts.remove(suspect);
        }

        // Re-route traffic to the new owners. The suspects stay in the
        // worker set with their clocks — only serving roles changed.
        self.topo_version += 1;
        let topo = self.topology(self.stage);
        let resume = self.last_min_broadcast;
        for n in self.members.keys().copied().collect::<Vec<_>>() {
            let assign = NodeAssignment {
                serve_partitions: self.owned_by(n),
                backup_partitions: self.backed_by(n),
                is_active_ps: self.stage.uses_backups() && self.active_hosts.contains(&n),
                data_blocks: self
                    .assignment
                    .as_ref()
                    .map(|a| a.blocks_of(n))
                    .unwrap_or_default(),
                await_installs: migrating_to.get(&n).cloned().unwrap_or_default(),
                topology: Arc::clone(&topo),
                resume_clock: resume,
                epoch: self.epoch,
            };
            let _ = ctx.send(n, AgileMsg::Configure(Box::new(assign)));
        }
        self.broadcast(ctx, &AgileMsg::Topology(Arc::clone(&topo)));
        self.broadcast(ctx, &AgileMsg::Start);

        self.emit(JobEvent::NodesPreDrained {
            nodes: suspects,
            partitions: moved,
        });
        self.maybe_broadcast_min(ctx);
    }

    // ------------------------------------------------------------------
    // Failure path
    // ------------------------------------------------------------------

    fn handle_failure(&mut self, nodes: Vec<NodeId>, ctx: &NodeCtx<AgileMsg>) {
        let requested = nodes.clone();
        // This is the queued report `note_dead_during_pending` was
        // holding the mark for; from here the normal removal below takes
        // over.
        for n in &requested {
            self.known_dead.remove(n);
        }
        // A node with an in-flight migration may hold the only serving
        // copy of its outbound partitions even after eviction removed it
        // from membership — its death still matters.
        let victims: Vec<NodeId> = nodes
            .into_iter()
            .filter(|n| self.members.contains_key(n) || self.migrations.contains_key(n))
            .collect();
        if victims.is_empty() {
            // Unknown or already-gone nodes: acknowledge the no-op with
            // the requested list so waiting drivers don't hang.
            self.emit(JobEvent::NodesFailedRecovered {
                nodes: requested,
                rolled_back_to: self.last_min_broadcast,
            });
            return;
        }
        // In-flight backup fills: a dead destination just re-orphans
        // its partitions (`backup_owner` still names it, so the repair
        // below re-replicates them); a dead *source* took the only
        // usable copy before its fill landed — report each partition
        // lost and let the session restart from its last checkpoint.
        let mut lost_fills: Vec<PartitionId> = Vec::new();
        self.filling.retain(|p, (src, dst)| {
            if victims.contains(src) {
                lost_fills.push(*p);
                false
            } else {
                !victims.contains(dst)
            }
        });
        if !lost_fills.is_empty() {
            for p in lost_fills {
                self.emit(JobEvent::Faulted {
                    fault: JobFault::PartitionStateLost { partition: p.0 },
                });
            }
            return;
        }
        let reliable_victims: Vec<NodeId> = victims
            .iter()
            .filter(|v| self.members.get(v) == Some(&NodeClass::Reliable))
            .copied()
            .collect();
        if !reliable_victims.is_empty() {
            // First try to repair in-job: when the dead reliable nodes
            // held only backup copies and enough reliable capacity
            // survives, their partitions re-replicate from the live
            // serving owners onto survivors (paper Sec. 3.3's tiered
            // reliability, extended to partial reliable-tier loss).
            // Only when the loss is unrepairable — no survivor, the
            // victims held serving state, or a partition lost both its
            // copies — does the controller report the typed fault that
            // sends the session back to its external checkpoint.
            if self.try_repair_reliable(&reliable_victims, &victims, ctx) {
                return;
            }
            self.emit(JobEvent::Faulted {
                fault: JobFault::ReliableNodesFailed {
                    nodes: reliable_victims,
                },
            });
            return;
        }
        let owners_lost = victims
            .iter()
            .any(|v| self.partition_owner.contains(v) || self.migrations.contains_key(v));

        for v in &victims {
            self.members.remove(v);
            self.clock.deregister(v.0);
            self.migrations.remove(v);
        }
        self.join_order.retain(|n| !victims.contains(n));
        self.helloed.retain(|n| !victims.contains(n));
        self.active_hosts.retain(|n| !victims.contains(n));

        if !owners_lost {
            // Workers only: reassign data, continue without rollback.
            let workers = self.worker_nodes(self.stage);
            if let Some(a) = self.assignment.as_mut() {
                for v in &victims {
                    a.remove_worker(*v, &workers);
                }
            }
            self.topo_version += 1;
            let topo = self.topology(self.stage);
            for n in self.members.keys().copied().collect::<Vec<_>>() {
                let blocks = self
                    .assignment
                    .as_ref()
                    .map(|a| a.blocks_of(n))
                    .unwrap_or_default();
                let assign = NodeAssignment {
                    serve_partitions: self.owned_by(n),
                    backup_partitions: self.backed_by(n),
                    is_active_ps: self.stage.uses_backups() && self.active_hosts.contains(&n),
                    data_blocks: blocks,
                    await_installs: Vec::new(),
                    topology: Arc::clone(&topo),
                    resume_clock: self.last_min_broadcast,
                    epoch: self.epoch,
                };
                let _ = ctx.send(n, AgileMsg::Configure(Box::new(assign)));
            }
            self.broadcast(ctx, &AgileMsg::Topology(topo));
            self.broadcast(ctx, &AgileMsg::Start);
            self.emit(JobEvent::NodesFailedRecovered {
                nodes: requested,
                rolled_back_to: self.last_min_broadcast,
            });
            self.maybe_broadcast_min(ctx);
            return;
        }

        // Phase 1: ask every backup holder for its consistent clock.
        let backups: BTreeSet<NodeId> = self.backup_owner.iter().flatten().copied().collect();
        if backups.is_empty() {
            // Partition owners died with nothing to recover from (e.g.
            // an unwarned failure in stage 1 took a serving node, which
            // only reliable machines host — already reported above — or
            // every backup was stripped by a concurrent failure).
            self.emit(JobEvent::Faulted {
                fault: JobFault::NoBackups,
            });
            return;
        }
        for b in &backups {
            let _ = ctx.send(*b, AgileMsg::BackupClockQuery);
        }
        self.pending = Some(Pending::RecoveryQuery {
            failed: requested,
            replies: BTreeMap::new(),
            expect: backups,
        });
    }

    fn on_backup_clock_info(&mut self, from: NodeId, min_clock: u64, ctx: &NodeCtx<AgileMsg>) {
        let (failed, target) = match self.pending.as_mut() {
            Some(Pending::RecoveryQuery {
                failed,
                replies,
                expect,
            }) => {
                if !expect.contains(&from) {
                    return;
                }
                replies.insert(from, min_clock);
                // Completion is judged against `expect`, not reply
                // counts: a backup stripped from `expect` after replying
                // must not wedge (or skew) the quorum.
                if expect.iter().all(|b| replies.contains_key(b)) {
                    let target = expect
                        .iter()
                        .filter_map(|b| replies.get(b))
                        .copied()
                        .min()
                        .unwrap_or(0);
                    (failed.clone(), target)
                } else {
                    return;
                }
            }
            _ => return,
        };
        self.pending = None;
        self.run_recovery(failed, target, ctx);
    }

    /// Phase 2 of failure recovery: new owners, rollback-aligned images
    /// from backups, epoch bump, worker restart.
    fn run_recovery(&mut self, failed: Vec<NodeId>, target: u64, ctx: &NodeCtx<AgileMsg>) {
        self.epoch += 1;
        // Recovery reassigns and reinstalls every partition from the
        // rolled-back backups; in-flight migrations are moot.
        self.migrations.clear();
        // Nodes whose own `NodesFailed` is still queued are members on
        // paper but corpses in practice: this recovery must not make
        // them owners or wait on them.
        let transient: Vec<NodeId> = self
            .transient()
            .into_iter()
            .filter(|n| !self.known_dead.contains(n))
            .collect();

        if transient.is_empty() {
            // All transient resources failed at once (the paper's "all
            // or most of the transient resources fail" case, Sec. 3.3):
            // the BackupPSs roll back to the last consistent state and
            // become the serving ParamServs; the reliable workers redo
            // the lost iterations. The job degenerates to stage 1.
            let old_stage = self.stage;
            self.active_hosts.clear();
            self.promote_backups_to_serving();
            self.stage = Stage::Stage1;
            if old_stage != Stage::Stage1 {
                self.emit(JobEvent::StageChanged {
                    from: old_stage,
                    to: Stage::Stage1,
                });
            }
        } else {
            // Reassign dead partitions to surviving transient nodes.
            let dead_partitions: Vec<PartitionId> = self
                .partition_owner
                .iter()
                .enumerate()
                .filter(|(_, o)| !self.members.contains_key(o) || self.known_dead.contains(o))
                .map(|(i, _)| PartitionId(i as u32))
                .collect();
            let fresh: Vec<NodeId> = transient
                .iter()
                .filter(|n| !self.active_hosts.contains(n))
                .copied()
                .collect();
            let mut fresh_iter = fresh.iter();
            for p in &dead_partitions {
                let i = p.0 as usize;
                let new_owner = fresh_iter.next().copied().or_else(|| {
                    self.active_hosts
                        .iter()
                        .filter(|n| !self.known_dead.contains(n))
                        .min_by_key(|n| self.owned_by(**n).len())
                        .copied()
                });
                match new_owner {
                    Some(n) => {
                        self.active_hosts.insert(n);
                        self.partition_owner[i] = n;
                    }
                    // No transient survivor can serve (every one is
                    // dead or unusable): fall back to the backup copy,
                    // or report the partition lost.
                    None => match self.backup_owner[i] {
                        Some(b) => {
                            self.partition_owner[i] = b;
                            self.backup_owner[i] = None;
                        }
                        None => self.emit(JobEvent::Faulted {
                            fault: JobFault::PartitionStateLost { partition: p.0 },
                        }),
                    },
                }
            }
        }

        // Data blocks of dead workers fall back.
        let workers = self.worker_nodes(self.stage);
        if let Some(a) = self.assignment.as_mut() {
            for v in &failed {
                a.remove_worker(*v, &workers);
            }
        }

        // Reset clocks: every worker resumes from the target. A corpse
        // registered here would pin the minimum at `target` forever.
        self.clock = ClockTable::new(self.cfg.slack);
        for w in &workers {
            if self.known_dead.contains(w) {
                continue;
            }
            self.clock.register_at(w.0, target);
        }
        self.last_min_broadcast = target;

        self.topo_version += 1;
        let topo = self.topology(self.stage);

        // Everything restarts from the recovered clock in the new epoch.
        self.broadcast(
            ctx,
            &AgileMsg::RestartFrom {
                clock: target,
                epoch: self.epoch,
            },
        );

        // Backups roll back to the target and ship recovery images.
        // This is sent BEFORE the reconfiguration so that a backup that
        // is itself being promoted to the serving owner (full transient
        // loss) rolls back while the partitions are still in its backup
        // store (per-sender FIFO guarantees the node processes this
        // first).
        let mut by_pair: BTreeMap<(NodeId, NodeId), Vec<PartitionId>> = BTreeMap::new();
        for p in self.layout.partitions() {
            let owner = self.partition_owner[p.0 as usize];
            let source = self.backup_owner[p.0 as usize].unwrap_or(owner);
            by_pair.entry((source, owner)).or_default().push(p);
        }
        for ((backup, owner), parts) in by_pair {
            let _ = ctx.send(
                backup,
                AgileMsg::RecoverPartitions {
                    partitions: parts,
                    new_owner: owner,
                    clock: target,
                },
            );
        }

        // Reconfigure with awaits: every serving owner re-installs all
        // its partitions from backup so serving state is exactly the
        // rolled-back backup state.
        self.pending_ready.clear();
        for n in self.members.keys().copied().collect::<Vec<_>>() {
            let serve = self.owned_by(n);
            let backup = self.backed_by(n);
            let blocks = self
                .assignment
                .as_ref()
                .map(|a| a.blocks_of(n))
                .unwrap_or_default();
            if !serve.is_empty() && !self.known_dead.contains(&n) {
                self.pending_ready.insert(n);
            }
            let assign = NodeAssignment {
                serve_partitions: serve.clone(),
                backup_partitions: backup,
                is_active_ps: self.stage.uses_backups() && self.active_hosts.contains(&n),
                data_blocks: blocks,
                await_installs: serve,
                topology: Arc::clone(&topo),
                resume_clock: target,
                epoch: self.epoch,
            };
            let _ = ctx.send(n, AgileMsg::Configure(Box::new(assign)));
        }
        self.broadcast(ctx, &AgileMsg::Topology(Arc::clone(&topo)));

        self.pending = Some(Pending::RecoveryInstall {
            failed,
            clock: target,
        });
        self.try_finish_pending(ctx);
    }

    // ------------------------------------------------------------------
    // Fault-tolerance helpers
    // ------------------------------------------------------------------

    /// Attempts in-job repair of a dead slice of the reliable tier:
    /// the victims' backup partitions re-replicate from their live
    /// serving owners onto surviving reliable nodes. Returns `false`
    /// without mutating anything when the loss is unrepairable — no
    /// reliable survivor, a victim held serving state or an in-flight
    /// migration, or some orphaned partition's serving owner is dead
    /// too (both copies gone). On success every victim (including any
    /// transient worker-only nodes reported in the same failure) is
    /// removed from the job and `ReliableRepaired` is emitted once the
    /// fills install.
    fn try_repair_reliable(
        &mut self,
        reliable_victims: &[NodeId],
        victims: &[NodeId],
        ctx: &NodeCtx<AgileMsg>,
    ) -> bool {
        let doomed = |n: &NodeId| victims.contains(n) || self.known_dead.contains(n);
        let survivors: Vec<NodeId> = self.reliable().into_iter().filter(|n| !doomed(n)).collect();
        if survivors.is_empty() {
            return false;
        }
        // Victims holding serving state (stage 1 ParamServs, or a
        // transient ActivePS dying in the same batch) or mid-migration
        // sources cannot be repaired by re-replication: the only
        // serving copy is gone or in flight from a corpse.
        if victims
            .iter()
            .any(|v| self.partition_owner.contains(v) || self.migrations.contains_key(v))
        {
            return false;
        }
        // Every orphaned backup partition needs a live serving owner to
        // re-replicate from.
        let orphaned: Vec<PartitionId> = reliable_victims
            .iter()
            .flat_map(|v| self.backed_by(*v))
            .collect();
        for p in &orphaned {
            let owner = self.partition_owner[p.0 as usize];
            if !self.members.contains_key(&owner) || doomed(&owner) {
                return false;
            }
        }

        // Repairable: drop the victims from the job.
        for v in victims {
            self.members.remove(v);
            self.clock.deregister(v.0);
        }
        self.join_order.retain(|n| !victims.contains(n));
        self.helloed.retain(|n| !victims.contains(n));
        self.active_hosts.retain(|n| !victims.contains(n));

        // Losing reliable nodes can only raise the transient:reliable
        // ratio, so the stage may flip 2→3 (never toward stage 1).
        let old_stage = self.stage;
        let new_stage = self.pick_stage();
        self.stage = new_stage;

        // Re-replicate each orphaned partition onto the least-backed
        // survivor (ties broken by node id for determinism).
        let mut by_pair: BTreeMap<(NodeId, NodeId), Vec<PartitionId>> = BTreeMap::new();
        for p in &orphaned {
            let Some(dst) = survivors
                .iter()
                .min_by_key(|n| (self.backed_by(**n).len(), n.0))
                .copied()
            else {
                // Unreachable: survivors checked non-empty above.
                return false;
            };
            let owner = self.partition_owner[p.0 as usize];
            self.backup_owner[p.0 as usize] = Some(dst);
            self.filling.insert(*p, (owner, dst));
            by_pair.entry((owner, dst)).or_default().push(*p);
        }
        // Ship the fills BEFORE the reconfiguration below: per-sender
        // FIFO makes each owner export its serving image (folding in
        // unpushed deltas) before it sees the new topology and starts
        // streaming incremental pushes to the fresh backup.
        for ((owner, dst), parts) in &by_pair {
            let _ = ctx.send(
                *owner,
                AgileMsg::ReplicateBackup {
                    partitions: parts.clone(),
                    to: *dst,
                },
            );
        }

        // Data blocks of dead workers fall back to survivors.
        let workers = self.worker_nodes(new_stage);
        if let Some(a) = self.assignment.as_mut() {
            for v in victims {
                a.remove_worker(*v, &workers);
            }
            a.rebalance(&workers);
        }
        let worker_set: BTreeSet<NodeId> = workers.iter().copied().collect();
        for n in self.members.keys() {
            if worker_set.contains(n) && !self.known_dead.contains(n) {
                self.clock.register_at(n.0, self.last_min_broadcast);
            } else {
                self.clock.deregister(n.0);
            }
        }

        // Reconfigure everyone. Fill destinations (and any still
        // outstanding migration destinations) gate their `Ready` on the
        // awaited installs.
        let mut awaits: BTreeMap<NodeId, Vec<PartitionId>> = BTreeMap::new();
        for ((_, dst), parts) in &by_pair {
            awaits
                .entry(*dst)
                .or_default()
                .extend(parts.iter().copied());
        }
        for batches in self.migrations.values() {
            for (dest, parts) in batches {
                awaits
                    .entry(*dest)
                    .or_default()
                    .extend(parts.iter().copied());
            }
        }
        self.topo_version += 1;
        let topo = self.topology(new_stage);
        let resume = self.last_min_broadcast;
        self.pending_ready = by_pair.keys().map(|(_, dst)| *dst).collect();
        for n in self.members.keys().copied().collect::<Vec<_>>() {
            let assign = NodeAssignment {
                serve_partitions: self.owned_by(n),
                backup_partitions: self.backed_by(n),
                is_active_ps: new_stage.uses_backups() && self.active_hosts.contains(&n),
                data_blocks: self
                    .assignment
                    .as_ref()
                    .map(|a| a.blocks_of(n))
                    .unwrap_or_default(),
                await_installs: awaits.get(&n).cloned().unwrap_or_default(),
                topology: Arc::clone(&topo),
                resume_clock: resume,
                epoch: self.epoch,
            };
            let _ = ctx.send(n, AgileMsg::Configure(Box::new(assign)));
        }
        self.broadcast(ctx, &AgileMsg::Topology(Arc::clone(&topo)));
        self.broadcast(ctx, &AgileMsg::Start);
        if old_stage != new_stage {
            self.emit(JobEvent::StageChanged {
                from: old_stage,
                to: new_stage,
            });
        }

        let partitions = orphaned.len() as u64;
        if self.pending_ready.is_empty() {
            self.emit(JobEvent::ReliableRepaired {
                nodes: reliable_victims.to_vec(),
                partitions,
            });
        } else {
            self.pending = Some(Pending::ReliableRepair {
                nodes: reliable_victims.to_vec(),
                partitions,
            });
        }
        self.maybe_broadcast_min(ctx);
        true
    }

    /// Promotes every BackupPS copy to serving owner (degeneration to
    /// stage 1 after losing the whole ActivePS tier). A partition with
    /// no backup keeps its current owner when that owner is still a
    /// live member, and is reported lost otherwise.
    fn promote_backups_to_serving(&mut self) {
        for i in 0..self.partition_owner.len() {
            match self.backup_owner[i] {
                Some(b) => {
                    self.partition_owner[i] = b;
                    self.backup_owner[i] = None;
                }
                None => {
                    if !self.members.contains_key(&self.partition_owner[i]) {
                        self.emit(JobEvent::Faulted {
                            fault: JobFault::PartitionStateLost {
                                partition: i as u32,
                            },
                        });
                    }
                }
            }
        }
    }

    /// Nodes died while an action is in flight: strip every expectation
    /// only the dead could satisfy, so the pending action completes and
    /// the queued `NodesFailed` gets to run instead of wedging forever.
    fn note_dead_during_pending(&mut self, dead: &[NodeId], ctx: &NodeCtx<AgileMsg>) {
        // Remember the corpses: the pending action (and any recovery it
        // triggers) must not hand them new partitions, wait on their
        // `Ready`, or count them in the clock barrier. Their own queued
        // `NodesFailed` clears the mark when it finally runs.
        self.known_dead.extend(dead.iter().copied());
        for d in dead {
            self.pending_ready.remove(d);
        }
        // A migration destination waiting on installs from a dead
        // source will never see them, so its `Ready` never comes; the
        // rollback recovery queued behind this action re-installs it.
        let stranded: Vec<NodeId> = dead
            .iter()
            .filter_map(|d| self.migrations.get(d))
            .flat_map(|batches| batches.iter().map(|(dest, _)| *dest))
            .collect();
        for n in stranded {
            self.pending_ready.remove(&n);
        }
        // A backup-fill destination waiting on a dead source's export
        // will never see it either; the queued `NodesFailed` will
        // report the partition lost and the session restarts.
        let stranded_fills: Vec<NodeId> = self
            .filling
            .values()
            .filter(|(src, _)| dead.contains(src))
            .map(|(_, dst)| *dst)
            .collect();
        for n in stranded_fills {
            self.pending_ready.remove(&n);
        }
        // Snapshot exports from a dead owner will never arrive.
        if let Some(snap) = self.snapshot.as_mut() {
            let owners = &self.partition_owner;
            snap.expect
                .retain(|p| !dead.contains(&owners[p.0 as usize]));
        }
        self.finish_snapshot_if_complete(ctx);

        // Deferred continuations: the match below holds a borrow of
        // `self.pending`, so whole-`self` calls run after it.
        enum Act {
            Progress,
            Finish,
            Recover { failed: Vec<NodeId>, target: u64 },
            Fault(JobFault),
        }
        let act = match self.pending.as_mut() {
            Some(Pending::StartJob) => {
                // The job has not started: drop the dead from the
                // roster and (re-)run the initial layout with the
                // survivors once their `Hello`s are all in.
                self.members.retain(|n, _| !dead.contains(n));
                self.join_order.retain(|n| !dead.contains(n));
                self.helloed.retain(|n| !dead.contains(n));
                for d in dead {
                    self.clock.deregister(d.0);
                }
                Act::Progress
            }
            Some(Pending::AddNodes {
                added,
                configured: false,
            }) => {
                // Integration has not run: dead added nodes simply
                // never join. Dead *existing* members that hold no
                // parameter state can be dropped too (their queued
                // `NodesFailed` becomes a no-op acknowledgement);
                // state-bearing ones must wait for the queued recovery.
                added.retain(|n| !dead.contains(n));
                let droppable: Vec<NodeId> = dead
                    .iter()
                    .filter(|d| {
                        !self.partition_owner.contains(d) && !self.migrations.contains_key(d)
                    })
                    .copied()
                    .collect();
                self.members.retain(|n, _| !droppable.contains(n));
                self.join_order.retain(|n| !droppable.contains(n));
                self.helloed.retain(|n| !droppable.contains(n));
                for d in &droppable {
                    self.clock.deregister(d.0);
                }
                Act::Progress
            }
            Some(Pending::RecoveryQuery {
                failed,
                replies,
                expect,
            }) => {
                expect.retain(|b| !dead.contains(b));
                if expect.is_empty() {
                    Act::Fault(JobFault::NoBackups)
                } else if expect.iter().all(|b| replies.contains_key(b)) {
                    let target = expect
                        .iter()
                        .filter_map(|b| replies.get(b))
                        .copied()
                        .min()
                        .unwrap_or(0);
                    Act::Recover {
                        failed: failed.clone(),
                        target,
                    }
                } else {
                    Act::Finish
                }
            }
            // Configured AddNodes, RecoveryInstall, or snapshot-only:
            // the stripped `pending_ready` may already be empty.
            _ => Act::Finish,
        };
        match act {
            Act::Progress => self.try_progress_membership(ctx),
            Act::Finish => self.try_finish_pending(ctx),
            Act::Recover { failed, target } => {
                self.pending = None;
                self.run_recovery(failed, target, ctx);
            }
            Act::Fault(fault) => {
                self.pending = None;
                self.emit(JobEvent::Faulted { fault });
                self.drain_queue(ctx);
            }
        }
    }
}
