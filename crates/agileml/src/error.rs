//! Typed failures for the driver-facing job API.
//!
//! The chaos harness (crates/agileml/tests/chaos.rs) asserts that a job
//! under injected faults either converges or fails with one of these
//! values — never a panic. Conditions the controller cannot recover from
//! (reliable-tier losses, missing backups) surface as a [`JobFault`]
//! inside [`crate::events::JobEvent::Faulted`] and are converted to
//! [`JobError::Fault`] by the waiting driver.

use std::fmt;

use proteus_simnet::NodeId;

/// An error returned by [`crate::job::AgileMlJob`] driver methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Configuration was rejected before launch.
    InvalidConfig(String),
    /// The controller node is gone; no command can be delivered.
    ControllerUnreachable(String),
    /// A driver-side wait elapsed without the expected event.
    Timeout {
        /// What the driver was waiting for.
        waiting_for: &'static str,
    },
    /// The controller declared the job unrecoverable.
    Fault(JobFault),
}

/// Unrecoverable conditions the controller reports instead of panicking.
///
/// These replace the former `assert!`/`expect` landmines on the
/// eviction/recovery paths: a job that hits one is *wedged by design*
/// (the paper assumes the reliable tier is never revoked and always
/// holds solution state), but the process stays alive and the driver
/// gets a typed answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFault {
    /// Reliable machines failed; solution state may be gone and recovery
    /// needs an external checkpoint (paper Sec. 3.3).
    ReliableNodesFailed {
        /// The failed reliable nodes.
        nodes: Vec<NodeId>,
    },
    /// An eviction warning named reliable machines; the market never
    /// revokes the reliable tier, so the controller refuses to drain
    /// solution state off of it.
    ReliableNodesEvicted {
        /// The reliable nodes named in the warning.
        nodes: Vec<NodeId>,
    },
    /// A partition has neither a surviving owner nor a backup copy.
    PartitionStateLost {
        /// The orphaned partition.
        partition: u32,
    },
    /// Recovery needed backups but none exist.
    NoBackups,
}

impl fmt::Display for JobFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFault::ReliableNodesFailed { nodes } => {
                write!(
                    f,
                    "reliable nodes failed (need external checkpoint): {nodes:?}"
                )
            }
            JobFault::ReliableNodesEvicted { nodes } => {
                write!(f, "eviction warning named reliable nodes: {nodes:?}")
            }
            JobFault::PartitionStateLost { partition } => {
                write!(
                    f,
                    "partition {partition} lost: no surviving owner or backup"
                )
            }
            JobFault::NoBackups => write!(f, "recovery needed backups but none exist"),
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            JobError::ControllerUnreachable(why) => write!(f, "controller unreachable: {why}"),
            JobError::Timeout { waiting_for } => write!(f, "timed out waiting for {waiting_for}"),
            JobError::Fault(fault) => write!(f, "job fault: {fault}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<String> for JobError {
    fn from(why: String) -> Self {
        JobError::InvalidConfig(why)
    }
}

/// Lets existing `Result<_, String>` call sites propagate a [`JobError`]
/// with `?`.
impl From<JobError> for String {
    fn from(e: JobError) -> Self {
        e.to_string()
    }
}

/// A protocol-shape violation: an expected message never appeared in a
/// batch of traffic (after tolerating interleaved or duplicated ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The message kind that was required.
    pub expected: &'static str,
    /// Debug rendering of what was actually observed.
    pub got: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {}, got {}", self.expected, self.got)
    }
}

impl std::error::Error for ProtocolError {}
