//! Observable job events and status, surfaced to the driver.

use proteus_simnet::NodeId;
use serde::{Deserialize, Serialize};

use crate::error::JobFault;
use crate::stage::Stage;

/// Events the controller emits to the driver's event channel as the job
/// runs — the raw material of the elasticity timeline (paper Fig. 16).
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// All initially expected nodes are ready and iteration began.
    Started {
        /// Nodes participating at start.
        nodes: usize,
    },
    /// The global minimum clock advanced (an "iteration" completed).
    ClockAdvanced {
        /// The new minimum clock.
        min: u64,
    },
    /// The controller switched stages.
    StageChanged {
        /// Previous stage.
        from: Stage,
        /// New stage.
        to: Stage,
    },
    /// Nodes were integrated into the computation.
    NodesAdded {
        /// The new nodes.
        nodes: Vec<NodeId>,
    },
    /// Nodes were drained and removed after an eviction warning.
    NodesEvicted {
        /// The removed nodes.
        nodes: Vec<NodeId>,
    },
    /// Nodes were proactively demoted on a forecast alert: their
    /// ActivePS partitions migrated off, but the nodes keep working.
    NodesPreDrained {
        /// The demoted nodes (still members, no longer serving).
        nodes: Vec<NodeId>,
        /// ActivePS partitions moved off the demoted nodes.
        partitions: u64,
    },
    /// Part of the reliable tier died (or drained on a warning) and the
    /// controller repaired it in-job: the victims' BackupPS partitions
    /// were re-replicated onto surviving reliable nodes, so no restart
    /// from an external checkpoint was needed.
    ReliableRepaired {
        /// The lost reliable nodes.
        nodes: Vec<NodeId>,
        /// Backup partitions re-replicated onto survivors.
        partitions: u64,
    },
    /// Nodes failed and rollback recovery ran.
    NodesFailedRecovered {
        /// The failed nodes.
        nodes: Vec<NodeId>,
        /// The consistent clock the job rolled back to.
        rolled_back_to: u64,
    },
    /// The controller hit an unrecoverable condition and reported it
    /// instead of panicking; waiting drivers surface it as
    /// [`crate::error::JobError::Fault`].
    Faulted {
        /// What went wrong.
        fault: JobFault,
    },
    /// A protocol trace line (`AGILE_DEBUG=1`). Routed through the event
    /// channel instead of stderr so traces land on the observability
    /// timeline with sim-time stamps rather than interleaving wall-clock
    /// terminal output.
    Trace {
        /// The trace message.
        msg: String,
    },
}

impl JobEvent {
    /// The observability mirror of this event: same facts, but with
    /// node lists reduced to counts and enums rendered to strings so the
    /// record is self-describing without this crate's types.
    pub fn to_obs(&self) -> proteus_obs::AgileEvent {
        use proteus_obs::AgileEvent as O;
        match self {
            JobEvent::Started { nodes } => O::Started {
                nodes: *nodes as u64,
            },
            JobEvent::ClockAdvanced { min } => O::ClockAdvanced { min: *min },
            JobEvent::StageChanged { from, to } => O::StageChanged {
                from: format!("{from:?}"),
                to: format!("{to:?}"),
            },
            JobEvent::NodesAdded { nodes } => O::NodesAdded {
                count: nodes.len() as u64,
            },
            JobEvent::NodesEvicted { nodes } => O::NodesEvicted {
                count: nodes.len() as u64,
            },
            JobEvent::NodesPreDrained { nodes, partitions } => O::NodesPreDrained {
                count: nodes.len() as u64,
                partitions: *partitions,
            },
            JobEvent::ReliableRepaired { nodes, partitions } => O::ReliableRepaired {
                count: nodes.len() as u64,
                partitions: *partitions,
            },
            JobEvent::NodesFailedRecovered {
                nodes,
                rolled_back_to,
            } => O::NodesFailedRecovered {
                count: nodes.len() as u64,
                rolled_back_to: *rolled_back_to,
            },
            JobEvent::Faulted { fault } => O::Faulted {
                fault: fault.to_string(),
            },
            JobEvent::Trace { msg } => O::Trace { msg: msg.clone() },
        }
    }
}

/// A point-in-time status snapshot of the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Current stage.
    pub stage: Stage,
    /// Reliable node count.
    pub reliable: usize,
    /// Transient node count.
    pub transient: usize,
    /// Number of nodes currently hosting an ActivePS (0 in stage 1).
    pub active_ps: usize,
    /// Number of live workers.
    pub workers: usize,
    /// Minimum completed clock across workers.
    pub min_clock: u64,
}
