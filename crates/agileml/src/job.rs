//! The driver-facing job handle.
//!
//! [`AgileMlJob`] owns the simulated cluster: it spawns the controller and
//! the machine nodes, forwards elasticity actions (add / evict / fail) to
//! the controller, and exposes model snapshots, objective evaluation, and
//! the job event stream. This is the API the Proteus driver (and every
//! test, example, and benchmark) uses to run elastic training.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver};
use proteus_mlapps::app::{MlApp, ParamReader};
use proteus_obs::{Event, Recorder};
use proteus_ps::{DenseVec, ParamKey};
use proteus_simnet::{Cluster, ClusterHandle, FaultPlan, FaultStats, NetStats, NodeClass, NodeId};

use crate::config::AgileConfig;
use crate::controller::run_controller;
use crate::error::JobError;
use crate::events::{JobEvent, JobStatus};
use crate::msg::{AgileMsg, Command};
use crate::node::run_node;
use crate::stage::Stage;

/// Default timeout for driver-side waits.
const WAIT: Duration = Duration::from_secs(60);

/// A point-in-time copy of the full model, plus the progress metadata a
/// restarted job needs to resume where the snapshot left off.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Every materialized parameter.
    pub params: BTreeMap<ParamKey, DenseVec>,
    /// The minimum worker clock when the snapshot was taken.
    pub clock: u64,
    /// The recovery epoch in force when the snapshot was taken.
    pub epoch: u64,
    /// The elasticity stage at snapshot time (informational: a restarted
    /// job re-picks its stage from the machines it actually gets).
    pub stage: Stage,
}

impl ModelSnapshot {
    /// A [`ParamReader`] over this snapshot, falling back to zeros of the
    /// app's declared dimension for unmaterialized keys.
    pub fn reader<'a, A: MlApp>(&'a self, app: &'a A) -> SnapshotReader<'a, A> {
        SnapshotReader { snap: self, app }
    }
}

/// Reader adapter over a [`ModelSnapshot`].
pub struct SnapshotReader<'a, A: MlApp> {
    snap: &'a ModelSnapshot,
    app: &'a A,
}

impl<'a, A: MlApp> ParamReader for SnapshotReader<'a, A> {
    fn get(&self, key: ParamKey) -> DenseVec {
        self.snap
            .params
            .get(&key)
            .cloned()
            .unwrap_or_else(|| DenseVec::zeros(self.app.value_dim(key)))
    }
}

/// A running elastic training job.
pub struct AgileMlJob<A: MlApp> {
    cluster: Cluster<AgileMsg>,
    handle: ClusterHandle<AgileMsg>,
    controller: NodeId,
    app: Arc<A>,
    dataset: Arc<Vec<A::Datum>>,
    cfg: AgileConfig,
    events: Receiver<JobEvent>,
    event_log: Vec<JobEvent>,
    obs: Option<Arc<Recorder>>,
    /// Worker machines spawned on the reliable tier (the controller host,
    /// also reliable, is tracked separately in `controller`).
    reliable_machines: Vec<NodeId>,
}

impl<A: MlApp> AgileMlJob<A> {
    /// Launches a job on `reliable` + `transient` fresh machines and
    /// blocks until training has started.
    ///
    /// # Errors
    ///
    /// Fails on invalid configuration, zero reliable machines, or start
    /// timeout.
    pub fn launch(
        app: A,
        dataset: Vec<A::Datum>,
        cfg: AgileConfig,
        reliable: usize,
        transient: usize,
    ) -> Result<Self, JobError> {
        Self::launch_with_model(app, dataset, cfg, reliable, transient, None)
    }

    /// Like [`AgileMlJob::launch`] but installs a [`FaultPlan`] at the
    /// cluster boundary *before* any node is spawned, so even the very
    /// first `Hello` traffic crosses the chaos layer.
    pub fn launch_with_faults(
        app: A,
        dataset: Vec<A::Datum>,
        cfg: AgileConfig,
        reliable: usize,
        transient: usize,
        faults: FaultPlan<AgileMsg>,
    ) -> Result<Self, JobError> {
        Self::launch_inner(app, dataset, cfg, reliable, transient, None, Some(faults))
    }

    /// Like [`AgileMlJob::launch`] but restores parameter state from a
    /// checkpointed [`ModelSnapshot`] instead of random initialization —
    /// the paper's Sec. 3.3 checkpointing of reliable resources, which
    /// in stage 3 costs no training throughput because no workers run on
    /// those machines.
    pub fn launch_from_checkpoint(
        app: A,
        dataset: Vec<A::Datum>,
        cfg: AgileConfig,
        reliable: usize,
        transient: usize,
        checkpoint: ModelSnapshot,
    ) -> Result<Self, JobError> {
        Self::launch_with_model(app, dataset, cfg, reliable, transient, Some(checkpoint))
    }

    /// [`AgileMlJob::launch_from_checkpoint`] with a [`FaultPlan`] installed
    /// before any node spawns — a restarted job re-enters the same hostile
    /// market it was restarted out of.
    pub fn launch_from_checkpoint_with_faults(
        app: A,
        dataset: Vec<A::Datum>,
        cfg: AgileConfig,
        reliable: usize,
        transient: usize,
        checkpoint: ModelSnapshot,
        faults: FaultPlan<AgileMsg>,
    ) -> Result<Self, JobError> {
        Self::launch_inner(
            app,
            dataset,
            cfg,
            reliable,
            transient,
            Some(checkpoint),
            Some(faults),
        )
    }

    fn launch_with_model(
        app: A,
        dataset: Vec<A::Datum>,
        cfg: AgileConfig,
        reliable: usize,
        transient: usize,
        checkpoint: Option<ModelSnapshot>,
    ) -> Result<Self, JobError> {
        Self::launch_inner(app, dataset, cfg, reliable, transient, checkpoint, None)
    }

    fn launch_inner(
        app: A,
        dataset: Vec<A::Datum>,
        cfg: AgileConfig,
        reliable: usize,
        transient: usize,
        checkpoint: Option<ModelSnapshot>,
        faults: Option<FaultPlan<AgileMsg>>,
    ) -> Result<Self, JobError> {
        cfg.validate().map_err(JobError::InvalidConfig)?;
        if reliable == 0 {
            return Err(JobError::InvalidConfig(
                "AgileML needs at least one reliable machine".into(),
            ));
        }
        let app = Arc::new(app);
        let dataset = Arc::new(dataset);
        let mut cluster: Cluster<AgileMsg> = Cluster::new();
        if let Some(plan) = faults {
            cluster.set_faults(plan);
        }
        let (ev_tx, ev_rx) = unbounded();

        // The controller runs on reliable infrastructure (node 0).
        let controller = {
            let app = Arc::clone(&app);
            let len = dataset.len();
            cluster.spawn(NodeClass::Reliable, move |ctx| {
                run_controller(ctx, cfg, app, len, ev_tx, checkpoint)
            })
        };

        let mut job = AgileMlJob {
            handle: cluster.handle(),
            cluster,
            controller,
            app,
            dataset,
            cfg,
            events: ev_rx,
            event_log: Vec::new(),
            obs: None,
            reliable_machines: Vec::new(),
        };

        let mut nodes = job.spawn_machines(NodeClass::Reliable, reliable);
        nodes.extend(job.spawn_machines(NodeClass::Transient, transient));
        job.send_cmd(Command::AddNodes { nodes })?;
        job.wait_for_event(|e| matches!(e, JobEvent::Started { .. }), WAIT, "job start")?;
        Ok(job)
    }

    fn spawn_machines(&mut self, class: NodeClass, count: usize) -> Vec<(NodeId, NodeClass)> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let app = Arc::clone(&self.app);
            let dataset = Arc::clone(&self.dataset);
            let cfg = self.cfg;
            let controller = self.controller;
            let id = self.cluster.spawn(class, move |ctx| {
                run_node(ctx, controller, app, dataset, cfg)
            });
            if class == NodeClass::Reliable {
                self.reliable_machines.push(id);
            }
            out.push((id, class));
        }
        out
    }

    /// Worker machines currently spawned on the reliable tier. Includes
    /// machines that have since died or been evicted — the list records
    /// what was *provisioned* reliable, not what is still alive.
    pub fn reliable_machines(&self) -> &[NodeId] {
        &self.reliable_machines
    }

    /// The node id hosting the controller (reliable tier by construction).
    pub fn controller_node(&self) -> NodeId {
        self.controller
    }

    /// Kills `nodes` at the cluster layer *without* notifying the
    /// controller — models abrupt machine loss (host crash, spot-market
    /// reclaim of "reliable" capacity) where no failure report ever
    /// arrives. Safe to include the controller host itself.
    pub fn kill_silent(&self, nodes: &[NodeId]) {
        for n in nodes {
            self.cluster.kill(*n);
        }
    }

    /// Tears the whole cluster down without the graceful `Shutdown`
    /// round-trip — the only exit path when the controller host itself is
    /// dead. Consumes the job; the caller relaunches from a checkpoint.
    pub fn abort(self) {
        self.cluster.clear_faults();
        self.cluster.abort_all();
    }

    /// Aborts the (possibly headless) old cluster and relaunches the job
    /// in a fresh one, resuming model, clock, and epoch from `checkpoint`
    /// — or from scratch when `None` (no checkpoint was ever taken).
    ///
    /// App, dataset, config, and recorder carry over; the event log
    /// restarts empty because its events belong to the dead incarnation.
    /// This is the session-level recovery path for losing the tier that
    /// "never fails": when even the controller host is gone, no in-job
    /// protocol can help, and the only option is a new job that starts
    /// where the last durable checkpoint left off.
    pub fn relaunch_from_checkpoint(
        &mut self,
        reliable: usize,
        transient: usize,
        checkpoint: Option<ModelSnapshot>,
    ) -> Result<(), JobError> {
        if reliable == 0 {
            return Err(JobError::InvalidConfig(
                "AgileML needs at least one reliable machine".into(),
            ));
        }
        let old = std::mem::replace(&mut self.cluster, Cluster::new());
        old.clear_faults();
        old.abort_all();
        if let Some(rec) = &self.obs {
            self.cluster.set_recorder(Arc::clone(rec));
        }
        let (ev_tx, ev_rx) = unbounded();
        let cfg = self.cfg;
        let app = Arc::clone(&self.app);
        let len = self.dataset.len();
        self.controller = self.cluster.spawn(NodeClass::Reliable, move |ctx| {
            run_controller(ctx, cfg, app, len, ev_tx, checkpoint)
        });
        self.handle = self.cluster.handle();
        self.events = ev_rx;
        self.event_log.clear();
        self.reliable_machines.clear();
        let mut nodes = self.spawn_machines(NodeClass::Reliable, reliable);
        nodes.extend(self.spawn_machines(NodeClass::Transient, transient));
        self.send_cmd(Command::AddNodes { nodes })?;
        self.wait_for_event(
            |e| matches!(e, JobEvent::Started { .. }),
            WAIT,
            "job restart",
        )
    }

    fn send_cmd(&self, cmd: Command) -> Result<(), JobError> {
        self.handle
            .send_as_harness(self.controller, AgileMsg::Cmd(cmd))
            .map_err(|e| JobError::ControllerUnreachable(e.to_string()))
    }

    /// Adds `count` machines of `class` to the running job; blocks until
    /// the controller integrated them. Returns the new node ids.
    pub fn add_machines(
        &mut self,
        class: NodeClass,
        count: usize,
    ) -> Result<Vec<NodeId>, JobError> {
        let nodes = self.spawn_machines(class, count);
        let ids: Vec<NodeId> = nodes.iter().map(|(n, _)| *n).collect();
        self.send_cmd(Command::AddNodes { nodes })?;
        let want = ids.clone();
        self.wait_for_event(
            move |e| matches!(e, JobEvent::NodesAdded { nodes } if *nodes == want),
            WAIT,
            "node addition",
        )?;
        Ok(ids)
    }

    /// Delivers an eviction warning for `nodes` and blocks until the
    /// controller drained and removed them (the machines shut themselves
    /// down after draining, like spot instances racing their two-minute
    /// warning).
    pub fn evict_with_warning(&mut self, nodes: &[NodeId]) -> Result<(), JobError> {
        self.send_cmd(Command::EvictWarned {
            nodes: nodes.to_vec(),
        })?;
        let want: Vec<NodeId> = nodes.to_vec();
        self.wait_for_event(
            // The controller reports the subset it actually evicted
            // (unknown nodes are filtered; an empty report means the
            // whole request was a no-op).
            move |e| {
                matches!(e, JobEvent::NodesEvicted { nodes }
                if nodes.iter().all(|n| want.contains(n)))
            },
            WAIT,
            "eviction drain",
        )
        // No kill here: the victims drain (final backup pushes,
        // partition migrations) and then stop themselves on the
        // controller's `Stop`, which is FIFO-ordered after the drain
        // orders — exactly the work the two-minute warning window
        // exists for. Killing eagerly could destroy a migration still
        // sitting in a victim's mailbox. Abrupt revocation (warning too
        // late to drain) is modelled by [`AgileMlJob::fail_nodes`].
    }

    /// Proactively demotes `nodes` on a preemption forecast: their
    /// ActivePS partitions migrate to safer transient hosts (or drain to
    /// the BackupPS copies) while the nodes keep working. Returns once
    /// the controller acknowledges the demotion. A wrong forecast costs
    /// only the migration — membership, clocks, and committed work are
    /// untouched, so the job's trajectory is unchanged.
    pub fn pre_drain(&mut self, nodes: &[NodeId]) -> Result<(), JobError> {
        self.send_cmd(Command::PreDrain {
            nodes: nodes.to_vec(),
        })?;
        let want: Vec<NodeId> = nodes.to_vec();
        self.wait_for_event(
            // The controller reports the subset it actually demoted
            // (reliable / unknown nodes are filtered out).
            move |e| {
                matches!(e, JobEvent::NodesPreDrained { nodes, .. }
                if nodes.iter().all(|n| want.contains(n)))
            },
            WAIT,
            "pre-drain demotion",
        )
    }

    /// Delivers a provider-style eviction warning to `nodes` through the
    /// simnet control channel **without** telling the controller directly:
    /// each node relays the warning as an `EvictionNotice`, which is how a
    /// real spot instance's two-minute notice reaches the controller. The
    /// call does not wait for the drain — chaos harnesses race it against
    /// kills (warning-then-crash) or drop the notices entirely
    /// (warning-with-no-eviction).
    pub fn warn_only(&self, nodes: &[NodeId], deadline_ms: u64) -> Result<(), JobError> {
        for n in nodes {
            self.cluster
                .revoke(*n, deadline_ms)
                .map_err(|e| JobError::ControllerUnreachable(e.to_string()))?;
        }
        Ok(())
    }

    /// A cloneable handle to the underlying cluster — chaos harnesses run
    /// a background thread over it that periodically flushes delayed
    /// messages so a held-back message can never deadlock a driver wait.
    pub fn cluster_handle(&self) -> ClusterHandle<AgileMsg> {
        self.handle.clone()
    }

    /// Kills `nodes` abruptly (no warning) and blocks until rollback
    /// recovery completes. Returns the clock the job rolled back to.
    pub fn fail_nodes(&mut self, nodes: &[NodeId]) -> Result<u64, JobError> {
        for n in nodes {
            self.cluster.kill(*n);
        }
        self.send_cmd(Command::NodesFailed {
            nodes: nodes.to_vec(),
        })?;
        let want: Vec<NodeId> = nodes.to_vec();
        let mut rolled = 0;
        self.wait_for_event(
            |e| match e {
                JobEvent::NodesFailedRecovered {
                    nodes,
                    rolled_back_to,
                } if *nodes == want => {
                    rolled = *rolled_back_to;
                    true
                }
                _ => false,
            },
            WAIT,
            "failure recovery",
        )?;
        Ok(rolled)
    }

    /// Kills reliable-tier `nodes` abruptly and blocks until the
    /// controller either repairs the loss in-job (re-replicating the
    /// dead nodes' BackupPS partitions onto surviving reliable machines)
    /// or declares it unrepairable with a typed fault. Returns the
    /// number of re-replicated partitions on repair.
    /// `Err(JobError::Fault(_))` means no in-job protocol can save this
    /// incarnation — the caller restarts from a durable checkpoint.
    pub fn fail_reliable_nodes(&mut self, nodes: &[NodeId]) -> Result<u64, JobError> {
        for n in nodes {
            self.cluster.kill(*n);
        }
        self.send_cmd(Command::NodesFailed {
            nodes: nodes.to_vec(),
        })?;
        let want: Vec<NodeId> = nodes.to_vec();
        let mut repaired = 0;
        self.wait_for_event(
            |e| match e {
                JobEvent::ReliableRepaired { nodes, partitions }
                    if nodes.iter().any(|n| want.contains(n)) =>
                {
                    repaired = *partitions;
                    true
                }
                // A report that named no reliable machines falls through
                // to ordinary rollback recovery.
                JobEvent::NodesFailedRecovered { nodes, .. } if *nodes == want => true,
                _ => false,
            },
            WAIT,
            "reliable repair",
        )?;
        Ok(repaired)
    }

    /// Like [`AgileMlJob::fail_nodes`] but returns immediately after the
    /// kill + report, without waiting for recovery — chaos harnesses use
    /// it to crash more machines while a rollback is already in flight.
    pub fn fail_nodes_async(&mut self, nodes: &[NodeId]) -> Result<(), JobError> {
        for n in nodes {
            self.cluster.kill(*n);
        }
        self.send_cmd(Command::NodesFailed {
            nodes: nodes.to_vec(),
        })
    }

    /// Blocks until a job event matching `pred` arrives; `waiting_for`
    /// labels the timeout error. Chaos harnesses use this to await the
    /// out-of-band completions of [`AgileMlJob::warn_only`] and
    /// [`AgileMlJob::fail_nodes_async`].
    pub fn wait_event(
        &mut self,
        mut pred: impl FnMut(&JobEvent) -> bool,
        timeout: Duration,
        waiting_for: &'static str,
    ) -> Result<(), JobError> {
        // The event may already have been drained into the log by an
        // earlier `events()` / wait call.
        if self.event_log.iter().any(&mut pred) {
            return Ok(());
        }
        self.wait_for_event(pred, timeout, waiting_for)
    }

    /// Blocks until the global minimum clock reaches `clock`.
    pub fn wait_clock(&mut self, clock: u64) -> Result<(), JobError> {
        self.wait_clock_for(clock, WAIT)
    }

    /// Like [`AgileMlJob::wait_clock`] with an explicit timeout — chaos
    /// harnesses poll with short deadlines between delayed-message
    /// flushes.
    pub fn wait_clock_for(&mut self, clock: u64, timeout: Duration) -> Result<(), JobError> {
        if self
            .event_log
            .iter()
            .any(|e| matches!(e, JobEvent::ClockAdvanced { min } if *min >= clock))
        {
            return Ok(());
        }
        self.wait_for_event(
            |e| matches!(e, JobEvent::ClockAdvanced { min } if *min >= clock),
            timeout,
            "clock advance",
        )
    }

    /// Fetches a full model snapshot from the serving parameter servers.
    pub fn snapshot(&self) -> Result<ModelSnapshot, JobError> {
        let (tx, rx) = bounded(1);
        self.send_cmd(Command::Snapshot { reply: tx })?;
        rx.recv_timeout(WAIT).map_err(|_| JobError::Timeout {
            waiting_for: "model snapshot",
        })
    }

    /// The training objective of the current model over `data`.
    pub fn objective(&self, data: &[A::Datum]) -> Result<f64, JobError> {
        let snap = self.snapshot()?;
        Ok(self.app.objective(data, &snap.reader(self.app.as_ref())))
    }

    /// Controller status (stage, counts, clock).
    pub fn status(&self) -> Result<JobStatus, JobError> {
        let (tx, rx) = bounded(1);
        self.send_cmd(Command::Status { reply: tx })?;
        rx.recv_timeout(WAIT).map_err(|_| JobError::Timeout {
            waiting_for: "controller status",
        })
    }

    /// Installs (or replaces) the seed-deterministic fault plan applied
    /// to every subsequently delivered message.
    pub fn set_faults(&self, plan: FaultPlan<AgileMsg>) {
        self.cluster.set_faults(plan);
    }

    /// Removes the fault plan, first releasing any held-back messages.
    pub fn clear_faults(&self) {
        self.cluster.clear_faults();
    }

    /// Releases every delayed message currently held by the fault layer
    /// (breaks artificial quiescence when a held message is the only
    /// traffic left); returns how many were released.
    pub fn flush_delayed(&self) -> usize {
        self.cluster.flush_delayed()
    }

    /// Counts of faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.cluster.fault_stats()
    }

    /// Attaches an observability recorder: future (and already-logged)
    /// job events are mirrored onto its timeline as `agile.*` records,
    /// and the cluster's fault layer mirrors injected message faults
    /// into its `simnet.msg.*` counters. Works before or after
    /// `set_faults` — the cluster retrofits the live layer.
    pub fn attach_recorder(&mut self, rec: Arc<Recorder>) {
        self.cluster.set_recorder(Arc::clone(&rec));
        for e in &self.event_log {
            rec.record_now(Event::Agile(e.to_obs()));
        }
        self.obs = Some(rec);
    }

    /// Logs a drained event, mirroring it to the recorder (stamped with
    /// the recorder's current sim clock) when one is attached.
    fn log_event(&mut self, e: JobEvent) {
        if let Some(rec) = self.obs.as_deref() {
            rec.record_now(Event::Agile(e.to_obs()));
        }
        self.event_log.push(e);
    }

    /// Every job event observed so far (drains the channel).
    pub fn events(&mut self) -> &[JobEvent] {
        while let Ok(e) = self.events.try_recv() {
            self.log_event(e);
        }
        &self.event_log
    }

    /// The application under training.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The training dataset.
    pub fn dataset(&self) -> &[A::Datum] {
        &self.dataset
    }

    /// Delivered-message counts per (sender, receiver) pair — lets tests
    /// assert traffic-direction properties (e.g. backup streams flow
    /// toward reliable machines only).
    pub fn traffic_matrix(&self) -> Vec<((NodeId, NodeId), u64)> {
        self.cluster.traffic_matrix()
    }

    /// Messages delivered from `from` to `to`.
    pub fn traffic_between(&self, from: NodeId, to: NodeId) -> u64 {
        self.cluster.traffic_between(from, to)
    }

    /// Aggregate delivered/dropped counters for the whole cluster. Both
    /// simnet cores account identically (see
    /// `proteus_simnet::event_core`), so sessions can report these
    /// regardless of which core ran the job.
    pub fn net_stats(&self) -> NetStats {
        self.cluster.stats()
    }

    /// Stops every node and tears the cluster down.
    pub fn shutdown(self) -> Result<(), JobError> {
        // Held-back (delayed) messages must not strand a drain order.
        self.cluster.clear_faults();
        let (tx, rx) = bounded(1);
        self.send_cmd(Command::Shutdown { reply: tx })?;
        rx.recv_timeout(WAIT).map_err(|_| JobError::Timeout {
            waiting_for: "shutdown acknowledgement",
        })?;
        // Kill-then-join rather than a bare join: a victim holding out
        // for a relay that will never arrive (its migration source died
        // unwarned) must not hang teardown forever.
        self.cluster.abort_all();
        Ok(())
    }

    /// Waits until an event matching `pred` arrives (events seen along
    /// the way are logged). A [`JobEvent::Faulted`] arriving mid-wait
    /// aborts the wait with the typed fault: the controller has declared
    /// the thing being waited for unreachable.
    fn wait_for_event(
        &mut self,
        mut pred: impl FnMut(&JobEvent) -> bool,
        timeout: Duration,
        waiting_for: &'static str,
    ) -> Result<(), JobError> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(JobError::Timeout { waiting_for });
            }
            match self.events.recv_timeout(deadline - now) {
                Ok(e) => {
                    let hit = pred(&e);
                    let fault = match &e {
                        JobEvent::Faulted { fault } if !hit => Some(fault.clone()),
                        _ => None,
                    };
                    self.log_event(e);
                    if hit {
                        return Ok(());
                    }
                    if let Some(fault) = fault {
                        return Err(JobError::Fault(fault));
                    }
                }
                Err(_) => return Err(JobError::Timeout { waiting_for }),
            }
        }
    }
}
