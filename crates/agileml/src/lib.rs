//! AgileML — the paper's elastic parameter-server framework (Sec. 3).
//!
//! AgileML organizes machines into **tiers of reliability** and deploys
//! different functional components to different tiers so that ML training
//! can exploit cheap transient machines without ever risking solution
//! state:
//!
//! * **Stage 1** — parameter servers (`ParamServ`) only on reliable
//!   machines; transient machines run only workers. Safe but the few
//!   reliable machines bottleneck at high transient:reliable ratios.
//! * **Stage 2** — an **ActivePS** primary runs on transient machines
//!   (sharded, serving all reads/updates) and streams coalesced updates in
//!   the background to a **BackupPS** hot standby on reliable machines.
//! * **Stage 3** — additionally removes workers from reliable machines,
//!   whose background backup traffic otherwise turns those workers into
//!   stragglers (beyond ~15:1 ratios).
//!
//! The [`ElasticityController`](controller) tracks membership, assigns
//! input-data blocks to workers, picks the stage from the
//! transient:reliable ratio, and orchestrates bulk scale-up, warned
//! evictions (drain-to-backup within the warning window), and failures
//! (online rollback to the last backup-consistent clock).
//!
//! Everything runs for real over [`proteus_simnet`]: one thread per
//! simulated machine, message passing only, faults injected by the
//! harness. The entry point is [`job::AgileMlJob`].

// Controller/node/topology logic must report faults through the event
// channel, never panic; any retained expect documents a real invariant
// at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod controller;
pub mod error;
pub mod events;
pub mod job;
pub mod msg;
pub mod node;
pub mod server;
pub mod stage;
pub mod topology;
pub mod worker;

pub use config::AgileConfig;
pub use error::{JobError, JobFault, ProtocolError};
pub use events::JobEvent;
pub use job::{AgileMlJob, ModelSnapshot};
pub use stage::Stage;
pub use topology::Topology;
pub use worker::find_read_req;
