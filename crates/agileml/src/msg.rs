//! The message vocabulary of the AgileML protocol.
//!
//! One enum covers the control plane (membership, topology, clocks,
//! elasticity orchestration), the data plane (parameter reads/updates),
//! the active→backup streaming channel, and harness commands to the
//! elasticity controller.

use std::sync::Arc;

use crossbeam::channel::Sender;
use proteus_ps::{DenseVec, KeySet, PartitionId};
use proteus_simnet::{NodeClass, NodeId};

use crate::events::JobStatus;
use crate::job::ModelSnapshot;
use crate::topology::{BlockId, Topology};

/// `(key, value)` pairs on the wire — an [`Arc`]-backed shared buffer,
/// so every message clone (simnet hops, fault-injected duplicates,
/// delayed redelivery) bumps a reference count instead of deep-copying
/// the payload.
pub type Values = proteus_ps::Values<DenseVec>;

/// Everything that flows between AgileML nodes.
#[derive(Debug, Clone)]
pub enum AgileMsg {
    // ------------------------------------------------------------------
    // Membership & configuration (controller ↔ nodes)
    // ------------------------------------------------------------------
    /// A freshly booted node announces itself to the controller.
    Hello {
        /// The node's reliability class.
        class: NodeClass,
    },
    /// Controller → node: your current duties.
    Configure(Box<NodeAssignment>),
    /// Controller → everyone: a new topology snapshot.
    Topology(Arc<Topology>),
    /// Node → controller: configuration applied, data loaded, partitions
    /// installed; ready to serve/compute.
    Ready,
    /// Controller → everyone: begin (or resume) iterating.
    Start,
    /// Controller → node: exit the behavior loop (end of job).
    Stop,
    /// Node → controller: the provider delivered an eviction warning to
    /// this node (simnet `Control::EvictionWarning`). The controller
    /// treats it like a driver-issued [`Command::EvictWarned`] so warned
    /// nodes drain even when no driver relays the warning.
    EvictionNotice {
        /// Milliseconds the provider granted before termination.
        deadline_ms: u64,
    },

    // ------------------------------------------------------------------
    // Clocks
    // ------------------------------------------------------------------
    /// Worker → controller: finished iteration `clock`.
    ClockDone {
        /// The completed clock.
        clock: u64,
        /// The sender's recovery epoch; stale-epoch reports are dropped.
        epoch: u64,
    },
    /// Controller → everyone: the new minimum completed clock. Workers
    /// gate on it (SSP); ActivePSs use its advance as the push trigger.
    GlobalClock {
        /// Minimum clock across live workers.
        min: u64,
        /// Current recovery epoch; stale broadcasts are ignored.
        epoch: u64,
    },

    // ------------------------------------------------------------------
    // Data plane (worker ↔ serving PS)
    // ------------------------------------------------------------------
    /// Read a set of keys (compressed into strided runs; the per-owner
    /// key union under the modulo layout is near-arithmetic, so this is
    /// an O(runs) payload for an O(keys) request).
    ReadReq {
        /// Correlates the response with the request.
        token: u64,
        /// Keys to fetch.
        keys: KeySet,
    },
    /// Values for a `ReadReq` (missing keys omitted).
    ReadResp {
        /// Echo of the request token.
        token: u64,
        /// Fetched values.
        values: Values,
    },
    /// Apply coalesced updates to one partition.
    UpdateBatch {
        /// Destination partition.
        partition: PartitionId,
        /// Sender's clock at flush time.
        clock: u64,
        /// The sender's recovery epoch; stale-epoch batches are dropped
        /// so rolled-back iterations are not double-applied on redo.
        epoch: u64,
        /// Coalesced `(key, delta)` pairs.
        updates: Values,
    },

    // ------------------------------------------------------------------
    // Active → backup streaming, migration, recovery
    // ------------------------------------------------------------------
    /// ActivePS → BackupPS: coalesced deltas since the previous push.
    BackupPush {
        /// Partition the deltas belong to.
        partition: PartitionId,
        /// The global clock this push is aligned to.
        clock: u64,
        /// Coalesced deltas.
        deltas: Values,
        /// Final push before the sender ceases operation (paper's
        /// end-of-life flag).
        end_of_life: bool,
    },
    /// Install a full partition image (initialization, migration target,
    /// or recovery from backup).
    InstallPartition {
        /// The partition.
        partition: PartitionId,
        /// Its complete `(key, value)` contents.
        image: Values,
        /// Clock the image is consistent with.
        clock: u64,
    },
    /// Controller → current owner: send `partitions` to `to` (scale-up
    /// placement or pre-eviction migration). The owner flushes pending
    /// backup deltas first, then ships images, then forwards traffic
    /// until the topology flips.
    MigratePartitions {
        /// New owner.
        to: NodeId,
        /// Partitions to hand over.
        partitions: Vec<PartitionId>,
        /// Keep the handed-over state locally as a backup copy (used when
        /// a reliable ParamServ becomes the BackupPS of the partitions it
        /// gives to a new ActivePS in the stage 1→2 transition).
        retain_as_backup: bool,
    },
    /// Controller → evicted ActivePS: push all remaining deltas to the
    /// backups with the end-of-life flag and stop serving.
    DrainToBackup,
    /// Controller → surviving ActivePS after a failure: roll local state
    /// back to the last backup-consistent push boundary.
    RollbackDirty,
    /// Controller → BackupPS: roll partition states back to `clock` and
    /// send recovery images for `partitions` to `new_owner`.
    RecoverPartitions {
        /// Partitions to recover.
        partitions: Vec<PartitionId>,
        /// The new serving owner to send images to.
        new_owner: NodeId,
        /// The consistent clock to roll back to.
        clock: u64,
    },
    /// Controller → everyone after failure recovery: clear worker caches,
    /// resume from `clock`, and enter the new epoch.
    RestartFrom {
        /// The recovered consistent clock.
        clock: u64,
        /// The new recovery epoch.
        epoch: u64,
    },
    /// Controller → serving owner: ship full images of `partitions` to
    /// `to`, which becomes their fresh BackupPS (reliable-tier repair
    /// after a backup holder died). The owner folds its unpushed dirty
    /// deltas into the shipped image and resets its dirty tracking for
    /// those partitions, so subsequent backup pushes continue from the
    /// shipped baseline without double-applying.
    ReplicateBackup {
        /// Partitions to re-replicate.
        partitions: Vec<PartitionId>,
        /// The new backup owner.
        to: NodeId,
    },
    /// Controller → BackupPS: report the minimum clock to which your
    /// backed-up partitions are consistent (phase one of recovery).
    BackupClockQuery,
    /// BackupPS → controller: reply to [`AgileMsg::BackupClockQuery`].
    BackupClockInfo {
        /// Minimum last-push clock across backed-up partitions, or the
        /// current global clock when the node backs up nothing.
        min_clock: u64,
    },
    /// Request a serving-side image of `partition`; the owner replies
    /// with [`AgileMsg::InstallPartition`] to the sender (snapshots).
    ExportPartition {
        /// The partition to export.
        partition: PartitionId,
    },

    // ------------------------------------------------------------------
    // Harness interface
    // ------------------------------------------------------------------
    /// A command from the job driver (BidBrain or a test harness).
    Cmd(Command),
}

/// Controller → node: full description of the node's duties.
#[derive(Debug, Clone)]
pub struct NodeAssignment {
    /// Serve these partitions as the primary (`ParamServ` in stage 1,
    /// `ActivePS` in stages 2–3). Empty when the node serves nothing.
    pub serve_partitions: Vec<PartitionId>,
    /// Hold backup copies of these partitions (reliable nodes, stages
    /// 2–3).
    pub backup_partitions: Vec<PartitionId>,
    /// Whether backup streaming is expected from this node's served
    /// partitions (i.e. the node is an ActivePS rather than a ParamServ).
    pub is_active_ps: bool,
    /// Input-data blocks this node's worker processes; empty disables the
    /// worker (stage 3 reliable nodes, or pure server nodes).
    pub data_blocks: Vec<BlockId>,
    /// Partitions whose images will arrive via
    /// [`AgileMsg::InstallPartition`]; the node reports `Ready` only after
    /// all of them are installed.
    pub await_installs: Vec<PartitionId>,
    /// The topology snapshot current at assignment time.
    pub topology: Arc<Topology>,
    /// The worker clock to resume from (applied on this node's first
    /// configuration only; later reconfigurations keep the local clock).
    pub resume_clock: u64,
    /// The recovery epoch in force.
    pub epoch: u64,
}

/// Commands the harness/driver sends to the elasticity controller.
#[derive(Debug, Clone)]
pub enum Command {
    /// Integrate freshly spawned nodes (they will also send `Hello`).
    AddNodes {
        /// `(node, class)` pairs, already spawned in the cluster.
        nodes: Vec<(NodeId, NodeClass)>,
    },
    /// The provider issued an eviction warning for these nodes; drain and
    /// reconfigure within the warning window.
    EvictWarned {
        /// Doomed nodes.
        nodes: Vec<NodeId>,
    },
    /// The preemption forecaster expects these nodes to be evicted soon
    /// (no provider warning yet): demote their ActivePS partitions to
    /// safer hosts but keep the nodes working. A wrong forecast costs
    /// only the migration; the nodes stay members either way.
    PreDrain {
        /// Nodes forecast to disappear.
        nodes: Vec<NodeId>,
    },
    /// These nodes failed without (sufficient) warning and are already
    /// dead; run rollback recovery.
    NodesFailed {
        /// Failed nodes.
        nodes: Vec<NodeId>,
    },
    /// Reply with a full model snapshot once state is quiescent enough.
    Snapshot {
        /// Reply channel.
        reply: Sender<ModelSnapshot>,
    },
    /// Reply with controller status.
    Status {
        /// Reply channel.
        reply: Sender<JobStatus>,
    },
    /// Stop all nodes gracefully and acknowledge.
    Shutdown {
        /// Reply channel, signalled when every node was told to stop.
        reply: Sender<()>,
    },
}
