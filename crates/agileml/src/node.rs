//! The per-machine behavior: one event loop multiplexing the server role
//! (ParamServ / ActivePS / BackupPS duties) and the worker role.
//!
//! Real AgileML runs one process per machine with worker threads per core
//! plus optional server threads; here one simnet thread per machine runs
//! both roles through a single message loop, which preserves every
//! protocol interaction (including compute/serving interference on a
//! shared machine) while keeping the runtime dependency-free.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use proteus_mlapps::app::MlApp;
use proteus_ps::{PartitionId, PartitionMap};
use proteus_simnet::{Control, Incoming, NodeCtx, NodeId, RecvError};
use proteus_simtime::rng::seeded_stream;

use crate::config::AgileConfig;
use crate::msg::{AgileMsg, Values};
use crate::server::ServerState;
use crate::topology::Topology;
use crate::worker::WorkerState;

/// Runs an AgileML node until stopped, killed, or shut down.
///
/// The node introduces itself to the controller with `Hello`, then obeys
/// `Configure` / `Topology` / elasticity messages while serving parameter
/// traffic and iterating as a worker.
pub fn run_node<A: MlApp>(
    ctx: NodeCtx<AgileMsg>,
    controller: NodeId,
    app: Arc<A>,
    dataset: Arc<Vec<A::Datum>>,
    cfg: AgileConfig,
) {
    // `AgileConfig::validate` rejects zero partitions before any node is
    // spawned.
    #[allow(clippy::expect_used)]
    let layout = PartitionMap::new(cfg.partitions).expect("validated config");
    let me = ctx.id();
    let rng = seeded_stream(cfg.seed, 0x4000 + u64::from(me.0));
    let mut node = NodeState {
        server: ServerState::new(layout),
        worker: WorkerState::new(
            Arc::clone(&app),
            dataset,
            cfg.data_blocks,
            layout,
            cfg.slack,
            rng,
            controller,
            me,
        ),
        topology: None,
        forward: BTreeMap::new(),
        awaiting: BTreeSet::new(),
        recent_installs: BTreeSet::new(),
        ready_pending: false,
        pending_updates: Vec::new(),
        stop_deferred: false,
        pending_exports: Vec::new(),
        pending_replicas: Vec::new(),
        pending_recovers: Vec::new(),
        epoch: 0,
        configured_once: false,
        last_push_min: 0,
        controller,
    };

    let _ = ctx.send(controller, AgileMsg::Hello { class: ctx.class() });

    loop {
        match ctx.recv() {
            Ok(Incoming::App(env)) => {
                if !node.handle(env.from, env.msg, &ctx) {
                    break;
                }
            }
            Ok(Incoming::Control(Control::EvictionWarning { deadline_ms })) => {
                // Relay the provider's warning so the controller drains
                // this node even when no driver forwards the eviction.
                let _ = ctx.send(controller, AgileMsg::EvictionNotice { deadline_ms });
            }
            Ok(Incoming::Control(Control::Shutdown)) => break,
            Ok(Incoming::Control(Control::Kill)) | Err(RecvError::Killed) => break,
            Err(_) => break,
        }
    }
}

/// All mutable state of one node.
struct NodeState<A: MlApp> {
    server: ServerState,
    worker: WorkerState<A>,
    topology: Option<Arc<Topology>>,
    /// Partitions migrated away: destination for late traffic.
    forward: BTreeMap<PartitionId, NodeId>,
    /// Partitions whose images are still in flight.
    awaiting: BTreeSet<PartitionId>,
    /// Images that landed since the last `Configure` — a migrated image
    /// can outrace the `Configure` naming it (different senders), and a
    /// node must not wait for an install it already has.
    recent_installs: BTreeSet<PartitionId>,
    /// Whether a `Ready` is owed once `awaiting` drains.
    ready_pending: bool,
    /// Updates buffered for partitions in `awaiting`.
    pending_updates: Vec<(PartitionId, Values)>,
    /// A `Stop` arrived while migrated-away partitions still awaited
    /// their inbound images (we must relay them to the new owner, or the
    /// only copy dies with us). Honored once the relays drain.
    stop_deferred: bool,
    /// Export requests deferred until the awaited image arrives.
    pending_exports: Vec<(PartitionId, NodeId)>,
    /// Backup re-replications deferred until the awaited serving image
    /// arrives (a repair can target a partition this node is itself
    /// still receiving mid-migration). Kept separate from
    /// `pending_exports`: a replica ships *after* buffered updates are
    /// applied and must also discard the dirty aggregate.
    pending_replicas: Vec<(PartitionId, NodeId)>,
    /// `RecoverPartitions` requests deferred because some named
    /// partition's backup fill is still in flight to this node
    /// (correlated kills can race a repair fill with the next
    /// recovery). `(partitions, new_owner, clock, still-missing)`.
    pending_recovers: Vec<(Vec<PartitionId>, NodeId, u64, BTreeSet<PartitionId>)>,
    epoch: u64,
    configured_once: bool,
    /// Global clock of the last backup push taken.
    last_push_min: u64,
    controller: NodeId,
}

impl<A: MlApp> NodeState<A> {
    /// Handles one message; returns `false` to stop the node.
    fn handle(&mut self, from: NodeId, msg: AgileMsg, ctx: &NodeCtx<AgileMsg>) -> bool {
        match msg {
            AgileMsg::Configure(assign) => {
                if !self.configured_once {
                    self.worker.set_clock(assign.resume_clock);
                    self.worker.set_epoch(assign.epoch);
                    self.epoch = assign.epoch;
                    self.configured_once = true;
                }
                self.server.reconfigure(
                    &assign.serve_partitions,
                    &assign.backup_partitions,
                    assign.is_active_ps,
                );
                self.worker.assign_blocks(&assign.data_blocks);
                // Routing may have changed: abandon reads owed by nodes
                // that may have left, and reissue them.
                self.worker.abort_inflight_reads();
                self.topology = Some(Arc::clone(&assign.topology));
                // Partitions assigned back to this node are no longer
                // migrated-away; stale forwards would misroute installs.
                self.forward.retain(|p, _| {
                    !assign.serve_partitions.contains(p)
                        && !assign.backup_partitions.contains(p)
                        && !assign.await_installs.contains(p)
                });
                self.awaiting = assign
                    .await_installs
                    .iter()
                    .copied()
                    .filter(|p| !self.recent_installs.contains(p))
                    .collect();
                self.recent_installs.clear();
                if self.awaiting.is_empty() {
                    let _ = ctx.send(self.controller, AgileMsg::Ready);
                } else {
                    self.ready_pending = true;
                }
                self.progress_worker(ctx);
            }
            AgileMsg::Topology(t) => {
                let newer = self
                    .topology
                    .as_ref()
                    .is_none_or(|cur| t.version > cur.version);
                if newer {
                    self.topology = Some(t);
                    self.worker.abort_inflight_reads();
                }
                self.progress_worker(ctx);
            }
            AgileMsg::Start => {
                self.worker.start();
                self.progress_worker(ctx);
            }
            AgileMsg::Stop => {
                if self.must_relay_before_stopping() {
                    // An eviction victim can be a migration *chain* link:
                    // partitions migrated away while their own images are
                    // still in flight to us. Stopping now would drop the
                    // relay and lose the only serving copy — finish the
                    // drain work the warning window exists for, then stop.
                    self.stop_deferred = true;
                    return true;
                }
                return false;
            }
            AgileMsg::GlobalClock { min, epoch } => {
                self.worker.on_global_clock(min, epoch);
                if epoch == self.epoch && self.server.is_active() && min > self.last_push_min {
                    self.last_push_min = min;
                    self.push_to_backups(min, false, ctx);
                }
                self.progress_worker(ctx);
            }
            AgileMsg::ReadReq { token, keys } => {
                let values = self.server.handle_read(&keys);
                let _ = ctx.send(from, AgileMsg::ReadResp { token, values });
            }
            AgileMsg::ReadResp { token, values } => {
                if let Some(topo) = self.topology.clone() {
                    let out = self.worker.on_read_resp(from, token, values, &topo);
                    self.dispatch(out, ctx);
                    // A finished iteration may immediately admit the next
                    // one (SSP gate willing). A worker running behind the
                    // broadcast minimum — e.g. a reliable worker rejoining
                    // on a stage 3→2 flip — gets no `GlobalClock` until
                    // *its own* progress advances the minimum, so waiting
                    // for one here would wedge it after a single
                    // iteration.
                    self.progress_worker(ctx);
                }
            }
            AgileMsg::UpdateBatch {
                partition,
                clock,
                epoch,
                updates,
            } => {
                if epoch < self.epoch {
                    return true; // Stale pre-recovery traffic.
                }
                if self.awaiting.contains(&partition) {
                    self.pending_updates.push((partition, updates));
                } else if !self.server.handle_updates(partition, &updates) {
                    // Not served here: forward to the migration target or
                    // the topology owner.
                    let dest = self.forward.get(&partition).copied().or_else(|| {
                        self.topology.as_ref().and_then(|t| {
                            let owner = t.owner_of(partition);
                            (owner != ctx.id()).then_some(owner)
                        })
                    });
                    if let Some(dest) = dest {
                        let _ = ctx.send(
                            dest,
                            AgileMsg::UpdateBatch {
                                partition,
                                clock,
                                epoch,
                                updates,
                            },
                        );
                    }
                }
            }
            AgileMsg::BackupPush {
                partition,
                clock,
                deltas,
                end_of_life,
            } => {
                self.server
                    .apply_push(partition, clock, deltas, end_of_life);
            }
            AgileMsg::InstallPartition {
                partition,
                image,
                clock,
            } => {
                self.recent_installs.insert(partition);
                if let Some(&dest) = self.forward.get(&partition) {
                    // The partition was migrated away while its image was
                    // still in flight to us: relay the true image to the
                    // new owner instead of installing it here.
                    self.awaiting.remove(&partition);
                    let _ = ctx.send(
                        dest,
                        AgileMsg::InstallPartition {
                            partition,
                            image,
                            clock,
                        },
                    );
                    let buffered: Vec<(PartitionId, Values)> =
                        std::mem::take(&mut self.pending_updates);
                    for (p, updates) in buffered {
                        if p == partition {
                            let _ = ctx.send(
                                dest,
                                AgileMsg::UpdateBatch {
                                    partition: p,
                                    clock,
                                    epoch: self.epoch,
                                    updates,
                                },
                            );
                        } else {
                            self.pending_updates.push((p, updates));
                        }
                    }
                    if self.awaiting.is_empty() && self.ready_pending {
                        self.ready_pending = false;
                        let _ = ctx.send(self.controller, AgileMsg::Ready);
                    }
                    return !self.stop_deferred || self.must_relay_before_stopping();
                }
                self.server.install_image(partition, image, clock);
                self.awaiting.remove(&partition);
                // Apply updates buffered while the image was in flight.
                let buffered: Vec<(PartitionId, Values)> =
                    std::mem::take(&mut self.pending_updates);
                for (p, updates) in buffered {
                    if p == partition {
                        self.server.handle_updates(p, &updates);
                    } else {
                        self.pending_updates.push((p, updates));
                    }
                }
                // Serve exports that were waiting for this image.
                let deferred: Vec<(PartitionId, NodeId)> =
                    std::mem::take(&mut self.pending_exports);
                for (p, requester) in deferred {
                    if p == partition {
                        let image = self.server.export_serving(p);
                        let _ = ctx.send(
                            requester,
                            AgileMsg::InstallPartition {
                                partition: p,
                                image,
                                clock: self.last_push_min,
                            },
                        );
                    } else {
                        self.pending_exports.push((p, requester));
                    }
                }
                // Ship backup replicas that were waiting for this image.
                let replicas: Vec<(PartitionId, NodeId)> =
                    std::mem::take(&mut self.pending_replicas);
                for (p, to) in replicas {
                    if p == partition {
                        self.replicate_one(p, to, ctx);
                    } else {
                        self.pending_replicas.push((p, to));
                    }
                }
                // Run recoveries whose last missing backup fill just
                // landed.
                let recovers = std::mem::take(&mut self.pending_recovers);
                for (parts, new_owner, at, mut missing) in recovers {
                    missing.remove(&partition);
                    if missing.is_empty() {
                        self.recover_to(&parts, new_owner, at, ctx);
                    } else {
                        self.pending_recovers.push((parts, new_owner, at, missing));
                    }
                }
                if self.awaiting.is_empty() && self.ready_pending {
                    self.ready_pending = false;
                    let _ = ctx.send(self.controller, AgileMsg::Ready);
                }
                if self.stop_deferred && !self.must_relay_before_stopping() {
                    return false;
                }
            }
            AgileMsg::MigratePartitions {
                to,
                partitions,
                retain_as_backup,
            } => {
                // Bring backups current before the handoff so the new
                // owner's dirty tracking starts from a pushed boundary.
                if self.server.is_active() {
                    self.push_to_backups(self.last_push_min, false, ctx);
                }
                for p in &partitions {
                    if self.awaiting.contains(p) {
                        // Our own image for this partition is still in
                        // flight; exporting now would hand off an empty
                        // store. The forward entry makes the pending
                        // install relay the true image on arrival.
                        self.forward.insert(*p, to);
                        continue;
                    }
                    let image = self.server.export_serving(*p);
                    let _ = ctx.send(
                        to,
                        AgileMsg::InstallPartition {
                            partition: *p,
                            image,
                            clock: self.last_push_min,
                        },
                    );
                    self.forward.insert(*p, to);
                }
                // Recompute roles: stop serving the moved partitions,
                // optionally retaining them as backup copies.
                let new_serve: Vec<PartitionId> = self
                    .server
                    .served_partitions()
                    .into_iter()
                    .filter(|p| !partitions.contains(p))
                    .collect();
                // Current backup set is whatever the server already backs
                // up, plus (optionally) the migrated partitions.
                let mut new_backup: Vec<PartitionId> = (0..self.server.layout().count())
                    .map(PartitionId)
                    .filter(|p| self.server.backs_up(*p))
                    .collect();
                if retain_as_backup {
                    new_backup.extend(partitions.iter().copied());
                }
                new_backup.sort();
                new_backup.dedup();
                let was_active = self.server.is_active();
                self.server.reconfigure(&new_serve, &new_backup, was_active);
            }
            AgileMsg::DrainToBackup => {
                self.push_to_backups(self.last_push_min, true, ctx);
                self.server.reconfigure(&[], &[], false);
            }
            AgileMsg::RollbackDirty => {
                self.server.rollback_dirty();
            }
            AgileMsg::BackupClockQuery => {
                let min_clock = self
                    .server
                    .backup_consistent_clock()
                    .unwrap_or(self.last_push_min);
                let _ = ctx.send(from, AgileMsg::BackupClockInfo { min_clock });
            }
            AgileMsg::RecoverPartitions {
                partitions,
                new_owner,
                clock,
            } => {
                let missing: BTreeSet<PartitionId> = partitions
                    .iter()
                    .copied()
                    .filter(|p| self.awaiting.contains(p))
                    .collect();
                if missing.is_empty() {
                    self.recover_to(&partitions, new_owner, clock, ctx);
                } else {
                    // Some named partition's backup fill is still in
                    // flight to this node (a repair raced the next
                    // failure). Exporting now would ship an empty
                    // image; run once the fills land.
                    self.pending_recovers
                        .push((partitions, new_owner, clock, missing));
                }
            }
            AgileMsg::ReplicateBackup { partitions, to } => {
                for p in partitions {
                    if self.awaiting.contains(&p) {
                        // Our own serving image is still in flight.
                        self.pending_replicas.push((p, to));
                    } else if let Some(&dest) = self.forward.get(&p) {
                        // Migrated away: the new owner holds the state.
                        let _ = ctx.send(
                            dest,
                            AgileMsg::ReplicateBackup {
                                partitions: vec![p],
                                to,
                            },
                        );
                    } else {
                        self.replicate_one(p, to, ctx);
                    }
                }
            }
            AgileMsg::RestartFrom { clock, epoch } => {
                self.epoch = epoch;
                self.last_push_min = clock;
                self.worker.restart_from(clock, epoch);
            }
            AgileMsg::ExportPartition { partition } => {
                if self.awaiting.contains(&partition) {
                    // The image for this partition is still in flight
                    // (migration); answer once it lands so snapshots
                    // never observe an empty freshly-migrated partition.
                    self.pending_exports.push((partition, from));
                } else {
                    let image = self.server.export_serving(partition);
                    let _ = ctx.send(
                        from,
                        AgileMsg::InstallPartition {
                            partition,
                            image,
                            clock: self.last_push_min,
                        },
                    );
                }
            }
            // Controller-only traffic; harmless if misdelivered.
            AgileMsg::Hello { .. }
            | AgileMsg::Ready
            | AgileMsg::ClockDone { .. }
            | AgileMsg::BackupClockInfo { .. }
            | AgileMsg::EvictionNotice { .. }
            | AgileMsg::Cmd(_) => {}
        }
        true
    }

    /// Ships a full serving image of `p` to `to`, the partition's fresh
    /// BackupPS (reliable-tier repair). The image bakes in whatever
    /// dirty deltas have accumulated since the last push, so the local
    /// dirty aggregate is discarded — pushing it later would apply those
    /// deltas twice at the new backup.
    fn replicate_one(&mut self, p: PartitionId, to: NodeId, ctx: &NodeCtx<AgileMsg>) {
        let image = self.server.export_serving(p);
        self.server.discard_dirty(p);
        let _ = ctx.send(
            to,
            AgileMsg::InstallPartition {
                partition: p,
                image,
                clock: self.last_push_min,
            },
        );
    }

    /// Rolls the backup store to `clock` and ships recovery images of
    /// `partitions` to `new_owner`.
    fn recover_to(
        &mut self,
        partitions: &[PartitionId],
        new_owner: NodeId,
        clock: u64,
        ctx: &NodeCtx<AgileMsg>,
    ) {
        self.server.backup_rollback_to(clock);
        for p in partitions {
            let image = self.server.export_backup(*p);
            let _ = ctx.send(
                new_owner,
                AgileMsg::InstallPartition {
                    partition: *p,
                    image,
                    clock,
                },
            );
        }
    }

    /// Whether any migrated-away partition's inbound image is still in
    /// flight to this node — stopping before relaying it would destroy
    /// the only serving copy.
    fn must_relay_before_stopping(&self) -> bool {
        self.awaiting.iter().any(|p| self.forward.contains_key(p))
    }

    /// Streams the coalesced dirty deltas of every served partition to
    /// its backup owner.
    fn push_to_backups(&mut self, clock: u64, end_of_life: bool, ctx: &NodeCtx<AgileMsg>) {
        let Some(topo) = self.topology.clone() else {
            return;
        };
        let served = self.server.served_partitions();
        let mut pushed: BTreeMap<PartitionId, Values> =
            self.server.take_push(clock).into_iter().collect();
        for p in served {
            let deltas = pushed.remove(&p).unwrap_or_default();
            if deltas.is_empty() && !end_of_life {
                continue;
            }
            if let Some(backup) = topo.backup_of(p) {
                let _ = ctx.send(
                    backup,
                    AgileMsg::BackupPush {
                        partition: p,
                        clock,
                        deltas,
                        end_of_life,
                    },
                );
            }
        }
    }

    /// Drives the worker and dispatches whatever it wants sent.
    fn progress_worker(&mut self, ctx: &NodeCtx<AgileMsg>) {
        let Some(topo) = self.topology.clone() else {
            return;
        };
        let out = self.worker.poll(&topo);
        self.dispatch(out, ctx);
    }

    /// Sends worker outbox messages, feeding send failures (evicted
    /// destinations) back into the worker so it never deadlocks.
    fn dispatch(&mut self, out: Vec<(NodeId, AgileMsg)>, ctx: &NodeCtx<AgileMsg>) {
        let mut queue: VecDeque<(NodeId, AgileMsg)> = out.into();
        while let Some((dst, msg)) = queue.pop_front() {
            let failed_token = match &msg {
                AgileMsg::ReadReq { token, .. } => Some(*token),
                _ => None,
            };
            if ctx.send(dst, msg).is_err() {
                if let (Some(token), Some(topo)) = (failed_token, self.topology.clone()) {
                    let more = self.worker.on_read_failed(dst, token, &topo);
                    queue.extend(more);
                }
                // Failed updates/clocks are dropped: updates are lost work
                // (tolerated), ClockDone to the controller cannot fail
                // while the job is alive.
            }
        }
    }
}
