//! Server-side state: the serving store (ParamServ / ActivePS) and the
//! backup store (BackupPS) with push-history rollback.
//!
//! One AgileML node may simultaneously *serve* some partitions (answering
//! worker reads and applying updates) and *back up* others (absorbing
//! coalesced delta pushes from ActivePSs). [`ServerState`] owns both
//! stores plus the bookkeeping that makes elasticity work:
//!
//! * per-partition dirty aggregates on the serving side, pushed to the
//!   backup at every global-clock advance and on drain;
//! * a bounded per-partition history of applied pushes on the backup
//!   side, so recovery can roll the backup to any recent clock-aligned
//!   boundary (the paper's "last consistent state", Sec. 3.3);
//! * partition moves between the two stores (promotion after a full
//!   drain, demotion when a reliable ParamServ hands its partitions to a
//!   new ActivePS and becomes its backup).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use proteus_ps::{DenseVec, KeySet, ParamKey, PartitionId, PartitionMap, ShardStore};

use crate::msg::Values;

/// How many recent pushes the backup keeps per partition for rollback.
///
/// Rollback never needs to reach further back than the staleness slack
/// plus in-flight pushes; 16 is generous for any configuration tested.
const PUSH_HISTORY: usize = 16;

/// Backup-side record for one partition.
#[derive(Debug, Clone, Default)]
struct BackupPartition {
    /// Clock of the most recent applied push.
    last_clock: u64,
    /// Recent applied pushes, oldest first, for rollback.
    pushes: VecDeque<(u64, Values)>,
    /// Whether the active stream has ended (end-of-life received).
    stream_ended: bool,
}

/// Combined serving + backup state of one node.
#[derive(Debug)]
pub struct ServerState {
    layout: PartitionMap,
    /// Serving-side store (ParamServ or ActivePS state).
    serving: ShardStore<DenseVec>,
    /// Partitions this node currently serves.
    serve_set: BTreeSet<PartitionId>,
    /// Whether served partitions stream deltas to a backup.
    is_active: bool,
    /// Backup-side store.
    backup: ShardStore<DenseVec>,
    /// Backup bookkeeping per backed-up partition.
    backup_meta: BTreeMap<PartitionId, BackupPartition>,
    /// Clock of the last dirty push taken from the serving store.
    last_push_clock: u64,
}

impl ServerState {
    /// Creates empty server state over the job's partition layout.
    pub fn new(layout: PartitionMap) -> Self {
        ServerState {
            layout,
            serving: ShardStore::new(layout),
            serve_set: BTreeSet::new(),
            is_active: false,
            backup: ShardStore::new(layout),
            backup_meta: BTreeMap::new(),
            last_push_clock: 0,
        }
    }

    /// The partition layout.
    pub fn layout(&self) -> PartitionMap {
        self.layout
    }

    /// Whether this node serves `partition`.
    pub fn serves(&self, partition: PartitionId) -> bool {
        self.serve_set.contains(&partition)
    }

    /// Whether this node backs up `partition`.
    pub fn backs_up(&self, partition: PartitionId) -> bool {
        self.backup_meta.contains_key(&partition)
    }

    /// Partitions currently served, sorted.
    pub fn served_partitions(&self) -> Vec<PartitionId> {
        self.serve_set.iter().copied().collect()
    }

    /// Whether served partitions stream to backups.
    pub fn is_active(&self) -> bool {
        self.is_active
    }

    /// Reconfigures the serving role: which partitions to serve and
    /// whether to stream deltas (`ActivePS`) or not (`ParamServ`).
    ///
    /// Partitions newly served that are currently held in the backup
    /// store are *promoted* (moved across); partitions newly backing that
    /// are currently held in the serving store are *demoted*. State for
    /// partitions in neither store must arrive later via
    /// [`ServerState::install_image`].
    pub fn reconfigure(&mut self, serve: &[PartitionId], backup: &[PartitionId], is_active: bool) {
        let new_serve: BTreeSet<PartitionId> = serve.iter().copied().collect();
        let new_backup: BTreeSet<PartitionId> = backup.iter().copied().collect();

        // Promote: backup store → serving store.
        for p in &new_serve {
            if self.backup_meta.contains_key(p) && !new_backup.contains(p) {
                let image = self.backup.export_partition(*p);
                self.backup.drop_partition(*p);
                self.backup_meta.remove(p);
                self.serving.import_partition(image);
            }
        }
        // Demote: serving store → backup store.
        for p in &new_backup {
            if self.serve_set.contains(p) && !new_serve.contains(p) {
                let image = self.serving.export_partition(*p);
                self.serving.drop_partition(*p);
                self.backup.import_partition(image);
            }
            self.backup_meta.entry(*p).or_default();
        }
        // Drop backup partitions no longer assigned.
        let stale: Vec<PartitionId> = self
            .backup_meta
            .keys()
            .filter(|p| !new_backup.contains(p))
            .copied()
            .collect();
        for p in stale {
            self.backup.drop_partition(p);
            self.backup_meta.remove(&p);
        }
        self.serve_set = new_serve;
        self.is_active = is_active;
    }

    /// Installs a full partition image into whichever store holds the
    /// partition's role (serving preferred). Clears its dirty delta.
    /// `clock` is the clock the image is consistent with.
    ///
    /// A backup-side install is a *fresh baseline*: any previously
    /// recorded push history described state this image just replaced,
    /// so keeping it would let a later rollback subtract deltas the
    /// image never contained. The bookkeeping resets to `clock` — a
    /// re-replicated backup reports the baseline clock (never a stale
    /// zero) to recovery quorums, and rollback stops at the baseline
    /// (the same bounded-imprecision contract as the capped push
    /// history).
    pub fn install_image(&mut self, partition: PartitionId, image: Values, clock: u64) {
        if self.serve_set.contains(&partition) {
            // Replace wholesale: drop whatever is there, then import.
            self.serving.drop_partition(partition);
            self.serving.import_partition(image);
        } else {
            self.backup.drop_partition(partition);
            self.backup.import_partition(image);
            self.backup_meta.insert(
                partition,
                BackupPartition {
                    last_clock: clock,
                    pushes: VecDeque::new(),
                    stream_ended: false,
                },
            );
        }
    }

    /// Drops the pending dirty deltas of one served partition without
    /// pushing them. Used when a full serving image (which already
    /// contains those deltas) was just shipped to a fresh backup:
    /// pushing them afterwards would double-apply them there.
    pub fn discard_dirty(&mut self, partition: PartitionId) {
        let _ = self.serving.take_dirty_partition(partition);
    }

    /// Answers a read: values for the requested keys this node holds in
    /// its serving store (missing keys omitted). The cloned values share
    /// their buffers with the store (zero-copy until someone writes).
    pub fn handle_read(&self, keys: &KeySet) -> Values {
        keys.iter()
            .filter_map(|k| self.serving.read(k).map(|v| (k, v.clone())))
            .collect()
    }

    /// Applies an update batch to a served partition in one store pass.
    /// Returns `false` (without applying) when the partition is not
    /// served here.
    pub fn handle_updates(&mut self, partition: PartitionId, updates: &Values) -> bool {
        if !self.serve_set.contains(&partition) {
            return false;
        }
        debug_assert!(
            updates
                .iter()
                .all(|(k, _)| self.layout.partition_of(*k) == partition),
            "batch crosses partition boundary"
        );
        self.serving.apply_batch(updates);
        true
    }

    /// Takes the coalesced dirty deltas per served partition for a push
    /// aligned to `clock` (an ActivePS calls this when the global clock
    /// advances). Returns one `(partition, deltas)` entry per served
    /// partition with pending changes.
    pub fn take_push(&mut self, clock: u64) -> Vec<(PartitionId, Values)> {
        self.last_push_clock = clock;
        let mut out = Vec::new();
        for p in self.serving.dirty_partitions() {
            // Drain every dirty partition; deltas for partitions no
            // longer served are discarded (their new owner streams them).
            let dirty = self.serving.take_dirty_partition(p);
            if self.serve_set.contains(&p) && !dirty.is_empty() {
                out.push((p, dirty.into()));
            }
        }
        out
    }

    /// Exports a full serving-side image of `partition`.
    pub fn export_serving(&self, partition: PartitionId) -> Values {
        self.serving.export_partition(partition).into()
    }

    /// Removes `partition` from the serving role (after migrating away).
    pub fn stop_serving(&mut self, partition: PartitionId) {
        self.serve_set.remove(&partition);
        self.serving.drop_partition(partition);
    }

    /// Rolls the serving store back to the last push boundary by
    /// subtracting pending dirty deltas (survivor side of failure
    /// recovery).
    pub fn rollback_dirty(&mut self) {
        self.serving.rollback_dirty(|d| {
            let mut n = d.clone();
            n.scale(-1.0);
            n
        });
    }

    // ------------------------------------------------------------------
    // Backup side
    // ------------------------------------------------------------------

    /// Applies an active→backup push. If the partition has since been
    /// promoted to serving (drain/promotion races), the deltas apply to
    /// the serving store instead, so no update is ever lost.
    pub fn apply_push(
        &mut self,
        partition: PartitionId,
        clock: u64,
        deltas: Values,
        end_of_life: bool,
    ) {
        if self.serve_set.contains(&partition) {
            for (k, d) in &deltas {
                self.serving.apply_update(*k, d);
            }
            return;
        }
        for (k, d) in &deltas {
            self.backup.apply_update(*k, d);
        }
        let meta = self.backup_meta.entry(partition).or_default();
        meta.last_clock = meta.last_clock.max(clock);
        meta.pushes.push_back((clock, deltas));
        while meta.pushes.len() > PUSH_HISTORY {
            meta.pushes.pop_front();
        }
        if end_of_life {
            meta.stream_ended = true;
        }
    }

    /// The minimum last-push clock across all backed-up partitions — the
    /// most recent clock to which the whole backup set is consistent.
    /// `None` when this node backs up nothing.
    pub fn backup_consistent_clock(&self) -> Option<u64> {
        self.backup_meta.values().map(|m| m.last_clock).min()
    }

    /// Rolls every backed-up partition back to at most `clock` by
    /// subtracting pushes applied after it.
    pub fn backup_rollback_to(&mut self, clock: u64) {
        for (_, meta) in self.backup_meta.iter_mut() {
            while let Some((c, deltas)) = meta.pushes.back() {
                if *c <= clock {
                    break;
                }
                for (k, d) in deltas {
                    let mut neg = d.clone();
                    neg.scale(-1.0);
                    self.backup.apply_update(*k, &neg);
                }
                meta.last_clock = clock;
                meta.pushes.pop_back();
            }
        }
        // The subtraction paths above dirty the backup store; recovery
        // images are exported right after, so clear the noise.
        let _ = self.backup.take_dirty();
    }

    /// Exports a full backup-side image of `partition` (recovery source).
    pub fn export_backup(&self, partition: PartitionId) -> Values {
        self.backup.export_partition(partition).into()
    }

    /// Test/diagnostic helper: a serving-side value.
    pub fn read_serving(&self, key: ParamKey) -> Option<&DenseVec> {
        self.serving.read(key)
    }

    /// Test/diagnostic helper: a backup-side value.
    pub fn read_backup(&self, key: ParamKey) -> Option<&DenseVec> {
        self.backup.read(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use proteus_ps::{decode_model, encode_model};
    use std::collections::BTreeMap;

    fn layout() -> PartitionMap {
        PartitionMap::new(4).expect("nonzero")
    }

    fn dv(x: f32) -> DenseVec {
        DenseVec::from(vec![x])
    }

    fn image(pairs: &[(u64, f32)]) -> Values {
        pairs.iter().map(|(k, x)| (ParamKey(*k), dv(*x))).collect()
    }

    #[test]
    fn serving_reads_and_updates() {
        let mut s = ServerState::new(layout());
        s.reconfigure(&[PartitionId(0)], &[], false);
        s.install_image(PartitionId(0), image(&[(0, 1.0), (4, 2.0)]), 0);
        assert!(s.serves(PartitionId(0)));
        assert!(s.handle_updates(PartitionId(0), &image(&[(0, 0.5)])));
        let keys = KeySet::from_sorted(&[ParamKey(0), ParamKey(1), ParamKey(4)]);
        let vals = s.handle_read(&keys);
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0].1.as_slice(), &[1.5]);
        // Updates for unserved partitions are refused.
        assert!(!s.handle_updates(PartitionId(1), &image(&[(1, 9.0)])));
    }

    #[test]
    fn take_push_groups_by_partition_and_drains() {
        let mut s = ServerState::new(layout());
        s.reconfigure(&[PartitionId(0), PartitionId(1)], &[], true);
        s.install_image(PartitionId(0), image(&[(0, 0.0)]), 0);
        s.install_image(PartitionId(1), image(&[(1, 0.0)]), 0);
        s.handle_updates(PartitionId(0), &image(&[(0, 1.0)]));
        s.handle_updates(PartitionId(1), &image(&[(1, 2.0)]));
        let push = s.take_push(5);
        assert_eq!(push.len(), 2);
        assert_eq!(push[0].0, PartitionId(0));
        assert!(s.take_push(6).is_empty(), "second take is empty");
    }

    #[test]
    fn backup_absorbs_pushes_and_rolls_back() {
        let mut b = ServerState::new(layout());
        b.reconfigure(&[], &[PartitionId(0)], false);
        b.install_image(PartitionId(0), image(&[(0, 10.0)]), 0);
        b.apply_push(PartitionId(0), 1, image(&[(0, 1.0)]), false);
        b.apply_push(PartitionId(0), 2, image(&[(0, 2.0)]), false);
        assert_eq!(b.read_backup(ParamKey(0)).unwrap().as_slice(), &[13.0]);
        assert_eq!(b.backup_consistent_clock(), Some(2));
        b.backup_rollback_to(1);
        assert_eq!(b.read_backup(ParamKey(0)).unwrap().as_slice(), &[11.0]);
        assert_eq!(b.backup_consistent_clock(), Some(1));
        let img = b.export_backup(PartitionId(0));
        assert_eq!(img[0].1.as_slice(), &[11.0]);
    }

    #[test]
    fn promotion_moves_backup_state_to_serving() {
        let mut b = ServerState::new(layout());
        b.reconfigure(&[], &[PartitionId(2)], false);
        b.install_image(PartitionId(2), image(&[(2, 7.0)]), 0);
        // Promote: the backup becomes the serving ParamServ.
        b.reconfigure(&[PartitionId(2)], &[], false);
        assert!(b.serves(PartitionId(2)));
        assert_eq!(b.read_serving(ParamKey(2)).unwrap().as_slice(), &[7.0]);
        assert!(b.read_backup(ParamKey(2)).is_none());
        // A straggler push for the promoted partition still lands.
        b.apply_push(PartitionId(2), 3, image(&[(2, 1.0)]), true);
        assert_eq!(b.read_serving(ParamKey(2)).unwrap().as_slice(), &[8.0]);
    }

    #[test]
    fn demotion_moves_serving_state_to_backup() {
        let mut s = ServerState::new(layout());
        s.reconfigure(&[PartitionId(1)], &[], false);
        s.install_image(PartitionId(1), image(&[(1, 3.0)]), 0);
        // Stage 1→2: this reliable node hands off serving and becomes
        // the backup for the same partition.
        s.reconfigure(&[], &[PartitionId(1)], false);
        assert!(!s.serves(PartitionId(1)));
        assert!(s.backs_up(PartitionId(1)));
        assert_eq!(s.read_backup(ParamKey(1)).unwrap().as_slice(), &[3.0]);
        assert!(s.read_serving(ParamKey(1)).is_none());
    }

    #[test]
    fn rollback_dirty_realigns_active_with_backup() {
        let mut a = ServerState::new(layout());
        a.reconfigure(&[PartitionId(0)], &[], true);
        a.install_image(PartitionId(0), image(&[(0, 5.0)]), 0);
        a.handle_updates(PartitionId(0), &image(&[(0, 1.0)]));
        let _pushed = a.take_push(1); // State 6.0 pushed at clock 1.
        a.handle_updates(PartitionId(0), &image(&[(0, 2.0)])); // 8.0, unpushed.
        a.rollback_dirty();
        assert_eq!(a.read_serving(ParamKey(0)).unwrap().as_slice(), &[6.0]);
    }

    #[test]
    fn install_replaces_existing_partition_state() {
        let mut s = ServerState::new(layout());
        s.reconfigure(&[PartitionId(0)], &[], false);
        s.install_image(PartitionId(0), image(&[(0, 1.0), (4, 1.0)]), 0);
        // Recovery install replaces wholesale (old key 4 disappears if
        // absent from the new image).
        s.install_image(PartitionId(0), image(&[(0, 9.0)]), 0);
        assert_eq!(s.read_serving(ParamKey(0)).unwrap().as_slice(), &[9.0]);
        assert!(s.read_serving(ParamKey(4)).is_none());
    }

    #[test]
    fn push_history_is_bounded() {
        let mut b = ServerState::new(layout());
        b.reconfigure(&[], &[PartitionId(0)], false);
        for c in 1..=40u64 {
            b.apply_push(PartitionId(0), c, image(&[(0, 1.0)]), false);
        }
        // Rolling back further than the history reaches stops at the
        // oldest retained push.
        b.backup_rollback_to(0);
        let v = b.read_backup(ParamKey(0)).unwrap().as_slice()[0];
        assert_eq!(v, 40.0 - PUSH_HISTORY as f32);
    }

    #[test]
    fn backup_install_resets_history_to_fresh_baseline() {
        let mut b = ServerState::new(layout());
        b.reconfigure(&[], &[PartitionId(0)], false);
        b.install_image(PartitionId(0), image(&[(0, 10.0)]), 0);
        b.apply_push(PartitionId(0), 1, image(&[(0, 1.0)]), false);
        b.apply_push(PartitionId(0), 2, image(&[(0, 2.0)]), false);
        // A re-replication install at clock 5 is a fresh baseline: the
        // old push history described state the image just replaced.
        b.install_image(PartitionId(0), image(&[(0, 50.0)]), 5);
        assert_eq!(b.backup_consistent_clock(), Some(5));
        // Rollback below the baseline cannot reach behind the install.
        b.backup_rollback_to(1);
        assert_eq!(b.read_backup(ParamKey(0)).unwrap().as_slice(), &[50.0]);
        assert_eq!(b.backup_consistent_clock(), Some(5));
    }

    #[test]
    fn discard_dirty_drops_unpushed_deltas() {
        let mut s = ServerState::new(layout());
        s.reconfigure(&[PartitionId(0)], &[], true);
        s.install_image(PartitionId(0), image(&[(0, 1.0)]), 0);
        s.handle_updates(PartitionId(0), &image(&[(0, 3.0)]));
        s.discard_dirty(PartitionId(0));
        // Serving state keeps the applied update; the push aggregate
        // does not resend it.
        assert_eq!(s.read_serving(ParamKey(0)).unwrap().as_slice(), &[4.0]);
        assert!(s.take_push(1).is_empty());
    }

    proptest! {
        /// Mid-migration snapshot fidelity: a serving partition that has
        /// applied (but not yet pushed) dirty deltas exports an image
        /// that survives the durable `PSNP` encoding bit-identically and
        /// re-installs into a fresh server as the exact same serving
        /// state — arbitrary key layouts, arbitrary f32 bit patterns.
        #[test]
        fn dirty_export_restores_bit_identically(
            base in proptest::collection::btree_map(any::<u64>(), any::<u32>(), 1..16),
            dirty in proptest::collection::btree_map(any::<u64>(), any::<u32>(), 0..16),
        ) {
            let one = || PartitionMap::new(1).expect("nonzero");
            let mut src = ServerState::new(one());
            src.reconfigure(&[PartitionId(0)], &[], true);
            let img: Values = base
                .iter()
                .map(|(k, b)| (ParamKey(*k), dv(f32::from_bits(*b))))
                .collect();
            src.install_image(PartitionId(0), img, 0);
            let deltas: Values = dirty
                .iter()
                .filter(|(k, _)| base.contains_key(k))
                .map(|(k, b)| (ParamKey(*k), dv(f32::from_bits(*b))))
                .collect();
            src.handle_updates(PartitionId(0), &deltas);

            let exported = src.export_serving(PartitionId(0));
            let model: BTreeMap<ParamKey, DenseVec> =
                exported.iter().cloned().collect();
            let decoded = decode_model(&encode_model(&model)).expect("decode");

            let mut dst = ServerState::new(one());
            dst.reconfigure(&[PartitionId(0)], &[], true);
            dst.install_image(PartitionId(0), decoded.into_iter().collect(), 0);
            let restored = dst.export_serving(PartitionId(0));
            let bits = |v: &Values| -> Vec<(u64, Vec<u32>)> {
                v.iter()
                    .map(|(k, x)| (k.0, x.as_slice().iter().map(|f| f.to_bits()).collect()))
                    .collect()
            };
            prop_assert_eq!(bits(&exported), bits(&restored));
        }
    }

    #[test]
    fn reconfigure_drops_unassigned_backups() {
        let mut b = ServerState::new(layout());
        b.reconfigure(&[], &[PartitionId(0), PartitionId(1)], false);
        b.install_image(PartitionId(0), image(&[(0, 1.0)]), 0);
        b.install_image(PartitionId(1), image(&[(1, 1.0)]), 0);
        b.reconfigure(&[], &[PartitionId(0)], false);
        assert!(b.backs_up(PartitionId(0)));
        assert!(!b.backs_up(PartitionId(1)));
        assert!(b.read_backup(ParamKey(1)).is_none());
    }
}
