//! The three functionality-partitioning stages and the selection rule.

use serde::{Deserialize, Serialize};

/// AgileML's stage of functionality partitioning (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Parameter servers only on reliable machines; transient machines
    /// run only workers.
    Stage1,
    /// ActivePSs on transient machines, BackupPSs on reliable machines;
    /// workers everywhere.
    Stage2,
    /// Stage 2 plus no workers on reliable machines.
    Stage3,
}

impl Stage {
    /// Whether this stage uses the ActivePS/BackupPS tiering.
    pub fn uses_backups(self) -> bool {
        !matches!(self, Stage::Stage1)
    }

    /// Whether reliable machines run workers in this stage.
    pub fn workers_on_reliable(self) -> bool {
        !matches!(self, Stage::Stage3)
    }
}

/// Picks the stage for a transient:reliable ratio (Sec. 3.3: stage 2
/// above 1:1, stage 3 above 15:1).
///
/// With zero reliable machines the job cannot run (state must live
/// somewhere reliable); with zero transient machines stage 1 degenerates
/// to the traditional all-reliable layout.
pub fn select_stage(
    transient: usize,
    reliable: usize,
    stage2_threshold: f64,
    stage3_threshold: f64,
) -> Stage {
    if reliable == 0 {
        // Degenerate: callers validate this away, but picking stage 1
        // keeps the function total.
        return Stage::Stage1;
    }
    let ratio = transient as f64 / reliable as f64;
    if ratio > stage3_threshold {
        Stage::Stage3
    } else if ratio > stage2_threshold {
        Stage::Stage2
    } else {
        Stage::Stage1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds_partition_the_ratio_axis() {
        // Paper: >1:1 → stage 2, >15:1 → stage 3.
        assert_eq!(select_stage(0, 4, 1.0, 15.0), Stage::Stage1);
        assert_eq!(select_stage(4, 4, 1.0, 15.0), Stage::Stage1); // Exactly 1:1.
        assert_eq!(select_stage(6, 4, 1.0, 15.0), Stage::Stage2);
        assert_eq!(select_stage(60, 4, 1.0, 15.0), Stage::Stage2); // 15:1 exactly.
        assert_eq!(select_stage(63, 1, 1.0, 15.0), Stage::Stage3);
    }

    #[test]
    fn zero_reliable_is_total() {
        assert_eq!(select_stage(10, 0, 1.0, 15.0), Stage::Stage1);
    }

    #[test]
    fn stage_properties() {
        assert!(!Stage::Stage1.uses_backups());
        assert!(Stage::Stage2.uses_backups());
        assert!(Stage::Stage3.uses_backups());
        assert!(Stage::Stage1.workers_on_reliable());
        assert!(Stage::Stage2.workers_on_reliable());
        assert!(!Stage::Stage3.workers_on_reliable());
    }
}
