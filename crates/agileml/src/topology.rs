//! Cluster topology: partition ownership, backup placement, worker set,
//! and input-data block assignment.

use std::collections::{BTreeMap, BTreeSet};

use proteus_ps::PartitionId;
use proteus_simnet::NodeId;
use serde::{Deserialize, Serialize};

use crate::stage::Stage;

/// A block of input data (the unit of worker data assignment).
///
/// The dataset is split into a fixed number of blocks at job start;
/// elasticity moves whole blocks between workers, and an evicted worker's
/// blocks fall back to their previous owner, who has already seen the
/// data (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// A versioned snapshot of who-serves-what, broadcast by the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Monotonic version; receivers ignore stale snapshots.
    pub version: u64,
    /// Current stage.
    pub stage: Stage,
    /// Serving owner of each partition (indexed by `PartitionId.0`):
    /// a reliable `ParamServ` in stage 1, an `ActivePS` in stages 2–3.
    pub partition_owner: Vec<NodeId>,
    /// Backup owner of each partition in stages 2–3 (`None` in stage 1).
    pub backup_owner: Vec<Option<NodeId>>,
    /// Nodes currently running workers.
    pub workers: Vec<NodeId>,
}

impl Topology {
    /// The serving owner of `partition`.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range for this job — topologies
    /// always cover all `N` fixed partitions.
    pub fn owner_of(&self, partition: PartitionId) -> NodeId {
        self.partition_owner[partition.0 as usize]
    }

    /// The backup owner of `partition`, if the stage uses backups.
    pub fn backup_of(&self, partition: PartitionId) -> Option<NodeId> {
        self.backup_owner[partition.0 as usize]
    }

    /// Partitions served by `node`.
    pub fn partitions_owned_by(&self, node: NodeId) -> Vec<PartitionId> {
        self.partition_owner
            .iter()
            .enumerate()
            .filter(|(_, owner)| **owner == node)
            .map(|(i, _)| PartitionId(i as u32))
            .collect()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partition_owner.len() as u32
    }
}

/// Tracks block→worker assignment with previous-owner history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataAssignment {
    /// Ownership history per block: last element is the current owner;
    /// earlier elements are previous owners (most recent last).
    history: BTreeMap<BlockId, Vec<NodeId>>,
}

impl DataAssignment {
    /// Creates an assignment of `blocks` blocks, initially distributed
    /// round-robin over `workers`.
    ///
    /// Returns `None` if `workers` is empty.
    pub fn new(blocks: u32, workers: &[NodeId]) -> Option<Self> {
        if workers.is_empty() {
            return None;
        }
        let mut history = BTreeMap::new();
        for b in 0..blocks {
            let owner = workers[(b as usize) % workers.len()];
            history.insert(BlockId(b), vec![owner]);
        }
        Some(DataAssignment { history })
    }

    /// The current owner of a block.
    pub fn owner_of(&self, block: BlockId) -> Option<NodeId> {
        self.history.get(&block).and_then(|h| h.last().copied())
    }

    /// Blocks currently owned by `worker`, sorted.
    pub fn blocks_of(&self, worker: NodeId) -> Vec<BlockId> {
        self.history
            .iter()
            .filter(|(_, h)| h.last() == Some(&worker))
            .map(|(b, _)| *b)
            .collect()
    }

    /// All workers that currently own at least one block.
    pub fn active_workers(&self) -> BTreeSet<NodeId> {
        self.history
            .values()
            .filter_map(|h| h.last().copied())
            .collect()
    }

    /// Total number of blocks.
    pub fn block_count(&self) -> u32 {
        self.history.len() as u32
    }

    /// Rebalances blocks across `workers` so loads differ by at most one,
    /// moving as few blocks as possible. Returns the moved blocks as
    /// `(block, from, to)`.
    ///
    /// Returns `None` (and changes nothing) if `workers` is empty.
    pub fn rebalance(
        &mut self,
        workers: &[NodeId],
    ) -> Option<Vec<(BlockId, Option<NodeId>, NodeId)>> {
        if workers.is_empty() {
            return None;
        }
        let worker_set: BTreeSet<NodeId> = workers.iter().copied().collect();
        let total = self.history.len();
        let base = total / workers.len();
        let extra = total % workers.len();
        // Target load per worker: `base + 1` for the first `extra`
        // workers (in sorted order), `base` for the rest.
        let mut target: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (i, w) in worker_set.iter().enumerate() {
            target.insert(*w, base + usize::from(i < extra));
        }

        // Current loads (counting only blocks owned by valid workers).
        let mut load: BTreeMap<NodeId, usize> = worker_set.iter().map(|w| (*w, 0)).collect();
        let mut orphans: Vec<BlockId> = Vec::new();
        for (b, h) in &self.history {
            match h.last() {
                Some(owner) if worker_set.contains(owner) => {
                    // `owner` was just checked to be in `worker_set`,
                    // and `load` was built from exactly that set.
                    #[allow(clippy::expect_used)]
                    {
                        *load.get_mut(owner).expect("owner in set") += 1;
                    }
                }
                _ => orphans.push(*b),
            }
        }

        let mut moves: Vec<(BlockId, Option<NodeId>, NodeId)> = Vec::new();
        // Collect blocks to shed from overloaded workers, preferring the
        // highest-numbered blocks for determinism.
        let mut pool: Vec<(BlockId, Option<NodeId>)> =
            orphans.into_iter().map(|b| (b, None)).collect();
        for (w, cnt) in load.clone() {
            let t = target[&w];
            if cnt > t {
                let mut owned = self.blocks_of(w);
                owned.reverse();
                for b in owned.into_iter().take(cnt - t) {
                    pool.push((b, Some(w)));
                }
            }
        }
        pool.sort_by_key(|(b, _)| *b);
        // Hand the pool to underloaded workers.
        for w in worker_set.iter() {
            let have = load[w];
            let want = target[w];
            if want > have {
                for _ in 0..(want - have) {
                    let (b, from) = match pool.pop() {
                        Some(x) => x,
                        None => break,
                    };
                    // `pool` holds blocks drawn from `self.history` keys.
                    #[allow(clippy::expect_used)]
                    self.history.get_mut(&b).expect("block exists").push(*w);
                    moves.push((b, from, *w));
                }
            }
        }
        debug_assert!(pool.is_empty(), "rebalance pool fully drained");
        Some(moves)
    }

    /// Removes a worker: each of its blocks returns to its most recent
    /// previous owner still in `survivors`, or to the least-loaded
    /// survivor when no previous owner survives. Returns the moves.
    ///
    /// Returns `None` (and changes nothing) if `survivors` is empty.
    pub fn remove_worker(
        &mut self,
        worker: NodeId,
        survivors: &[NodeId],
    ) -> Option<Vec<(BlockId, NodeId)>> {
        if survivors.is_empty() {
            return None;
        }
        let survivor_set: BTreeSet<NodeId> = survivors.iter().copied().collect();
        let mut moves = Vec::new();
        let blocks = self.blocks_of(worker);
        for b in blocks {
            // `blocks_of` yields keys of `self.history`.
            #[allow(clippy::expect_used)]
            let h = self.history.get_mut(&b).expect("block exists");
            // Pop the evicted owner, then fall back through history.
            while h.last() == Some(&worker) {
                h.pop();
            }
            let fallback = h.iter().rev().find(|n| survivor_set.contains(n)).copied();
            let new_owner = match fallback {
                Some(n) => n,
                None => {
                    // No surviving previous owner: least-loaded survivor.
                    // Callers never evict the last node; `survivors` is
                    // non-empty by the membership invariant.
                    #[allow(clippy::expect_used)]
                    {
                        *survivor_set
                            .iter()
                            .min_by_key(|w| self.count_owned(**w))
                            .expect("non-empty survivors")
                    }
                }
            };
            // Same key as above: `blocks_of` yields keys of `self.history`.
            #[allow(clippy::expect_used)]
            let h = self.history.get_mut(&b).expect("block exists");
            if h.last() != Some(&new_owner) {
                h.push(new_owner);
            }
            moves.push((b, new_owner));
        }
        Some(moves)
    }

    fn count_owned(&self, worker: NodeId) -> usize {
        self.history
            .values()
            .filter(|h| h.last() == Some(&worker))
            .count()
    }
}

/// Splits `total` data items into `blocks` nearly equal index ranges;
/// block `b` covers `ranges[b].0 .. ranges[b].1`.
pub fn block_ranges(total: usize, blocks: u32) -> Vec<(usize, usize)> {
    let blocks = blocks.max(1) as usize;
    let base = total / blocks;
    let extra = total % blocks;
    let mut out = Vec::with_capacity(blocks);
    let mut start = 0;
    for b in 0..blocks {
        let len = base + usize::from(b < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn initial_assignment_is_balanced() {
        let a = DataAssignment::new(10, &[n(1), n(2), n(3)]).unwrap();
        let loads: Vec<usize> = [1, 2, 3].iter().map(|i| a.blocks_of(n(*i)).len()).collect();
        assert_eq!(loads.iter().sum::<usize>(), 10);
        assert!(loads.iter().max().unwrap() - loads.iter().min().unwrap() <= 1);
        assert!(DataAssignment::new(4, &[]).is_none());
    }

    #[test]
    fn rebalance_adds_new_worker_with_min_moves() {
        let mut a = DataAssignment::new(8, &[n(1), n(2)]).unwrap();
        let moves = a.rebalance(&[n(1), n(2), n(3)]).unwrap();
        // New worker should end with ceil/floor share.
        let l3 = a.blocks_of(n(3)).len();
        assert!(l3 == 2 || l3 == 3, "new worker got {l3}");
        // Only blocks that moved to n(3) are reported.
        assert_eq!(moves.len(), l3);
        assert!(moves.iter().all(|(_, _, to)| *to == n(3)));
        // Every block still has exactly one owner among the three.
        for b in 0..8 {
            assert!(a.owner_of(BlockId(b)).is_some());
        }
    }

    #[test]
    fn eviction_returns_blocks_to_previous_owner() {
        let mut a = DataAssignment::new(4, &[n(1), n(2)]).unwrap();
        // Add worker 3; it takes some blocks from 1 and/or 2.
        a.rebalance(&[n(1), n(2), n(3)]).unwrap();
        let taken = a.blocks_of(n(3));
        assert!(!taken.is_empty());
        // Evict worker 3: each block must return to a previous owner
        // (worker 1 or 2), exercising the Fig. 5 fallback.
        let moves = a.remove_worker(n(3), &[n(1), n(2)]).unwrap();
        assert_eq!(moves.len(), taken.len());
        for (b, new_owner) in moves {
            assert!(new_owner == n(1) || new_owner == n(2));
            assert_eq!(a.owner_of(b), Some(new_owner));
        }
        assert!(a.blocks_of(n(3)).is_empty());
    }

    #[test]
    fn remove_worker_without_survivors_is_none() {
        let mut a = DataAssignment::new(4, &[n(1)]).unwrap();
        assert!(a.remove_worker(n(1), &[]).is_none());
        // Unchanged.
        assert_eq!(a.blocks_of(n(1)).len(), 4);
    }

    #[test]
    fn block_ranges_partition_exactly() {
        let r = block_ranges(10, 3);
        assert_eq!(r, vec![(0, 4), (4, 7), (7, 10)]);
        let r = block_ranges(2, 4);
        assert_eq!(r.iter().map(|(a, b)| b - a).sum::<usize>(), 2);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn topology_lookups() {
        let topo = Topology {
            version: 1,
            stage: Stage::Stage2,
            partition_owner: vec![n(5), n(6), n(5)],
            backup_owner: vec![Some(n(0)), Some(n(0)), Some(n(1))],
            workers: vec![n(5), n(6)],
        };
        assert_eq!(topo.owner_of(PartitionId(1)), n(6));
        assert_eq!(topo.backup_of(PartitionId(2)), Some(n(1)));
        assert_eq!(
            topo.partitions_owned_by(n(5)),
            vec![PartitionId(0), PartitionId(2)]
        );
        assert_eq!(topo.partition_count(), 3);
    }

    proptest! {
        #[test]
        fn rebalance_always_balances(
            blocks in 1u32..40,
            initial in 1usize..5,
            later in 1usize..8,
        ) {
            let initial_workers: Vec<NodeId> = (0..initial as u32).map(n).collect();
            let later_workers: Vec<NodeId> = (0..later as u32).map(n).collect();
            let mut a = DataAssignment::new(blocks, &initial_workers).unwrap();
            a.rebalance(&later_workers).unwrap();
            let loads: Vec<usize> = later_workers.iter().map(|w| a.blocks_of(*w).len()).collect();
            prop_assert_eq!(loads.iter().sum::<usize>(), blocks as usize);
            prop_assert!(loads.iter().max().unwrap() - loads.iter().min().unwrap() <= 1);
            // Blocks owned by retired workers are all reassigned.
            for b in 0..blocks {
                let owner = a.owner_of(BlockId(b)).unwrap();
                prop_assert!(later_workers.contains(&owner));
            }
        }

        #[test]
        fn every_block_always_owned_after_evictions(
            blocks in 1u32..20,
            evict_order in proptest::sample::subsequence(vec![0u32,1,2,3], 0..4),
        ) {
            let workers: Vec<NodeId> = (0..5u32).map(n).collect();
            let mut a = DataAssignment::new(blocks, &workers).unwrap();
            let mut alive: Vec<NodeId> = workers.clone();
            for e in evict_order {
                let victim = n(e);
                alive.retain(|w| *w != victim);
                a.remove_worker(victim, &alive).unwrap();
                for b in 0..blocks {
                    let owner = a.owner_of(BlockId(b)).unwrap();
                    prop_assert!(alive.contains(&owner));
                }
            }
        }
    }
}
