//! Worker-side iteration machinery.
//!
//! A worker processes its assigned input-data blocks once per clock:
//! it reads the parameters its data needs from the serving PSs, runs the
//! application's `process` over every datum (buffering updates in the
//! write-back cache), flushes coalesced update batches to the partition
//! owners, and reports `ClockDone` to the controller. Progress is gated
//! by the SSP condition against the controller-broadcast global minimum
//! clock.
//!
//! [`WorkerState`] is a pure state machine: it *returns* the messages to
//! send instead of sending them, so iteration logic is unit-testable
//! without threads; `node.rs` performs the actual I/O.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proteus_mlapps::app::{MlApp, ParamReader};
use proteus_ps::{DenseVec, KeySet, ParamKey, PartitionId, PartitionMap, WorkerCache};
use proteus_simnet::NodeId;
use rand::rngs::StdRng;

use crate::error::ProtocolError;
use crate::msg::{AgileMsg, Values};
use crate::topology::{block_ranges, BlockId, Topology};

/// Finds the first `ReadReq` in an outbox as `(destination, token)`,
/// tolerating interleaved or duplicated traffic around it.
///
/// Returns a typed [`ProtocolError`] instead of panicking when no read
/// request is present, so harnesses report protocol-shape violations as
/// failures with context rather than aborting the process.
pub fn find_read_req(out: &[(NodeId, AgileMsg)]) -> Result<(NodeId, u64), ProtocolError> {
    for (dst, msg) in out {
        if let AgileMsg::ReadReq { token, .. } = msg {
            return Ok((*dst, *token));
        }
    }
    Err(ProtocolError {
        expected: "ReadReq",
        got: format!("{:?}", out.iter().map(|(_, m)| m).collect::<Vec<_>>()),
    })
}

/// Where the worker is within its iteration cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerPhase {
    /// Not iterating (before `Start`, after `Stop`, or no data assigned).
    Idle,
    /// Gated on the SSP barrier.
    WaitBarrier,
    /// Waiting for `pending` read responses with the given token.
    WaitReads {
        /// Read token outstanding.
        token: u64,
        /// Responses still missing.
        pending: usize,
    },
}

/// Messages a worker wants sent, as `(destination, message)` pairs.
pub type Outbox = Vec<(NodeId, AgileMsg)>;

/// The worker half of an AgileML node.
pub struct WorkerState<A: MlApp> {
    app: Arc<A>,
    /// The full dataset ("S3"); blocks are loaded (cloned) from here.
    dataset: Arc<Vec<A::Datum>>,
    /// Block → index range table, fixed at job start.
    ranges: Vec<(usize, usize)>,
    /// Loaded blocks with their (mutable, scratch-bearing) data.
    local: BTreeMap<BlockId, Vec<A::Datum>>,
    layout: PartitionMap,
    cache: WorkerCache<DenseVec>,
    rng: StdRng,
    /// Completed iteration count.
    clock: u64,
    /// Latest `GlobalClock.min` accepted.
    global_min: u64,
    slack: u64,
    epoch: u64,
    started: bool,
    phase: WorkerPhase,
    /// Owners that still owe a response for the current read round.
    /// Responses are counted per *owner*, not per message, so a
    /// duplicated `ReadResp` (fault injection) cannot complete a round
    /// while another owner's values are still missing.
    read_sources: BTreeSet<NodeId>,
    next_token: u64,
    controller: NodeId,
}

/// Cache-backed parameter reader with a zero fallback of the app's
/// declared dimension.
struct CacheReader<'a, A: MlApp> {
    app: &'a A,
    cache: &'a WorkerCache<DenseVec>,
}

impl<'a, A: MlApp> ParamReader for CacheReader<'a, A> {
    fn get(&self, key: ParamKey) -> DenseVec {
        self.cache
            .read(key)
            .cloned()
            .unwrap_or_else(|| DenseVec::zeros(self.app.value_dim(key)))
    }
}

impl<A: MlApp> WorkerState<A> {
    /// Creates an idle worker.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        app: Arc<A>,
        dataset: Arc<Vec<A::Datum>>,
        data_blocks: u32,
        layout: PartitionMap,
        slack: u64,
        rng: StdRng,
        controller: NodeId,
        _me: NodeId,
    ) -> Self {
        let ranges = block_ranges(dataset.len(), data_blocks);
        WorkerState {
            app,
            dataset,
            ranges,
            local: BTreeMap::new(),
            layout,
            cache: WorkerCache::new(layout),
            rng,
            clock: 0,
            global_min: 0,
            slack,
            epoch: 0,
            started: false,
            phase: WorkerPhase::Idle,
            read_sources: BTreeSet::new(),
            next_token: 0,
            controller,
        }
    }

    /// Completed iterations.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Current phase (diagnostics).
    pub fn phase(&self) -> WorkerPhase {
        self.phase
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this worker currently has data to process.
    pub fn has_data(&self) -> bool {
        !self.local.is_empty()
    }

    /// Applies a (re)assignment of data blocks: loads newly assigned
    /// blocks from the dataset, drops removed ones (keeping scratch state
    /// of retained blocks).
    pub fn assign_blocks(&mut self, blocks: &[BlockId]) {
        let wanted: std::collections::BTreeSet<BlockId> = blocks.iter().copied().collect();
        self.local.retain(|b, _| wanted.contains(b));
        for b in blocks {
            if !self.local.contains_key(b) {
                let (lo, hi) = self.ranges.get(b.0 as usize).copied().unwrap_or((0, 0));
                self.local.insert(*b, self.dataset[lo..hi].to_vec());
            }
        }
        if self.local.is_empty() && matches!(self.phase, WorkerPhase::WaitBarrier) {
            self.phase = WorkerPhase::Idle;
        }
    }

    /// Sets the clock to resume from (first configuration or recovery).
    pub fn set_clock(&mut self, clock: u64) {
        self.clock = clock;
        self.global_min = self.global_min.max(clock);
    }

    /// Enters `epoch` without a rollback — the first configuration of a
    /// node added after a recovery bumped the epoch. A worker left at
    /// epoch 0 would have every `ClockDone` dropped as stale and would
    /// ignore every `GlobalClock` broadcast, wedging the consistent
    /// clock at the rollback target.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Marks the worker started (controller `Start`).
    pub fn start(&mut self) {
        self.started = true;
        if matches!(self.phase, WorkerPhase::Idle) && self.has_data() {
            self.phase = WorkerPhase::WaitBarrier;
        }
    }

    /// Stops iterating (stage-3 reliable nodes, job end).
    pub fn stop(&mut self) {
        self.started = false;
        self.phase = WorkerPhase::Idle;
    }

    /// Handles a `GlobalClock` broadcast.
    pub fn on_global_clock(&mut self, min: u64, epoch: u64) {
        if epoch == self.epoch && min > self.global_min {
            self.global_min = min;
        }
    }

    /// Handles failure recovery: clears cached parameters, rewinds to
    /// `clock`, enters the new epoch, and pauses until `Start`.
    pub fn restart_from(&mut self, clock: u64, epoch: u64) {
        self.cache.clear();
        self.clock = clock;
        self.global_min = clock;
        self.epoch = epoch;
        self.started = false;
        self.phase = WorkerPhase::Idle;
    }

    /// Aborts an in-flight read round (no updates were flushed yet), so
    /// the iteration restarts against fresh routing. Called on topology
    /// changes: a pending response may be owed by a machine that just
    /// left the computation.
    pub fn abort_inflight_reads(&mut self) {
        if matches!(self.phase, WorkerPhase::WaitReads { .. }) {
            self.phase = WorkerPhase::WaitBarrier;
            self.read_sources.clear();
        }
    }

    /// Whether the SSP condition admits starting the next iteration.
    fn may_proceed(&self) -> bool {
        self.clock.saturating_sub(self.global_min) <= self.slack
    }

    /// Drives the state machine forward; returns messages to send.
    ///
    /// Call after any event that may unblock the worker (start, clock
    /// broadcast, block assignment).
    pub fn poll(&mut self, topology: &Topology) -> Outbox {
        if !self.started || !self.has_data() || self.phase != WorkerPhase::WaitBarrier {
            // WaitReads progresses via `on_read_resp`; Idle via `start`.
            if self.started && self.has_data() && self.phase == WorkerPhase::Idle {
                self.phase = WorkerPhase::WaitBarrier;
            } else {
                return Vec::new();
            }
        }
        if !self.may_proceed() {
            return Vec::new();
        }
        self.begin_reads(topology)
    }

    /// Issues the read requests for this iteration.
    fn begin_reads(&mut self, topology: &Topology) -> Outbox {
        // Union of keys needed by all local data, grouped by owner.
        let mut keys: Vec<ParamKey> = Vec::new();
        for data in self.local.values() {
            for datum in data {
                keys.extend(self.app.keys_for(datum));
            }
        }
        keys.sort();
        keys.dedup();

        let mut by_owner: BTreeMap<NodeId, Vec<ParamKey>> = BTreeMap::new();
        for k in keys {
            let p = self.layout.partition_of(k);
            let owner = topology.owner_of(PartitionId(p.0));
            by_owner.entry(owner).or_default().push(k);
        }

        let token = self.next_token;
        self.next_token += 1;
        let pending = by_owner.len();
        if pending == 0 {
            // No parameters needed (degenerate); complete immediately.
            self.phase = WorkerPhase::WaitReads { token, pending: 0 };
            self.read_sources.clear();
            return self.finish_iteration(topology);
        }
        self.phase = WorkerPhase::WaitReads { token, pending };
        self.read_sources = by_owner.keys().copied().collect();
        by_owner
            .into_iter()
            .map(|(owner, keys)| {
                // Per-owner keys are sorted (global sort + stable owner
                // grouping) and near-arithmetic under the modulo layout,
                // so they compress into a handful of strided runs.
                let keys = KeySet::from_sorted(&keys);
                (owner, AgileMsg::ReadReq { token, keys })
            })
            .collect()
    }

    /// Handles a read response from `from`; when the last outstanding
    /// owner answers, processes the data and returns the flush + clock
    /// messages. Duplicated or stale responses are ignored.
    pub fn on_read_resp(
        &mut self,
        from: NodeId,
        token: u64,
        values: Values,
        topology: &Topology,
    ) -> Outbox {
        match self.phase {
            WorkerPhase::WaitReads { token: t, .. } if t == token => {
                if !self.read_sources.remove(&from) {
                    // Duplicate from an owner that already answered (or
                    // a sender we never asked): nothing new to count.
                    return Vec::new();
                }
                for (k, v) in values {
                    self.cache.refresh(k, v);
                }
                let left = self.read_sources.len();
                self.phase = WorkerPhase::WaitReads {
                    token,
                    pending: left,
                };
                if left == 0 {
                    self.finish_iteration(topology)
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(), // Stale response from a previous iteration.
        }
    }

    /// A read request to `dst` failed (owner unreachable mid-eviction):
    /// count it as an empty response so the iteration proceeds on cached
    /// values.
    pub fn on_read_failed(&mut self, dst: NodeId, token: u64, topology: &Topology) -> Outbox {
        self.on_read_resp(dst, token, Values::new(), topology)
    }

    /// Processes all local data and emits update batches + `ClockDone`.
    fn finish_iteration(&mut self, topology: &Topology) -> Outbox {
        // Process every datum, buffering updates in the cache.
        let mut local = std::mem::take(&mut self.local);
        for data in local.values_mut() {
            for datum in data.iter_mut() {
                let updates = {
                    let reader = CacheReader {
                        app: self.app.as_ref(),
                        cache: &self.cache,
                    };
                    self.app.process(datum, &reader, &mut self.rng)
                };
                for (k, d) in updates {
                    self.cache.update(k, &d);
                }
            }
        }
        self.local = local;

        // Flush coalesced batches to partition owners. Each batch moves
        // into a shared `Values` buffer once; every downstream clone of
        // the message (simnet hop, fault duplicate) is an Arc bump.
        let mut out: Outbox = Vec::new();
        for (partition, updates) in self.cache.flush() {
            let owner = topology.owner_of(partition);
            out.push((
                owner,
                AgileMsg::UpdateBatch {
                    partition,
                    clock: self.clock,
                    epoch: self.epoch,
                    updates: updates.into(),
                },
            ));
        }

        self.clock += 1;
        out.push((
            self.controller,
            AgileMsg::ClockDone {
                clock: self.clock,
                epoch: self.epoch,
            },
        ));
        self.phase = WorkerPhase::WaitBarrier;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_mlapps::mf::{MatrixFactorization, MfConfig, Rating};
    use proteus_simtime::rng::seeded;
    use std::sync::Arc;

    fn mini_app() -> Arc<MatrixFactorization> {
        Arc::new(MatrixFactorization::new(MfConfig {
            rows: 4,
            cols: 4,
            rank: 2,
            learning_rate: 0.1,
            reg: 0.0,
            init_scale: 0.1,
        }))
    }

    fn mini_data() -> Arc<Vec<Rating>> {
        Arc::new(vec![
            Rating {
                row: 0,
                col: 0,
                value: 1.0,
            },
            Rating {
                row: 1,
                col: 1,
                value: -1.0,
            },
            Rating {
                row: 2,
                col: 2,
                value: 0.5,
            },
            Rating {
                row: 3,
                col: 3,
                value: 0.2,
            },
        ])
    }

    fn topo(owner: NodeId) -> Topology {
        Topology {
            version: 1,
            stage: crate::stage::Stage::Stage1,
            partition_owner: vec![owner; 2],
            backup_owner: vec![None; 2],
            workers: vec![NodeId(5)],
        }
    }

    fn worker() -> WorkerState<MatrixFactorization> {
        WorkerState::new(
            mini_app(),
            mini_data(),
            2,
            PartitionMap::new(2).unwrap(),
            0,
            seeded(1),
            NodeId(0),
            NodeId(5),
        )
    }

    #[test]
    fn idle_until_started_and_assigned() {
        let mut w = worker();
        let t = topo(NodeId(1));
        assert!(w.poll(&t).is_empty());
        w.start();
        assert!(w.poll(&t).is_empty(), "no data yet");
        w.assign_blocks(&[BlockId(0), BlockId(1)]);
        let out = w.poll(&t);
        assert!(!out.is_empty(), "reads should be issued");
        assert!(matches!(w.phase(), WorkerPhase::WaitReads { .. }));
    }

    #[test]
    fn iteration_flow_reads_then_updates_then_clock() -> Result<(), ProtocolError> {
        let mut w = worker();
        let t = topo(NodeId(1));
        w.assign_blocks(&[BlockId(0), BlockId(1)]);
        w.start();
        let reads = w.poll(&t);
        assert_eq!(reads.len(), 1, "single owner gets one read");
        let (dst, token) = find_read_req(&reads)?;
        assert_eq!(dst, NodeId(1));
        assert!(reads
            .iter()
            .any(|(_, m)| matches!(m, AgileMsg::ReadReq { keys, .. } if !keys.is_empty())));
        let out = w.on_read_resp(dst, token, Values::new(), &t);
        // Updates to owner plus ClockDone to controller.
        assert!(out
            .iter()
            .any(|(_, m)| matches!(m, AgileMsg::UpdateBatch { .. })));
        let clock_done = out
            .iter()
            .find(|(_, m)| matches!(m, AgileMsg::ClockDone { .. }))
            .ok_or_else(|| ProtocolError {
                expected: "ClockDone",
                got: format!("{:?}", out.iter().map(|(_, m)| m).collect::<Vec<_>>()),
            })?;
        assert_eq!(clock_done.0, NodeId(0));
        assert_eq!(w.clock(), 1);
        Ok(())
    }

    #[test]
    fn ssp_barrier_blocks_until_global_clock() -> Result<(), ProtocolError> {
        let mut w = worker();
        let t = topo(NodeId(1));
        w.assign_blocks(&[BlockId(0)]);
        w.start();
        // Complete iteration 0.
        let (dst, token) = find_read_req(&w.poll(&t))?;
        w.on_read_resp(dst, token, Values::new(), &t);
        assert_eq!(w.clock(), 1);
        // Slack 0: cannot start clock 1 until global min reaches 1.
        assert!(w.poll(&t).is_empty());
        w.on_global_clock(1, 0);
        assert!(!w.poll(&t).is_empty());
        Ok(())
    }

    #[test]
    fn stale_read_responses_are_ignored() -> Result<(), ProtocolError> {
        let mut w = worker();
        let t = topo(NodeId(1));
        w.assign_blocks(&[BlockId(0)]);
        w.start();
        let (dst, token) = find_read_req(&w.poll(&t))?;
        assert!(w
            .on_read_resp(dst, token + 99, Values::new(), &t)
            .is_empty());
        assert_eq!(w.clock(), 0);
        assert!(!w.on_read_resp(dst, token, Values::new(), &t).is_empty());
        Ok(())
    }

    #[test]
    fn duplicate_read_responses_are_counted_once() -> Result<(), ProtocolError> {
        // Two partitions on two owners → two outstanding responses. A
        // duplicated response from the first owner must not complete
        // the round while the second owner's values are still missing.
        let mut w = worker();
        let t = Topology {
            version: 1,
            stage: crate::stage::Stage::Stage1,
            partition_owner: vec![NodeId(1), NodeId(2)],
            backup_owner: vec![None; 2],
            workers: vec![NodeId(5)],
        };
        w.assign_blocks(&[BlockId(0), BlockId(1)]);
        w.start();
        let reads = w.poll(&t);
        assert_eq!(reads.len(), 2, "one read per owner");
        let (_, token) = find_read_req(&reads)?;
        assert!(w
            .on_read_resp(NodeId(1), token, Values::new(), &t)
            .is_empty());
        // Fault-injected duplicate of owner 1's response.
        assert!(w
            .on_read_resp(NodeId(1), token, Values::new(), &t)
            .is_empty());
        assert_eq!(w.clock(), 0, "round must not complete on a duplicate");
        // Owner 2's (unique) response completes the round.
        assert!(!w
            .on_read_resp(NodeId(2), token, Values::new(), &t)
            .is_empty());
        assert_eq!(w.clock(), 1);
        Ok(())
    }

    #[test]
    fn restart_rewinds_and_pauses() -> Result<(), ProtocolError> {
        let mut w = worker();
        let t = topo(NodeId(1));
        w.assign_blocks(&[BlockId(0)]);
        w.start();
        let (dst, token) = find_read_req(&w.poll(&t))?;
        w.on_read_resp(dst, token, Values::new(), &t);
        assert_eq!(w.clock(), 1);
        w.restart_from(0, 1);
        assert_eq!(w.clock(), 0);
        assert_eq!(w.epoch(), 1);
        assert!(w.poll(&t).is_empty(), "paused until Start");
        // Old-epoch clock broadcasts are ignored after restart.
        w.on_global_clock(50, 0);
        w.start();
        let out = w.poll(&t);
        assert!(!out.is_empty());
        Ok(())
    }

    #[test]
    fn block_reassignment_preserves_loaded_blocks() {
        let mut w = worker();
        w.assign_blocks(&[BlockId(0), BlockId(1)]);
        assert!(w.has_data());
        w.assign_blocks(&[BlockId(1)]);
        assert!(w.has_data());
        w.assign_blocks(&[]);
        assert!(!w.has_data());
    }
}
