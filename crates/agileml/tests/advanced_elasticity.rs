//! Advanced elasticity scenarios: bounded staleness, high-ratio stage
//! transitions, repeated churn, LDA under elasticity, and snapshot
//! consistency.

use proteus_agileml::{AgileConfig, AgileMlJob, JobEvent, Stage};
use proteus_mlapps::data::{netflix_like, nytimes_like, LdaDataConfig, MfDataConfig};
use proteus_mlapps::lda::{Lda, LdaConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig};
use proteus_mlapps::MlApp;
use proteus_simnet::NodeClass;

fn mf_app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 30,
        cols: 20,
        rank: 3,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn mf_data() -> Vec<proteus_mlapps::mf::Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 30,
            cols: 20,
            true_rank: 2,
            observed: 500,
            noise: 0.02,
        },
        3,
    )
}

#[test]
fn ssp_slack_allows_progress_and_converges() {
    let data = mf_data();
    let cfg = AgileConfig {
        slack: 2, // Bounded staleness instead of BSP.
        partitions: 4,
        data_blocks: 8,
        seed: 3,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg, 1, 3).expect("launch");
    job.wait_clock(25).expect("progress");
    let obj = job.objective(&data).expect("objective");
    assert!(obj < 0.1, "SSP training converges: {obj}");
    job.shutdown().expect("shutdown");
}

#[test]
fn high_ratio_growth_reaches_stage3() {
    // 1 reliable; grow transient from 2 to 17 → ratio 17 > 15 → stage 3.
    let data = mf_data();
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 24,
        seed: 5,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg, 1, 2).expect("launch");
    assert_eq!(job.status().expect("status").stage, Stage::Stage2);
    job.wait_clock(3).expect("warm-up");

    job.add_machines(NodeClass::Transient, 15).expect("add");
    let status = job.status().expect("status");
    assert_eq!(
        status.stage,
        Stage::Stage3,
        "17:1 ratio crosses the 15:1 threshold"
    );
    // Stage 3: the reliable machine runs no worker.
    assert_eq!(status.workers, 17, "only the transient machines work");
    assert!(job.events().iter().any(|e| matches!(
        e,
        JobEvent::StageChanged {
            from: Stage::Stage2,
            to: Stage::Stage3
        }
    )));

    let min = status.min_clock;
    job.wait_clock(min + 10).expect("progress in stage 3");
    let obj = job.objective(&data).expect("objective");
    assert!(obj < 0.15, "stage 3 training converges: {obj}");

    // Shrink back below the threshold: stage must drop out of 3 and the
    // reliable worker must resume.
    let victims: Vec<_> = (8..=18).map(proteus_simnet::NodeId).collect();
    job.evict_with_warning(&victims).expect("evict");
    let status = job.status().expect("status");
    assert_ne!(status.stage, Stage::Stage3);
    assert_eq!(status.transient, 6);
    job.shutdown().expect("shutdown");
}

#[test]
fn repeated_churn_cycles_are_survivable() {
    let data = mf_data();
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 12,
        seed: 9,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg, 1, 2).expect("launch");
    job.wait_clock(3).expect("warm-up");

    for round in 0..3 {
        let added = job
            .add_machines(NodeClass::Transient, 2)
            .unwrap_or_else(|e| panic!("add round {round}: {e}"));
        let min = job.status().expect("status").min_clock;
        job.wait_clock(min + 3).expect("progress");
        job.evict_with_warning(&added)
            .unwrap_or_else(|e| panic!("evict round {round}: {e}"));
        let min = job.status().expect("status").min_clock;
        job.wait_clock(min + 3).expect("progress");
    }
    let status = job.status().expect("status");
    assert_eq!(status.transient, 2, "back to the original footprint");
    let obj = job.objective(&data).expect("objective");
    assert!(obj < 0.2, "training survived three churn cycles: {obj}");
    job.shutdown().expect("shutdown");
}

#[test]
fn lda_trains_under_elasticity() {
    let data_cfg = LdaDataConfig {
        docs: 24,
        vocab: 40,
        true_topics: 2,
        doc_len: 40,
        topic_purity: 0.95,
    };
    let docs = nytimes_like(&data_cfg, 21, 2);
    let app = Lda::new(LdaConfig {
        vocab: 40,
        topics: 2,
        alpha: 0.1,
        beta: 0.05,
    });
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 8,
        seed: 21,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(app, docs.clone(), cfg, 1, 2).expect("launch");
    job.wait_clock(5).expect("warm-up");

    let added = job.add_machines(NodeClass::Transient, 2).expect("add");
    job.wait_clock(15).expect("progress");
    job.evict_with_warning(&added).expect("evict");
    job.wait_clock(25).expect("progress");

    // The generator gives each ground-truth topic a disjoint vocabulary
    // slice (words 0..19 vs 20..39). After Gibbs sweeps — through an
    // add/evict cycle — the learned word-topic counts must separate the
    // two groups: within-group words agree on a dominant topic and the
    // two groups disagree.
    let snap = job.snapshot().expect("snapshot");
    let dominant = |word: u64| -> Option<usize> {
        snap.params.get(&proteus_ps::ParamKey(word)).map(|v| {
            v.as_slice()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("counts finite"))
                .map(|(k, _)| k)
                .expect("topics nonzero")
        })
    };
    let group_votes = |lo: u64, hi: u64| -> (usize, usize) {
        let votes: Vec<usize> = (lo..hi).filter_map(dominant).collect();
        let ones = votes.iter().filter(|&&k| k == 1).count();
        (votes.len() - ones, ones)
    };
    let (a0, a1) = group_votes(0, 20);
    let (b0, b1) = group_votes(20, 40);
    let a_major = usize::from(a1 > a0);
    let b_major = usize::from(b1 > b0);
    assert_ne!(
        a_major, b_major,
        "the two vocabulary groups must land in different topics \
         (group A votes {a0}/{a1}, group B votes {b0}/{b1})"
    );
    let coherence = |zero: usize, one: usize| zero.max(one) as f64 / (zero + one).max(1) as f64;
    assert!(
        coherence(a0, a1) > 0.7 && coherence(b0, b1) > 0.7,
        "topic coherence within groups: A {a0}/{a1}, B {b0}/{b1}"
    );
    job.shutdown().expect("shutdown");
}

#[test]
fn kmeans_trains_distributed_with_elasticity() {
    // The fourth application (paper Sec. 3.2 lists K-means among the
    // stateless-worker workloads): distributed mini-batch K-means must
    // keep reducing distortion through an add/evict cycle.
    use proteus_mlapps::kmeans::{blobs, KMeans, KmConfig};
    let dim = 2;
    let data = blobs(180, dim, 3, 4.0, 0.3, 25);
    let app = KMeans::new(KmConfig {
        dim,
        clusters: 3,
        init_scale: 3.0,
    });
    let cfg = AgileConfig {
        partitions: 3,
        data_blocks: 8,
        seed: 25,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(app, data.clone(), cfg, 1, 2).expect("launch");
    job.wait_clock(4).expect("warm-up");
    let early = job.objective(&data).expect("objective");

    let added = job.add_machines(NodeClass::Transient, 2).expect("add");
    job.wait_clock(12).expect("progress");
    job.evict_with_warning(&[added[0]]).expect("evict");
    job.wait_clock(20).expect("progress");

    let late = job.objective(&data).expect("objective");
    assert!(
        late < early,
        "distortion keeps falling through churn: {early} -> {late}"
    );
    assert!(late < 2.0, "near the blob noise floor: {late}");
    job.shutdown().expect("shutdown");
}

#[test]
fn snapshots_are_complete_during_churn() {
    let data = mf_data();
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 8,
        seed: 11,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(mf_app(), data, cfg, 1, 3).expect("launch");
    job.wait_clock(5).expect("warm-up");
    let key_count = job.app().key_count();
    // Snapshot while training runs (workers mid-iteration).
    let snap = job.snapshot().expect("snapshot");
    assert_eq!(
        snap.params.len() as u64,
        key_count,
        "every parameter key is materialized in the snapshot"
    );
    // And again right after an eviction.
    job.evict_with_warning(&[proteus_simnet::NodeId(3)])
        .expect("evict");
    let snap = job.snapshot().expect("snapshot after eviction");
    assert_eq!(snap.params.len() as u64, key_count);
    job.shutdown().expect("shutdown");
}

#[test]
fn full_transient_loss_without_warning_promotes_backups() {
    // The paper's Sec. 3.3 "all or most of the transient resources fail"
    // case: BackupPSs take the last consistent state as the new solution
    // state; reliable workers redo the lost work.
    let data = mf_data();
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 8,
        seed: 17,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg, 1, 3).expect("launch");
    assert_eq!(job.status().expect("status").stage, Stage::Stage2);
    job.wait_clock(8).expect("warm-up");
    let mid = job.objective(&data).expect("objective");

    // Kill every transient machine at once, no warning.
    let victims: Vec<_> = (2..=4).map(proteus_simnet::NodeId).collect();
    let rolled = job.fail_nodes(&victims).expect("bulk failure");
    assert!(
        rolled <= 8 + 2,
        "rolled back near the failure point: {rolled}"
    );

    let status = job.status().expect("status");
    assert_eq!(status.stage, Stage::Stage1, "job degenerates to stage 1");
    assert_eq!(status.transient, 0);
    assert_eq!(status.workers, 1, "the reliable machine works alone");

    // The recovered state must be a *trained* state (rollback to the
    // last backup push, not to scratch) and training must continue.
    let recovered = job.objective(&data).expect("objective");
    assert!(
        recovered < mid * 3.0 + 0.02,
        "recovered from backup, not from scratch: {mid} -> {recovered}"
    );
    job.wait_clock(rolled + 8).expect("reliable-only progress");
    let later = job.objective(&data).expect("objective");
    assert!(
        later < recovered * 1.1,
        "keeps converging: {recovered} -> {later}"
    );
    job.shutdown().expect("shutdown");
}

#[test]
fn checkpoint_restores_across_job_launches() {
    // Sec. 3.3: reliable-resource checkpointing. Train, checkpoint,
    // tear the whole job down (simulating a reliable-tier failure or a
    // job-sequence boundary), relaunch from the checkpoint, and verify
    // the model picks up where it left off.
    let data = mf_data();
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 8,
        seed: 29,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg, 1, 2).expect("launch");
    job.wait_clock(15).expect("train");
    let trained_obj = job.objective(&data).expect("objective");
    let checkpoint = job.snapshot().expect("checkpoint");
    job.shutdown().expect("shutdown");

    // Relaunch from the checkpoint: the restored model must score the
    // same objective immediately (no retraining).
    let mut job2 =
        AgileMlJob::launch_from_checkpoint(mf_app(), data.clone(), cfg, 1, 2, checkpoint)
            .expect("relaunch");
    let restored_obj = job2.objective(&data).expect("objective");
    assert!(
        (restored_obj - trained_obj).abs() < trained_obj * 0.35 + 1e-3,
        "restored model matches (workers may have applied a first \
         iteration already): {trained_obj} -> {restored_obj}"
    );
    assert!(
        restored_obj < 0.2,
        "restored model is trained, not random: {restored_obj}"
    );
    job2.wait_clock(5).expect("continues training");
    let continued = job2.objective(&data).expect("objective");
    assert!(continued <= restored_obj * 1.1, "keeps converging");
    job2.shutdown().expect("shutdown");
}

#[test]
fn failure_after_growth_recovers_partitions_to_survivors() {
    let data = mf_data();
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 12,
        seed: 13,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg, 1, 2).expect("launch");
    job.wait_clock(5).expect("warm-up");
    let added = job.add_machines(NodeClass::Transient, 2).expect("add");

    // Kill one original ActivePS host AND one new node at once (bulk
    // correlated failure).
    let rolled = job
        .fail_nodes(&[proteus_simnet::NodeId(2), added[0]])
        .expect("bulk failure recovery");
    let status = job.status().expect("status");
    assert_eq!(status.transient, 2);
    job.wait_clock(rolled + 10)
        .expect("progress after recovery");
    let obj = job.objective(&data).expect("objective");
    assert!(obj < 0.25, "recovered training converges: {obj}");
    job.shutdown().expect("shutdown");
}
