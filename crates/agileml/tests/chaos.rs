//! Seed-deterministic chaos suite for AgileML over simnet.
//!
//! Every scenario here is a *fault schedule* applied to a real training
//! job: message faults (drop / duplicate / delay) go through the
//! [`FaultPlan`] installed at the cluster boundary, node faults
//! (crash-without-warning, warning-with-no-eviction,
//! warning-then-crash-before-drain, scripted eviction storms) go through
//! the driver. The contract under every schedule is the same: the job
//! either converges to the fault-free objective or surfaces a typed
//! [`JobError`] — it never panics and never wedges past a driver timeout.
//!
//! Each run prints `chaos: scenario=<name> seed=<seed>` *before* doing
//! anything, so a failure in CI is reproducible from the printed seed
//! alone: `PROTEUS_CHAOS_SEEDS=<seed> cargo test -p proteus-agileml
//! --test chaos <name>`. `PROTEUS_CHAOS_FULL=1` widens the sweep.
//!
//! The named tests double as regression tests for bugs this harness
//! found: the `expect("partial eviction leaves surviving actives")`
//! panics on the total-ActivePS eviction storm, the `ReadReq` protocol
//! panic on duplicated traffic, and rejoining workers dragging the
//! consistent clock back to zero.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use proptest::prelude::*;
use proteus_agileml::msg::AgileMsg;
use proteus_agileml::{AgileConfig, AgileMlJob, JobError, JobEvent, JobFault, Stage};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig, Rating};
use proteus_obs::Recorder;
use proteus_ps::ClockTable;
use proteus_simnet::{
    ClusterHandle, FaultPlan, FaultRule, NodeClass, NodeId, OBS_MSG_DELAYED, OBS_MSG_DROPPED,
    OBS_MSG_DUPLICATED,
};

/// Clock every scenario trains to before judging the objective.
const TARGET: u64 = 20;
/// Generous per-wait deadline; hit only when a schedule wedges the job.
const STEP: Duration = Duration::from_secs(60);
/// Controller node; machines are numbered from 1 in spawn order.
const CTRL: NodeId = NodeId(0);

fn mf_app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 30,
        cols: 20,
        rank: 3,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn mf_data() -> Vec<Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 30,
            cols: 20,
            true_rank: 2,
            observed: 500,
            noise: 0.02,
        },
        3,
    )
}

/// The canonical chaos shape: stage 2 with every transient node hosting
/// an ActivePS, so storms can revoke 100% of the serving tier at once.
fn chaos_cfg(model_seed: u64) -> AgileConfig {
    AgileConfig {
        slack: 1,
        partitions: 4,
        data_blocks: 8,
        activeps_fraction: 1.0,
        force_stage: Some(Stage::Stage2),
        seed: model_seed,
        ..AgileConfig::default()
    }
}

/// Seeds to sweep. Chaos seeds double as model seeds so the fault-free
/// baseline for a seed is the exact job the faulted run perturbs.
fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("PROTEUS_CHAOS_SEEDS") {
        return s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
    }
    if std::env::var("PROTEUS_CHAOS_FULL").is_ok() {
        return vec![3, 5, 7, 11, 13, 17, 19, 23];
    }
    vec![3, 11]
}

/// Fault-free objective for `chaos_cfg(seed)` at [`TARGET`], cached per
/// seed across scenarios.
fn baseline(seed: u64) -> f64 {
    static CACHE: Mutex<BTreeMap<u64, f64>> = Mutex::new(BTreeMap::new());
    if let Some(v) = CACHE.lock().unwrap().get(&seed) {
        return *v;
    }
    let data = mf_data();
    let mut job =
        AgileMlJob::launch(mf_app(), data.clone(), chaos_cfg(seed), 1, 3).expect("baseline launch");
    job.wait_clock(TARGET).expect("baseline progress");
    let obj = job.objective(&data).expect("baseline objective");
    job.shutdown().expect("baseline shutdown");
    CACHE.lock().unwrap().insert(seed, obj);
    obj
}

fn assert_converged(name: &str, seed: u64, obj: f64) {
    let base = baseline(seed);
    let bar = (2.0 * base).max(0.15);
    assert!(
        obj <= bar,
        "chaos: scenario={name} seed={seed}: objective {obj} above fault-free bar {bar} \
         (baseline {base})"
    );
}

/// Runs `scenario` across the seed sweep. `hard` scenarios must recover
/// and converge; soft ones may instead surface any typed [`JobError`]
/// (the no-panic contract is enforced by the test harness itself).
fn sweep(name: &str, hard: bool, scenario: impl Fn(u64) -> Result<f64, JobError>) {
    for seed in seeds() {
        println!("chaos: scenario={name} seed={seed}");
        match scenario(seed) {
            Ok(obj) => assert_converged(name, seed, obj),
            Err(e) if !hard => {
                println!("chaos: scenario={name} seed={seed} surfaced typed error: {e}");
            }
            Err(e) => panic!("chaos: scenario={name} seed={seed}: expected recovery, got: {e}"),
        }
    }
}

/// Background thread releasing delayed messages so a held-back message
/// can never starve a driver wait (see `FaultLayer` docs: a held message
/// whose pair sees no further traffic would otherwise sleep forever).
struct Flusher {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Flusher {
    fn start(handle: ClusterHandle<AgileMsg>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !seen.load(Ordering::Relaxed) {
                handle.flush_delayed();
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        Flusher {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Waits until `NodesEvicted` events have covered all of `want`.
fn wait_all_evicted(
    job: &mut AgileMlJob<MatrixFactorization>,
    want: &[NodeId],
) -> Result<(), JobError> {
    let want: BTreeSet<NodeId> = want.iter().copied().collect();
    let mut gone = BTreeSet::new();
    job.wait_event(
        move |e| {
            if let JobEvent::NodesEvicted { nodes } = e {
                gone.extend(nodes.iter().copied());
            }
            want.is_subset(&gone)
        },
        STEP,
        "storm drain",
    )
}

// ---------------------------------------------------------------------
// Scenarios (node-fault schedules are scripted; message faults seeded)
// ---------------------------------------------------------------------

/// Revoke every ActivePS at once: the storm that used to panic the
/// controller with `expect("partial eviction leaves surviving actives")`.
/// Must fall back to stage 1 and re-serve from the BackupPSs.
fn storm_all_actives(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), chaos_cfg(seed), 1, 3)?;
    job.wait_clock_for(8, STEP)?;
    job.evict_with_warning(&[NodeId(2), NodeId(3), NodeId(4)])?;
    let st = job.status()?;
    assert_eq!(st.stage, Stage::Stage1, "total storm falls back to stage 1");
    assert_eq!(st.transient, 0, "every transient node drained out");
    assert_eq!(st.active_ps, 0, "no ActivePS survives the storm");
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// Storm arriving in two waves: the second warning lands while the first
/// victim's partitions are still migrating, and ends up revoking 100% of
/// the ActivePSs mid-migration.
fn storm_mid_migration(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), chaos_cfg(seed), 1, 4)?;
    job.wait_clock_for(6, STEP)?;
    // Provider-style warnings, no driver waiting in between: the second
    // wave races the first victim's drain.
    job.warn_only(&[NodeId(2)], 120_000)?;
    job.warn_only(&[NodeId(3), NodeId(4), NodeId(5)], 120_000)?;
    wait_all_evicted(&mut job, &[NodeId(2), NodeId(3), NodeId(4), NodeId(5)])?;
    let st = job.status()?;
    assert_eq!(st.transient, 0);
    assert_eq!(st.stage, Stage::Stage1);
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// Warning-then-crash-before-drain: the provider warns a node and kills
/// it immediately after, racing the controller's drain orders. Whether
/// the migration finished or not, the job must recover (a dead migration
/// source means its in-flight partitions are gone and rollback must run).
fn warn_then_crash(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), chaos_cfg(seed), 1, 3)?;
    job.wait_clock_for(6, STEP)?;
    job.warn_only(&[NodeId(4)], 120_000)?;
    // No drain window: the kill races the EvictionNotice itself.
    job.fail_nodes(&[NodeId(4)])?;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// Warning-with-no-eviction: the notice is dropped by the network, so
/// the controller never drains — training must simply continue. The
/// provider then takes the machine anyway (crash without usable
/// warning) and rollback recovery runs.
fn warning_no_eviction(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let plan = FaultPlan::new(seed).with_rule(FaultRule {
        from: None,
        to: Some(CTRL),
        drop: 1.0,
        duplicate: 0.0,
        delay: 0.0,
        filter: Some(Arc::new(|m: &AgileMsg| {
            matches!(m, AgileMsg::EvictionNotice { .. })
        })),
    });
    let mut job =
        AgileMlJob::launch_with_faults(mf_app(), data.clone(), chaos_cfg(seed), 1, 3, plan)?;
    let rec = Arc::new(Recorder::new());
    job.attach_recorder(Arc::clone(&rec));
    job.wait_clock_for(6, STEP)?;
    job.warn_only(&[NodeId(4)], 120_000)?;
    // The warning is lost; the job keeps training at full membership.
    job.wait_clock_for(10, STEP)?;
    assert!(
        job.events()
            .iter()
            .all(|e| !matches!(e, JobEvent::NodesEvicted { .. })),
        "a dropped warning must not trigger a drain"
    );
    assert_eq!(job.status()?.transient, 3);
    assert!(job.fault_stats().dropped >= 1, "the notice was dropped");
    // The drop must also surface through the metrics registry — the
    // recorder-side counter is the persistent view that survives fault
    // plan swaps, so a silent drop here is an observability bug.
    assert!(
        rec.counter(OBS_MSG_DROPPED) >= 1,
        "dropped notice missing from the recorded counters"
    );
    job.fail_nodes(&[NodeId(4)])?;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// A second crash lands while the first rollback is still in flight
/// (backup clock query / recovery installs outstanding). The queued
/// failure must not wedge the pending recovery.
fn crash_mid_rollback(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), chaos_cfg(seed), 1, 4)?;
    job.wait_clock_for(6, STEP)?;
    job.fail_nodes_async(&[NodeId(2)])?;
    job.fail_nodes_async(&[NodeId(3)])?;
    let mut recovered = BTreeSet::new();
    job.wait_event(
        move |e| {
            if let JobEvent::NodesFailedRecovered { nodes, .. } = e {
                recovered.extend(nodes.iter().copied());
            }
            recovered.contains(&NodeId(2)) && recovered.contains(&NodeId(3))
        },
        STEP,
        "back-to-back rollbacks",
    )?;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// An eviction storm races a scale-up: warnings for every current
/// transient node are in flight while the driver integrates fresh
/// machines. Commands interleave arbitrarily at the controller.
fn storm_during_scale_up(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), chaos_cfg(seed), 1, 3)?;
    job.wait_clock_for(6, STEP)?;
    job.warn_only(&[NodeId(2), NodeId(3), NodeId(4)], 120_000)?;
    let added = job.add_machines(NodeClass::Transient, 2)?;
    assert_eq!(added.len(), 2);
    wait_all_evicted(&mut job, &[NodeId(2), NodeId(3), NodeId(4)])?;
    let st = job.status()?;
    assert_eq!(st.transient, 2, "only the fresh machines remain");
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// Payloads safe to both duplicate and reorder: idempotent at the
/// receiver and harmless when arriving after the receiver stopped.
fn dup_and_delay_safe(m: &AgileMsg) -> bool {
    matches!(
        m,
        AgileMsg::Topology(_)
            | AgileMsg::GlobalClock { .. }
            | AgileMsg::ClockDone { .. }
            | AgileMsg::Ready
            | AgileMsg::ReadReq { .. }
            | AgileMsg::ReadResp { .. }
    )
}

/// Payloads safe only to duplicate (a reorder could let a `Stop`
/// overtake them into a drained node, stranding an obligation).
fn dup_only_safe(m: &AgileMsg) -> bool {
    matches!(
        m,
        AgileMsg::Start
            | AgileMsg::InstallPartition { .. }
            | AgileMsg::BackupClockQuery
            | AgileMsg::BackupClockInfo { .. }
            | AgileMsg::RestartFrom { .. }
            | AgileMsg::EvictionNotice { .. }
    )
}

/// Duplicate + delay chaos on the message plane while the job scales up
/// and drains an eviction. `UpdateBatch`/`BackupPush` are never
/// duplicated (a doubled delta is a *different computation*, not a
/// fault), and drain orders are never reordered past `Stop`.
fn message_chaos(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let plan = FaultPlan::new(seed)
        .with_rule(FaultRule {
            from: None,
            to: None,
            drop: 0.0,
            duplicate: 0.10,
            delay: 0.10,
            filter: Some(Arc::new(dup_and_delay_safe)),
        })
        .with_rule(FaultRule {
            from: None,
            to: None,
            drop: 0.0,
            duplicate: 0.15,
            delay: 0.0,
            filter: Some(Arc::new(dup_only_safe)),
        })
        .with_rule(FaultRule {
            from: None,
            to: None,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.15,
            filter: Some(Arc::new(|m: &AgileMsg| {
                matches!(m, AgileMsg::UpdateBatch { .. })
            })),
        });
    let mut job =
        AgileMlJob::launch_with_faults(mf_app(), data.clone(), chaos_cfg(seed), 1, 3, plan)?;
    let rec = Arc::new(Recorder::new());
    job.attach_recorder(Arc::clone(&rec));
    let _flusher = Flusher::start(job.cluster_handle());
    job.wait_clock_for(8, STEP)?;
    job.add_machines(NodeClass::Transient, 1)?;
    job.wait_clock_for(12, STEP)?;
    job.evict_with_warning(&[NodeId(2)])?;
    job.wait_clock_for(TARGET, STEP)?;
    let stats = job.fault_stats();
    assert!(
        stats.duplicated + stats.delayed > 0,
        "the plan injected no faults — scenario is vacuous (stats: {stats:?})"
    );
    // Quiesce: release everything still held before judging the model.
    job.clear_faults();
    // The per-layer stats above die with the plan; the recorder-side
    // counters persist across the `clear_faults` swap. Everything the
    // layer injected after the recorder attached is still visible here.
    assert!(
        rec.counter(OBS_MSG_DUPLICATED) + rec.counter(OBS_MSG_DELAYED) > 0,
        "injected message faults missing from the recorded counters"
    );
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// Batched-data-plane storm: duplicate + delay pressure aimed at the
/// zero-copy payload-bearing messages — `ReadReq` (compressed key
/// sets), `ReadResp` (value buffers Arc-shared with the serving store),
/// and delayed `UpdateBatch`es (whose `Values` buffer is shared with
/// every other clone of the message) — while an eviction revokes a
/// server mid-flight. A fault-injected duplicate here is a
/// reference-count bump on a live shared buffer, so this schedule is
/// the regression net for the zero-copy messaging layer: re-delivery,
/// delay past a topology flip, and drop must never alias writes into a
/// payload another message (or the store) still reads.
fn batched_dataplane_storm(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let plan = FaultPlan::new(seed)
        .with_rule(FaultRule {
            from: None,
            to: None,
            drop: 0.0,
            duplicate: 0.25,
            delay: 0.20,
            filter: Some(Arc::new(|m: &AgileMsg| {
                matches!(m, AgileMsg::ReadReq { .. } | AgileMsg::ReadResp { .. })
            })),
        })
        .with_rule(FaultRule {
            from: None,
            to: None,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.25,
            filter: Some(Arc::new(|m: &AgileMsg| {
                matches!(m, AgileMsg::UpdateBatch { .. })
            })),
        });
    let mut job =
        AgileMlJob::launch_with_faults(mf_app(), data.clone(), chaos_cfg(seed), 1, 3, plan)?;
    let _flusher = Flusher::start(job.cluster_handle());
    job.wait_clock_for(8, STEP)?;
    job.evict_with_warning(&[NodeId(2)])?;
    job.wait_clock_for(TARGET, STEP)?;
    let stats = job.fault_stats();
    assert!(
        stats.duplicated + stats.delayed > 0,
        "the plan injected no data-plane faults — scenario is vacuous (stats: {stats:?})"
    );
    job.clear_faults();
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

// ---------------------------------------------------------------------
// The sweep: scenarios × seeds, reproducible from the printed seed
// ---------------------------------------------------------------------

#[test]
fn total_activeps_eviction_storm_promotes_backups() {
    sweep("storm_all_actives", true, storm_all_actives);
}

#[test]
fn eviction_storm_mid_migration_revokes_every_activeps() {
    sweep("storm_mid_migration", true, storm_mid_migration);
}

#[test]
fn warning_then_crash_before_drain_recovers() {
    sweep("warn_then_crash", true, warn_then_crash);
}

#[test]
fn warning_with_no_eviction_keeps_training_then_survives_crash() {
    sweep("warning_no_eviction", true, warning_no_eviction);
}

#[test]
fn crash_mid_rollback_runs_back_to_back_recoveries() {
    sweep("crash_mid_rollback", true, crash_mid_rollback);
}

#[test]
fn eviction_storm_during_scale_up_is_serialized() {
    sweep("storm_during_scale_up", true, storm_during_scale_up);
}

#[test]
fn message_plane_chaos_duplicates_and_delays() {
    // Soft: heavy reordering may legitimately end in a typed error, but
    // never a panic or a wedge past the driver timeout.
    sweep("message_chaos", false, message_chaos);
}

#[test]
fn batched_data_plane_survives_duplicate_and_delay_storm() {
    // Soft for the same reason as `message_chaos`; the no-panic contract
    // is what the zero-copy payloads are on trial for here.
    sweep("batched_dataplane_storm", false, batched_dataplane_storm);
}

// ---------------------------------------------------------------------
// Named regressions for chaos-found bugs
// ---------------------------------------------------------------------

/// A node added *after* a rollback recovery must adopt the recovery's
/// epoch on its first `Configure`. Found by the market chaos suite's
/// launch-then-die scenario: the fresh worker stayed at epoch 0 while
/// the controller had advanced, so its `ClockDone`s were dropped as
/// stale and its entry pinned the consistent clock — the whole cluster
/// SSP-blocked on a healthy-looking worker.
#[test]
fn node_added_after_recovery_joins_the_new_epoch() {
    let mut job = AgileMlJob::launch(mf_app(), mf_data(), chaos_cfg(3), 1, 3).expect("launch");
    job.wait_clock(4).expect("initial progress");
    // A warning-less failure triggers rollback recovery, which bumps
    // the epoch.
    job.fail_nodes(&[NodeId(2)]).expect("recovery");
    // The replacement arrives in the post-recovery epoch; before the
    // fix its clock entry never advanced and this wait timed out.
    job.add_machines(NodeClass::Transient, 1).expect("add");
    job.wait_clock_for(TARGET, STEP)
        .expect("the cluster must keep clocking with the new node");
    job.shutdown().expect("shutdown");
}

/// Revoking (or losing) the reliable tier is unrecoverable *by design* —
/// but it must surface as a typed fault, not a controller panic.
#[test]
fn reliable_eviction_and_failure_are_typed_not_panics() {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), chaos_cfg(3), 1, 2).expect("launch");
    job.wait_clock(4).expect("progress");
    let err = job
        .evict_with_warning(&[NodeId(1)])
        .expect_err("evicting the reliable tier must fail");
    assert!(
        matches!(
            &err,
            JobError::Fault(JobFault::ReliableNodesEvicted { nodes }) if nodes == &[NodeId(1)]
        ),
        "unexpected error: {err}"
    );
    // The controller survived the refusal: the job is still live.
    job.wait_clock(6)
        .expect("training continues after the refusal");
    job.shutdown().expect("shutdown");

    let mut job = AgileMlJob::launch(mf_app(), data, chaos_cfg(3), 1, 2).expect("launch");
    job.wait_clock(4).expect("progress");
    let err = job
        .fail_nodes(&[NodeId(1)])
        .expect_err("losing the reliable tier must fail");
    assert!(
        matches!(
            &err,
            JobError::Fault(JobFault::ReliableNodesFailed { nodes }) if nodes == &[NodeId(1)]
        ),
        "unexpected error: {err}"
    );
    // The backups died with the reliable node; the model is gone but the
    // process must stay alive enough to be torn down.
    let _ = job.shutdown();
}

/// A worker that leaves the clock table (stage 2→3 removes reliable
/// workers) and later rejoins (3→2) must re-enter at the last broadcast
/// minimum, not at zero — otherwise the SSP consistent clock snaps back
/// and every worker re-runs the whole history.
#[test]
fn rejoining_reliable_worker_does_not_regress_the_clock() {
    let data = mf_data();
    let cfg = AgileConfig {
        slack: 1,
        partitions: 4,
        data_blocks: 8,
        stage2_threshold: 1.0,
        stage3_threshold: 3.0,
        activeps_fraction: 0.5,
        seed: 7,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(mf_app(), data, cfg, 1, 2).expect("launch");
    job.wait_clock(6).expect("progress");
    assert_eq!(job.status().expect("status").stage, Stage::Stage2);

    // Ratio 4 ≥ 3 → stage 3: the reliable machine's worker deregisters.
    let added = job.add_machines(NodeClass::Transient, 2).expect("grow");
    job.wait_event(
        |e| {
            matches!(
                e,
                JobEvent::StageChanged {
                    to: Stage::Stage3,
                    ..
                }
            )
        },
        STEP,
        "stage 3 transition",
    )
    .expect("reaches stage 3");
    job.wait_clock(12).expect("progress in stage 3");
    let before = job.status().expect("status").min_clock;

    // Ratio back to 2 < 3 → stage 2: the reliable worker rejoins.
    job.evict_with_warning(&added).expect("shrink");
    job.wait_event(
        |e| {
            matches!(
                e,
                JobEvent::StageChanged {
                    to: Stage::Stage2,
                    ..
                }
            )
        },
        STEP,
        "stage 2 transition",
    )
    .expect("returns to stage 2");
    let after = job.status().expect("status").min_clock;
    assert!(
        after >= before,
        "rejoining worker dragged the consistent clock from {before} back to {after}"
    );
    job.wait_clock(before + 4)
        .expect("rejoined worker keeps up");

    // No rollback happened, so the broadcast min must be monotone.
    let mins: Vec<u64> = job
        .events()
        .iter()
        .filter_map(|e| match e {
            JobEvent::ClockAdvanced { min } => Some(*min),
            _ => None,
        })
        .collect();
    assert!(
        mins.windows(2).all(|w| w[0] <= w[1]),
        "clock broadcasts regressed: {mins:?}"
    );
    job.shutdown().expect("shutdown");
}

/// Fig. 16 / DESIGN.md shape target 5: a *warned* bulk eviction drains
/// state in the warning window, so it costs at most a brief pause —
/// never a rollback, never redone work.
#[test]
fn bulk_eviction_costs_one_iteration_blip() {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data, chaos_cfg(9), 1, 3).expect("launch");
    job.wait_clock(10).expect("progress");
    let before = job.status().expect("status").min_clock;
    job.evict_with_warning(&[NodeId(2), NodeId(3), NodeId(4)])
        .expect("bulk eviction");
    let after = job.status().expect("status").min_clock;
    assert!(
        after >= before,
        "warned eviction rolled the clock back: {before} -> {after}"
    );
    assert!(
        job.events()
            .iter()
            .all(|e| !matches!(e, JobEvent::NodesFailedRecovered { .. })),
        "a warned eviction must not run rollback recovery"
    );
    // The blip: the survivor resumes within a couple of iterations.
    job.wait_clock(before + 3)
        .expect("progress resumes after the storm");
    job.shutdown().expect("shutdown");
}

// ---------------------------------------------------------------------
// Property: the SSP consistent clock under arbitrary churn
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Model-level property behind every fault plan above: under any
    /// interleaving of worker progress, evictions/crashes, and rejoins
    /// (rejoining at the last broadcast minimum, as the controller does),
    /// the consistent clock (a) always equals the minimum completed
    /// clock — never exceeds it — and (b) never regresses below what was
    /// already broadcast to the workers.
    #[test]
    fn consistent_clock_never_exceeds_min_completed_under_churn(
        ops in proptest::collection::vec((0u32..5, 0u8..3, 1u64..4), 1..200)
    ) {
        let mut table = ClockTable::new(1);
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();
        let mut broadcast = 0u64;
        for w in 0..5u32 {
            table.register(w);
            model.insert(w, 0);
        }
        for (w, op, dc) in ops {
            match op {
                0 => {
                    // Worker progress.
                    if let Some(c) = model.get_mut(&w) {
                        *c += dc;
                        let done = *c;
                        table.advance(w, done);
                    }
                }
                1 => {
                    // Eviction or crash: the worker leaves the table.
                    table.deregister(w);
                    model.remove(&w);
                }
                _ => {
                    // Rejoin at the last broadcast minimum — the
                    // controller's re-registration rule.
                    model.entry(w).or_insert_with(|| {
                        table.register_at(w, broadcast);
                        broadcast
                    });
                }
            }
            let min = table.min_clock();
            prop_assert_eq!(min, model.values().min().copied());
            if let Some(min) = min {
                prop_assert!(
                    min >= broadcast,
                    "consistent clock {} regressed below broadcast {}",
                    min,
                    broadcast
                );
                broadcast = broadcast.max(min);
            }
        }
    }
}
