//! Driver-API edge cases: invalid launches, no-op elasticity commands,
//! and well-behaved shutdown.

use proteus_agileml::{AgileConfig, AgileMlJob, Stage};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig};
use proteus_simnet::NodeId;

fn app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 20,
        cols: 10,
        rank: 2,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn data() -> Vec<proteus_mlapps::mf::Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 20,
            cols: 10,
            true_rank: 2,
            observed: 200,
            noise: 0.02,
        },
        2,
    )
}

fn cfg() -> AgileConfig {
    AgileConfig {
        partitions: 2,
        data_blocks: 4,
        seed: 2,
        ..AgileConfig::default()
    }
}

#[test]
fn launch_requires_reliable_machines_and_valid_config() {
    assert!(AgileMlJob::launch(app(), data(), cfg(), 0, 2).is_err());
    let bad = AgileConfig {
        partitions: 0,
        ..cfg()
    };
    assert!(AgileMlJob::launch(app(), data(), bad, 1, 2).is_err());
}

#[test]
fn evicting_unknown_nodes_is_a_noop() {
    let mut job = AgileMlJob::launch(app(), data(), cfg(), 1, 2).expect("launch");
    job.wait_clock(3).expect("progress");
    let before = job.status().expect("status");
    // Node 99 never existed; the controller filters it and reports an
    // empty eviction, so this returns promptly instead of timing out.
    job.evict_with_warning(&[NodeId(99)])
        .expect("no-op eviction");
    let after = job.status().expect("status");
    assert_eq!(before.transient, after.transient);
    assert_eq!(before.reliable, after.reliable);
    job.shutdown().expect("shutdown");
}

#[test]
fn empty_dataset_job_starts_and_stops() {
    // Degenerate but legal: with no data, workers tick through vacuous
    // iterations (their assigned blocks are empty); the job must still
    // start, answer status/snapshots, and shut down cleanly.
    let job_result = AgileMlJob::launch(app(), Vec::new(), cfg(), 1, 1);
    let job = job_result.expect("launch with empty dataset");
    let status = job.status().expect("status");
    assert_eq!(status.workers, 2);
    let snap = job.snapshot().expect("snapshot");
    assert_eq!(snap.params.len() as u64, 30, "params still initialized");
    job.shutdown().expect("shutdown");
}

#[test]
fn reliable_only_job_trains_traditionally() {
    // Zero transient machines: the degenerate all-reliable case must
    // behave like a traditional parameter server.
    let data = data();
    let mut job = AgileMlJob::launch(app(), data.clone(), cfg(), 2, 0).expect("launch");
    let status = job.status().expect("status");
    assert_eq!(status.stage, Stage::Stage1);
    assert_eq!(status.workers, 2);
    job.wait_clock(10).expect("progress");
    let obj = job.objective(&data).expect("objective");
    assert!(obj < 0.2, "converges without any transient machines: {obj}");
    job.shutdown().expect("shutdown");
}

#[test]
fn events_accumulate_and_are_queryable_after_the_fact() {
    let mut job = AgileMlJob::launch(app(), data(), cfg(), 1, 2).expect("launch");
    job.wait_clock(5).expect("progress");
    let events = job.events();
    assert!(events
        .iter()
        .any(|e| matches!(e, proteus_agileml::JobEvent::Started { nodes: 3 })));
    let clock_events = events
        .iter()
        .filter(|e| matches!(e, proteus_agileml::JobEvent::ClockAdvanced { .. }))
        .count();
    assert!(clock_events >= 5);
    job.shutdown().expect("shutdown");
}
