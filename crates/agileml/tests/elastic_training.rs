//! End-to-end tests of the AgileML distributed runtime: real worker and
//! server threads over simnet, real ML applications, real elasticity.

use proteus_agileml::{AgileConfig, AgileMlJob, JobEvent, Stage};
use proteus_mlapps::data::{imagenet_like, netflix_like, MfDataConfig, MlrDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig};
use proteus_mlapps::mlr::{Mlr, MlrConfig};
use proteus_simnet::NodeClass;

fn mf_app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 40,
        cols: 30,
        rank: 4,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn mf_data() -> Vec<proteus_mlapps::mf::Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 40,
            cols: 30,
            true_rank: 3,
            observed: 900,
            noise: 0.02,
        },
        42,
    )
}

fn cfg() -> AgileConfig {
    AgileConfig {
        partitions: 4,
        data_blocks: 8,
        seed: 7,
        ..AgileConfig::default()
    }
}

#[test]
fn stage1_trains_mf_to_convergence() {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(), 2, 2).expect("launch");
    let before = job.objective(&data).expect("objective");
    job.wait_clock(25).expect("progress");
    let after = job.objective(&data).expect("objective");
    assert!(
        after < before * 0.3,
        "distributed MF should converge: {before} -> {after}"
    );
    let status = job.status().expect("status");
    assert_eq!(status.stage, Stage::Stage1);
    assert_eq!(status.active_ps, 0);
    assert_eq!(status.workers, 4);
    job.shutdown().expect("shutdown");
}

#[test]
fn stage2_uses_active_and_backup_servers() {
    let data = mf_data();
    // 1 reliable + 4 transient → ratio 4 > 1 → stage 2.
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(), 1, 4).expect("launch");
    let status = job.status().expect("status");
    assert_eq!(status.stage, Stage::Stage2);
    assert!(status.active_ps >= 1, "ActivePSs should exist in stage 2");
    assert_eq!(status.workers, 5, "stage 2 runs workers everywhere");
    job.wait_clock(25).expect("progress");
    let after = job.objective(&data).expect("objective");
    assert!(after < 0.1, "stage 2 training converges, got {after}");
    job.shutdown().expect("shutdown");
}

#[test]
fn forced_stage3_removes_reliable_workers() {
    let data = mf_data();
    let config = AgileConfig {
        force_stage: Some(Stage::Stage3),
        ..cfg()
    };
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), config, 1, 3).expect("launch");
    let status = job.status().expect("status");
    assert_eq!(status.stage, Stage::Stage3);
    assert_eq!(
        status.workers, 3,
        "stage 3 runs workers only on the 3 transient machines"
    );
    job.wait_clock(20).expect("progress");
    let after = job.objective(&data).expect("objective");
    assert!(after < 0.15, "stage 3 training converges, got {after}");
    job.shutdown().expect("shutdown");
}

#[test]
fn bulk_addition_is_incorporated_without_disruption() {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(), 1, 2).expect("launch");
    job.wait_clock(5).expect("warm-up");
    let mid = job.objective(&data).expect("objective");

    // Bulk-add 4 transient machines (2:1 → 6:1 ratio, stays stage 2).
    let added = job.add_machines(NodeClass::Transient, 4).expect("add");
    assert_eq!(added.len(), 4);
    let status = job.status().expect("status");
    assert_eq!(status.transient, 6);
    assert_eq!(status.workers, 7);

    job.wait_clock(30).expect("progress after add");
    let after = job.objective(&data).expect("objective");
    assert!(
        after < mid,
        "training keeps improving after bulk add: {mid} -> {after}"
    );
    job.shutdown().expect("shutdown");
}

#[test]
fn stage_transition_1_to_2_on_growth() {
    let data = mf_data();
    // 2 reliable + 2 transient → stage 1.
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(), 2, 2).expect("launch");
    assert_eq!(job.status().expect("status").stage, Stage::Stage1);
    job.wait_clock(5).expect("warm-up");

    // Grow to 2 reliable + 6 transient → ratio 3 → stage 2.
    job.add_machines(NodeClass::Transient, 4).expect("add");
    let status = job.status().expect("status");
    assert_eq!(status.stage, Stage::Stage2);
    assert!(status.active_ps >= 1);
    assert!(job.events().iter().any(|e| matches!(
        e,
        JobEvent::StageChanged {
            from: Stage::Stage1,
            to: Stage::Stage2
        }
    )));

    job.wait_clock(25).expect("progress");
    let after = job.objective(&data).expect("objective");
    assert!(after < 0.1, "converges across the transition, got {after}");
    job.shutdown().expect("shutdown");
}

#[test]
fn partial_eviction_with_warning_preserves_progress() {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(), 1, 4).expect("launch");
    job.wait_clock(10).expect("warm-up");
    let mid = job.objective(&data).expect("objective");

    // Evict 2 of the 4 transient machines (some host ActivePSs).
    let status = job.status().expect("status");
    assert_eq!(status.stage, Stage::Stage2);
    // Node ids: controller=0, reliable=1, transient=2..=5.
    let victims = [proteus_simnet::NodeId(2), proteus_simnet::NodeId(3)];
    job.evict_with_warning(&victims).expect("evict");

    let status = job.status().expect("status");
    assert_eq!(status.transient, 2);
    job.wait_clock(35).expect("progress after eviction");
    let after = job.objective(&data).expect("objective");
    assert!(
        after <= mid * 1.05,
        "no meaningful progress lost to warned eviction: {mid} -> {after}"
    );
    job.shutdown().expect("shutdown");
}

#[test]
fn full_transient_eviction_falls_back_to_reliable() {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(), 1, 4).expect("launch");
    job.wait_clock(10).expect("warm-up");
    let mid = job.objective(&data).expect("objective");

    // Evict every transient machine; backups must promote to ParamServs.
    let victims: Vec<_> = (2..=5).map(proteus_simnet::NodeId).collect();
    job.evict_with_warning(&victims).expect("evict");

    let status = job.status().expect("status");
    assert_eq!(status.stage, Stage::Stage1);
    assert_eq!(status.transient, 0);
    assert_eq!(status.workers, 1, "only the reliable machine works now");

    // Progress must be preserved (no rollback on a warned eviction) and
    // training must continue on the reliable machine alone.
    let preserved = job.objective(&data).expect("objective");
    assert!(
        preserved <= mid * 1.05,
        "drain preserved progress: {mid} -> {preserved}"
    );
    let min_now = status.min_clock;
    job.wait_clock(min_now + 5).expect("continues on reliable");
    job.shutdown().expect("shutdown");
}

#[test]
fn unwarned_failure_rolls_back_and_recovers() {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(), 1, 4).expect("launch");
    job.wait_clock(10).expect("warm-up");
    let mid = job.objective(&data).expect("objective");

    // Kill one transient machine abruptly (likely an ActivePS host:
    // first two transient nodes host ActivePSs with fraction 0.5).
    let rolled = job.fail_nodes(&[proteus_simnet::NodeId(2)]).expect("fail");
    assert!(rolled <= 10 + 60, "rolled back to a plausible clock");

    let status = job.status().expect("status");
    assert_eq!(status.transient, 3);
    let target = status.min_clock + 15;
    job.wait_clock(target).expect("progress after recovery");
    let after = job.objective(&data).expect("objective");
    assert!(
        after < mid * 1.2,
        "recovery continues converging: {mid} -> {after}"
    );
    job.shutdown().expect("shutdown");
}

#[test]
fn pure_worker_failure_needs_no_rollback() {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(), 1, 4).expect("launch");
    job.wait_clock(8).expect("warm-up");

    // With activeps_fraction = 0.5 and 4 transient nodes, the last two
    // transient nodes (ids 4, 5) are pure workers.
    let status_before = job.status().expect("status");
    job.fail_nodes(&[proteus_simnet::NodeId(5)]).expect("fail");
    let status = job.status().expect("status");
    assert_eq!(status.transient, status_before.transient - 1);
    job.wait_clock(status.min_clock + 10).expect("continues");
    job.shutdown().expect("shutdown");
}

#[test]
fn mlr_trains_distributed_in_stage2() {
    let data = imagenet_like(
        &MlrDataConfig {
            examples: 200,
            dim: 8,
            classes: 3,
            separation: 2.0,
            noise: 0.4,
        },
        11,
    );
    let app = Mlr::new(MlrConfig {
        dim: 8,
        classes: 3,
        learning_rate: 0.1,
        reg: 1e-4,
    });
    let config = AgileConfig {
        partitions: 3,
        data_blocks: 8,
        seed: 11,
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(app, data.clone(), config, 1, 3).expect("launch");
    job.wait_clock(15).expect("progress");
    let after = job.objective(&data).expect("objective");
    // Workers start iterating the moment launch returns, so a "before"
    // objective sampled here races with training (this tiny job can
    // converge within one scheduler slice). Judge learning against the
    // untrained loss instead: uniform softmax over 3 classes scores
    // ln(3) ≈ 1.10.
    assert!(after < 0.2, "distributed MLR learns: -> {after}");
    job.shutdown().expect("shutdown");
}

#[test]
fn distributed_matches_sequential_quality() {
    // The distributed runtime should reach an objective comparable to
    // the sequential oracle on the same data.
    let data = mf_data();
    let mut seq = proteus_mlapps::SequentialTrainer::new(mf_app(), data.clone(), 7);
    seq.run(30);
    let oracle = seq.objective();

    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(), 1, 3).expect("launch");
    job.wait_clock(30).expect("progress");
    let dist = job.objective(&data).expect("objective");
    job.shutdown().expect("shutdown");

    assert!(
        dist < oracle * 3.0 + 0.02,
        "distributed ({dist}) within range of sequential oracle ({oracle})"
    );
}
