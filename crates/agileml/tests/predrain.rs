//! Chaos and regression suite for the proactive eviction defense:
//! forecast-driven pre-drain demotions, their failure modes when the
//! forecast is wrong, and the GCE-style short-warning degradation.
//!
//! The contract mirrors `chaos.rs`: every scenario either converges to
//! the fault-free objective or surfaces a typed [`JobError`] — never a
//! panic, never a wedge past a driver timeout. A *false-positive*
//! pre-drain (alert, then no eviction) must cost only the migration:
//! membership, clocks, and the committed model trajectory are untouched.
//!
//! Each run prints `chaos: scenario=<name> seed=<seed>` before doing
//! anything; replay with `PROTEUS_CHAOS_SEEDS=<seed> cargo test -p
//! proteus-agileml --test predrain <name>`. `PROTEUS_CHAOS_FULL=1`
//! widens the sweep.

use std::time::Duration;

use proteus_agileml::job::ModelSnapshot;
use proteus_agileml::{AgileConfig, AgileMlJob, JobError, JobEvent, Stage};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig, Rating};
use proteus_simnet::NodeId;

const TARGET: u64 = 20;
const STEP: Duration = Duration::from_secs(60);

fn mf_app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 30,
        cols: 20,
        rank: 3,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn mf_data() -> Vec<Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 30,
            cols: 20,
            true_rank: 2,
            observed: 500,
            noise: 0.02,
        },
        3,
    )
}

/// Stage-2 shape where every transient node hosts an ActivePS, so a
/// pre-drain always has partitions to move.
fn cfg(seed: u64) -> AgileConfig {
    AgileConfig {
        slack: 1,
        partitions: 4,
        data_blocks: 8,
        activeps_fraction: 1.0,
        force_stage: Some(Stage::Stage2),
        seed,
        ..AgileConfig::default()
    }
}

fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("PROTEUS_CHAOS_SEEDS") {
        return s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
    }
    if std::env::var("PROTEUS_CHAOS_FULL").is_ok() {
        return vec![3, 5, 7, 11, 13, 17, 19, 23];
    }
    vec![3, 11]
}

fn sweep(name: &str, scenario: impl Fn(u64) -> Result<f64, JobError>) {
    for seed in seeds() {
        println!("chaos: scenario={name} seed={seed}");
        match scenario(seed) {
            Ok(obj) => assert!(
                obj.is_finite() && obj < 0.15,
                "chaos: scenario={name} seed={seed}: objective {obj} did not converge"
            ),
            Err(e) => panic!("chaos: scenario={name} seed={seed}: expected recovery, got: {e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// The happy path: an alert demotes one ActivePS host. Its partitions
/// move to a surviving host, the node stays a worker with its clock, and
/// training never sees an eviction.
fn predrain_demotes_one(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 1, 3)?;
    job.wait_clock_for(6, STEP)?;
    let before = job.status()?;
    job.pre_drain(&[NodeId(2)])?;
    let st = job.status()?;
    assert_eq!(
        st.transient, before.transient,
        "pre-drain must not shrink membership"
    );
    assert_eq!(
        st.active_ps,
        before.active_ps - 1,
        "the suspect's ActivePS role must be gone"
    );
    assert_eq!(st.stage, Stage::Stage2, "a demotion is not a stage change");
    assert!(
        job.events()
            .iter()
            .all(|e| !matches!(e, JobEvent::NodesEvicted { .. })),
        "a pre-drain must not register as an eviction"
    );
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// Alert storm: every ActivePS host is suspected at once, so there is no
/// un-suspected destination and the partitions drain to their BackupPS
/// copies on the reliable tier — the established eviction fallback, but
/// with every suspect still alive and working.
fn predrain_storm_all_actives(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 1, 3)?;
    job.wait_clock_for(6, STEP)?;
    job.pre_drain(&[NodeId(2), NodeId(3), NodeId(4)])?;
    let st = job.status()?;
    assert_eq!(st.active_ps, 0, "every ActivePS role drained to backup");
    assert_eq!(st.transient, 3, "all suspects keep computing as workers");
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// Alert lands mid-migration: a warned drain is in flight when the
/// pre-drain command arrives, so the controller queues the demotion
/// behind the busy transition instead of interleaving topology edits.
fn alert_mid_migration(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 1, 4)?;
    job.wait_clock_for(6, STEP)?;
    // Provider-style warning with no driver wait: the drain of node 2
    // races the pre-drain of node 3.
    job.warn_only(&[NodeId(2)], 120_000)?;
    job.pre_drain(&[NodeId(3)])?;
    job.wait_event(
        |e| matches!(e, JobEvent::NodesEvicted { nodes } if nodes.contains(&NodeId(2))),
        STEP,
        "warned drain",
    )?;
    let st = job.status()?;
    assert_eq!(st.transient, 3, "only the warned node left");
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// The forecast was *right*: the suspect dies (warning-less) right after
/// its demotion completed. Because its partitions already moved, the
/// crash loses only worker state and rollback recovery runs routinely.
fn predrain_then_crash(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 1, 3)?;
    job.wait_clock_for(6, STEP)?;
    job.pre_drain(&[NodeId(2)])?;
    job.fail_nodes(&[NodeId(2)])?;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// A stale alert for a node that is already dead must be a filtered
/// no-op report, not a hang or a panic.
fn alert_for_dead_node(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 1, 3)?;
    job.wait_clock_for(6, STEP)?;
    job.fail_nodes(&[NodeId(3)])?;
    // `pre_drain` waits for the controller's (empty) report; a hang here
    // is the bug this scenario guards against.
    job.pre_drain(&[NodeId(3)])?;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

/// GCE-style short warning: thirty seconds is less than a drain takes,
/// and the kill races the drain orders. Whatever the interleaving, the
/// job must degrade to rollback recovery and converge — a typed fault at
/// worst, never a panic.
fn gce_short_warning(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 1, 3)?;
    job.wait_clock_for(6, STEP)?;
    job.warn_only(&[NodeId(4)], 30_000)?;
    // The 30-second window expires before any drain completes: the
    // provider takes the machine regardless.
    let rolled = job.fail_nodes(&[NodeId(4)])?;
    assert!(
        job.status()?.transient < 3,
        "the short-warned node must be gone"
    );
    // Rollback ran (possibly to clock 0 early in the run) instead of a
    // completed drain — the warning was unusable by construction.
    let _ = rolled;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

// ---------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------

#[test]
fn predrain_demotes_without_eviction() {
    sweep("predrain_demotes_one", predrain_demotes_one);
}

#[test]
fn predrain_storm_drains_every_active_to_backup() {
    sweep("predrain_storm_all_actives", predrain_storm_all_actives);
}

#[test]
fn alert_mid_migration_queues_behind_the_drain() {
    sweep("alert_mid_migration", alert_mid_migration);
}

#[test]
fn predrain_then_crash_loses_only_worker_state() {
    sweep("predrain_then_crash", predrain_then_crash);
}

#[test]
fn stale_alert_for_dead_node_is_a_no_op() {
    sweep("alert_for_dead_node", alert_for_dead_node);
}

#[test]
fn gce_short_warning_degrades_to_rollback() {
    sweep("gce_short_warning", gce_short_warning);
}

// ---------------------------------------------------------------------
// False-positive neutrality
// ---------------------------------------------------------------------

/// A false-positive pre-drain never touches committed work. The model's
/// floating-point trajectory is not bit-reproducible even between two
/// identical runs (threaded update application order), so "neutral" is
/// asserted on everything that *is* exact: the consistent clock never
/// regresses, no rollback recovery runs, no eviction registers, the
/// worker set is untouched — and training still converges. (Billing
/// neutrality is asserted at the session layer, where the market plane
/// is sim-time deterministic.)
#[test]
fn false_positive_predrain_never_loses_committed_work() {
    let bsp = AgileConfig { slack: 0, ..cfg(3) };
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), bsp, 1, 3).expect("launch");
    job.wait_clock_for(4, STEP).expect("warmup");
    let snap_before: ModelSnapshot = job.snapshot().expect("pre-drain snapshot");
    // The forecaster cried wolf: demote a healthy ActivePS host.
    job.pre_drain(&[NodeId(2)]).expect("pre-drain");
    let snap_after = job.snapshot().expect("post-drain snapshot");
    assert!(
        snap_after.clock >= snap_before.clock,
        "pre-drain regressed the consistent clock: {} -> {}",
        snap_before.clock,
        snap_after.clock
    );
    job.wait_clock_for(TARGET, STEP).expect("progress");
    // The event log must show monotone clock advances and no recovery
    // or eviction machinery — a wrong forecast is a pure topology move.
    let mut last_min = 0;
    for e in job.events() {
        match e {
            JobEvent::ClockAdvanced { min } => {
                assert!(
                    *min >= last_min,
                    "consistent clock regressed: {last_min} -> {min}"
                );
                last_min = *min;
            }
            JobEvent::NodesFailedRecovered { .. } => {
                panic!("a false-positive pre-drain must not trigger rollback")
            }
            JobEvent::NodesEvicted { nodes } if !nodes.is_empty() => {
                panic!("a false-positive pre-drain must not evict: {nodes:?}")
            }
            _ => {}
        }
    }
    let st = job.status().expect("status");
    assert_eq!(st.transient, 3, "membership untouched");
    let obj = job.objective(&data).expect("objective");
    assert!(obj < 0.15, "converged despite the wasted migration: {obj}");
    job.shutdown().expect("shutdown");
}

/// And pre-drain never *unblocks* wrongly either: a demoted node keeps
/// clocking, so a pre-drain of every ActivePS host cannot stall the
/// consistent clock (regression net for the demote-only contract —
/// removing suspects from the worker set would wedge BSP here).
#[test]
fn predrained_nodes_keep_clocking_under_bsp() {
    let bsp = AgileConfig {
        slack: 0,
        ..cfg(11)
    };
    let mut job = AgileMlJob::launch(mf_app(), mf_data(), bsp, 1, 3).expect("launch");
    job.wait_clock_for(4, STEP).expect("warmup");
    job.pre_drain(&[NodeId(2), NodeId(3), NodeId(4)])
        .expect("storm pre-drain");
    job.wait_clock_for(TARGET, STEP)
        .expect("BSP must keep clocking with every suspect demoted");
    job.shutdown().expect("shutdown");
}
