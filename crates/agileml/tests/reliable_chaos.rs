//! Chaos suite for the tier that "never fails": reliable machines die
//! abruptly, alone and in correlated groups, at the worst moments the
//! elasticity protocol offers (mid-migration, mid-drain, during an
//! eviction storm). The contract is the robustness invariant extended
//! to the reliable tier:
//!
//! * a **strict-subset** loss with a clean protocol state is repaired
//!   in-job — the controller re-replicates the dead machines' BackupPS
//!   partitions onto surviving reliable machines and training
//!   converges without a restart;
//! * any loss the controller cannot prove repairable surfaces a typed
//!   [`JobError`] (never a panic, never a wedge past a driver timeout)
//!   so the session layer can restart from a durable checkpoint.
//!
//! Each run prints `chaos: scenario=<name> seed=<seed>` before doing
//! anything; replay one seed with
//! `PROTEUS_CHAOS_SEEDS=<seed> cargo test -p proteus-agileml --test
//! reliable_chaos <name>`. `PROTEUS_CHAOS_FULL=1` widens the sweep.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use proteus_agileml::{AgileConfig, AgileMlJob, JobError, JobEvent, Stage};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig, Rating};
use proteus_simnet::NodeId;

/// Clock every scenario trains to before judging the objective.
const TARGET: u64 = 20;
/// Generous per-wait deadline; hit only when a schedule wedges the job.
const STEP: Duration = Duration::from_secs(60);

fn mf_app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 30,
        cols: 20,
        rank: 3,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn mf_data() -> Vec<Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 30,
            cols: 20,
            true_rank: 2,
            observed: 500,
            noise: 0.02,
        },
        3,
    )
}

/// Stage 2 with every transient node hosting an ActivePS and multiple
/// reliable machines sharing the BackupPS partitions — the shape where
/// a reliable death orphans backups that a survivor can re-host.
fn cfg(model_seed: u64) -> AgileConfig {
    AgileConfig {
        slack: 1,
        partitions: 4,
        data_blocks: 8,
        activeps_fraction: 1.0,
        force_stage: Some(Stage::Stage2),
        seed: model_seed,
        ..AgileConfig::default()
    }
}

fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("PROTEUS_CHAOS_SEEDS") {
        return s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
    }
    if std::env::var("PROTEUS_CHAOS_FULL").is_ok() {
        return vec![3, 5, 7, 11, 13, 17, 19, 23];
    }
    vec![3, 11]
}

/// Fault-free objective for `cfg(seed)` at [`TARGET`], cached per seed.
/// Reliable count matches the scenarios (3 machines) so the baseline
/// job is the exact job the faulted runs perturb.
fn baseline(seed: u64) -> f64 {
    static CACHE: Mutex<BTreeMap<u64, f64>> = Mutex::new(BTreeMap::new());
    if let Some(v) = CACHE.lock().unwrap().get(&seed) {
        return *v;
    }
    let data = mf_data();
    let mut job =
        AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 3, 3).expect("baseline launch");
    job.wait_clock(TARGET).expect("baseline progress");
    let obj = job.objective(&data).expect("baseline objective");
    job.shutdown().expect("baseline shutdown");
    CACHE.lock().unwrap().insert(seed, obj);
    obj
}

fn assert_converged(name: &str, seed: u64, obj: f64) {
    let base = baseline(seed);
    let bar = (2.0 * base).max(0.15);
    assert!(
        obj <= bar,
        "chaos: scenario={name} seed={seed}: objective {obj} above fault-free bar {bar} \
         (baseline {base})"
    );
}

/// Runs `scenario` across the seed sweep. `hard` scenarios must repair
/// and converge; soft ones may instead surface any typed [`JobError`]
/// (the session layer's restart path picks those up).
fn sweep(name: &str, hard: bool, scenario: impl Fn(u64) -> Result<f64, JobError>) {
    for seed in seeds() {
        println!("chaos: scenario={name} seed={seed}");
        match scenario(seed) {
            Ok(obj) => assert_converged(name, seed, obj),
            Err(e) if !hard => {
                println!("chaos: scenario={name} seed={seed} surfaced typed error: {e}");
            }
            Err(e) => panic!("chaos: scenario={name} seed={seed}: expected repair, got: {e}"),
        }
    }
}

// Machines are numbered from 1 in spawn order: reliable first, then
// transient. With `launch(.., 3, 3)`: reliable = 1..=3, transient = 4..=6.
const R1: NodeId = NodeId(1);
const R3: NodeId = NodeId(3);
const T1: NodeId = NodeId(4);
const T2: NodeId = NodeId(5);

// ---------------------------------------------------------------------
// In-job repair: strict-subset reliable loss must NOT need a restart
// ---------------------------------------------------------------------

/// One reliable machine dies in steady state. The controller must
/// re-replicate its BackupPS partitions onto the survivors and keep
/// training — the core tentpole contract.
fn reliable_kill_steady_state(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 3, 3)?;
    job.wait_clock_for(8, STEP)?;
    job.fail_reliable_nodes(&[R3])?;
    // Repair keeps the incarnation: no epoch-rolling restart, training
    // reaches the target on the surviving membership.
    job.wait_clock_for(TARGET, STEP)?;
    let repaired = job
        .events()
        .iter()
        .any(|e| matches!(e, JobEvent::ReliableRepaired { .. }));
    assert!(repaired, "a subset reliable kill must repair in-job");
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

#[test]
fn reliable_kill_steady_state_repairs_in_job() {
    sweep(
        "reliable_kill_steady_state",
        true,
        reliable_kill_steady_state,
    );
}

/// A warned (not crashed) reliable machine must drain through the same
/// repair path: its backups re-replicate from its own store within the
/// warning window, and the warning is honored instead of the old
/// warn-only-to-reliable short circuit raising a terminal fault.
fn reliable_warned_drain(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 3, 3)?;
    job.wait_clock_for(8, STEP)?;
    job.evict_with_warning(&[R3])?;
    job.wait_clock_for(TARGET, STEP)?;
    let repaired = job
        .events()
        .iter()
        .any(|e| matches!(e, JobEvent::ReliableRepaired { .. }));
    assert!(repaired, "a warned reliable machine must drain via repair");
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

#[test]
fn warned_reliable_machine_drains_without_fault() {
    sweep("reliable_warned_drain", true, reliable_warned_drain);
}

// ---------------------------------------------------------------------
// Hostile timing: kills racing migrations, drains, and storms.
// Repair when provable, typed fault otherwise — never a panic.
// ---------------------------------------------------------------------

/// The reliable kill lands while a transient eviction's partition
/// migrations are still in flight.
fn reliable_kill_mid_migration(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 3, 3)?;
    job.wait_clock_for(6, STEP)?;
    // Provider-style warning starts the drain; the reliable kill races
    // the resulting migrations without waiting for them.
    job.warn_only(&[T1], 120_000)?;
    job.fail_reliable_nodes(&[R3])?;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

#[test]
fn reliable_kill_mid_migration_repairs_or_faults() {
    sweep(
        "reliable_kill_mid_migration",
        false,
        reliable_kill_mid_migration,
    );
}

/// An eviction storm revokes every ActivePS while a reliable machine
/// dies mid-storm: recovery quorums, rollback, and backup re-replication
/// all overlap.
fn reliable_kill_during_storm(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 3, 3)?;
    job.wait_clock_for(6, STEP)?;
    job.warn_only(&[T1, T2, NodeId(6)], 120_000)?;
    job.fail_reliable_nodes(&[R3])?;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

#[test]
fn reliable_kill_during_eviction_storm_never_panics() {
    sweep(
        "reliable_kill_during_storm",
        false,
        reliable_kill_during_storm,
    );
}

/// Correlated kill: a reliable machine and a transient ActivePS host
/// die in one report. The transient victim holds serving state, so the
/// controller is expected to refuse in-job repair (both copies of some
/// partition may be at risk) and raise the typed restart fault — but a
/// repair is also acceptable if the state allows it.
fn correlated_reliable_transient_kill(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 3, 3)?;
    job.wait_clock_for(6, STEP)?;
    job.fail_reliable_nodes(&[R3, T1])?;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

#[test]
fn correlated_reliable_transient_kill_is_typed() {
    sweep(
        "correlated_reliable_transient_kill",
        false,
        correlated_reliable_transient_kill,
    );
}

/// Two reliable machines die back-to-back: the second kill lands while
/// the first repair's fills may still be in flight. Either both repairs
/// land or the controller types out — the filling map must never let a
/// dead fill source pass silently.
fn double_reliable_kill(seed: u64) -> Result<f64, JobError> {
    let data = mf_data();
    let mut job = AgileMlJob::launch(mf_app(), data.clone(), cfg(seed), 3, 3)?;
    job.wait_clock_for(6, STEP)?;
    job.fail_reliable_nodes(&[R3])?;
    job.fail_reliable_nodes(&[R1])?;
    job.wait_clock_for(TARGET, STEP)?;
    let obj = job.objective(&data)?;
    job.shutdown()?;
    Ok(obj)
}

#[test]
fn double_reliable_kill_repairs_or_faults() {
    sweep("double_reliable_kill", false, double_reliable_kill);
}
