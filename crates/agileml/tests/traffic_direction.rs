//! Traffic-direction properties of the tiered architecture: the whole
//! point of stages 2/3 is *where* the heavy flows go, so these tests
//! assert message-flow direction on the real runtime.

use proteus_agileml::{AgileConfig, AgileMlJob, Stage};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig};
use proteus_simnet::NodeId;

fn app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 30,
        cols: 20,
        rank: 3,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn data() -> Vec<proteus_mlapps::mf::Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 30,
            cols: 20,
            true_rank: 2,
            observed: 400,
            noise: 0.02,
        },
        6,
    )
}

#[test]
fn stage3_backup_stream_flows_toward_reliable_only() {
    // Stage 3 forced at small scale: node 0 = controller, node 1 =
    // reliable (pure BackupPS), nodes 2..=4 transient.
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 6,
        seed: 6,
        force_stage: Some(Stage::Stage3),
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(app(), data(), cfg, 1, 3).expect("launch");
    job.wait_clock(10).expect("progress");

    let reliable = NodeId(1);
    let controller = NodeId(0);
    let transient: Vec<NodeId> = (2..=4).map(NodeId).collect();

    // Backup pushes flow transient → reliable: inbound traffic exists.
    let inbound: u64 = transient
        .iter()
        .map(|t| job.traffic_between(*t, reliable))
        .sum();
    assert!(inbound > 0, "ActivePSs must stream to the BackupPS");

    // The pure-backup reliable machine serves no one in steady state:
    // no traffic to any transient machine (it only talks to the
    // controller: Hello/Ready/clock answers).
    let outbound: u64 = transient
        .iter()
        .map(|t| job.traffic_between(reliable, *t))
        .sum();
    assert_eq!(
        outbound, 0,
        "a stage-3 BackupPS sends nothing to transient machines"
    );
    assert!(job.traffic_between(reliable, controller) > 0);
    job.shutdown().expect("shutdown");
}

#[test]
fn stage1_serving_is_centered_on_reliable_machines() {
    // Stage 1: the reliable machine serves reads/updates, so traffic in
    // BOTH directions between workers and the reliable server must
    // dominate; transient machines exchange nothing among themselves
    // (workers never talk to workers).
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 6,
        seed: 6,
        force_stage: Some(Stage::Stage1),
        ..AgileConfig::default()
    };
    let mut job = AgileMlJob::launch(app(), data(), cfg, 1, 3).expect("launch");
    job.wait_clock(10).expect("progress");

    let reliable = NodeId(1);
    let transient: Vec<NodeId> = (2..=4).map(NodeId).collect();
    for t in &transient {
        assert!(
            job.traffic_between(*t, reliable) > 0,
            "worker {t} sends reads/updates to the ParamServ"
        );
        assert!(
            job.traffic_between(reliable, *t) > 0,
            "the ParamServ answers worker {t}"
        );
    }
    for a in &transient {
        for b in &transient {
            if a != b {
                assert_eq!(
                    job.traffic_between(*a, *b),
                    0,
                    "stage-1 workers never talk to each other"
                );
            }
        }
    }
    job.shutdown().expect("shutdown");
}

#[test]
fn stage2_distributes_serving_across_transient_machines() {
    // Stage 2 with several ActivePSs: worker read/update traffic lands
    // on transient serving machines, not only on the reliable tier.
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 8,
        seed: 7,
        ..AgileConfig::default() // 4:1 ratio → stage 2 by thresholds.
    };
    let mut job = AgileMlJob::launch(app(), data(), cfg, 1, 4).expect("launch");
    assert_eq!(job.status().expect("status").stage, Stage::Stage2);
    job.wait_clock(10).expect("progress");

    let reliable = NodeId(1);
    // With activeps_fraction = 0.5 the first two transient nodes host
    // ActivePSs.
    let actives = [NodeId(2), NodeId(3)];
    let plain_workers = [NodeId(4), NodeId(5)];
    for w in &plain_workers {
        let to_actives: u64 = actives.iter().map(|a| job.traffic_between(*w, *a)).sum();
        assert!(
            to_actives > 0,
            "worker {w} must read/update via the ActivePSs"
        );
        assert_eq!(
            job.traffic_between(*w, reliable),
            0,
            "stage-2 workers do not touch the BackupPS directly"
        );
    }
    // And the backup stream flows from the actives to the reliable node.
    let pushes: u64 = actives
        .iter()
        .map(|a| job.traffic_between(*a, reliable))
        .sum();
    assert!(pushes > 0);
    job.shutdown().expect("shutdown");
}
