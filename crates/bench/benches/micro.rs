//! Criterion micro-benchmarks for the performance-critical substrates:
//! parameter-server shard operations, market stepping, β training,
//! BidBrain decision evaluation, and the perfmodel kernel.
//!
//! ```text
//! cargo bench -p proteus-bench
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use proteus_bidbrain::{AllocView, AppParams, BetaEstimator, BidBrain, BidBrainConfig};
use proteus_market::{catalog, CloudProvider, MarketKey, MarketModel, TraceGenerator, Zone};
use proteus_perfmodel::{presets, time_per_iteration, ClusterSpec, Layout};
use proteus_ps::{DenseVec, ParamKey, PartitionMap, PsValue, ShardStore, WorkerCache};
use proteus_simtime::{SimDuration, SimTime};

fn market_key() -> MarketKey {
    MarketKey::new(catalog::c4_xlarge(), Zone(0))
}

fn bench_ps_shard(c: &mut Criterion) {
    let layout = PartitionMap::new(32).expect("nonzero");
    c.bench_function("ps/shard_apply_update_1k_keys", |b| {
        let mut store: ShardStore<DenseVec> = ShardStore::new(layout);
        for k in 0..1000u64 {
            store.install(ParamKey(k), DenseVec::zeros(32));
        }
        let delta = DenseVec::from(vec![0.5; 32]);
        let mut k = 0u64;
        b.iter(|| {
            store.apply_update(ParamKey(k % 1000), black_box(&delta));
            k += 1;
        });
    });

    c.bench_function("ps/export_partition_1k_keys", |b| {
        let mut store: ShardStore<DenseVec> = ShardStore::new(layout);
        for k in 0..1000u64 {
            store.install(ParamKey(k), DenseVec::zeros(32));
        }
        b.iter(|| black_box(store.export_partition(proteus_ps::PartitionId(0))));
    });

    c.bench_function("ps/worker_cache_flush_256_updates", |b| {
        let delta = DenseVec::from(vec![0.1; 32]);
        b.iter(|| {
            let mut cache: WorkerCache<DenseVec> = WorkerCache::new(layout);
            for k in 0..256u64 {
                cache.update(ParamKey(k), &delta);
            }
            black_box(cache.flush())
        });
    });
}

fn bench_ps_rows(c: &mut Criterion) {
    // Row-op kernels at the dimensions the paper's apps actually use:
    // 8 (k-means coords), 128 (MF/MLR ranks), 1024 (LDA-scale rows).
    for dim in [8usize, 128, 1024] {
        let delta = DenseVec::from(vec![0.25; dim]);

        c.bench_function(&format!("ps/row_merge_dim{dim}"), |b| {
            let mut row = DenseVec::zeros(dim);
            b.iter(|| {
                row.merge(black_box(&delta));
            });
        });

        c.bench_function(&format!("ps/row_axpy_dim{dim}"), |b| {
            let mut row = DenseVec::zeros(dim);
            b.iter(|| {
                row.axpy(black_box(0.5), black_box(&delta));
            });
        });
    }
}

fn bench_ps_batch(c: &mut Criterion) {
    // Whole-batch application through the sharded store — the data-plane
    // hot path a server runs per incoming UpdateBatch.
    for keys in [1_000u64, 64_000] {
        let layout = PartitionMap::new(32).expect("nonzero");
        let mut store: ShardStore<DenseVec> = ShardStore::new(layout);
        for k in 0..keys {
            store.install(ParamKey(k), DenseVec::zeros(32));
        }
        let delta = DenseVec::from(vec![0.5; 32]);
        // Arc-backed values: building the batch is refcount bumps.
        let updates: Vec<(ParamKey, DenseVec)> =
            (0..keys).map(|k| (ParamKey(k), delta.clone())).collect();
        c.bench_function(&format!("ps/apply_batch_{}k_keys", keys / 1000), |b| {
            b.iter(|| {
                store.apply_batch(black_box(&updates));
            });
        });
        // Drain the dirty aggregate so it cannot grow without bound
        // across measurement batches.
        let _ = store.take_dirty();
    }
}

fn bench_market(c: &mut Criterion) {
    c.bench_function("market/generate_week_trace", |b| {
        let gen = TraceGenerator::new(7, MarketModel::default());
        b.iter(|| black_box(gen.generate(market_key(), SimDuration::from_hours(24 * 7))));
    });

    c.bench_function("market/provider_advance_24h_4_allocs", |b| {
        let gen = TraceGenerator::new(7, MarketModel::default());
        let keys = catalog::paper_markets();
        let traces = gen.generate_set(&keys, SimDuration::from_hours(30));
        b.iter(|| {
            let mut p = CloudProvider::new(&traces);
            for k in keys.iter().take(4) {
                let price = p.spot_price(*k).expect("trace");
                let _ = p.request_spot(*k, 8, price + 0.05);
            }
            black_box(p.advance_to(SimTime::from_hours(24)).expect("forward"))
        });
    });
}

fn bench_bidbrain(c: &mut Criterion) {
    let gen = TraceGenerator::new(7, MarketModel::default());
    let horizon = SimDuration::from_hours(24 * 30);
    let trace = gen.generate(market_key(), horizon);

    c.bench_function("bidbrain/train_beta_30_days", |b| {
        b.iter(|| {
            let mut est = BetaEstimator::new();
            est.train(
                market_key(),
                black_box(&trace),
                SimTime::EPOCH,
                SimTime::EPOCH + horizon,
                SimDuration::from_mins(60),
                &BetaEstimator::default_deltas(),
            );
            black_box(est)
        });
    });

    let mut est = BetaEstimator::new();
    est.train(
        market_key(),
        &trace,
        SimTime::EPOCH,
        SimTime::EPOCH + horizon,
        SimDuration::from_mins(60),
        &BetaEstimator::default_deltas(),
    );
    let brain = BidBrain::new(AppParams::default(), est, BidBrainConfig::default());
    let footprint: Vec<AllocView> = (0..6)
        .map(|i| AllocView {
            market: market_key(),
            count: 16,
            hourly_price: 0.05 + 0.001 * f64::from(i),
            bid_delta: Some(0.01),
            time_remaining: SimDuration::from_mins(40),
            work_rate: 4.0,
        })
        .collect();
    let prices: Vec<(MarketKey, f64)> = catalog::paper_markets()
        .into_iter()
        .map(|m| (m, 0.05))
        .collect();
    c.bench_function("bidbrain/consider_acquisition_8_markets", |b| {
        b.iter(|| {
            black_box(brain.consider_acquisition(
                black_box(&footprint),
                black_box(&prices),
                SimTime::EPOCH,
            ))
        });
    });
}

fn bench_perfmodel(c: &mut Criterion) {
    let spec = ClusterSpec::cluster_a();
    let app = presets::mf_netflix_rank1000();
    c.bench_function("perfmodel/time_per_iteration_stage2", |b| {
        b.iter(|| {
            black_box(time_per_iteration(
                spec,
                app,
                Layout::Stage2 {
                    reliable: 4,
                    transient: 60,
                    active_ps: 32,
                },
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_ps_shard,
    bench_ps_rows,
    bench_ps_batch,
    bench_market,
    bench_bidbrain,
    bench_perfmodel
);
criterion_main!(benches);
