//! Ablation — ActivePS fraction.
//!
//! AgileML "achieves best performance when running ActivePSs on half of
//! the resources" (Sec. 3.3). This sweep varies the fraction of
//! transient machines hosting an ActivePS at the Fig. 12 configuration
//! (4 reliable + 60 transient) and at 63:1.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin ablate_activeps_ratio
//! ```

use proteus_bench::header;
use proteus_perfmodel::{presets, time_per_iteration, ClusterSpec, Layout};

fn sweep(reliable: u32, transient: u32) {
    let spec = ClusterSpec::cluster_a();
    let app = presets::mf_netflix_rank1000();
    println!("\n{reliable} reliable + {transient} transient:");
    println!("{:>12} {:>12} {:>12}", "fraction", "ActivePSs", "sec/iter");
    let mut best = (0.0f64, f64::INFINITY);
    for pct in [12.5f64, 25.0, 37.5, 50.0, 62.5, 75.0, 87.5, 100.0] {
        let active = (((transient as f64) * pct / 100.0).round() as u32).clamp(1, transient);
        let t = time_per_iteration(
            spec,
            app,
            Layout::Stage2 {
                reliable,
                transient,
                active_ps: active,
            },
        );
        if t < best.1 {
            best = (pct, t);
        }
        println!("{:>11.1}% {:>12} {:>12.2}", pct, active, t);
    }
    println!("best fraction: {:.1}% (paper: ~50%)", best.0);
}

fn main() {
    header(
        "Ablation",
        "fraction of transient machines hosting an ActivePS (stage 2, MF)",
    );
    sweep(4, 60);
    sweep(1, 63);
}
