//! Ablation — adaptive bid deltas vs fixed deltas.
//!
//! The paper (Sec. 6.3) reports that always bidding just above the
//! market price to farm free compute backfires (3–4× runtime, higher
//! cost from too-frequent evictions), while BidBrain's β-aware sweep
//! finds a happy medium. This ablation pins Proteus to single deltas
//! across the sweep and compares against the adaptive policy.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin ablate_bid_delta
//! ```

use proteus_bench::{header, standard_study};
use proteus_costsim::{SchemeKind, StudyEnv};

fn main() {
    header(
        "Ablation",
        "fixed bid delta vs BidBrain's adaptive delta sweep (2-hour jobs)",
    );
    let env = StudyEnv::new(standard_study(2.0, 50));

    println!(
        "{:>16} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "policy", "cost $", "% on-demand", "hours", "evictions", "% free"
    );
    for delta in [0.0001, 0.005, 0.05, 0.4] {
        let r = env.run_scheme(SchemeKind::proteus_fixed_delta(delta));
        println!(
            "{:>16} {:>10.2} {:>12.1} {:>10.2} {:>10.2} {:>8.0}",
            format!("fixed ${delta}"),
            r.mean_cost,
            r.cost_pct_of_on_demand,
            r.mean_runtime_hours,
            r.mean_evictions,
            100.0 * r.usage.free_fraction()
        );
    }
    let adaptive = env.run_scheme(SchemeKind::paper_proteus());
    println!(
        "{:>16} {:>10.2} {:>12.1} {:>10.2} {:>10.2} {:>8.0}",
        "adaptive",
        adaptive.mean_cost,
        adaptive.cost_pct_of_on_demand,
        adaptive.mean_runtime_hours,
        adaptive.mean_evictions,
        100.0 * adaptive.usage.free_fraction()
    );
    println!("\nexpected shape: the tiniest delta maximizes free compute but suffers");
    println!("the most evictions and the worst runtime; the largest delta is safe but");
    println!("collects no refunds; adaptive sits at or near the best cost.");
}
