//! Ablation — checkpoint-period sensitivity for the baseline scheme.
//!
//! The checkpointing baseline trades steady-state overhead (frequent
//! checkpoints) against rollback loss (rare checkpoints). The paper uses
//! an MTTF-derived frequency costing ~17% throughput; this sweep shows
//! the trade-off and that no setting approaches AgileML's eviction
//! handling.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin ablate_checkpoint_period
//! ```

use proteus_bench::{header, standard_study};
use proteus_costsim::{SchemeKind, StudyEnv};
use proteus_simtime::SimDuration;

fn main() {
    header(
        "Ablation",
        "checkpoint interval vs cost/runtime (2-hour jobs, volatile market)",
    );
    let mut cfg = standard_study(2.0, 50);
    cfg.market_model = proteus_market::MarketModel::volatile();
    let env = StudyEnv::new(cfg);

    println!(
        "{:>26} {:>10} {:>10} {:>10}",
        "configuration", "cost $", "hours", "evictions"
    );
    // Overhead scales inversely with interval (Young's approximation):
    // the paper's 17% sits near interval ≈ 170 core-hours.
    for (interval, overhead) in [
        (42.5, 0.34),
        (85.0, 0.24),
        (170.0, 0.17),
        (340.0, 0.12),
        (680.0, 0.085),
    ] {
        let r = env.run_scheme(SchemeKind::StandardCheckpoint {
            checkpoint_overhead: overhead,
            checkpoint_interval_core_hours: interval,
            restart_delay: SimDuration::from_mins(8),
        });
        println!(
            "{:>26} {:>10.2} {:>10.2} {:>10.2}",
            format!("ckpt every {interval} c-h ({:.0}%)", overhead * 100.0),
            r.mean_cost,
            r.mean_runtime_hours,
            r.mean_evictions
        );
    }
    // The adaptive arm replaces the fixed cadence with Young's rule on
    // live forecasted hazard: near-zero tax on calm stretches, dense
    // checkpoints (plus alert-triggered ones) when eviction looms.
    let adaptive = env.run_scheme(SchemeKind::paper_adaptive_checkpoint());
    println!(
        "{:>26} {:>10.2} {:>10.2} {:>10.2}",
        "adaptive (forecast-driven)",
        adaptive.mean_cost,
        adaptive.mean_runtime_hours,
        adaptive.mean_evictions
    );
    let agile = env.run_scheme(SchemeKind::paper_standard_agileml());
    println!(
        "{:>26} {:>10.2} {:>10.2} {:>10.2}",
        "Standard+AgileML", agile.mean_cost, agile.mean_runtime_hours, agile.mean_evictions
    );
    println!("\nexpected shape: a U-shaped trade-off with the MTTF-derived setting near");
    println!("the bottom, the adaptive arm beating the whole fixed curve, and AgileML");
    println!("beating every checkpointing variant.");
}
