//! Extension — BidBrain beyond the EC2 spot market (paper Sec. 7).
//!
//! The paper argues BidBrain's mathematical framework transfers to other
//! providers: on Google preemptible instances the price is a fixed 70 %
//! discount (no bidding, no free-compute refunds) and β comes from an
//! exogenous preemption process rather than price history. This binary
//! evaluates the same cost-per-work objective on a GCE-style provider
//! and quantifies how much of Proteus' EC2 win comes from AWS-specific
//! refund farming versus plain transient-discount exploitation.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin ablate_gce
//! ```

use proteus_bench::{header, standard_study};
use proteus_costsim::{SchemeKind, StudyEnv};
use proteus_market::gce::{GceMarket, PreemptionModel, GCE_DISCOUNT};
use proteus_simtime::SimDuration;

fn main() {
    header(
        "Extension",
        "cost-per-work on GCE preemptible instances vs EC2 spot (2-hour jobs)",
    );

    // --- EC2 side: the full Proteus study (refunds + multi-market). ---
    let env = StudyEnv::new(standard_study(2.0, 50));
    let ec2 = env.run_scheme(SchemeKind::paper_proteus());
    let od_baseline = env.on_demand_baseline().cost;

    // --- GCE side: fixed 70 % discount, Poisson preemptions, no
    // refunds. Cost is deterministic given machine-hours; preemptions
    // cost λ pauses exactly as on EC2. ---
    let gce = GceMarket::new(2016, PreemptionModel::default());
    let market = env.on_demand_market;
    let od_price = market.instance_type().on_demand_price;
    let gce_price = gce.price(market);
    let lambda = SimDuration::from_secs(240);

    // Simulate: keep 384 preemptible instances (1536 cores / 4) plus 3
    // on-demand. Preemptions across the fleet form a Poisson process of
    // rate 384 × per-instance rate; each costs a λ progress pause, and
    // the preempted instance is replaced immediately (no bidding on
    // GCE). β for a one-hour horizon comes straight from the model —
    // the analogue the paper sketches in Sec. 7.
    let beta_hour = gce.preemption_probability(SimDuration::from_hours(1));
    let phi = 0.97f64;
    let fleet = 384.0f64;
    let cores: f64 = fleet * 4.0 + 12.0;
    let rate = cores * phi.powf(cores.log2()); // φ-scaled core-hours/hour.
    let work_needed = 512.0 * 2.0 * phi.powf(512f64.log2());
    let fleet_rate_per_hour = fleet * PreemptionModel::default().preemptions_per_day / 24.0;

    let mut rng = proteus_simtime::rng::seeded(2016);
    let exp_interval = |rng: &mut rand::rngs::StdRng| -> f64 {
        let u: f64 = rand::Rng::gen_range(rng, 1e-12..1.0);
        -u.ln() / fleet_rate_per_hour
    };
    let mut preemptions = 0u32;
    let mut t_hours = 0.0f64;
    let step = 1.0 / 30.0; // Two-minute steps.
    let mut work = 0.0;
    let mut next_preempt = exp_interval(&mut rng);
    let mut paused_until = 0.0f64;
    while work < work_needed && t_hours < 48.0 {
        if t_hours >= next_preempt {
            preemptions += 1;
            paused_until = t_hours + lambda.as_hours_f64();
            next_preempt = t_hours + exp_interval(&mut rng);
        }
        if t_hours >= paused_until {
            work += rate * step;
        }
        t_hours += step;
    }
    let gce_cost = fleet * gce_price * t_hours + 3.0 * od_price * t_hours;
    println!("per-instance one-hour preemption probability β = {beta_hour:.4}\n");

    println!(
        "{:>28} {:>10} {:>14} {:>10} {:>12}",
        "provider", "cost $", "% of on-demand", "hours", "preemptions"
    );
    println!(
        "{:>28} {:>10.2} {:>14.1} {:>10.2} {:>12.2}",
        "EC2 spot (Proteus)",
        ec2.mean_cost,
        100.0 * ec2.mean_cost / od_baseline,
        ec2.mean_runtime_hours,
        ec2.mean_evictions
    );
    println!(
        "{:>28} {:>10.2} {:>14.1} {:>10.2} {:>12}",
        format!("GCE preemptible ({:.0}% off)", GCE_DISCOUNT * 100.0),
        gce_cost,
        100.0 * gce_cost / od_baseline,
        t_hours,
        preemptions
    );
    println!("\nEC2 refund farming contributes the gap between the two rows; the bulk of");
    println!("the savings — the transient discount itself — transfers to any provider");
    println!("(the paper's Sec. 7 argument).");
}
