//! Ablation — cost-per-work objective vs raw-cost minimization.
//!
//! BidBrain's central design choice is optimizing E_A = C_A / W_A rather
//! than raw cost: the paper's Fig. 6 shows adding a second spot
//! allocation *raises* instantaneous cost while *lowering* cost-per-work
//! (and hence final job cost). A raw-cost minimizer never adds capacity
//! beyond the minimum, so it runs long and pays more overall.
//!
//! This ablation approximates raw-cost minimization by a Proteus variant
//! whose core target is the bare minimum (one standard fleet, no
//! over-provisioning), compared to the full policy.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin ablate_objective
//! ```

use proteus_bench::{header, standard_study};
use proteus_costsim::{Scheme, SchemeKind, StudyEnv};
use proteus_simtime::SimDuration;

fn main() {
    header(
        "Ablation",
        "cost-per-work objective vs minimal-footprint (raw cost) provisioning",
    );
    let env = StudyEnv::new(standard_study(2.0, 50));
    let full = env.run_scheme(SchemeKind::paper_proteus());

    // Minimal-footprint variant: same bidding machinery, but capped at
    // one fleet's worth of cores (cannot amortize by growing).
    let mut job = env.job();
    job.target_cores = 256;
    let horizon = SimDuration::from_hours(72);
    let mut cost = 0.0;
    let mut hours = 0.0;
    for &start in &env.starts {
        let out = proteus_costsim::run_job(
            &Scheme {
                kind: SchemeKind::paper_proteus(),
                job,
            },
            &env.traces,
            &env.beta,
            start,
            horizon,
        );
        cost += out.cost;
        hours += out.runtime.as_hours_f64();
    }
    let n = env.starts.len() as f64;

    println!("{:>26} {:>10} {:>10}", "policy", "cost $", "hours");
    println!(
        "{:>26} {:>10.2} {:>10.2}",
        "min-footprint (256 cores)",
        cost / n,
        hours / n
    );
    println!(
        "{:>26} {:>10.2} {:>10.2}",
        "cost-per-work (1536 cores)", full.mean_cost, full.mean_runtime_hours
    );
    println!("\nexpected shape: the cost-per-work policy runs much faster for similar or");
    println!("lower cost — growing the footprint amortizes the fixed on-demand expense");
    println!("(the paper's Fig. 6 phase-2 lesson).");
}
