//! Ablation — stage-switch threshold sensitivity.
//!
//! AgileML switches stages at transient:reliable ratios of 1:1 and 15:1
//! (Sec. 3.3), but the paper notes "perfect threshold settings are not
//! required". This sweep evaluates the model across the full ratio axis
//! and reports where each stage actually wins, validating that the
//! paper's thresholds sit in the right neighbourhood and that the
//! penalty for a mis-set threshold is modest.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin ablate_stage_thresholds
//! ```

use proteus_bench::header;
use proteus_perfmodel::{presets, time_per_iteration, ClusterSpec, Layout};

fn main() {
    header(
        "Ablation",
        "best stage per transient:reliable ratio (MF, 64 machines)",
    );
    let spec = ClusterSpec::cluster_a();
    let app = presets::mf_netflix_rank1000();
    let total = 64u32;

    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "ratio", "stage1 s", "stage2 s", "stage3 s", "best"
    );
    for reliable in [32u32, 16, 8, 4, 2, 1] {
        let transient = total - reliable;
        let ratio = transient as f64 / reliable as f64;
        let active = (transient / 2).max(1);
        let s1 = time_per_iteration(
            spec,
            app,
            Layout::Stage1 {
                reliable_ps: reliable,
                total,
            },
        );
        let s2 = time_per_iteration(
            spec,
            app,
            Layout::Stage2 {
                reliable,
                transient,
                active_ps: active,
            },
        );
        let s3 = time_per_iteration(
            spec,
            app,
            Layout::Stage3 {
                reliable,
                transient,
                active_ps: active,
            },
        );
        let best = if s1 <= s2 && s1 <= s3 {
            "stage1"
        } else if s2 <= s3 {
            "stage2"
        } else {
            "stage3"
        };
        println!(
            "{:>9.1}:1 {:>10.2} {:>10.2} {:>10.2} {:>10}",
            ratio, s1, s2, s3, best
        );
    }
    println!("\npaper thresholds: stage 2 above 1:1, stage 3 above 15:1. The crossovers");
    println!("in this sweep should bracket those values, with flat penalties nearby.");
}
