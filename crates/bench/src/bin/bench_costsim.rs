//! Cost-study engine timing harness: serial vs parallel wall-clock for
//! the paper-scale four-scheme comparison, verifying the parallel path
//! is a pure speedup (identical results) and recording the numbers in
//! `BENCH_costsim.json` — plus an observability overhead comparison
//! (recorder attached vs detached, best-of-2) written to
//! `BENCH_obs.json`, guarding the "< 5% when on, free when off"
//! contract.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin bench_costsim
//! PROTEUS_THREADS=8 cargo run --release -p proteus-bench --bin bench_costsim
//! ```

use std::time::Instant;

use proteus_bench::header;
use proteus_costsim::{StudyConfig, StudyEnv, StudyExecutor};
use proteus_market::MarketModel;

fn main() {
    header("BENCH", "cost-study engine: serial vs parallel");

    let starts: usize = std::env::var("PROTEUS_BENCH_STARTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let config = StudyConfig {
        seed: 1,
        train_days: 14,
        eval_days: 28,
        starts,
        job_hours: 2.0,
        market_model: MarketModel::default(),
        max_job_hours: 96.0,
        market_faults: None,
    };
    let schemes = 4usize;
    let runs = schemes * starts;

    let env = StudyEnv::new(config.clone());
    // Warm the shared on-demand baseline so neither timed path pays for
    // it (both would otherwise simulate it inside the first call).
    let _ = env.on_demand_baseline();

    let t0 = Instant::now();
    let serial = env.run_comparison_with(&StudyExecutor::serial());
    let serial_secs = t0.elapsed().as_secs_f64();
    println!("serial   : {runs} runs in {serial_secs:.2}s");

    let exec = StudyExecutor::from_env();
    let t1 = Instant::now();
    let parallel = env.run_comparison_with(&exec);
    let parallel_secs = t1.elapsed().as_secs_f64();
    let threads = exec.threads();
    println!("parallel : {runs} runs in {parallel_secs:.2}s ({threads} threads)");

    let identical = serial == parallel;
    assert!(identical, "parallel study diverged from the serial path");

    let speedup = serial_secs / parallel_secs.max(1e-9);
    let runs_per_sec = runs as f64 / parallel_secs.max(1e-9);
    println!("speedup  : {speedup:.2}x  ({runs_per_sec:.1} runs/sec)");
    for r in &parallel {
        println!(
            "  {:<22} mean ${:>7.2}  ({:>5.1}% of on-demand)",
            r.scheme, r.mean_cost, r.cost_pct_of_on_demand
        );
    }

    let json = format!(
        "{{\n  \"starts\": {starts},\n  \"schemes\": {schemes},\n  \"runs\": {runs},\n  \
         \"serial_secs\": {serial_secs:.3},\n  \"parallel_secs\": {parallel_secs:.3},\n  \
         \"threads\": {threads},\n  \"speedup\": {speedup:.3},\n  \
         \"runs_per_sec\": {runs_per_sec:.1},\n  \"identical\": {identical}\n}}\n"
    );
    std::fs::write("BENCH_costsim.json", &json).expect("write BENCH_costsim.json");
    println!("\nwrote BENCH_costsim.json");

    // ------------------------------------------------------------------
    // Observability overhead: the four-scheme comparison with a per-job
    // recorder live vs without one, on the paper's 20-hour jobs
    // (Fig. 10) so per-run recorder setup amortizes over a realistic
    // job length. Best-of-5 per side damps wall-clock noise; both sides
    // use the parallel executor so the measurement matches how studies
    // actually run. The one-shot JSONL export is timed separately — it
    // is paid once per study, not per step, and only when an export was
    // requested.
    // ------------------------------------------------------------------
    println!();
    let obs_starts = starts.min(25);
    let obs_runs = schemes * obs_starts;
    let env20 = StudyEnv::new(StudyConfig {
        job_hours: 20.0,
        starts: obs_starts,
        ..config
    });
    let _ = env20.on_demand_baseline();
    let baseline = env20.run_comparison_with(&exec);
    // Interleave the reps (off, on, off, on, …) so thermal and
    // scheduler drift hits both sides equally; keep the best of each.
    let mut off_secs = f64::INFINITY;
    let mut on_secs = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        let _ = env20.run_comparison_with(&exec);
        off_secs = off_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let _ = env20.run_comparison_recorders(&exec);
        on_secs = on_secs.min(t.elapsed().as_secs_f64());
    }
    let (recorded, recorders) = env20.run_comparison_recorders(&exec);
    let passive = recorded == baseline;
    assert!(passive, "recording perturbed the study results");
    let t2 = Instant::now();
    let mut jsonl = String::new();
    for rec in &recorders {
        rec.append_jsonl(&mut jsonl);
    }
    let export_secs = t2.elapsed().as_secs_f64();
    let events = jsonl.lines().count();
    let overhead_pct = 100.0 * (on_secs - off_secs).max(0.0) / off_secs.max(1e-9);
    println!("obs off  : {obs_runs} runs (20h jobs) in {off_secs:.2}s (best of 5)");
    println!("obs on   : {obs_runs} runs (20h jobs) in {on_secs:.2}s (best of 5, {events} events)");
    println!("overhead : {overhead_pct:.2}%  (+ one-shot JSONL export: {export_secs:.3}s)");

    let json = format!(
        "{{\n  \"runs\": {obs_runs},\n  \"job_hours\": 20.0,\n  \
         \"obs_off_secs\": {off_secs:.3},\n  \
         \"obs_on_secs\": {on_secs:.3},\n  \"overhead_pct\": {overhead_pct:.2},\n  \
         \"export_secs\": {export_secs:.3},\n  \
         \"events\": {events},\n  \"passive\": {passive}\n}}\n"
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
