//! Cost-study engine timing harness: serial vs parallel wall-clock for
//! the paper-scale four-scheme comparison, verifying the parallel path
//! is a pure speedup (identical results) and recording the numbers in
//! `BENCH_costsim.json`.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin bench_costsim
//! PROTEUS_THREADS=8 cargo run --release -p proteus-bench --bin bench_costsim
//! ```

use std::time::Instant;

use proteus_bench::header;
use proteus_costsim::{StudyConfig, StudyEnv, StudyExecutor};
use proteus_market::MarketModel;

fn main() {
    header("BENCH", "cost-study engine: serial vs parallel");

    let starts: usize = std::env::var("PROTEUS_BENCH_STARTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let config = StudyConfig {
        seed: 1,
        train_days: 14,
        eval_days: 28,
        starts,
        job_hours: 2.0,
        market_model: MarketModel::default(),
        max_job_hours: 96.0,
        market_faults: None,
    };
    let schemes = 4usize;
    let runs = schemes * starts;

    let env = StudyEnv::new(config);
    // Warm the shared on-demand baseline so neither timed path pays for
    // it (both would otherwise simulate it inside the first call).
    let _ = env.on_demand_baseline();

    let t0 = Instant::now();
    let serial = env.run_comparison_with(&StudyExecutor::serial());
    let serial_secs = t0.elapsed().as_secs_f64();
    println!("serial   : {runs} runs in {serial_secs:.2}s");

    let exec = StudyExecutor::from_env();
    let t1 = Instant::now();
    let parallel = env.run_comparison_with(&exec);
    let parallel_secs = t1.elapsed().as_secs_f64();
    let threads = exec.threads();
    println!("parallel : {runs} runs in {parallel_secs:.2}s ({threads} threads)");

    let identical = serial == parallel;
    assert!(identical, "parallel study diverged from the serial path");

    let speedup = serial_secs / parallel_secs.max(1e-9);
    let runs_per_sec = runs as f64 / parallel_secs.max(1e-9);
    println!("speedup  : {speedup:.2}x  ({runs_per_sec:.1} runs/sec)");
    for r in &parallel {
        println!(
            "  {:<22} mean ${:>7.2}  ({:>5.1}% of on-demand)",
            r.scheme, r.mean_cost, r.cost_pct_of_on_demand
        );
    }

    let json = format!(
        "{{\n  \"starts\": {starts},\n  \"schemes\": {schemes},\n  \"runs\": {runs},\n  \
         \"serial_secs\": {serial_secs:.3},\n  \"parallel_secs\": {parallel_secs:.3},\n  \
         \"threads\": {threads},\n  \"speedup\": {speedup:.3},\n  \
         \"runs_per_sec\": {runs_per_sec:.1},\n  \"identical\": {identical}\n}}\n"
    );
    std::fs::write("BENCH_costsim.json", &json).expect("write BENCH_costsim.json");
    println!("\nwrote BENCH_costsim.json");
}
