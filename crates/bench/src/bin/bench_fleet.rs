//! Fleet-scheduler scale benchmark: a 500-trial hyperparameter sweep
//! through the shared fleet vs the same trials run per-job-independent.
//! Writes the comparison to `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin bench_fleet
//! ```
//!
//! Three gates ride on this file (see `scripts/check.sh`):
//!
//! 1. **Scale** — the 500-trial sweep completes inside its horizon with
//!    scheduler bookkeeping (admission, ranking, preemption planning,
//!    launch walk) under 5 % of the sweep's wall clock. Everything else
//!    the run spends — Eq. 4 evaluations and market simulation — a
//!    per-job baseline pays too, so the 5 % is the true price of
//!    *global* scheduling.
//! 2. **$/work** — the fleet's realized cost-per-work must beat the
//!    per-job-independent baseline ([`SchemeKind::fleet_trial`]), where
//!    every trial holds its own dedicated reliable machine instead of a
//!    bin-packed slot on the shared pool.
//! 3. **Determinism** — the sweep outcome is bit-identical across
//!    `PROTEUS_THREADS` settings (1 vs 4 checked here).
//!
//! Knobs: `PROTEUS_BENCH_FLEET_TRIALS` (default 500).

use std::time::Instant;

use proteus_bench::header;
use proteus_bidbrain::BetaEstimator;
use proteus_costsim::{run_job, Scheme, SchemeKind, StudyExecutor};
use proteus_costsim::{JobSpec, SimOutcome};
use proteus_fleet::{run_sweep, FleetConfig, SweepConfig, SweepOutcome};
use proteus_market::{catalog, MarketKey, MarketModel, TraceGenerator, TraceSet};
use proteus_simtime::{SimDuration, SimTime};

/// β-training window; the sweep starts when it ends.
const TRAIN: SimDuration = SimDuration::from_hours(12);

fn markets() -> Vec<MarketKey> {
    // The full paper market set: every round ranks each pending gang
    // across all eight markets, like the paper's BidBrain does.
    catalog::paper_markets()
}

fn traces(horizon: SimDuration) -> TraceSet {
    TraceGenerator::new(41, MarketModel::default()).generate_set(&markets(), horizon)
}

fn trained_beta(traces: &TraceSet) -> BetaEstimator {
    let mut beta = BetaEstimator::new();
    for k in &markets() {
        if let Some(trace) = traces.get(k) {
            beta.train(
                *k,
                trace,
                SimTime::EPOCH,
                SimTime::EPOCH + TRAIN,
                SimDuration::from_mins(30),
                &BetaEstimator::default_deltas(),
            );
        }
    }
    beta
}

fn sweep_cfg(trials: usize) -> SweepConfig {
    SweepConfig {
        trials,
        gang: 2,
        rungs: vec![1.0, 2.0, 4.0],
        submit_every: SimDuration::from_secs(60),
        horizon: SimDuration::from_hours(40),
        seed: 17,
        ..SweepConfig::default()
    }
}

/// The per-job-independent baseline: each trial reruns as its own
/// [`SchemeKind::fleet_trial`] job sized to the work the fleet actually
/// accrued for it, holding one dedicated reliable machine for its whole
/// life — the cost structure the shared pool amortizes away.
fn baseline_cost(sweep: &SweepOutcome, traces: &TraceSet, beta: &BetaEstimator) -> (f64, f64) {
    let od = markets()[0];
    let gang_cores = 2 * od.instance_type().vcpus;
    let jobs: Vec<f64> = sweep
        .trials
        .iter()
        .map(|t| t.work_done)
        .filter(|&w| w > 1e-6)
        .collect();
    let exec = StudyExecutor::from_env();
    let outcomes: Vec<SimOutcome> = exec.run_indexed(jobs.len(), |i| {
        let scheme = Scheme {
            kind: SchemeKind::fleet_trial(),
            job: JobSpec {
                work_core_hours: jobs[i],
                on_demand_market: od,
                on_demand_count: 1,
                on_demand_works: false,
                target_cores: gang_cores,
                standard_cores: gang_cores,
                phi_per_doubling: 0.97,
            },
        };
        // Same start and window the fleet ran, so neither side gets a
        // cheaper stretch of the price history.
        run_job(
            &scheme,
            traces,
            beta,
            SimTime::EPOCH,
            SimDuration::from_hours(40),
        )
    });
    let cost: f64 = outcomes.iter().map(|o| o.cost).sum();
    let work: f64 = jobs.iter().sum();
    (cost, work)
}

fn main() {
    let trials: usize = std::env::var("PROTEUS_BENCH_FLEET_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(500);
    header(
        "BENCH",
        "fleet: 500-trial shared-market sweep vs per-job-independent trials",
    );

    let horizon = TRAIN + SimDuration::from_hours(44);
    let traces = traces(horizon);
    let beta = trained_beta(&traces);
    let cfg = sweep_cfg(trials);
    let fleet_cfg = || {
        let mut c = FleetConfig::paper_defaults(markets());
        c.max_active_jobs = 64;
        c
    };

    // Timed run on the environment's thread count.
    let exec = StudyExecutor::from_env();
    let t = Instant::now();
    let (sweep, timing) = run_sweep(&traces, &beta, fleet_cfg(), &cfg, &exec).expect("sweep runs");
    let wall_secs = t.elapsed().as_secs_f64();
    let overhead_pct = 100.0 * timing.sched_seconds / wall_secs.max(1e-9);

    let finished = sweep
        .trials
        .iter()
        .filter(|t| t.rungs_completed == cfg.rungs.len())
        .count();
    let killed = sweep
        .trials
        .iter()
        .filter(|t| t.state == proteus_fleet::JobState::Killed)
        .count();

    // Determinism: serial vs 4 threads must agree exactly.
    let serial = run_sweep(&traces, &beta, fleet_cfg(), &cfg, &StudyExecutor::new(1))
        .expect("serial sweep")
        .0;
    let threaded = run_sweep(&traces, &beta, fleet_cfg(), &cfg, &StudyExecutor::new(4))
        .expect("threaded sweep")
        .0;
    let deterministic = serial == threaded && serial == sweep;

    let fleet_cost = sweep.fleet.total_cost;
    let fleet_work = sweep.fleet.total_work;
    let fleet_cpw = sweep.fleet.cost_per_work();
    let (base_cost, base_work) = baseline_cost(&sweep, &traces, &beta);
    let base_cpw = if base_work > 0.0 {
        base_cost / base_work
    } else {
        f64::INFINITY
    };
    let advantage = base_cpw / fleet_cpw.max(1e-12);

    println!(
        "sweep      : {trials} trials, {finished} finished, {killed} early-killed, \
         {} evictions, {} preemptions",
        sweep.fleet.evictions, sweep.fleet.preemptions
    );
    println!(
        "scheduler  : {:.1}ms bookkeeping over {} rounds = {overhead_pct:.2}% of {:.2}s wall",
        timing.sched_seconds * 1e3,
        timing.rounds,
        wall_secs
    );
    println!(
        "fleet      : ${fleet_cost:.2} for {fleet_work:.1} core-hours = ${fleet_cpw:.4}/work \
         (peak {} shared reliable machines)",
        sweep.fleet.peak_reliable_machines
    );
    println!("baseline   : ${base_cost:.2} for {base_work:.1} core-hours = ${base_cpw:.4}/work");
    println!("advantage  : {advantage:.2}x cheaper per unit work; deterministic={deterministic}");

    let json = format!(
        "{{\n  \"trials\": {trials},\n  \"finished\": {finished},\n  \"killed\": {killed},\n  \
         \"evictions\": {},\n  \"preemptions\": {},\n  \
         \"wall_secs\": {wall_secs:.4},\n  \"sched_secs\": {:.6},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \
         \"fleet_cost\": {fleet_cost:.4},\n  \"fleet_work\": {fleet_work:.4},\n  \
         \"fleet_cost_per_work\": {fleet_cpw:.6},\n  \
         \"baseline_cost\": {base_cost:.4},\n  \"baseline_cost_per_work\": {base_cpw:.6},\n  \
         \"advantage\": {advantage:.4},\n  \
         \"peak_reliable_machines\": {},\n  \"deterministic\": {deterministic}\n}}\n",
        sweep.fleet.evictions,
        sweep.fleet.preemptions,
        timing.sched_seconds,
        sweep.fleet.peak_reliable_machines,
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("\nwrote BENCH_fleet.json");
}
