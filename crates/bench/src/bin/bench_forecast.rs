//! Eviction-defense gate: forecast accuracy and proactive-vs-reactive
//! work saved, recorded in `BENCH_forecast.json`.
//!
//! Part 1 replays generated volatile traces through the preemption
//! forecaster and scores its alerts against ground-truth bid crossings
//! (precision / recall / mean lead time). Part 2 runs the cost study's
//! checkpointing baselines head to head: the reactive scheme (fixed
//! MTTF-derived cadence, rollback on every eviction) against the
//! proactive scheme (Young's-rule cadence on live forecasted hazard,
//! alert-triggered checkpoints). `scripts/check.sh` fails the build if
//! the proactive scheme saves less work than the reactive one.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin bench_forecast
//! ```

use proteus_bench::{header, standard_study};
use proteus_bidbrain::{ForecastConfig, ForecastScore, ForecastScorer, PreemptionForecaster};
use proteus_costsim::{SchemeKind, StudyEnv, StudyExecutor};
use proteus_market::{catalog, MarketKey, MarketModel, TraceGenerator, Zone};
use proteus_simtime::{SimDuration, SimTime};

/// Trace-replay sampling cadence (matches the session's forecast step).
const STEP: SimDuration = SimDuration::from_secs(120);
/// Provider warning lead after a bid crossing: the eviction the
/// forecaster is trying to beat lands this long after the price crosses.
const WARNING_LEAD: SimDuration = SimDuration::from_secs(120);
/// An alert counts as a hit when the eviction lands within this window.
const MATCH_WINDOW: SimDuration = SimDuration::from_mins(30);

/// Replays one generated trace and scores the forecaster against
/// ground-truth crossings of `bid`.
fn replay(seed: u64, days: u64) -> ForecastScore {
    let market = MarketKey::new(catalog::c4_xlarge(), Zone(0));
    let gen = TraceGenerator::new(seed, MarketModel::volatile());
    let horizon = SimDuration::from_hours(24 * days);
    let trace = gen.generate(market, horizon);
    let bid = trace.price_at(SimTime::EPOCH) + 0.02;

    let mut fc = PreemptionForecaster::new(ForecastConfig::default());
    let mut sc = ForecastScorer::new(MATCH_WINDOW);
    let mut t = SimTime::EPOCH;
    let mut above = false;
    while t < SimTime::EPOCH + horizon {
        let p = trace.price_at(t);
        if p >= bid {
            if !above {
                // The crossing sample is still observable (the provider
                // warns WARNING_LEAD before the eviction lands); after
                // the eviction the holding is gone, so the forecaster
                // restarts cold exactly as a session would.
                if let Some(a) = fc.observe(market, bid, t, p) {
                    sc.record_alert(market, a.at);
                }
                sc.record_eviction(market, t + WARNING_LEAD);
                fc.clear(market, bid);
            }
            above = true;
        } else {
            above = false;
            if let Some(a) = fc.observe(market, bid, t, p) {
                sc.record_alert(market, a.at);
            }
        }
        t += STEP;
    }
    sc.score()
}

fn main() {
    header(
        "BENCH",
        "eviction defense: forecast accuracy + proactive vs reactive",
    );

    // ------------------------------------------------------------------
    // Part 1: forecast accuracy over several independent volatile traces.
    // ------------------------------------------------------------------
    let seeds: &[u64] = &[2016, 7, 42, 101];
    let days = 4;
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut misses = 0usize;
    let mut lead_weighted = 0.0f64;
    println!(
        "{:>6} {:>8} {:>8} {:>6} {:>6} {:>6} {:>10} {:>8}",
        "seed", "alerts", "evicts", "tp", "fp", "miss", "lead(min)", "recall"
    );
    for &seed in seeds {
        let s = replay(seed, days);
        println!(
            "{:>6} {:>8} {:>8} {:>6} {:>6} {:>6} {:>10.1} {:>8.2}",
            seed,
            s.alerts,
            s.evictions,
            s.true_positives,
            s.false_positives,
            s.misses,
            s.mean_lead.as_secs_f64() / 60.0,
            s.recall
        );
        tp += s.true_positives;
        fp += s.false_positives;
        misses += s.misses;
        lead_weighted += s.mean_lead.as_secs_f64() * s.true_positives as f64;
    }
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + misses == 0 {
        1.0
    } else {
        tp as f64 / (tp + misses) as f64
    };
    let mean_lead_mins = if tp == 0 {
        0.0
    } else {
        lead_weighted / tp as f64 / 60.0
    };
    println!(
        "aggregate: precision {precision:.2}  recall {recall:.2}  mean lead {mean_lead_mins:.1} min"
    );

    // ------------------------------------------------------------------
    // Part 2: does forecasting pay? The reactive baseline checkpoints on
    // a fixed MTTF-derived cadence and rolls back on every eviction; the
    // proactive scheme floats its cadence on live hazard and checkpoints
    // immediately on an alert, so a predicted eviction loses at most one
    // step. Less recomputation shows up directly as shorter runtime.
    // ------------------------------------------------------------------
    println!();
    let starts: usize = std::env::var("PROTEUS_BENCH_STARTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let mut cfg = standard_study(2.0, starts);
    cfg.market_model = MarketModel::volatile();
    let env = StudyEnv::new(cfg);
    let exec = StudyExecutor::from_env();

    let reactive = env.run_scheme_with(SchemeKind::paper_checkpoint(), &exec);
    let proactive = env.run_scheme_with(SchemeKind::paper_adaptive_checkpoint(), &exec);
    println!(
        "{:>22} {:>10} {:>10} {:>10}",
        "scheme", "cost $", "hours", "evictions"
    );
    for r in [&reactive, &proactive] {
        println!(
            "{:>22} {:>10.2} {:>10.2} {:>10.2}",
            r.scheme, r.mean_cost, r.mean_runtime_hours, r.mean_evictions
        );
    }
    // Runtime above the eviction-free 2-hour job is recomputed or taxed
    // work; the proactive saving is the reactive excess it eliminates.
    let work_saved_hours = reactive.mean_runtime_hours - proactive.mean_runtime_hours;
    let proactive_wins = work_saved_hours > 0.0;
    println!(
        "proactive saves {work_saved_hours:.3} job-hours over reactive \
         (wins: {proactive_wins})"
    );

    let json = format!(
        "{{\n  \"seeds\": {},\n  \"replay_days\": {days},\n  \
         \"precision\": {precision:.4},\n  \"recall\": {recall:.4},\n  \
         \"mean_lead_mins\": {mean_lead_mins:.2},\n  \"starts\": {starts},\n  \
         \"reactive_runtime_hours\": {:.4},\n  \
         \"proactive_runtime_hours\": {:.4},\n  \
         \"reactive_cost\": {:.4},\n  \"proactive_cost\": {:.4},\n  \
         \"work_saved_hours\": {work_saved_hours:.4},\n  \
         \"proactive_wins\": {proactive_wins}\n}}\n",
        seeds.len(),
        reactive.mean_runtime_hours,
        proactive.mean_runtime_hours,
        reactive.mean_cost,
        proactive.mean_cost,
    );
    #[allow(clippy::expect_used)] // A bench binary failing to write its gate file must abort.
    std::fs::write("BENCH_forecast.json", &json).expect("write BENCH_forecast.json");
    println!("\nwrote BENCH_forecast.json");
}
