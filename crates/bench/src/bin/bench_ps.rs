//! Parameter-server data-plane timing harness: one full worker cycle
//! (read the working set, push updates) against a live server node on
//! the repo's own simnet transport, measured two ways and recorded in
//! `BENCH_ps.json`.
//!
//! The **per-key baseline** reproduces what the data plane cost before
//! the hot-path rework, layer by layer: parameter state in two global
//! hash maps (values + dirty aggregate — the seed `ShardStore`
//! representation), one network message per key in each direction, and
//! every payload deep-copied where the pre-`Arc` wire format copied it.
//! The **batched path** is the shipped one: the slab-per-partition
//! [`ShardStore`], one compressed [`KeySet`] read request, one
//! [`Values`] response whose hops are refcount bumps, and one update
//! batch applied via [`ShardStore::apply_batch`].
//!
//! Both paths must end bit-identical (same parameter state, same dirty
//! aggregate) and report identical logical wire volume — re-checking
//! the equivalence and accounting contracts on the benchmark's own
//! traffic.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin bench_ps
//! PROTEUS_BENCH_PS_KEYS=8000 cargo run --release -p proteus-bench --bin bench_ps
//! ```

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use proteus_bench::header;
use proteus_ps::{
    DenseVec, KeySet, ParamKey, PartitionId, PartitionMap, PsValue, ShardStore, Values,
};
use proteus_simnet::{Cluster, Incoming, NodeClass, NodeCtx, NodeId};

const PARTITIONS: u32 = 32;
const DIM: usize = 32;
const REPS: usize = 5;

/// Data-plane traffic for the benchmark cluster: per-key framing on the
/// baseline side, compressed/batched framing on the shipped side.
#[derive(Clone)]
enum Msg {
    /// Baseline: read one key.
    ReadKey(ParamKey),
    /// Baseline: one key's value (deep-copied at the server, as the
    /// pre-`Arc` wire format did).
    ReadKeyResp(ParamKey, DenseVec),
    /// Baseline: one key's update delta.
    UpdateKey(ParamKey, DenseVec),
    /// Batched: read a compressed key set.
    ReadSet(KeySet),
    /// Batched: the whole response, buffers shared across hops.
    ReadSetResp(Values<DenseVec>),
    /// Batched: the whole update batch, buffers shared across hops.
    UpdateBatch(Values<DenseVec>),
    /// Barrier: answered with `Done` once everything before it applied.
    Drain,
    Done,
    /// End of benchmark: the server snapshots its stores and exits.
    Finish,
}

type State = (Vec<(ParamKey, DenseVec)>, Vec<(ParamKey, DenseVec)>);

#[derive(Default)]
struct Report {
    per_key_secs: f64,
    batched_secs: f64,
    per_key_wire: usize,
    batched_wire: usize,
    baseline_state: Option<State>,
    slab_state: Option<State>,
}

/// The seed's `ShardStore` representation: one global hash map for live
/// values, another for the dirty aggregate, two probes per update. Kept
/// here as the honest pre-refactor baseline the batched path is gated
/// against.
struct BaselineStore {
    values: HashMap<ParamKey, DenseVec>,
    dirty: HashMap<ParamKey, DenseVec>,
}

impl BaselineStore {
    fn new() -> Self {
        BaselineStore {
            values: HashMap::new(),
            dirty: HashMap::new(),
        }
    }

    fn install(&mut self, key: ParamKey, value: DenseVec) {
        self.values.insert(key, value);
        self.dirty.remove(&key);
    }

    fn read(&self, key: ParamKey) -> Option<&DenseVec> {
        self.values.get(&key)
    }

    fn apply_update(&mut self, key: ParamKey, delta: &DenseVec) {
        match self.values.get_mut(&key) {
            Some(v) => v.merge(delta),
            None => {
                self.values.insert(key, delta.clone());
            }
        }
        match self.dirty.get_mut(&key) {
            Some(d) => d.merge(delta),
            None => {
                self.dirty.insert(key, delta.clone());
            }
        }
    }

    fn snapshot(&mut self) -> State {
        let mut values: Vec<(ParamKey, DenseVec)> =
            self.values.iter().map(|(k, v)| (*k, v.clone())).collect();
        values.sort_by_key(|(k, _)| *k);
        let mut dirty: Vec<(ParamKey, DenseVec)> = self.dirty.drain().collect();
        dirty.sort_by_key(|(k, _)| *k);
        (values, dirty)
    }
}

/// Deep-copies a value the way an `Arc`-free wire format does at every
/// copy point: fresh buffer, full memcpy.
fn deep_copy(v: &DenseVec) -> DenseVec {
    DenseVec::from(v.as_slice().to_vec())
}

fn snapshot_slab(store: &mut ShardStore<DenseVec>) -> State {
    let mut values: Vec<(ParamKey, DenseVec)> = (0..PARTITIONS)
        .flat_map(|p| store.export_partition(PartitionId(p)))
        .collect();
    values.sort_by_key(|(k, _)| *k);
    (values, store.take_dirty())
}

/// Server node: answers per-key traffic from the hash-map baseline
/// store and batched traffic from the slab store, then snapshots both
/// for the equivalence check.
fn run_server(ctx: &NodeCtx<Msg>, keys: u64, report: &Mutex<Report>) {
    let layout = PartitionMap::new(PARTITIONS).expect("nonzero partitions");
    let mut baseline = BaselineStore::new();
    let mut slab: ShardStore<DenseVec> = ShardStore::new(layout);
    for k in 0..keys {
        baseline.install(ParamKey(k), DenseVec::zeros(DIM));
        slab.install(ParamKey(k), DenseVec::zeros(DIM));
    }
    while let Ok(Incoming::App(env)) = ctx.recv() {
        match env.msg {
            Msg::ReadKey(k) => {
                if let Some(v) = baseline.read(k) {
                    let _ = ctx.send(env.from, Msg::ReadKeyResp(k, deep_copy(v)));
                }
            }
            Msg::UpdateKey(k, d) => baseline.apply_update(k, &d),
            Msg::ReadSet(set) => {
                let resp: Values<DenseVec> = set
                    .iter()
                    .filter_map(|k| slab.read(k).map(|v| (k, v.clone())))
                    .collect();
                let _ = ctx.send(env.from, Msg::ReadSetResp(resp));
            }
            Msg::UpdateBatch(vals) => slab.apply_batch(vals.as_slice()),
            Msg::Drain => {
                let _ = ctx.send(env.from, Msg::Done);
            }
            Msg::Finish => {
                let mut r = report.lock().expect("report lock");
                r.baseline_state = Some(baseline.snapshot());
                r.slab_state = Some(snapshot_slab(&mut slab));
                break;
            }
            Msg::ReadKeyResp(..) | Msg::ReadSetResp(..) | Msg::Done => {}
        }
    }
}

/// Waits for `Done` after a `Drain` barrier, consuming responses.
fn wait_done(ctx: &NodeCtx<Msg>, wire: &mut usize) {
    while let Ok(Incoming::App(env)) = ctx.recv() {
        match env.msg {
            Msg::Done => return,
            Msg::ReadKeyResp(k, v) => {
                *wire += v.wire_bytes() + 8;
                black_box((k, &v));
            }
            Msg::ReadSetResp(vals) => {
                *wire += vals.wire_bytes();
                black_box(&vals);
            }
            _ => {}
        }
    }
}

/// One worker cycle, per-key framing: a request and a response message
/// per key, then an update message per key (payload deep-copied at
/// send), then a drain barrier. Returns the cycle's logical wire bytes.
fn per_key_cycle(
    ctx: &NodeCtx<Msg>,
    server: NodeId,
    key_list: &[ParamKey],
    delta: &DenseVec,
) -> usize {
    let mut wire = 0usize;
    for &key in key_list {
        let _ = ctx.send(server, Msg::ReadKey(key));
        wire += 8;
    }
    let mut pending = key_list.len();
    while pending > 0 {
        if let Ok(Incoming::App(env)) = ctx.recv() {
            if let Msg::ReadKeyResp(k, v) = env.msg {
                wire += v.wire_bytes() + 8;
                black_box((k, &v));
                pending -= 1;
            }
        } else {
            break;
        }
    }
    for &key in key_list {
        let msg = Msg::UpdateKey(key, deep_copy(delta));
        wire += delta.wire_bytes() + 8;
        let _ = ctx.send(server, msg);
    }
    let _ = ctx.send(server, Msg::Drain);
    wait_done(ctx, &mut wire);
    wire
}

/// The same cycle, batched framing: one compressed read request, one
/// shared-buffer response, one shared-buffer update batch, one drain
/// barrier. Returns the cycle's logical wire bytes.
fn batched_cycle(
    ctx: &NodeCtx<Msg>,
    server: NodeId,
    key_list: &[ParamKey],
    delta: &DenseVec,
) -> usize {
    let mut wire = 0usize;
    let set = KeySet::from_sorted(key_list);
    wire += set.wire_bytes();
    let _ = ctx.send(server, Msg::ReadSet(set));
    while let Ok(Incoming::App(env)) = ctx.recv() {
        if let Msg::ReadSetResp(vals) = env.msg {
            wire += vals.wire_bytes();
            black_box(&vals);
            break;
        }
    }
    let batch: Values<DenseVec> = key_list.iter().map(|&k| (k, delta.clone())).collect();
    wire += batch.wire_bytes();
    let _ = ctx.send(server, Msg::UpdateBatch(batch));
    let _ = ctx.send(server, Msg::Drain);
    wait_done(ctx, &mut wire);
    wire
}

fn main() {
    header("BENCH", "PS data plane: per-key baseline vs batched path");

    let keys: u64 = std::env::var("PROTEUS_BENCH_PS_KEYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&k| k > 0)
        .unwrap_or(64_000);
    let report: Arc<Mutex<Report>> = Arc::new(Mutex::new(Report::default()));

    let mut cluster: Cluster<Msg> = Cluster::new();
    let server_report = Arc::clone(&report);
    let server = cluster.spawn(NodeClass::Reliable, move |ctx| {
        run_server(&ctx, keys, &server_report);
    });
    let client_report = Arc::clone(&report);
    cluster.spawn(NodeClass::Reliable, move |ctx| {
        let key_list: Vec<ParamKey> = (0..keys).map(ParamKey).collect();
        let delta = DenseVec::from(
            (0..DIM)
                .map(|i| 0.125 * (i as f32 + 1.0))
                .collect::<Vec<_>>(),
        );

        // Warm both sides (stores, allocator, channels) untimed, and
        // capture each path's logical wire volume for the accounting
        // check: the compressed KeySet and the shared buffers must not
        // change the reported bytes.
        let per_key_wire = per_key_cycle(&ctx, server, &key_list, &delta);
        let batched_wire = batched_cycle(&ctx, server, &key_list, &delta);

        // Interleave the reps (per-key, batched, per-key, …) so
        // scheduler drift hits both sides equally; keep the best.
        let mut per_key_secs = f64::INFINITY;
        let mut batched_secs = f64::INFINITY;
        for _ in 0..REPS {
            let t = Instant::now();
            black_box(per_key_cycle(&ctx, server, &key_list, &delta));
            per_key_secs = per_key_secs.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            black_box(batched_cycle(&ctx, server, &key_list, &delta));
            batched_secs = batched_secs.min(t.elapsed().as_secs_f64());
        }
        let _ = ctx.send(server, Msg::Finish);

        let mut r = client_report.lock().expect("report lock");
        r.per_key_secs = per_key_secs;
        r.batched_secs = batched_secs;
        r.per_key_wire = per_key_wire;
        r.batched_wire = batched_wire;
    });
    cluster.join();

    let mut r = report.lock().expect("report lock");
    let wire_equal = r.per_key_wire == r.batched_wire;
    assert!(
        wire_equal,
        "wire accounting diverged: per-key {} vs batched {}",
        r.per_key_wire, r.batched_wire
    );
    // Both paths saw the same cycle count with the same delta, so the
    // two stores must end bit-identical: same parameter state, same
    // coalesced dirty aggregate.
    let baseline_state = r.baseline_state.take().expect("server snapshot");
    let slab_state = r.slab_state.take().expect("server snapshot");
    let identical = baseline_state == slab_state;
    assert!(identical, "batched path diverged from the per-key baseline");

    let per_key_secs = r.per_key_secs;
    let batched_secs = r.batched_secs;
    let wire_bytes = r.batched_wire;
    let speedup = per_key_secs / batched_secs.max(1e-9);
    let keys_per_sec = keys as f64 / batched_secs.max(1e-9);
    println!(
        "per-key  : {keys}-key cycle in {:.2}ms (best of {REPS}, {wire_bytes} wire bytes)",
        per_key_secs * 1e3
    );
    println!(
        "batched  : {keys}-key cycle in {:.2}ms (best of {REPS}, {wire_bytes} wire bytes)",
        batched_secs * 1e3
    );
    println!("speedup  : {speedup:.2}x  ({keys_per_sec:.0} keys/sec batched)");

    let json = format!(
        "{{\n  \"keys\": {keys},\n  \"dim\": {DIM},\n  \"partitions\": {PARTITIONS},\n  \
         \"reps\": {REPS},\n  \"per_key_secs\": {per_key_secs:.6},\n  \
         \"batched_secs\": {batched_secs:.6},\n  \"speedup\": {speedup:.3},\n  \
         \"keys_per_sec\": {keys_per_sec:.0},\n  \"wire_bytes\": {wire_bytes},\n  \
         \"wire_equal\": {wire_equal},\n  \"identical\": {identical}\n}}\n"
    );
    std::fs::write("BENCH_ps.json", &json).expect("write BENCH_ps.json");
    println!("\nwrote BENCH_ps.json");
}
