//! Simnet scale benchmark: the discrete-event core at 1000 nodes vs the
//! thread-per-node cluster at 100 nodes, both driving the same
//! broadcast/convergence protocol. Writes the comparison to
//! `BENCH_simnet.json`.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin bench_simnet
//! ```
//!
//! The workload is R rounds of root-initiated broadcast: the root fans a
//! token out to every member, each member acks, and the round converges
//! when the root has collected all acks (then starts the next round).
//! That is `2 * (nodes - 1)` messages per round — the all-to-one /
//! one-to-all pattern of a parameter-server sync step.
//!
//! The point of the gate: the event core runs **10x the nodes** and
//! ~10x the messages, yet must finish in well under the thread core's
//! wall clock, because it costs its event count (a heap pop and a
//! handler call per message) rather than OS threads, channel wakeups,
//! and context switches. This is what makes 1000-node chaos sweeps
//! affordable (see EXPERIMENTS.md).
//!
//! Knobs: `PROTEUS_BENCH_SIMNET_NODES` (event-core fleet, default 1000),
//! `PROTEUS_BENCH_SIMNET_THREAD_NODES` (thread fleet, default 100),
//! `PROTEUS_BENCH_SIMNET_ROUNDS` (default 25).

use std::hint::black_box;
use std::time::Instant;

use proteus_bench::header;
use proteus_simnet::{Cluster, FnNode, Incoming, NodeClass, NodeId, SimCluster};
use proteus_simtime::SimDuration;

const REPS: usize = 3;

#[derive(Clone, Copy)]
enum Msg {
    Token(u32),
    Ack,
}

fn env_knob(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(default)
}

/// One full event-core run: build the fleet, drive R broadcast rounds
/// to convergence, and return the delivered-message count.
fn event_core_run(nodes: u32, rounds: u32) -> u64 {
    let mut sim: SimCluster<Msg> = SimCluster::new();
    sim.set_link_latency(SimDuration::from_millis(1));

    // Root: broadcast the round token, collect acks, start the next
    // round when the fleet has converged.
    let mut acks = 0u32;
    let mut round = 0u32;
    let root = sim.add_node(
        NodeClass::Reliable,
        FnNode::new(move |ctx, _from, msg: Msg| match msg {
            Msg::Token(r) => {
                for i in 1..nodes {
                    let _ = ctx.send(NodeId(i), Msg::Token(r));
                }
            }
            Msg::Ack => {
                acks += 1;
                if acks == nodes - 1 {
                    acks = 0;
                    round += 1;
                    if round < rounds {
                        for i in 1..nodes {
                            let _ = ctx.send(NodeId(i), Msg::Token(round));
                        }
                    }
                }
            }
        }),
    );
    for _ in 1..nodes {
        sim.add_node(
            NodeClass::Transient,
            FnNode::new(move |ctx, _from, msg: Msg| {
                if let Msg::Token(_) = msg {
                    let _ = ctx.send(NodeId(0), Msg::Ack);
                }
            }),
        );
    }

    sim.send_as_harness(root, Msg::Token(0)).expect("inject");
    sim.run_until_idle();
    sim.stats().messages
}

/// One full thread-core run of the same protocol: every node is an OS
/// thread with a blocking mailbox. Returns the delivered-message count.
fn thread_core_run(nodes: u32, rounds: u32) -> u64 {
    let mut cluster: Cluster<Msg> = Cluster::new();
    let root_id = NodeId(0);
    let (done_tx, done_rx) = std::sync::mpsc::sync_channel::<()>(1);

    let root = cluster.spawn(NodeClass::Reliable, move |ctx| {
        let broadcast = |r: u32| {
            for i in 1..nodes {
                let _ = ctx.send(NodeId(i), Msg::Token(r));
            }
        };
        let mut acks = 0u32;
        let mut round = 0u32;
        loop {
            match ctx.recv() {
                Ok(Incoming::App(env)) => match env.msg {
                    Msg::Token(r) => broadcast(r),
                    Msg::Ack => {
                        acks += 1;
                        if acks == nodes - 1 {
                            acks = 0;
                            round += 1;
                            if round < rounds {
                                broadcast(round);
                            } else {
                                break;
                            }
                        }
                    }
                },
                Ok(Incoming::Control(_)) => {}
                Err(_) => break,
            }
        }
        let _ = done_tx.send(());
    });
    assert_eq!(root, root_id);
    for _ in 1..nodes {
        cluster.spawn(NodeClass::Transient, move |ctx| {
            let mut seen = 0u32;
            while seen < rounds {
                match ctx.recv() {
                    Ok(Incoming::App(env)) => {
                        if let Msg::Token(_) = env.msg {
                            let _ = ctx.send(root_id, Msg::Ack);
                            seen += 1;
                        }
                    }
                    Ok(Incoming::Control(_)) => {}
                    Err(_) => break,
                }
            }
        });
    }

    cluster
        .handle()
        .send_as_harness(root_id, Msg::Token(0))
        .expect("inject");
    done_rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("thread-core broadcast protocol converged");
    let delivered = cluster.stats().messages;
    cluster.join();
    delivered
}

fn main() {
    header(
        "BENCH",
        "simnet scale: discrete-event core (1000 nodes) vs thread-per-node (100 nodes)",
    );

    let event_nodes = env_knob("PROTEUS_BENCH_SIMNET_NODES", 1000);
    let thread_nodes = env_knob("PROTEUS_BENCH_SIMNET_THREAD_NODES", 100);
    let rounds = env_knob("PROTEUS_BENCH_SIMNET_ROUNDS", 25);

    // Warm both sides (allocator, thread stacks) untimed, and capture
    // each side's delivered-message count for the report.
    let event_messages = event_core_run(event_nodes, rounds);
    let thread_messages = thread_core_run(thread_nodes, rounds);

    // Interleave the reps so scheduler drift hits both sides equally;
    // keep the best.
    let mut event_secs = f64::INFINITY;
    let mut thread_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        black_box(event_core_run(event_nodes, rounds));
        event_secs = event_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(thread_core_run(thread_nodes, rounds));
        thread_secs = thread_secs.min(t.elapsed().as_secs_f64());
    }

    let speedup = thread_secs / event_secs.max(1e-9);
    let events_per_sec = event_messages as f64 / event_secs.max(1e-9);
    println!(
        "event core : {event_nodes} nodes, {rounds} rounds, {event_messages} messages in {:.2}ms (best of {REPS})",
        event_secs * 1e3
    );
    println!(
        "thread core: {thread_nodes} nodes, {rounds} rounds, {thread_messages} messages in {:.2}ms (best of {REPS})",
        thread_secs * 1e3
    );
    println!(
        "speedup    : {speedup:.2}x at {:.0}x the fleet size  ({events_per_sec:.0} events/sec)",
        event_nodes as f64 / thread_nodes as f64
    );

    let json = format!(
        "{{\n  \"event_nodes\": {event_nodes},\n  \"thread_nodes\": {thread_nodes},\n  \
         \"rounds\": {rounds},\n  \"reps\": {REPS},\n  \
         \"event_messages\": {event_messages},\n  \"thread_messages\": {thread_messages},\n  \
         \"event_secs\": {event_secs:.6},\n  \"thread_secs\": {thread_secs:.6},\n  \
         \"speedup\": {speedup:.3},\n  \"events_per_sec\": {events_per_sec:.0}\n}}\n"
    );
    std::fs::write("BENCH_simnet.json", &json).expect("write BENCH_simnet.json");
    println!("\nwrote BENCH_simnet.json");
}
