//! Extra — multi-market exploitation signature.
//!
//! BidBrain watches several (instance type × zone) markets whose prices
//! "move relatively independently" (Sec. 1) and buys wherever
//! cost-per-work is lowest. This binary shows where a long Proteus job
//! actually bought capacity versus the standard strategy's cheapest-at-
//! restart concentration.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin extra_market_mix
//! ```

use std::collections::BTreeMap;

use proteus_bench::{header, standard_study};
use proteus_costsim::{run_job, Scheme, SchemeKind, StudyEnv};
use proteus_simtime::SimDuration;

fn mix_of(kind: SchemeKind, env: &StudyEnv) -> (BTreeMap<String, u32>, u32) {
    let mut mix: BTreeMap<String, u32> = BTreeMap::new();
    let mut evictions = 0;
    for &start in env.starts.iter().take(8) {
        let out = run_job(
            &Scheme {
                kind: kind.clone(),
                job: env.job(),
            },
            &env.traces,
            &env.beta,
            start,
            SimDuration::from_hours(96),
        );
        evictions += out.evictions;
        for (m, c) in out.market_mix {
            *mix.entry(m).or_insert(0) += c;
        }
    }
    (mix, evictions)
}

fn print_mix(label: &str, mix: &BTreeMap<String, u32>) {
    let total: u32 = mix.values().sum();
    println!(
        "\n{label} ({} instances total, {} markets):",
        total,
        mix.len()
    );
    for (m, c) in mix {
        println!(
            "  {:>24} {:>6} ({:>4.1}%)",
            m,
            c,
            100.0 * f64::from(*c) / f64::from(total.max(1))
        );
    }
}

fn main() {
    header(
        "Extra",
        "where 20-hour jobs buy capacity: Proteus vs the standard strategy",
    );
    let env = StudyEnv::new(standard_study(20.0, 8));
    let (proteus_mix, pe) = mix_of(SchemeKind::paper_proteus(), &env);
    let (standard_mix, se) = mix_of(SchemeKind::paper_standard_agileml(), &env);
    print_mix("Proteus", &proteus_mix);
    print_mix("Standard strategy", &standard_mix);
    println!(
        "\nevictions over 8 jobs: Proteus {pe}, standard {se} — Proteus accepts\n\
         evictions where the refund math favours them; the standard strategy\n\
         avoids them by bidding the on-demand price but cannot shop across\n\
         markets mid-job."
    );
}
