//! Fig. 1 — Cost and time benefits of Proteus (MLR-scale job).
//!
//! The paper's headline figure: average cost ($, left axis) and runtime
//! (hours, right axis) for an MLR job on 128 on-demand machines, the
//! standard+checkpointing scheme, and Proteus (3 on-demand + spot).
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig01_headline
//! ```

use proteus_bench::{bar, header, standard_study};
use proteus_costsim::{SchemeKind, StudyEnv};

fn main() {
    header(
        "Fig. 1",
        "cost ($) and runtime (h): MLR-scale 4-hour job, 128-machine fleet",
    );
    // The paper's MLR run takes ~4 hours on the on-demand fleet.
    let env = StudyEnv::new(standard_study(4.0, 60));
    let schemes = [
        SchemeKind::AllOnDemand { machines: 128 },
        SchemeKind::paper_checkpoint(),
        SchemeKind::paper_proteus(),
    ];
    let results: Vec<_> = schemes.iter().map(|k| env.run_scheme(k.clone())).collect();

    let max_cost = results.iter().map(|r| r.mean_cost).fold(0.0, f64::max);
    println!(
        "{:>22} {:>10} {:>10}  cost bar",
        "config", "cost $", "time h"
    );
    for r in &results {
        println!(
            "{:>22} {:>10.2} {:>10.2}  {}",
            r.scheme,
            r.mean_cost,
            r.mean_runtime_hours,
            bar(r.mean_cost, max_cost)
        );
    }
    let od = &results[0];
    let ckpt = &results[1];
    let proteus = &results[2];
    println!(
        "\nProteus cost reduction: {:.0}% vs on-demand (paper: ~85%), {:.0}% vs checkpointing (paper: ~50%)",
        100.0 * (1.0 - proteus.mean_cost / od.mean_cost),
        100.0 * (1.0 - proteus.mean_cost / ckpt.mean_cost),
    );
    println!(
        "Proteus runtime reduction: {:.0}% vs on-demand (paper: 24%), {:.0}% vs checkpointing (paper: 32-43%)",
        100.0 * (1.0 - proteus.mean_runtime_hours / od.mean_runtime_hours),
        100.0 * (1.0 - proteus.mean_runtime_hours / ckpt.mean_runtime_hours),
    );
}
