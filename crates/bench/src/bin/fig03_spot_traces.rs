//! Fig. 3 — AWS spot prices over time.
//!
//! The paper shows six days of spot prices for c4.2xlarge and c4.xlarge
//! (doubled, so all lines are price per 8 cores) against the unchanging
//! c4.2xlarge on-demand price. This binary prints the synthetic
//! equivalent: hourly samples plus summary statistics showing the same
//! character — a cheap, mildly-jittering floor punctuated by sharp
//! spikes above on-demand.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig03_spot_traces
//! ```

use proteus_bench::header;
use proteus_market::{catalog, MarketKey, MarketModel, TraceGenerator, Zone};
use proteus_simtime::{SimDuration, SimTime};

fn main() {
    header("Fig. 3", "six days of synthetic spot prices, c4 family");
    let days = 6u64;
    let horizon = SimDuration::from_hours(24 * days);
    let gen = TraceGenerator::new(2016, MarketModel::default());

    let small = MarketKey::new(catalog::c4_xlarge(), Zone(0));
    let big = MarketKey::new(catalog::c4_2xlarge(), Zone(0));
    let t_small = gen.generate(small, horizon);
    let t_big = gen.generate(big, horizon);
    let od_big = big.instance_type().on_demand_price;

    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "hour", "2x c4.xlarge", "c4.2xlarge", "on-demand"
    );
    let step = SimDuration::from_hours(2);
    for (i, (t, p_small)) in t_small
        .sample(SimTime::EPOCH, SimTime::EPOCH + horizon, step)
        .into_iter()
        .enumerate()
    {
        let p_big = t_big.price_at(t);
        // Like the paper, double the 4-core price so all columns price
        // the same number of cores.
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>12.3}",
            i * 2,
            2.0 * p_small,
            p_big,
            od_big
        );
    }

    let end = SimTime::EPOCH + horizon;
    for (name, trace, scale) in [
        ("c4.xlarge(x2)", &t_small, 2.0),
        ("c4.2xlarge", &t_big, 1.0),
    ] {
        println!(
            "\n{name}: mean ${:.3}/8-cores-h ({:.0}% of on-demand), above on-demand {:.1}% of the time",
            scale * trace.mean_price(SimTime::EPOCH, end),
            100.0 * scale * trace.mean_price(SimTime::EPOCH, end) / od_big,
            100.0 * trace.fraction_above(od_big / scale, SimTime::EPOCH, end),
        );
    }
}
