//! Fig. 8 — 2-hour jobs: cost savings (a) and runtime (b).
//!
//! Cost is normalized to running the same job on 64 on-demand machines
//! (the paper's Cluster-A reference); three spot schemes are compared
//! across random start times in every zone.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig08_cost_2hr
//! ```

use proteus_bench::{bar, header, standard_study};
use proteus_costsim::{run_study, StudyResult};

fn print_study(results: &[StudyResult]) {
    let spot: Vec<&StudyResult> = results
        .iter()
        .filter(|r| r.scheme != "AllOnDemand")
        .collect();
    println!("(a) cost, % of on-demand");
    let maxc = spot
        .iter()
        .map(|r| r.cost_pct_of_on_demand)
        .fold(0.0, f64::max);
    for r in &spot {
        println!(
            "{:>22} {:>8.1}%  {}",
            r.scheme,
            r.cost_pct_of_on_demand,
            bar(r.cost_pct_of_on_demand, maxc)
        );
    }
    println!("\n(b) runtime, hours");
    let maxt = spot
        .iter()
        .map(|r| r.mean_runtime_hours)
        .fold(0.0, f64::max);
    for r in &spot {
        println!(
            "{:>22} {:>8.2}h  {}",
            r.scheme,
            r.mean_runtime_hours,
            bar(r.mean_runtime_hours, maxt)
        );
    }
    let pct = |label: &str| {
        results
            .iter()
            .find(|r| r.scheme == label)
            .map(|r| (r.cost_pct_of_on_demand, r.mean_runtime_hours))
            .expect("scheme present")
    };
    let (p_cost, p_rt) = pct("Proteus");
    let (c_cost, c_rt) = pct("Standard+Checkpoint");
    println!(
        "\nProteus: {:.0}% cheaper than on-demand (paper: 83-85%), {:.0}% cheaper than checkpointing (paper: 42-47%), {:.0}% faster than checkpointing (paper: 32-43%)",
        100.0 - p_cost,
        100.0 * (1.0 - p_cost / c_cost),
        100.0 * (1.0 - p_rt / c_rt)
    );
}

fn main() {
    header("Fig. 8", "2-hour jobs: cost (% of on-demand) and runtime");
    let results = run_study(standard_study(2.0, 120));
    print_study(&results);
}
