//! Fig. 9 — 20-hour jobs: cost savings (a) and runtime (b).
//!
//! Same methodology as Fig. 8 with the long-job duration representative
//! of hyperparameter-exploration sequences.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig09_cost_20hr
//! ```

use proteus_bench::{bar, header, standard_study};
use proteus_costsim::run_study;

fn main() {
    header("Fig. 9", "20-hour jobs: cost (% of on-demand) and runtime");
    let results = run_study(standard_study(20.0, 40));

    let spot: Vec<_> = results
        .iter()
        .filter(|r| r.scheme != "AllOnDemand")
        .collect();
    println!("(a) cost, % of on-demand");
    let maxc = spot
        .iter()
        .map(|r| r.cost_pct_of_on_demand)
        .fold(0.0, f64::max);
    for r in &spot {
        println!(
            "{:>22} {:>8.1}%  {}",
            r.scheme,
            r.cost_pct_of_on_demand,
            bar(r.cost_pct_of_on_demand, maxc)
        );
    }
    println!("\n(b) runtime, hours");
    let maxt = spot
        .iter()
        .map(|r| r.mean_runtime_hours)
        .fold(0.0, f64::max);
    for r in &spot {
        println!(
            "{:>22} {:>8.2}h  {}",
            r.scheme,
            r.mean_runtime_hours,
            bar(r.mean_runtime_hours, maxt)
        );
    }
    let proteus = spot
        .iter()
        .find(|r| r.scheme == "Proteus")
        .expect("present");
    let ckpt = spot
        .iter()
        .find(|r| r.scheme == "Standard+Checkpoint")
        .expect("present");
    println!(
        "\nProteus: {:.0}% below on-demand (paper: 83-85%), {:.0}% below checkpointing (paper: 42-47%)",
        100.0 - proteus.cost_pct_of_on_demand,
        100.0 * (1.0 - proteus.cost_pct_of_on_demand / ckpt.cost_pct_of_on_demand)
    );
}
