//! Fig. 10 — Breakdown of machine-hours among on-demand, spot (paid),
//! and free (evicted before the end of the billing hour) resources for
//! 2-hour jobs.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig10_machine_hours
//! ```

use proteus_bench::{header, standard_study};
use proteus_costsim::{SchemeKind, StudyEnv};

fn main() {
    header(
        "Fig. 10",
        "machine-hours per 2-hour job: on-demand / spot / free",
    );
    let starts = 80usize;
    let env = StudyEnv::new(standard_study(2.0, starts));
    let schemes = [
        SchemeKind::AllOnDemand { machines: 128 },
        SchemeKind::paper_checkpoint(),
        SchemeKind::paper_proteus(),
    ];
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>8}",
        "config", "on-demand h", "spot h", "free h", "% free"
    );
    for kind in schemes {
        let r = env.run_scheme(kind);
        let n = starts as f64;
        println!(
            "{:>22} {:>12.1} {:>12.1} {:>12.1} {:>8.1}",
            r.scheme,
            r.usage.on_demand_hours / n,
            r.usage.spot_paid_hours / n,
            r.usage.free_hours / n,
            100.0 * r.usage.free_fraction()
        );
    }
    println!("\npaper: Proteus averages 32% free computing; the standard bidding");
    println!("schemes bid the on-demand price and therefore collect almost none.");
}
