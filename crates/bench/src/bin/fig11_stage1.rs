//! Fig. 11 — AgileML stage 1 time-per-iteration with 4–32 reliable
//! ParamServ machines out of 64 total, compared to the traditional
//! all-reliable layout (MF, Netflix rank 1000, Cluster-A).
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig11_stage1
//! ```

use proteus_bench::{bar, header};
use proteus_perfmodel::{presets, time_per_iteration, ClusterSpec, Layout};

fn main() {
    header(
        "Fig. 11",
        "stage 1 time-per-iteration vs ParamServ count (MF, 64 machines)",
    );
    let spec = ClusterSpec::cluster_a();
    let app = presets::mf_netflix_rank1000();
    let trad = time_per_iteration(spec, app, Layout::Traditional { machines: 64 });

    let mut rows: Vec<(String, f64)> = Vec::new();
    for ps in [4u32, 16, 32] {
        let t = time_per_iteration(
            spec,
            app,
            Layout::Stage1 {
                reliable_ps: ps,
                total: 64,
            },
        );
        rows.push((format!("{ps} ParamServs"), t));
    }
    rows.push(("Traditional (High Cost)".to_string(), trad));

    let max = rows.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    println!("{:>26} {:>10}  bar", "configuration", "sec/iter");
    for (name, t) in &rows {
        println!("{:>26} {:>10.2}  {}", name, t, bar(*t, max));
    }
    let ps4 = rows[0].1;
    println!(
        "\n4 ParamServs slow MF by {:.0}% relative to traditional (paper: over 85%)",
        100.0 * (1.0 - trad / ps4)
    );
}
