//! Fig. 12 — AgileML stage 2 with 4 reliable + 60 transient machines:
//! time-per-iteration with 16/32/48 ActivePSs, compared to stage 1 at
//! the same ratio (4 ParamServs) and the traditional layout.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig12_stage2
//! ```

use proteus_bench::{bar, header};
use proteus_perfmodel::{presets, time_per_iteration, ClusterSpec, Layout};

fn main() {
    header(
        "Fig. 12",
        "stage 2 time-per-iteration, 4 reliable + 60 transient (MF)",
    );
    let spec = ClusterSpec::cluster_a();
    let app = presets::mf_netflix_rank1000();
    let trad = time_per_iteration(spec, app, Layout::Traditional { machines: 64 });
    let s1 = time_per_iteration(
        spec,
        app,
        Layout::Stage1 {
            reliable_ps: 4,
            total: 64,
        },
    );

    let mut rows: Vec<(String, f64)> = vec![(format!("{:>2} ParamServs", 4), s1)];
    for a in [16u32, 32, 48] {
        let t = time_per_iteration(
            spec,
            app,
            Layout::Stage2 {
                reliable: 4,
                transient: 60,
                active_ps: a,
            },
        );
        rows.push((format!("{a:>2} ActivePS"), t));
    }
    rows.push(("Traditional (High Cost)".to_string(), trad));

    let max = rows.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    println!("{:>26} {:>10}  bar", "configuration", "sec/iter");
    for (name, t) in &rows {
        println!("{:>26} {:>10.2}  {}", name, t, bar(*t, max));
    }
    let s2_32 = rows[2].1;
    println!(
        "\n32 ActivePSs at 15:1 run {:.0}% slower than traditional (paper: ~18%) — the straggler effect stage 3 removes",
        100.0 * (s2_32 / trad - 1.0)
    );
}
