//! Fig. 13 — AgileML stage 3 at a 63:1 transient-to-reliable ratio:
//! with workers on the one reliable machine (stage 2), without (stage
//! 3), and the traditional layout.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig13_stage3
//! ```

use proteus_bench::{bar, header};
use proteus_perfmodel::{presets, time_per_iteration, ClusterSpec, Layout};

fn main() {
    header(
        "Fig. 13",
        "stage 3 time-per-iteration, 1 reliable + 63 transient (MF)",
    );
    let spec = ClusterSpec::cluster_a();
    let app = presets::mf_netflix_rank1000();
    let trad = time_per_iteration(spec, app, Layout::Traditional { machines: 64 });
    let s2 = time_per_iteration(
        spec,
        app,
        Layout::Stage2 {
            reliable: 1,
            transient: 63,
            active_ps: 32,
        },
    );
    let s3 = time_per_iteration(
        spec,
        app,
        Layout::Stage3 {
            reliable: 1,
            transient: 63,
            active_ps: 32,
        },
    );

    let rows = [
        ("Workers on Reliable", s2),
        ("No workers on Reliable", s3),
        ("Traditional (High Cost)", trad),
    ];
    let max = rows.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    println!("{:>26} {:>10}  bar", "configuration", "sec/iter");
    for (name, t) in &rows {
        println!("{:>26} {:>10.2}  {}", name, t, bar(*t, max));
    }
    println!(
        "\nstage 2 loses {:.1}x to traditional at 63:1 (paper: 2x); stage 3 is within {:.0}% (paper: matches)",
        s2 / trad,
        100.0 * (s3 / trad - 1.0).abs()
    );
}
