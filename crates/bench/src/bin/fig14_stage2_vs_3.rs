//! Fig. 14 — AgileML on 8 reliable + 8 transient machines in stage 2
//! versus stage 3 mode: per-iteration series showing stage 2 is better
//! at low transient-to-reliable ratios.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig14_stage2_vs_3
//! ```

use proteus_bench::header;
use proteus_perfmodel::{elasticity_timeline, presets, ClusterSpec, Layout, TimelinePhase};

fn main() {
    header(
        "Fig. 14",
        "stage 2 vs stage 3 per-iteration time at 8 reliable + 8 transient (MF)",
    );
    let spec = ClusterSpec::cluster_a();
    let app = presets::mf_netflix_rank1000();
    let iters = 40u32;
    let s2 = elasticity_timeline(
        spec,
        app,
        &[TimelinePhase {
            layout: Layout::Stage2 {
                reliable: 8,
                transient: 8,
                active_ps: 4,
            },
            iterations: iters,
            entry_blip: 0.0,
        }],
    );
    let s3 = elasticity_timeline(
        spec,
        app,
        &[TimelinePhase {
            layout: Layout::Stage3 {
                reliable: 8,
                transient: 8,
                active_ps: 4,
            },
            iterations: iters,
            entry_blip: 0.0,
        }],
    );

    println!("{:>6} {:>12} {:>12}", "iter", "stage2 s", "stage3 s");
    for i in (0..iters as usize).step_by(4) {
        println!("{:>6} {:>12.2} {:>12.2}", i, s2[i], s3[i]);
    }
    println!(
        "\nstage 2 mean {:.2}s vs stage 3 mean {:.2}s — stage 2 is {:.0}% faster at 1:1 (paper: stage 2 clearly best)",
        s2[0],
        s3[0],
        100.0 * (1.0 - s2[0] / s3[0])
    );
}
