//! Fig. 15 — AgileML scalability for LDA: time-per-iteration from 4 to
//! 64 machines against the ideal curve (perfect scaling of the
//! 4-machine case).
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig15_scaling
//! ```

use proteus_bench::header;
use proteus_perfmodel::{presets, scaling_curve, ClusterSpec};

fn main() {
    header("Fig. 15", "LDA strong scaling, 4 to 64 machines, vs ideal");
    let pts = scaling_curve(
        ClusterSpec::cluster_a(),
        presets::lda_nytimes(),
        &[4, 8, 16, 32, 64],
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "machines", "AgileML s", "ideal s", "efficiency"
    );
    for (m, t, ideal) in &pts {
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>11.0}%",
            m,
            t,
            ideal,
            100.0 * ideal / t
        );
    }
    let worst = pts
        .iter()
        .map(|(_, t, ideal)| ideal / t)
        .fold(1.0f64, f64::min);
    println!(
        "\nworst-case parallel efficiency {:.0}% across the sweep (paper: near-ideal scaling)",
        100.0 * worst
    );
}
