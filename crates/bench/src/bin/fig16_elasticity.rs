//! Fig. 16 — Elasticity timeline: AgileML starts on 4 reliable
//! machines, incorporates 60 transient machines at iteration 11, and
//! loses them to eviction at iteration 35. Addition is disruption-free
//! (background preparation); eviction costs a ~13% one-iteration blip.
//!
//! This binary prints both the modelled series (performance shape) and
//! a live run of the real threaded runtime through the same scenario at
//! laptop scale (functional behavior).
//!
//! ```text
//! cargo run --release -p proteus-bench --bin fig16_elasticity
//! ```

use proteus_agileml::{AgileConfig, AgileMlJob};
use proteus_bench::{bar, header};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig};
use proteus_perfmodel::{elasticity_timeline, presets, ClusterSpec, Layout, TimelinePhase};
use proteus_simnet::NodeClass;

fn main() {
    header(
        "Fig. 16",
        "time-per-iteration: +60 transient at iter 11, eviction at iter 35 (MF)",
    );
    let series = elasticity_timeline(
        ClusterSpec::cluster_a(),
        presets::mf_netflix_rank1000(),
        &[
            TimelinePhase {
                layout: Layout::Traditional { machines: 4 },
                iterations: 10,
                entry_blip: 0.0,
            },
            TimelinePhase {
                layout: Layout::Stage2 {
                    reliable: 4,
                    transient: 60,
                    active_ps: 32,
                },
                iterations: 24,
                entry_blip: 0.0,
            },
            TimelinePhase {
                layout: Layout::Traditional { machines: 4 },
                iterations: 11,
                entry_blip: 0.13,
            },
        ],
    );
    let max = series.iter().copied().fold(0.0, f64::max);
    println!("{:>6} {:>10}  bar", "iter", "sec/iter");
    for (i, t) in series.iter().enumerate() {
        println!("{:>6} {:>10.2}  {}", i + 1, t, bar(*t, max));
    }
    println!(
        "\neviction blip: iteration 35 runs {:.0}% over steady state (paper: 13%)",
        100.0 * (series[34] / series[35] - 1.0)
    );

    // Functional replay at laptop scale: real threads, real protocol.
    println!("\nlive replay (1 reliable + 2 transient -> +4 -> evict 4), real runtime:");
    let data = netflix_like(
        &MfDataConfig {
            rows: 40,
            cols: 30,
            true_rank: 3,
            observed: 800,
            noise: 0.02,
        },
        16,
    );
    let app = MatrixFactorization::new(MfConfig {
        rows: 40,
        cols: 30,
        rank: 4,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    });
    let cfg = AgileConfig {
        partitions: 4,
        data_blocks: 8,
        seed: 16,
        ..AgileConfig::default()
    };
    let run = || -> Result<(), String> {
        let mut job = AgileMlJob::launch(app.clone(), data.clone(), cfg, 1, 2)?;
        job.wait_clock(10)?;
        let o1 = job.objective(&data)?;
        let added = job.add_machines(NodeClass::Transient, 4)?;
        job.wait_clock(34)?;
        let o2 = job.objective(&data)?;
        job.evict_with_warning(&added)?;
        job.wait_clock(45)?;
        let o3 = job.objective(&data)?;
        println!("  objective: iter10 {o1:.4} -> iter34 {o2:.4} -> iter45 {o3:.4} (monotone progress through add+evict)");
        job.shutdown().map_err(String::from)
    };
    run().expect("live replay succeeds");
}
