//! Renders a `proteus-obs` JSONL export (see `PROTEUS_OBS_OUT`) as a
//! text summary plus optional CSV of the Fig. 9/10 axes.
//!
//! ```text
//! PROTEUS_OBS_OUT=obs.jsonl cargo run --release -p proteus-bench --bin fig08_cost_2hr
//! cargo run --release -p proteus-bench --bin obs_timeline -- obs.jsonl samples.csv
//! ```
//!
//! The first argument is the JSONL path (defaults to `PROTEUS_OBS_OUT`
//! if unset); the optional second argument writes a CSV with one row
//! per `costsim.sample` record — cumulative cost, cumulative work, and
//! footprint by tier over sim time, keyed by run index — ready for a
//! Fig. 9/10-style plot.

use std::collections::BTreeMap;

use proteus_bench::header;

/// Pulls `"field":value` out of one JSONL line without a JSON parser
/// (the workspace's serde is an offline stub). Fields are rendered by
/// `proteus-obs` in a fixed order with no embedded spaces, so a string
/// scan is exact.
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest.starts_with('"') {
                i > 0 && c == '"' && !rest[..i].ends_with('\\')
            } else {
                c == ',' || c == '}'
            }
        })
        .map_or(rest.len(), |(i, _)| i);
    let value = &rest[..end + usize::from(rest.starts_with('"'))];
    Some(value.trim_matches('"'))
}

fn main() {
    header("OBS", "timeline summary from a JSONL export");

    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .or_else(|| std::env::var("PROTEUS_OBS_OUT").ok())
        .unwrap_or_else(|| {
            eprintln!("usage: obs_timeline <export.jsonl> [samples.csv]");
            std::process::exit(2);
        });
    let csv_path = args.next();

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: could not read {path}: {e}");
        std::process::exit(1);
    });

    // ---- per-kind counts --------------------------------------------
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut runs = 0u64;
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for line in text.lines() {
        let kind = field(line, "kind").unwrap_or("?");
        *kinds.entry(kind.to_string()).or_insert(0) += 1;
        if kind == "costsim.run_start" {
            runs += 1;
        }
        if let Some(t) = field(line, "t_ms").and_then(|v| v.parse::<u64>().ok()) {
            t_min = t_min.min(t);
            t_max = t_max.max(t);
        }
    }
    let total: u64 = kinds.values().sum();
    println!("{path}: {total} events");
    if t_min <= t_max {
        println!(
            "sim-time span: {:.1}h – {:.1}h",
            t_min as f64 / 3_600_000.0,
            t_max as f64 / 3_600_000.0
        );
    }
    println!();
    for (kind, count) in &kinds {
        println!("  {kind:<26} {count:>8}");
    }

    // ---- per-run cost/work summary (the Fig. 9/10 axes) -------------
    // Runs are delimited by `costsim.run_start`; the session-mode
    // export has no run delimiters and is treated as a single run 0.
    let mut run: i64 = -1;
    let mut scheme = String::new();
    let mut csv = String::from("run,scheme,t_hours,cum_cost,cum_work,spot,on_demand,fallback\n");
    let mut sample_rows = 0u64;
    let mut finals: Vec<(i64, String, f64, f64)> = Vec::new();
    for line in text.lines() {
        match field(line, "kind") {
            Some("costsim.run_start") => {
                run += 1;
                scheme = field(line, "scheme").unwrap_or("?").to_string();
            }
            Some("costsim.sample") => {
                let t = field(line, "t_ms")
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(0.0)
                    / 3_600_000.0;
                let get = |n: &str| field(line, n).unwrap_or("0").to_string();
                csv.push_str(&format!(
                    "{},{},{:.3},{},{},{},{},{}\n",
                    run.max(0),
                    scheme,
                    t,
                    get("cum_cost"),
                    get("cum_work"),
                    get("spot"),
                    get("on_demand"),
                    get("fallback"),
                ));
                sample_rows += 1;
            }
            Some("costsim.run_end") => {
                let cost = field(line, "cost")
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(0.0);
                let work = field(line, "work")
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(0.0);
                finals.push((run.max(0), scheme.clone(), cost, work));
            }
            _ => {}
        }
    }

    if !finals.is_empty() {
        // Mean final cost per scheme, in run order of first appearance.
        let mut by_scheme: BTreeMap<&str, (f64, f64, u64)> = BTreeMap::new();
        for (_, s, cost, work) in &finals {
            let e = by_scheme.entry(s).or_insert((0.0, 0.0, 0));
            e.0 += cost;
            e.1 += work;
            e.2 += 1;
        }
        println!();
        println!("per-scheme means over {runs} runs:");
        for (s, (cost, work, n)) in &by_scheme {
            let n_f = *n as f64;
            println!(
                "  {s:<22} ${:>8.2} cost   {:>10.1} work   ({n} runs)",
                cost / n_f,
                work / n_f
            );
        }
    }

    // ---- fleet summary (present when the export came from FleetSim) -
    let launches = kinds.get("fleet.gang_launched").copied().unwrap_or(0);
    if launches > 0 {
        let mut waited_ms = 0.0f64;
        let mut work_forfeited = 0.0f64;
        let mut by_market: BTreeMap<String, u64> = BTreeMap::new();
        for line in text.lines() {
            match field(line, "kind") {
                Some("fleet.gang_launched") => {
                    waited_ms += field(line, "waited_ms")
                        .and_then(|v| v.parse::<f64>().ok())
                        .unwrap_or(0.0);
                    *by_market
                        .entry(field(line, "market").unwrap_or("?").to_string())
                        .or_insert(0) += 1;
                }
                Some("fleet.trial_early_killed") => {
                    work_forfeited += field(line, "work_done")
                        .and_then(|v| v.parse::<f64>().ok())
                        .unwrap_or(0.0);
                }
                _ => {}
            }
        }
        let get = |k: &str| kinds.get(k).copied().unwrap_or(0);
        println!();
        println!("fleet:");
        println!(
            "  {} admitted, {launches} gang launches (mean queue wait {:.1} min), {} requeues",
            get("fleet.job_admitted"),
            waited_ms / launches as f64 / 60_000.0,
            get("fleet.gang_queued"),
        );
        println!(
            "  {} early kills ({work_forfeited:.1} core-hours forfeited), {} priority preemptions",
            get("fleet.trial_early_killed"),
            get("fleet.preempted_by_priority"),
        );
        for (market, n) in &by_market {
            println!("    {market:<22} {n:>6} launches");
        }
    }

    if let Some(csv_path) = csv_path {
        if let Err(e) = std::fs::write(&csv_path, &csv) {
            eprintln!("error: could not write {csv_path}: {e}");
            std::process::exit(1);
        }
        println!();
        println!("wrote {csv_path} ({sample_rows} sample rows)");
    }
}
