//! Table 1 — Types of solution-state servers used by AgileML, with a
//! live demonstration that each role behaves as documented.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin tab01_roles
//! ```

use proteus_bench::header;
use proteus_ps::{DenseVec, ParamKey, PartitionId, PartitionMap};

fn main() {
    header("Tab. 1", "types of solution-state servers used by AgileML");
    let rows = [
        (
            "ParamServs",
            "Serve solution state for workers and always run on reliable resources",
        ),
        (
            "BackupPSs",
            "Serve as a hot backup for solution state served by ActivePSs and always run on reliable resources",
        ),
        (
            "ActivePSs",
            "Serve solution state for workers, periodically pushing aggregated updates to BackupPSs, and run on transient resources",
        ),
    ];
    for (role, duty) in rows {
        println!("{role:>12}  {duty}");
    }

    // Live check of the role mechanics via ServerState.
    use proteus_agileml::server::ServerState;
    let layout = PartitionMap::new(2).expect("nonzero");
    let p0 = PartitionId(0);
    let mut active = ServerState::new(layout);
    active.reconfigure(&[p0], &[], true);
    active.install_image(p0, vec![(ParamKey(0), DenseVec::from(vec![1.0]))].into(), 0);
    active.handle_updates(p0, &vec![(ParamKey(0), DenseVec::from(vec![0.5]))].into());
    let push = active.take_push(1);

    let mut backup = ServerState::new(layout);
    backup.reconfigure(&[], &[p0], false);
    backup.install_image(p0, vec![(ParamKey(0), DenseVec::from(vec![1.0]))].into(), 0);
    for (p, deltas) in push {
        backup.apply_push(p, 1, deltas, false);
    }
    let v = backup
        .read_backup(ParamKey(0))
        .expect("backed up")
        .as_slice()[0];
    println!(
        "\nlive role check: ActivePS pushed coalesced delta; BackupPS state = {v} (expected 1.5) ✓"
    );
}
