//! Table 2 — Summary of parameters used by BidBrain, with a live
//! evaluation showing how each one enters the Eq. 1–4 math.
//!
//! ```text
//! cargo run --release -p proteus-bench --bin tab02_params
//! ```

use proteus_bench::header;
use proteus_bidbrain::{AllocView, AppParams, BetaEstimator, BidBrain, BidBrainConfig};
use proteus_market::{catalog, MarketKey, Zone};
use proteus_simtime::SimDuration;

fn main() {
    header("Tab. 2", "summary of parameters used by BidBrain");
    for (symbol, meaning) in AppParams::table2() {
        println!("{symbol:>4}  {meaning}");
    }

    // A live footprint evaluation showing the parameters at work.
    let params = AppParams::default();
    let brain = BidBrain::new(params, BetaEstimator::new(), BidBrainConfig::default());
    let market = MarketKey::new(catalog::c4_xlarge(), Zone(0));
    let footprint = [
        AllocView::on_demand(market, 3, 0.0),
        AllocView {
            market,
            count: 32,
            hourly_price: 0.05,
            bid_delta: Some(0.01),
            time_remaining: SimDuration::from_mins(40),
            work_rate: 4.0,
        },
    ];
    let eval = brain.evaluate(&footprint, false);
    println!("\nlive evaluation of a 3 on-demand + 32 spot footprint (β untrained → 0.5):");
    println!(
        "  C_A = ${:.3}  (Eq. 1: eviction-refund-weighted cost)",
        eval.expected_cost
    );
    println!(
        "  W_A = {:.1} core-hours  (Eqs. 2-3: ω − eviction/scale overheads, φ-scaled)",
        eval.expected_work
    );
    println!(
        "  E_A = ${:.4} per core-hour  (Eq. 4)",
        eval.cost_per_work()
    );
}
