//! Shared helpers for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that prints the corresponding rows/series; this library
//! holds the formatting and the common study configurations so results
//! stay comparable across binaries. `EXPERIMENTS.md` records paper-vs-
//! measured values produced by these binaries.

// Library helpers shared by the binaries return values, never panic;
// any retained expect documents a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use proteus_costsim::StudyConfig;

/// Standard study configuration shared by the cost figures (Figs. 1,
/// 8–10). Fewer starts than the paper's 1000 keeps regeneration to
/// seconds; raise `starts` for tighter confidence.
pub fn standard_study(job_hours: f64, starts: usize) -> StudyConfig {
    StudyConfig {
        seed: 2016,
        train_days: 14,
        eval_days: 28,
        starts,
        job_hours,
        market_model: proteus_market::MarketModel::default(),
        max_job_hours: (job_hours * 24.0).max(72.0),
        market_faults: None,
    }
}

/// Prints a simple ASCII bar.
pub fn bar(value: f64, scale: f64) -> String {
    let n = ((value / scale.max(1e-12)) * 50.0)
        .round()
        .clamp(0.0, 120.0) as usize;
    "#".repeat(n.max(1))
}

/// Prints a figure header.
pub fn header(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(1.0, 1.0).len(), 50);
        assert_eq!(bar(0.0, 1.0).len(), 1);
        assert!(bar(100.0, 1.0).len() <= 120);
    }

    #[test]
    fn standard_study_tracks_job_hours() {
        let c = standard_study(20.0, 10);
        assert_eq!(c.job_hours, 20.0);
        assert!(c.max_job_hours >= 100.0);
    }
}
