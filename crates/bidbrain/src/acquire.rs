//! Resilient-acquisition support: per-market backoff under refusals.
//!
//! When the provider refuses a request — capacity drought in one market,
//! or API throttling in front of all of them — the driver should neither
//! hammer the same market every decision step nor give up on spot
//! entirely. [`MarketBackoff`] tracks refusals per market and applies
//! capped exponential backoff: a refused market is skipped for
//! `base × 2^(strikes−1)` of simulated time (up to `cap`), while other
//! markets in the [`ranked_acquisitions`](crate::BidBrain::ranked_acquisitions)
//! list remain fair game. Throttling (a provider-wide signal) blocks all
//! markets until the provider's suggested retry time.

use std::collections::BTreeMap;

use proteus_market::MarketKey;
use proteus_simtime::{SimDuration, SimTime};

/// Tracks refusal history and computes when each market may be retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarketBackoff {
    base: SimDuration,
    cap: SimDuration,
    /// Per-market consecutive-refusal count and earliest retry time.
    strikes: BTreeMap<MarketKey, (u32, SimTime)>,
    /// Provider-wide block (API throttling), if any.
    global_until: Option<SimTime>,
}

impl MarketBackoff {
    /// Creates a tracker with the given base delay and cap.
    pub fn new(base: SimDuration, cap: SimDuration) -> Self {
        MarketBackoff {
            base,
            cap,
            strikes: BTreeMap::new(),
            global_until: None,
        }
    }

    /// Whether `market` should be skipped at `now` (still backing off,
    /// or the provider as a whole is throttled).
    pub fn is_blocked(&self, market: MarketKey, now: SimTime) -> bool {
        if self.global_until.is_some_and(|t| now < t) {
            return true;
        }
        self.strikes
            .get(&market)
            .is_some_and(|&(_, until)| now < until)
    }

    /// Records a capacity refusal from `market`; returns the backoff
    /// delay applied (doubling per consecutive refusal, capped).
    pub fn on_refusal(&mut self, market: MarketKey, now: SimTime) -> SimDuration {
        let strikes = self.strikes.get(&market).map_or(0, |&(n, _)| n) + 1;
        let shift = (strikes - 1).min(16);
        let delay = SimDuration::from_millis(self.base.as_millis().saturating_mul(1 << shift))
            .min(self.cap);
        self.strikes.insert(market, (strikes, now + delay));
        delay
    }

    /// Records a provider-wide throttle; all markets are blocked until
    /// `now + retry_after`.
    pub fn on_throttle(&mut self, now: SimTime, retry_after: SimDuration) {
        let until = now + retry_after;
        if self.global_until.is_none_or(|t| t < until) {
            self.global_until = Some(until);
        }
    }

    /// Records a successful grant from `market`, clearing its strikes.
    pub fn on_success(&mut self, market: MarketKey) {
        self.strikes.remove(&market);
        self.global_until = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_market::instance::{catalog, Zone};

    fn key(zone: u8) -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(zone))
    }

    #[test]
    fn refusals_double_the_delay_up_to_the_cap() {
        let mut b = MarketBackoff::new(SimDuration::from_mins(2), SimDuration::from_mins(30));
        let now = SimTime::EPOCH;
        assert_eq!(b.on_refusal(key(0), now), SimDuration::from_mins(2));
        assert_eq!(b.on_refusal(key(0), now), SimDuration::from_mins(4));
        assert_eq!(b.on_refusal(key(0), now), SimDuration::from_mins(8));
        assert_eq!(b.on_refusal(key(0), now), SimDuration::from_mins(16));
        assert_eq!(b.on_refusal(key(0), now), SimDuration::from_mins(30));
        assert_eq!(b.on_refusal(key(0), now), SimDuration::from_mins(30));
    }

    #[test]
    fn blocked_markets_unblock_when_time_passes() {
        let mut b = MarketBackoff::new(SimDuration::from_mins(2), SimDuration::from_mins(30));
        let now = SimTime::EPOCH;
        b.on_refusal(key(0), now);
        assert!(b.is_blocked(key(0), now));
        assert!(!b.is_blocked(key(1), now), "other markets stay open");
        assert!(!b.is_blocked(key(0), now + SimDuration::from_mins(2)));
    }

    #[test]
    fn success_clears_strikes() {
        let mut b = MarketBackoff::new(SimDuration::from_mins(2), SimDuration::from_mins(30));
        let now = SimTime::EPOCH;
        b.on_refusal(key(0), now);
        b.on_refusal(key(0), now);
        b.on_success(key(0));
        assert!(!b.is_blocked(key(0), now));
        // The doubling restarts from the base.
        assert_eq!(b.on_refusal(key(0), now), SimDuration::from_mins(2));
    }

    #[test]
    fn throttle_blocks_every_market_until_retry_time() {
        let mut b = MarketBackoff::new(SimDuration::from_mins(2), SimDuration::from_mins(30));
        let now = SimTime::EPOCH;
        b.on_throttle(now, SimDuration::from_mins(1));
        assert!(b.is_blocked(key(0), now));
        assert!(b.is_blocked(key(7), now));
        assert!(!b.is_blocked(key(0), now + SimDuration::from_mins(1)));
        // A shorter, later throttle never shrinks the block.
        b.on_throttle(now, SimDuration::from_secs(10));
        assert!(b.is_blocked(key(0), now + SimDuration::from_secs(30)));
    }
}
