//! Eviction-probability estimation from historical price traces.
//!
//! "Using the AWS spot market trace …, we ran simulations with a wide
//! range of bid deltas and recorded the probability of getting evicted
//! within the hour, β, and the median time to eviction" (Sec. 4.1).
//! [`BetaEstimator`] reproduces exactly that procedure against the
//! (synthetic or scripted) traces available in this workspace: for many
//! historical start instants it asks "had I bid `market price + delta`
//! here, would the price have crossed my bid within the hour, and when?".

use proteus_market::{MarketKey, PriceTrace};
use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// β and median time-to-eviction at one bid delta.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaPoint {
    /// Bid delta in dollars above the market price.
    pub delta: f64,
    /// Probability of eviction within one billing hour.
    pub beta: f64,
    /// Median time to eviction among evicted trials.
    pub median_tte: SimDuration,
}

/// The β curve for one market.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetaTable {
    /// Points ordered by increasing delta.
    points: Vec<BetaPoint>,
}

impl BetaTable {
    /// Builds a table from sample points (sorted by delta internally).
    ///
    /// Returns `None` if `points` is empty.
    pub fn new(mut points: Vec<BetaPoint>) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        // Deltas are caller-supplied configuration constants, validated
        // finite before any table is built.
        #[allow(clippy::expect_used)]
        points.sort_by(|a, b| a.delta.partial_cmp(&b.delta).expect("finite deltas"));
        Some(BetaTable { points })
    }

    /// β at an arbitrary delta (nearest-point lookup with linear
    /// interpolation between neighbours; clamped at the ends).
    pub fn beta(&self, delta: f64) -> f64 {
        self.interpolate(delta, |p| p.beta)
    }

    /// Median time-to-eviction at an arbitrary delta.
    pub fn median_tte(&self, delta: f64) -> SimDuration {
        let secs = self.interpolate(delta, |p| p.median_tte.as_secs_f64());
        SimDuration::from_secs_f64(secs)
    }

    /// The sampled points.
    pub fn points(&self) -> &[BetaPoint] {
        &self.points
    }

    fn interpolate(&self, delta: f64, f: impl Fn(&BetaPoint) -> f64) -> f64 {
        let pts = &self.points;
        if delta <= pts[0].delta {
            return f(&pts[0]);
        }
        if delta >= pts[pts.len() - 1].delta {
            return f(&pts[pts.len() - 1]);
        }
        for w in pts.windows(2) {
            if delta >= w[0].delta && delta <= w[1].delta {
                let t = (delta - w[0].delta) / (w[1].delta - w[0].delta).max(1e-12);
                return f(&w[0]) * (1.0 - t) + f(&w[1]) * t;
            }
        }
        f(&pts[pts.len() - 1])
    }
}

/// Builds β tables per market by replaying historical traces.
#[derive(Debug, Clone, Default)]
pub struct BetaEstimator {
    tables: BTreeMap<MarketKey, BetaTable>,
}

impl BetaEstimator {
    /// An estimator with no trained markets (β defaults apply).
    pub fn new() -> Self {
        BetaEstimator::default()
    }

    /// The candidate bid deltas the paper sweeps: `[$0.0001, $0.4]`.
    pub fn default_deltas() -> Vec<f64> {
        vec![0.0001, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4]
    }

    /// Trains the β table for `market` by simulating hour-long holdings
    /// started every `stride` across `[from, to]` of `trace`.
    pub fn train(
        &mut self,
        market: MarketKey,
        trace: &PriceTrace,
        from: SimTime,
        to: SimTime,
        stride: SimDuration,
        deltas: &[f64],
    ) {
        assert!(!stride.is_zero(), "training stride must be positive");
        let hour = SimDuration::from_hours(1);
        let mut points = Vec::with_capacity(deltas.len());
        for &delta in deltas {
            let mut evictions = 0usize;
            let mut trials = 0usize;
            let mut ttes: Vec<SimDuration> = Vec::new();
            let mut t = from;
            while t + hour <= to {
                let bid = trace.price_at(t) + delta;
                trials += 1;
                if let Some(cross) = trace.first_crossing_above(bid, t, t + hour) {
                    if cross > t {
                        evictions += 1;
                        ttes.push(cross - t);
                    } else {
                        // Crossing at the start means the bid was below
                        // market, which cannot happen at delta > 0; treat
                        // as an immediate eviction for robustness.
                        evictions += 1;
                        ttes.push(SimDuration::ZERO);
                    }
                }
                t += stride;
            }
            let beta = if trials == 0 {
                0.0
            } else {
                evictions as f64 / trials as f64
            };
            ttes.sort();
            let median_tte = if ttes.is_empty() {
                hour
            } else {
                ttes[ttes.len() / 2]
            };
            points.push(BetaPoint {
                delta,
                beta,
                median_tte,
            });
        }
        // Enforce monotonicity: higher bids can only lower β. Sampling
        // noise can produce tiny inversions; smooth them out.
        let mut run_min = f64::INFINITY;
        for p in &mut points {
            run_min = run_min.min(p.beta);
            p.beta = run_min;
        }
        // `points` mirrors the non-empty delta grid iterated just above,
        // so the table constructor cannot see an empty input.
        #[allow(clippy::expect_used)]
        self.tables
            .insert(market, BetaTable::new(points).expect("non-empty deltas"));
    }

    /// β for `market` at `delta`; conservative default (0.5) for
    /// untrained markets.
    pub fn beta(&self, market: MarketKey, delta: f64) -> f64 {
        self.tables.get(&market).map_or(0.5, |t| t.beta(delta))
    }

    /// Median time-to-eviction for `market` at `delta`; half an hour for
    /// untrained markets.
    pub fn median_tte(&self, market: MarketKey, delta: f64) -> SimDuration {
        self.tables
            .get(&market)
            .map_or(SimDuration::from_mins(30), |t| t.median_tte(delta))
    }

    /// The trained table for `market`, if any.
    pub fn table(&self, market: MarketKey) -> Option<&BetaTable> {
        self.tables.get(&market)
    }

    /// Markets trained so far.
    pub fn trained_markets(&self) -> impl Iterator<Item = &MarketKey> {
        self.tables.keys()
    }
}

// Borrow-or-own conversions so consumers (notably `BidBrain`) can accept
// either an owned estimator or a shared reference without cloning the
// trained tables.
impl<'a> From<BetaEstimator> for std::borrow::Cow<'a, BetaEstimator> {
    fn from(beta: BetaEstimator) -> Self {
        std::borrow::Cow::Owned(beta)
    }
}

impl<'a> From<&'a BetaEstimator> for std::borrow::Cow<'a, BetaEstimator> {
    fn from(beta: &'a BetaEstimator) -> Self {
        std::borrow::Cow::Borrowed(beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_market::instance::{catalog, Zone};
    use proteus_market::{MarketModel, TraceGenerator};

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    fn trained() -> BetaEstimator {
        let gen = TraceGenerator::new(21, MarketModel::default());
        let horizon = SimDuration::from_hours(24 * 30);
        let trace = gen.generate(key(), horizon);
        let mut est = BetaEstimator::new();
        est.train(
            key(),
            &trace,
            SimTime::EPOCH,
            SimTime::EPOCH + horizon,
            SimDuration::from_mins(30),
            &BetaEstimator::default_deltas(),
        );
        est
    }

    #[test]
    fn beta_decreases_with_bid_delta() {
        let est = trained();
        let lo = est.beta(key(), 0.0001);
        let hi = est.beta(key(), 0.4);
        assert!(lo >= hi, "higher bids evict less: β({lo}) vs β({hi})");
        assert!(lo > 0.0, "tiny deltas must see evictions in a spiky market");
        assert!(hi < 0.5, "bidding $0.40 over market should usually survive");
    }

    #[test]
    fn interpolation_is_continuous_and_clamped() {
        let table = BetaTable::new(vec![
            BetaPoint {
                delta: 0.01,
                beta: 0.8,
                median_tte: SimDuration::from_mins(10),
            },
            BetaPoint {
                delta: 0.10,
                beta: 0.2,
                median_tte: SimDuration::from_mins(40),
            },
        ])
        .unwrap();
        assert_eq!(table.beta(0.001), 0.8); // Clamp low.
        assert_eq!(table.beta(0.5), 0.2); // Clamp high.
        let mid = table.beta(0.055);
        assert!((mid - 0.5).abs() < 1e-9, "midpoint interpolates: {mid}");
        assert_eq!(table.median_tte(0.055).as_mins(), 25);
    }

    #[test]
    fn untrained_market_uses_conservative_defaults() {
        let est = BetaEstimator::new();
        assert_eq!(est.beta(key(), 0.1), 0.5);
        assert_eq!(est.median_tte(key(), 0.1), SimDuration::from_mins(30));
    }

    #[test]
    fn empty_tables_are_rejected() {
        assert!(BetaTable::new(vec![]).is_none());
    }

    #[test]
    fn calm_market_yields_lower_beta_than_volatile() {
        let horizon = SimDuration::from_hours(24 * 30);
        let mk = key();
        let mut calm = BetaEstimator::new();
        let t = TraceGenerator::new(5, MarketModel::calm()).generate(mk, horizon);
        calm.train(
            mk,
            &t,
            SimTime::EPOCH,
            SimTime::EPOCH + horizon,
            SimDuration::from_mins(30),
            &[0.01],
        );
        let mut wild = BetaEstimator::new();
        let t = TraceGenerator::new(5, MarketModel::volatile()).generate(mk, horizon);
        wild.train(
            mk,
            &t,
            SimTime::EPOCH,
            SimTime::EPOCH + horizon,
            SimDuration::from_mins(30),
            &[0.01],
        );
        assert!(
            calm.beta(mk, 0.01) < wild.beta(mk, 0.01),
            "calm {} < volatile {}",
            calm.beta(mk, 0.01),
            wild.beta(mk, 0.01)
        );
    }
}
