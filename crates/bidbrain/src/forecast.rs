//! Online preemption forecasting from the live spot-price trajectory.
//!
//! The β estimator ([`crate::beta`]) prices eviction risk from *historical
//! frequencies* — it is reactive by construction. This module goes
//! proactive, Parcae-style: a [`PreemptionForecaster`] watches the live
//! price of every held (market, bid) pair and emits a typed
//! [`EvictionAlert`] when an eviction looks imminent, *before* any
//! provider warning fires. Consumers (the session loop, the cost
//! simulator) use the alert to pre-drain transient state and to adapt the
//! checkpoint interval to the forecasted hazard ("ML on Volatile
//! Instances" first-order rule, [`adaptive_interval`]).
//!
//! Signals, per holding, over a sliding window of price samples:
//!
//! * **distance-to-bid** — the relative margin `(bid − price) / bid`;
//!   a price at or above the bid is a crossing (hazard 1), a price close
//!   below it is dangerous;
//! * **trend** — a least-squares slope over the window projects the time
//!   until the trajectory crosses the bid; crossings projected inside the
//!   forecast horizon raise hazard proportionally;
//! * **volatility** — the dispersion of step-to-step returns estimates
//!   the chance a random excursion covers the remaining margin within the
//!   horizon;
//! * **regime shift** — the synthetic generator (and real spot markets)
//!   moves between a calm mean-reverting regime and sharp spike regimes;
//!   a single-step jump far beyond calm jitter is a spike onset and maps
//!   to near-certain eviction for any bid below the spike peak.
//!
//! The four signals combine noisy-or into one hazard in `[0, 1]`;
//! hysteresis (alert / re-arm thresholds) keeps one approach from
//! emitting an alert storm. Calibration is validated empirically: the
//! [`ForecastScorer`] replays traces and reports precision / recall /
//! lead time against ground-truth evictions (gated in `bench_forecast`).

use proteus_market::MarketKey;
use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tuning knobs for the online forecaster.
///
/// Defaults are calibrated against the synthetic generator's regimes
/// (calm ±10 % multiplicative jitter, spikes ≥ 1.1× on-demand) and
/// validated by the `bench_forecast` replay gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForecastConfig {
    /// Price samples retained per holding (sliding window).
    pub window: usize,
    /// Hazard at or above this emits an alert (when armed).
    pub alert_threshold: f64,
    /// Hazard must fall below this before the holding re-arms; the gap
    /// between the two thresholds is the anti-storm hysteresis band.
    pub rearm_threshold: f64,
    /// Forecast horizon: alerts mean "eviction expected within this".
    pub horizon: SimDuration,
    /// Relative margin below which the distance signal starts ramping
    /// (e.g. 0.15 → prices within 15 % of the bid raise hazard).
    pub margin_band: f64,
    /// Single-step relative price jump treated as a spike-regime onset.
    /// Calm-regime steps are bounded by jitter plus mean reversion
    /// (≲ ±20 %); spike onsets multiply the price several-fold.
    pub regime_jump: f64,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        ForecastConfig {
            window: 16,
            alert_threshold: 0.6,
            rearm_threshold: 0.25,
            horizon: SimDuration::from_mins(10),
            margin_band: 0.15,
            regime_jump: 0.5,
        }
    }
}

impl ForecastConfig {
    /// Validates threshold ordering and signal bands.
    pub fn validate(&self) -> Result<(), String> {
        if self.window < 2 {
            return Err("forecast window must hold at least 2 samples".into());
        }
        if !(0.0..=1.0).contains(&self.alert_threshold) || !self.alert_threshold.is_finite() {
            return Err("alert_threshold must lie in [0, 1]".into());
        }
        if self.rearm_threshold < 0.0 || self.rearm_threshold >= self.alert_threshold {
            return Err("rearm_threshold must lie in [0, alert_threshold)".into());
        }
        if self.horizon.is_zero() {
            return Err("forecast horizon must be positive".into());
        }
        if self.margin_band <= 0.0 || !self.margin_band.is_finite() {
            return Err("margin_band must be positive".into());
        }
        if self.regime_jump <= 0.0 || !self.regime_jump.is_finite() {
            return Err("regime_jump must be positive".into());
        }
        Ok(())
    }
}

/// A typed preemption warning emitted ahead of any provider signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictionAlert {
    /// The market whose price trajectory triggered the alert.
    pub market: MarketKey,
    /// The bid the holding is exposed at.
    pub bid: f64,
    /// Simulated instant the alert fired.
    pub at: SimTime,
    /// Expected time until the eviction lands (the pre-warning budget
    /// available for draining). Bounded by the configured horizon.
    pub horizon: SimDuration,
    /// Calibrated hazard estimate in `[0, 1]` at fire time.
    pub confidence: f64,
}

/// Per-holding trajectory state.
#[derive(Debug, Clone)]
struct HoldingState {
    /// Sliding `(time, price)` window, oldest first.
    samples: Vec<(SimTime, f64)>,
    /// Most recent combined hazard.
    hazard: f64,
    /// Hysteresis: true when a new alert may fire.
    armed: bool,
}

impl HoldingState {
    fn new() -> Self {
        HoldingState {
            samples: Vec::new(),
            hazard: 0.0,
            armed: true,
        }
    }
}

/// Keys holdings by market and exact bid (bit pattern, so the map stays
/// `Ord` without comparing floats).
type HoldingKey = (MarketKey, u64);

/// Online per-(market, bid) preemption forecaster.
///
/// Feed it one price sample per holding per step via [`observe`]; it
/// returns an [`EvictionAlert`] at most once per hazard excursion.
/// Deterministic: state lives in a `BTreeMap` and every computation is a
/// pure function of the observed samples.
///
/// [`observe`]: PreemptionForecaster::observe
///
/// # Examples
///
/// ```
/// use proteus_bidbrain::{ForecastConfig, PreemptionForecaster};
/// use proteus_market::{catalog, MarketKey, Zone};
/// use proteus_simtime::{SimDuration, SimTime};
///
/// let mut fc = PreemptionForecaster::new(ForecastConfig::default());
/// let market = MarketKey::new(catalog::c4_xlarge(), Zone(0));
/// let (bid, mut t) = (0.10, SimTime::EPOCH);
/// // A flat price far below the bid never alerts.
/// for _ in 0..8 {
///     assert!(fc.observe(market, bid, t, 0.05).is_none());
///     t += SimDuration::from_mins(2);
/// }
/// // A spike-regime jump to the bid's doorstep alerts immediately.
/// assert!(fc.observe(market, bid, t, 0.098).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct PreemptionForecaster {
    cfg: ForecastConfig,
    states: BTreeMap<HoldingKey, HoldingState>,
}

impl PreemptionForecaster {
    /// A forecaster with the given configuration.
    pub fn new(cfg: ForecastConfig) -> Self {
        PreemptionForecaster {
            cfg,
            states: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ForecastConfig {
        &self.cfg
    }

    /// Feeds one price sample for a held (market, bid) pair and returns
    /// an alert if the hazard crossed the alert threshold while armed.
    pub fn observe(
        &mut self,
        market: MarketKey,
        bid: f64,
        now: SimTime,
        price: f64,
    ) -> Option<EvictionAlert> {
        if !(bid.is_finite() && price.is_finite()) || bid <= 0.0 || price < 0.0 {
            return None;
        }
        let key = (market, bid.to_bits());
        let state = self.states.entry(key).or_insert_with(HoldingState::new);

        // Regime-shift detection needs the previous sample before the
        // window is updated.
        let prev_price = state.samples.last().map(|&(_, p)| p);
        match state.samples.last_mut() {
            Some(last) if last.0 == now => *last = (now, price),
            _ => state.samples.push((now, price)),
        }
        if state.samples.len() > self.cfg.window {
            let excess = state.samples.len() - self.cfg.window;
            state.samples.drain(..excess);
        }

        let (hazard, lead) = combined_hazard(&self.cfg, &state.samples, bid, prev_price, price);
        state.hazard = hazard;

        // Hysteresis: one alert per excursion above the threshold.
        if state.armed && hazard >= self.cfg.alert_threshold {
            state.armed = false;
            return Some(EvictionAlert {
                market,
                bid,
                at: now,
                horizon: lead,
                confidence: hazard,
            });
        }
        if !state.armed && hazard < self.cfg.rearm_threshold {
            state.armed = true;
        }
        None
    }

    /// The most recent hazard for a holding (0 when never observed).
    pub fn hazard(&self, market: MarketKey, bid: f64) -> f64 {
        self.states
            .get(&(market, bid.to_bits()))
            .map_or(0.0, |s| s.hazard)
    }

    /// The maximum hazard across all tracked holdings — the fleet-wide
    /// eviction pressure used to adapt the checkpoint interval.
    pub fn max_hazard(&self) -> f64 {
        self.states.values().map(|s| s.hazard).fold(0.0, f64::max)
    }

    /// Drops the trajectory state for a released or evicted holding.
    pub fn clear(&mut self, market: MarketKey, bid: f64) {
        self.states.remove(&(market, bid.to_bits()));
    }

    /// Number of holdings currently tracked.
    pub fn tracked(&self) -> usize {
        self.states.len()
    }
}

/// Combines the four signals noisy-or into `(hazard, expected lead)`.
fn combined_hazard(
    cfg: &ForecastConfig,
    samples: &[(SimTime, f64)],
    bid: f64,
    prev_price: Option<f64>,
    price: f64,
) -> (f64, SimDuration) {
    // Crossing: the price already reached the bid. The provider's own
    // warning is imminent; any drain budget is whatever lead remains.
    if price >= bid {
        return (1.0, SimDuration::from_secs(30));
    }
    let margin = (bid - price) / bid;

    // Distance-to-bid: ramps from 0 at the band edge to ~1 at the bid.
    let h_margin = ((cfg.margin_band - margin) / cfg.margin_band).clamp(0.0, 1.0);

    // Trend: project the least-squares slope to a crossing time.
    let horizon_hours = cfg.horizon.as_secs_f64() / 3600.0;
    let slope = ls_slope_per_hour(samples);
    let mut lead = cfg.horizon;
    let h_trend = if slope > 1e-12 {
        let ttc_hours = (bid - price) / slope;
        if ttc_hours <= horizon_hours {
            lead = SimDuration::from_secs_f64(ttc_hours * 3600.0);
            ((horizon_hours - ttc_hours) / horizon_hours).clamp(0.0, 1.0)
        } else {
            0.0
        }
    } else {
        0.0
    };

    // Volatility: chance a random excursion covers the margin within the
    // horizon, via a one-sided large-deviation proxy exp(−margin / σ√n).
    let h_vol = match step_return_sigma(samples) {
        Some(sigma) if sigma > 1e-9 => {
            let steps = steps_in_horizon(cfg, samples).max(1.0);
            (-margin / (sigma * steps.sqrt())).exp().clamp(0.0, 1.0)
        }
        _ => 0.0,
    };

    // Regime shift: a single-step jump far beyond calm jitter is a spike
    // onset; unless the spike already cleared the bid (handled above),
    // the price is climbing regions the calm model never visits.
    let h_regime = match prev_price {
        Some(prev) if prev > 0.0 && (price - prev) / prev >= cfg.regime_jump => {
            lead = lead.min(SimDuration::from_mins(2));
            0.95
        }
        _ => 0.0,
    };

    let survive = (1.0 - h_margin) * (1.0 - h_trend) * (1.0 - h_vol) * (1.0 - h_regime);
    ((1.0 - survive).clamp(0.0, 1.0), lead)
}

/// Least-squares slope of price over time, in dollars per hour.
fn ls_slope_per_hour(samples: &[(SimTime, f64)]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let t0 = samples[0].0;
    let n = samples.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(t, p) in samples {
        let x = (t - t0).as_secs_f64() / 3600.0;
        sx += x;
        sy += p;
        sxx += x * x;
        sxy += x * p;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

/// Standard deviation of step-to-step relative returns.
fn step_return_sigma(samples: &[(SimTime, f64)]) -> Option<f64> {
    if samples.len() < 3 {
        return None;
    }
    let mut returns = Vec::with_capacity(samples.len() - 1);
    for w in samples.windows(2) {
        if w[0].1 > 0.0 {
            returns.push((w[1].1 - w[0].1) / w[0].1);
        }
    }
    if returns.len() < 2 {
        return None;
    }
    let n = returns.len() as f64;
    let mean = returns.iter().sum::<f64>() / n;
    let var = returns.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0);
    Some(var.sqrt())
}

/// How many observation steps fit in the horizon, from sample spacing.
fn steps_in_horizon(cfg: &ForecastConfig, samples: &[(SimTime, f64)]) -> f64 {
    let span = match (samples.first(), samples.last()) {
        (Some(&(a, _)), Some(&(b, _))) if b > a => (b - a).as_secs_f64(),
        _ => return 1.0,
    };
    let step = span / (samples.len() - 1) as f64;
    if step <= 0.0 {
        1.0
    } else {
        cfg.horizon.as_secs_f64() / step
    }
}

/// First-order optimal checkpoint interval under a forecasted hazard
/// ("ML on Volatile Instances"): Young's rule `τ* = √(2·C·MTTF)` with
/// `MTTF = 1/λ` taken from the *forecasted* eviction rate instead of a
/// static historical one, clamped to `[min, max]`.
///
/// `hazard_per_hour` is the instantaneous eviction rate λ (events/hour);
/// a rate of 0 means no forecasted pressure and returns `max`.
pub fn adaptive_interval(
    checkpoint_cost: SimDuration,
    hazard_per_hour: f64,
    min: SimDuration,
    max: SimDuration,
) -> SimDuration {
    if !(hazard_per_hour.is_finite()) || hazard_per_hour <= 0.0 {
        return max;
    }
    let c_hours = checkpoint_cost.as_secs_f64() / 3600.0;
    let mttf_hours = 1.0 / hazard_per_hour;
    let tau_hours = (2.0 * c_hours * mttf_hours).sqrt();
    let tau = SimDuration::from_secs_f64(tau_hours * 3600.0);
    tau.clamp(min, max)
}

/// Converts a bounded hazard estimate over a horizon into an eviction
/// rate λ (events/hour) for [`adaptive_interval`]: the exponential-model
/// inversion `λ = −ln(1 − h) / horizon`, capped for h → 1.
pub fn hazard_to_rate(hazard: f64, horizon: SimDuration) -> f64 {
    let h = hazard.clamp(0.0, 0.999);
    let horizon_hours = (horizon.as_secs_f64() / 3600.0).max(1e-6);
    -(1.0 - h).ln() / horizon_hours
}

/// One alert or eviction observation for offline scoring.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stamp {
    market: MarketKey,
    at: SimTime,
}

/// Replay scorer: pairs recorded alerts with ground-truth evictions and
/// reports precision / recall / lead time.
///
/// An alert is a *true positive* when an eviction in the same market
/// lands within `match_window` after it; each eviction consumes at most
/// one alert (the earliest unmatched one). Remaining alerts are false
/// positives; remaining evictions are misses.
#[derive(Debug, Clone)]
pub struct ForecastScorer {
    match_window: SimDuration,
    alerts: Vec<Stamp>,
    evictions: Vec<Stamp>,
}

/// Aggregate forecast accuracy over one replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastScore {
    /// Alerts emitted.
    pub alerts: usize,
    /// Ground-truth evictions observed.
    pub evictions: usize,
    /// Alerts matched to a following eviction.
    pub true_positives: usize,
    /// Alerts with no eviction inside the match window.
    pub false_positives: usize,
    /// Evictions no alert preceded.
    pub misses: usize,
    /// `TP / (TP + FP)`; 1.0 when no alerts fired.
    pub precision: f64,
    /// `TP / (TP + FN)`; 1.0 when nothing was evicted.
    pub recall: f64,
    /// Mean alert-to-eviction lead over true positives.
    pub mean_lead: SimDuration,
}

impl ForecastScorer {
    /// A scorer matching alerts to evictions within `match_window`.
    pub fn new(match_window: SimDuration) -> Self {
        ForecastScorer {
            match_window,
            alerts: Vec::new(),
            evictions: Vec::new(),
        }
    }

    /// Records an emitted alert.
    pub fn record_alert(&mut self, market: MarketKey, at: SimTime) {
        self.alerts.push(Stamp { market, at });
    }

    /// Records a ground-truth eviction.
    pub fn record_eviction(&mut self, market: MarketKey, at: SimTime) {
        self.evictions.push(Stamp { market, at });
    }

    /// Matches and scores everything recorded so far.
    pub fn score(&self) -> ForecastScore {
        let mut alerts = self.alerts.clone();
        alerts.sort_by_key(|s| (s.at, s.market));
        let mut evictions = self.evictions.clone();
        evictions.sort_by_key(|s| (s.at, s.market));

        let mut used = vec![false; alerts.len()];
        let mut tp = 0usize;
        let mut misses = 0usize;
        let mut lead_sum = SimDuration::ZERO;
        for ev in &evictions {
            let hit = alerts.iter().enumerate().find(|(i, a)| {
                !used[*i]
                    && a.market == ev.market
                    && a.at <= ev.at
                    && ev.at - a.at <= self.match_window
            });
            match hit {
                Some((i, a)) => {
                    used[i] = true;
                    tp += 1;
                    lead_sum += ev.at - a.at;
                }
                None => misses += 1,
            }
        }
        let fp = used.iter().filter(|u| !**u).count();
        let precision = if alerts.is_empty() {
            1.0
        } else {
            tp as f64 / alerts.len() as f64
        };
        let recall = if evictions.is_empty() {
            1.0
        } else {
            tp as f64 / evictions.len() as f64
        };
        let mean_lead = if tp == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(lead_sum.as_secs_f64() / tp as f64)
        };
        ForecastScore {
            alerts: alerts.len(),
            evictions: evictions.len(),
            true_positives: tp,
            false_positives: fp,
            misses,
            precision,
            recall,
            mean_lead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_market::instance::{catalog, Zone};
    use proteus_market::{MarketModel, TraceGenerator};

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    fn step() -> SimDuration {
        SimDuration::from_secs(120)
    }

    #[test]
    fn default_config_is_valid() {
        assert!(ForecastConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut c = ForecastConfig {
            window: 1,
            ..ForecastConfig::default()
        };
        assert!(c.validate().is_err());
        c = ForecastConfig {
            rearm_threshold: 0.9,
            ..ForecastConfig::default()
        };
        assert!(c.validate().is_err());
        c = ForecastConfig {
            horizon: SimDuration::ZERO,
            ..ForecastConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn calm_prices_far_below_bid_never_alert() {
        let mut fc = PreemptionForecaster::new(ForecastConfig::default());
        let bid = 0.10;
        let mut t = SimTime::EPOCH;
        // ±2 % wiggle around half the bid: no trend, low volatility.
        for i in 0..200u32 {
            let p = 0.05 * (1.0 + 0.02 * f64::from(i % 3) - 0.02);
            assert!(
                fc.observe(key(), bid, t, p).is_none(),
                "false alert at step {i}"
            );
            t += step();
        }
        assert!(fc.hazard(key(), bid) < 0.25);
    }

    #[test]
    fn price_at_or_above_bid_is_certain_hazard() {
        let mut fc = PreemptionForecaster::new(ForecastConfig::default());
        let alert = fc.observe(key(), 0.10, SimTime::EPOCH, 0.11);
        let alert = alert.expect("crossing must alert");
        assert!((alert.confidence - 1.0).abs() < 1e-12);
        assert!(alert.horizon <= SimDuration::from_mins(1));
    }

    #[test]
    fn steady_climb_alerts_before_crossing() {
        let mut fc = PreemptionForecaster::new(ForecastConfig::default());
        let bid = 0.10;
        let mut t = SimTime::EPOCH;
        let mut alert_at = None;
        let mut crossed_at = None;
        // Climb from $0.05 toward the bid in 0.2 %-of-bid steps.
        for i in 0..400u32 {
            let p = 0.05 + f64::from(i) * 0.0002;
            if p >= bid && crossed_at.is_none() {
                crossed_at = Some(t);
                break;
            }
            if let Some(a) = fc.observe(key(), bid, t, p) {
                alert_at.get_or_insert(a.at);
            }
            t += step();
        }
        let alert_at = alert_at.expect("climb toward the bid must alert");
        let crossed_at = crossed_at.expect("climb must eventually cross");
        assert!(
            alert_at < crossed_at,
            "alert {alert_at:?} must precede crossing {crossed_at:?}"
        );
    }

    #[test]
    fn spike_jump_raises_hazard_sharply() {
        let mut fc = PreemptionForecaster::new(ForecastConfig::default());
        let bid = 0.50; // High bid: the spike onset sample is still below.
        let mut t = SimTime::EPOCH;
        for _ in 0..8 {
            assert!(fc.observe(key(), bid, t, 0.05).is_none());
            t += step();
        }
        // Spike onset: 8× jump, still below the bid.
        let alert = fc.observe(key(), bid, t, 0.40);
        assert!(alert.is_some(), "regime jump must alert");
        let alert = alert.unwrap_or_else(|| unreachable!());
        assert!(alert.confidence >= 0.9);
    }

    #[test]
    fn hysteresis_prevents_alert_storms() {
        let mut fc = PreemptionForecaster::new(ForecastConfig::default());
        let bid = 0.10;
        let mut t = SimTime::EPOCH;
        let mut alerts = 0;
        // Hold the price just under the bid for many steps: hazard stays
        // above threshold the whole time, but only one alert may fire.
        for _ in 0..50 {
            if fc.observe(key(), bid, t, 0.099).is_some() {
                alerts += 1;
            }
            t += step();
        }
        assert_eq!(alerts, 1, "sustained hazard must alert exactly once");
        // Dropping far below the bid re-arms; a fresh excursion re-alerts.
        for _ in 0..20 {
            fc.observe(key(), bid, t, 0.03);
            t += step();
        }
        assert!(fc.observe(key(), bid, t, 0.099).is_some());
    }

    #[test]
    fn holdings_are_independent_and_clearable() {
        let mut fc = PreemptionForecaster::new(ForecastConfig::default());
        let other = MarketKey::new(catalog::c4_xlarge(), Zone(1));
        fc.observe(key(), 0.10, SimTime::EPOCH, 0.05);
        fc.observe(other, 0.20, SimTime::EPOCH, 0.199);
        assert_eq!(fc.tracked(), 2);
        assert!(fc.hazard(other, 0.20) > fc.hazard(key(), 0.10));
        assert!((fc.max_hazard() - fc.hazard(other, 0.20)).abs() < 1e-12);
        fc.clear(other, 0.20);
        assert_eq!(fc.tracked(), 1);
        assert_eq!(fc.hazard(other, 0.20), 0.0);
    }

    #[test]
    fn forecaster_is_deterministic() {
        let run = || {
            let gen = TraceGenerator::new(9, MarketModel::volatile());
            let trace = gen.generate(key(), SimDuration::from_hours(48));
            let mut fc = PreemptionForecaster::new(ForecastConfig::default());
            let bid = 0.08;
            let mut t = SimTime::EPOCH;
            let mut out = Vec::new();
            while t < SimTime::EPOCH + SimDuration::from_hours(48) {
                if let Some(a) = fc.observe(key(), bid, t, trace.price_at(t)) {
                    out.push((a.at, a.confidence.to_bits(), a.horizon));
                }
                t += step();
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn adaptive_interval_follows_youngs_rule() {
        // C = 2 min, λ = 0.6/hour → MTTF = 100 min: τ = √(2·2·100) = 20 min.
        let tau = adaptive_interval(
            SimDuration::from_mins(2),
            0.6,
            SimDuration::from_mins(1),
            SimDuration::from_hours(12),
        );
        assert!((tau.as_secs_f64() - 20.0 * 60.0).abs() < 1.0, "{tau:?}");
    }

    #[test]
    fn adaptive_interval_clamps_and_degrades_to_fixed() {
        let min = SimDuration::from_mins(5);
        let max = SimDuration::from_hours(2);
        // No hazard → the fixed (max) interval.
        assert_eq!(
            adaptive_interval(SimDuration::from_mins(2), 0.0, min, max),
            max
        );
        // Extreme hazard → clamped at min, never zero.
        assert_eq!(
            adaptive_interval(SimDuration::from_mins(2), 1e9, min, max),
            min
        );
    }

    #[test]
    fn hazard_rate_inversion_is_monotonic() {
        let h = SimDuration::from_mins(10);
        let lo = hazard_to_rate(0.1, h);
        let hi = hazard_to_rate(0.9, h);
        assert!(lo > 0.0 && hi > lo);
        assert_eq!(hazard_to_rate(0.0, h), 0.0);
        assert!(hazard_to_rate(1.0, h).is_finite());
    }

    #[test]
    fn scorer_matches_alerts_to_evictions() {
        let mut sc = ForecastScorer::new(SimDuration::from_mins(30));
        let m = key();
        // TP: alert 10 min before the eviction.
        sc.record_alert(m, SimTime::EPOCH + SimDuration::from_mins(10));
        sc.record_eviction(m, SimTime::EPOCH + SimDuration::from_mins(20));
        // FP: alert with no eviction inside the window.
        sc.record_alert(m, SimTime::EPOCH + SimDuration::from_hours(3));
        // FN: eviction with no preceding alert.
        sc.record_eviction(m, SimTime::EPOCH + SimDuration::from_hours(6));
        let s = sc.score();
        assert_eq!((s.true_positives, s.false_positives, s.misses), (1, 1, 1));
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert_eq!(s.mean_lead, SimDuration::from_mins(10));
    }

    #[test]
    fn scorer_respects_market_boundaries() {
        let mut sc = ForecastScorer::new(SimDuration::from_mins(30));
        let other = MarketKey::new(catalog::c4_xlarge(), Zone(1));
        sc.record_alert(key(), SimTime::EPOCH + SimDuration::from_mins(10));
        sc.record_eviction(other, SimTime::EPOCH + SimDuration::from_mins(20));
        let s = sc.score();
        assert_eq!((s.true_positives, s.false_positives, s.misses), (0, 1, 1));
    }

    #[test]
    fn scorer_on_generator_trace_has_useful_accuracy() {
        // Replay a volatile trace: sample every 2 min, feed the
        // forecaster, and score against ground-truth bid crossings.
        let gen = TraceGenerator::new(2016, MarketModel::volatile());
        let horizon = SimDuration::from_hours(24 * 4);
        let trace = gen.generate(key(), horizon);
        let mut fc = PreemptionForecaster::new(ForecastConfig::default());
        let mut sc = ForecastScorer::new(SimDuration::from_mins(30));
        let bid = trace.price_at(SimTime::EPOCH) + 0.02;
        let mut t = SimTime::EPOCH;
        let mut above = false;
        while t < SimTime::EPOCH + horizon {
            let p = trace.price_at(t);
            if p >= bid {
                if !above {
                    // The crossing sample is still observable before the
                    // eviction lands: the provider gives a 2-minute
                    // warning lead after the price crosses the bid.
                    if let Some(a) = fc.observe(key(), bid, t, p) {
                        sc.record_alert(key(), a.at);
                    }
                    sc.record_eviction(key(), t + SimDuration::from_mins(2));
                    fc.clear(key(), bid);
                }
                above = true;
            } else {
                above = false;
                if let Some(a) = fc.observe(key(), bid, t, p) {
                    sc.record_alert(key(), a.at);
                }
            }
            t += step();
        }
        let s = sc.score();
        assert!(s.evictions > 0, "volatile trace must evict");
        assert!(
            s.recall >= 0.7,
            "recall {} too low over {} evictions",
            s.recall,
            s.evictions
        );
        assert!(
            s.mean_lead >= SimDuration::from_mins(2),
            "lead {} must cover at least the provider warning",
            s.mean_lead
        );
    }
}
