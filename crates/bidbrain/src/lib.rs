//! BidBrain — Proteus' resource-allocation component (paper Sec. 4).
//!
//! BidBrain tracks current and historical spot-market prices for multiple
//! instance types, and makes allocation decisions that minimize expected
//! **cost per unit work**:
//!
//! * it estimates the probability β that an allocation at a given *bid
//!   delta* (bid minus market price) is evicted within its billing hour,
//!   by replaying historical price traces ([`beta`]);
//! * it computes the expected cost of a footprint with eviction refunds
//!   priced in (Eq. 1), the expected useful compute time net of eviction
//!   and scaling overheads (Eq. 2), the expected work (Eq. 3), and their
//!   ratio (Eq. 4) ([`policy`]);
//! * it acquires a new allocation only when doing so lowers the
//!   footprint's expected cost-per-work, and terminates allocations
//!   before their next billing hour when renewal would raise it;
//! * "free compute" — work done in an hour that the provider later
//!   refunds on eviction — is explicitly part of the objective, which is
//!   why moderately aggressive bids beat both timid (never-evicted) and
//!   reckless (constantly-evicted) ones.
//!
//! [`standard`] implements the baseline the paper compares against:
//! always pick the currently cheapest market and bid the on-demand price
//! (the EC2 Spot Fleet default policy).

// Decision paths must return typed values, never panic; any retained
// expect must document a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod acquire;
pub mod beta;
pub mod forecast;
pub mod objective;
pub mod params;
pub mod policy;
pub mod standard;

pub use acquire::MarketBackoff;
pub use beta::{BetaEstimator, BetaPoint, BetaTable};
pub use forecast::{
    adaptive_interval, hazard_to_rate, EvictionAlert, ForecastConfig, ForecastScore,
    ForecastScorer, PreemptionForecaster,
};
pub use objective::Objective;
pub use params::AppParams;
pub use policy::{AllocView, AllocationRequest, BidBrain, BidBrainConfig, FootprintEval};
pub use standard::StandardStrategy;
