//! Alternative optimization objectives (paper Sec. 4.3).
//!
//! BidBrain's native objective — minimize expected cost per unit work —
//! fits batch jobs. The paper notes: "In future work, we plan to explore
//! other optimization metrics to fit other elastic application types."
//! This module implements that extension: a [`Objective`] selects how
//! candidate footprints are ranked, so one policy engine serves batch
//! jobs (cost-per-work), deadline-driven jobs (maximize throughput under
//! a spend-rate cap), and budget-capped exploration (maximize work for a
//! fixed budget).

use serde::{Deserialize, Serialize};

use crate::policy::FootprintEval;

/// How BidBrain ranks candidate footprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize expected cost per unit work (Eq. 4) — the paper's
    /// default, right for batch training.
    #[default]
    CostPerWork,
    /// Maximize expected work subject to a cap on expected spend rate
    /// (dollars per hour of wall time) — right for deadline-driven jobs
    /// that want throughput but not at any price.
    ThroughputUnderBudget {
        /// Maximum expected spend in dollars per wall-clock hour.
        max_dollars_per_hour: f64,
    },
}

impl Objective {
    /// A scalar score for a candidate footprint evaluation — **lower is
    /// better** for every variant (so the policy engine can always pick
    /// the minimum).
    ///
    /// For `ThroughputUnderBudget`, footprints over the spend cap score
    /// `+∞`; affordable footprints score the negated expected work, so
    /// minimizing the score maximizes throughput.
    pub fn score(&self, eval: &FootprintEval) -> f64 {
        match *self {
            Objective::CostPerWork => eval.cost_per_work(),
            Objective::ThroughputUnderBudget {
                max_dollars_per_hour,
            } => {
                // Expected cost is over (at most) the coming hour, so it
                // doubles as the expected spend rate.
                if eval.expected_cost > max_dollars_per_hour {
                    f64::INFINITY
                } else {
                    -eval.expected_work
                }
            }
        }
    }

    /// Whether a candidate score beats the incumbent by enough margin
    /// to act (hysteresis applies only to the ratio-style objective;
    /// throughput scores compare directly).
    pub fn improves(&self, candidate: f64, incumbent: f64, min_improvement: f64) -> bool {
        match self {
            Objective::CostPerWork => {
                incumbent.is_infinite() || candidate < incumbent * (1.0 - min_improvement)
            }
            Objective::ThroughputUnderBudget { .. } => candidate < incumbent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(cost: f64, work: f64) -> FootprintEval {
        FootprintEval {
            expected_cost: cost,
            expected_work: work,
        }
    }

    #[test]
    fn cost_per_work_scores_by_ratio() {
        let o = Objective::CostPerWork;
        assert!(o.score(&eval(1.0, 10.0)) < o.score(&eval(1.0, 5.0)));
        assert!(o.score(&eval(0.0, 0.0)).is_infinite());
    }

    #[test]
    fn throughput_objective_respects_budget() {
        let o = Objective::ThroughputUnderBudget {
            max_dollars_per_hour: 2.0,
        };
        // Over budget: infinite (never chosen).
        assert!(o.score(&eval(3.0, 100.0)).is_infinite());
        // Under budget: more work scores lower (better).
        assert!(o.score(&eval(1.9, 50.0)) < o.score(&eval(1.0, 20.0)));
    }

    #[test]
    fn hysteresis_only_applies_to_ratio_objective() {
        let cpw = Objective::CostPerWork;
        assert!(!cpw.improves(0.99, 1.0, 0.05), "within hysteresis band");
        assert!(cpw.improves(0.90, 1.0, 0.05));
        assert!(
            cpw.improves(5.0, f64::INFINITY, 0.05),
            "anything beats nothing"
        );

        let tub = Objective::ThroughputUnderBudget {
            max_dollars_per_hour: 1.0,
        };
        assert!(tub.improves(-10.0, -9.9, 0.05), "any strict gain acts");
    }
}
