//! Application parameters consumed by BidBrain (paper Table 2).

use proteus_simtime::SimDuration;
use serde::{Deserialize, Serialize};

/// The application characteristics BidBrain's formulas need (Table 2).
///
/// * `φ` (phi) — how efficiently the application scales with instances;
///   modelled as a per-instance efficiency decay applied to total work.
/// * `σ` (sigma) — time the application makes no progress after a change
///   to its resource footprint (add or remove).
/// * `λ` (lambda) — time lost when an allocation is evicted.
/// * `ν` (nu) — work produced per instance per unit time, proportional to
///   the instance's virtual core count (footnote 7); BidBrain takes ν
///   directly from the instance catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppParams {
    /// First-order scalability coefficient: each doubling of core count
    /// retains this fraction of per-core efficiency. 1.0 = perfect
    /// scaling. AgileML measures ≈0.95–0.99 (Sec. 6.5 shows near-ideal
    /// strong scaling).
    pub phi_per_doubling: f64,
    /// Overhead of adding/removing resources (paper σ).
    pub sigma: SimDuration,
    /// Overhead of an eviction (paper λ).
    pub lambda: SimDuration,
}

impl Default for AppParams {
    fn default() -> Self {
        AppParams {
            phi_per_doubling: 0.97,
            // AgileML incorporates machines in the background (Sec. 6.6):
            // σ is small. Evictions cost roughly one iteration blip plus
            // recovery coordination.
            sigma: SimDuration::from_secs(30),
            lambda: SimDuration::from_secs(90),
        }
    }
}

impl AppParams {
    /// Parameters for a checkpoint/restart application (the baseline
    /// scheme): evictions force a restart from the last checkpoint, so λ
    /// is many minutes, and any footprint change requires a restart too.
    pub fn checkpointing(restart_cost: SimDuration) -> Self {
        AppParams {
            phi_per_doubling: 0.97,
            sigma: restart_cost,
            lambda: restart_cost,
        }
    }

    /// The scaling efficiency φ for a footprint of `cores` total cores,
    /// relative to a single instance: `phi_per_doubling ^ log2(cores)`,
    /// clamped to (0, 1].
    pub fn phi(&self, cores: f64) -> f64 {
        if cores <= 1.0 {
            return 1.0;
        }
        self.phi_per_doubling.powf(cores.log2()).clamp(0.0, 1.0)
    }

    /// Renders the Table 2 glossary (used by the `tab02_params` bench
    /// binary).
    pub fn table2() -> Vec<(&'static str, &'static str)> {
        vec![
            ("β", "Probability that allocation is evicted (0-1)"),
            ("φ", "How efficiently application scales (0-1)"),
            ("σ", "Overhead of adding/removing resources (min)"),
            ("λ", "Overhead of evicting resource (min)"),
            ("ν", "Work produced by instance type"),
            ("ωi", "Max compute time remaining in allocation i"),
            ("CA", "Expected cost of a set of allocations ($)"),
            ("WA", "Expected work of a set of allocations"),
            ("EA", "Expected cost per work of a set of allocations"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_decays_with_scale() {
        let p = AppParams::default();
        assert_eq!(p.phi(1.0), 1.0);
        assert!(p.phi(8.0) < p.phi(4.0));
        assert!(p.phi(1024.0) > 0.0);
        // ~0.97^log2(64) = 0.97^6 ≈ 0.833.
        assert!((p.phi(64.0) - 0.97f64.powi(6)).abs() < 1e-12);
    }

    #[test]
    fn checkpointing_params_have_heavy_overheads() {
        let cp = AppParams::checkpointing(SimDuration::from_mins(5));
        assert_eq!(cp.lambda, SimDuration::from_mins(5));
        assert_eq!(cp.sigma, SimDuration::from_mins(5));
        assert!(cp.lambda > AppParams::default().lambda);
    }

    #[test]
    fn table2_lists_all_nine_parameters() {
        assert_eq!(AppParams::table2().len(), 9);
    }
}
