//! BidBrain's cost-per-work objective and allocation decisions
//! (Eqs. 1–4 of the paper).

use proteus_market::MarketKey;
use proteus_obs::{BidEvent, Event, Recorder};
use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::beta::BetaEstimator;
use crate::objective::Objective;
use crate::params::AppParams;

/// BidBrain's view of one live or hypothetical allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocView {
    /// Which market the instances belong to.
    pub market: MarketKey,
    /// Instance count `k`.
    pub count: u32,
    /// Price per instance-hour currently being paid (the market price at
    /// the last billing-hour start; the fixed price for on-demand).
    pub hourly_price: f64,
    /// Bid delta above market (`None` for on-demand: never evicted).
    pub bid_delta: Option<f64>,
    /// Time remaining in the current billing hour (the paper's ωᵢ upper
    /// bound).
    pub time_remaining: SimDuration,
    /// Work produced per instance per hour (the paper's ν, usually the
    /// vCPU count). Zero for resources that serve but do not compute
    /// (e.g. on-demand machines hosting only BackupPSs in stage 3 — see
    /// the red allocation in the paper's Fig. 6).
    pub work_rate: f64,
}

impl AllocView {
    /// Convenience constructor for an on-demand allocation.
    pub fn on_demand(market: MarketKey, count: u32, work_rate: f64) -> Self {
        AllocView {
            market,
            count,
            hourly_price: market.instance_type().on_demand_price,
            bid_delta: None,
            time_remaining: SimDuration::from_hours(1),
            work_rate,
        }
    }
}

/// Evaluation of a footprint: Eqs. 1–4 combined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FootprintEval {
    /// Expected cost `C_A` in dollars (Eq. 1 summed).
    pub expected_cost: f64,
    /// Expected work `W_A` in core-hours (Eq. 3).
    pub expected_work: f64,
}

impl FootprintEval {
    /// Expected cost per unit work `E_A = C_A / W_A` (Eq. 4); infinite
    /// when the footprint produces no work.
    pub fn cost_per_work(&self) -> f64 {
        if self.expected_work <= 0.0 {
            f64::INFINITY
        } else {
            self.expected_cost / self.expected_work
        }
    }
}

/// An acquisition decision: buy `count` instances in `market` at `bid`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationRequest {
    /// Target market.
    pub market: MarketKey,
    /// Instances to request.
    pub count: u32,
    /// Absolute bid price per instance-hour.
    pub bid: f64,
    /// The delta over the market price the bid encodes.
    pub delta: f64,
}

/// Tuning knobs for the decision policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidBrainConfig {
    /// Total vCPU budget BidBrain provisions toward.
    pub target_cores: u32,
    /// Maximum instances per single allocation request.
    pub max_alloc_instances: u32,
    /// Candidate bid deltas to sweep at each decision point.
    pub bid_deltas: Vec<f64>,
    /// Required relative improvement in cost-per-work before acting
    /// (hysteresis against churning on noise).
    pub min_improvement: f64,
    /// How candidate footprints are ranked (cost-per-work by default;
    /// see [`Objective`] for the deadline-oriented alternative).
    pub objective: Objective,
}

impl Default for BidBrainConfig {
    fn default() -> Self {
        BidBrainConfig {
            target_cores: 256,
            max_alloc_instances: 64,
            bid_deltas: crate::beta::BetaEstimator::default_deltas(),
            min_improvement: 0.02,
            objective: Objective::CostPerWork,
        }
    }
}

/// The allocation policy engine.
///
/// The β estimator is held as a [`Cow`](std::borrow::Cow): pass a
/// `&BetaEstimator` to share one trained estimator across many engines
/// (a cost study runs thousands of jobs against the same training
/// window) or an owned estimator for a self-contained engine.
#[derive(Debug, Clone)]
pub struct BidBrain<'a> {
    params: AppParams,
    beta: std::borrow::Cow<'a, BetaEstimator>,
    config: BidBrainConfig,
}

impl<'a> BidBrain<'a> {
    /// Creates a policy engine from application parameters, a trained β
    /// estimator (owned or borrowed), and tuning configuration.
    pub fn new(
        params: AppParams,
        beta: impl Into<std::borrow::Cow<'a, BetaEstimator>>,
        config: BidBrainConfig,
    ) -> Self {
        BidBrain {
            params,
            beta: beta.into(),
            config,
        }
    }

    /// The application parameters in use.
    pub fn params(&self) -> &AppParams {
        &self.params
    }

    /// The β estimator in use.
    pub fn beta_estimator(&self) -> &BetaEstimator {
        &self.beta
    }

    /// The configuration in use.
    pub fn config(&self) -> &BidBrainConfig {
        &self.config
    }

    /// β for one allocation view.
    fn beta_of(&self, a: &AllocView) -> f64 {
        match a.bid_delta {
            None => 0.0,
            Some(delta) => self.beta.beta(a.market, delta),
        }
    }

    /// Evaluates a footprint (Eqs. 1–3).
    ///
    /// `changing` applies the σ reconfiguration overhead to every
    /// allocation, per the paper: "when considering removing or adding
    /// resources, BidBrain subtracts this overhead σ from the expected
    /// compute time for each allocation".
    pub fn evaluate(&self, footprint: &[AllocView], changing: bool) -> FootprintEval {
        if footprint.is_empty() {
            return FootprintEval {
                expected_cost: 0.0,
                expected_work: 0.0,
            };
        }
        // Group eviction probability: 1 − Π(1 − βj).
        let survive_all: f64 = footprint.iter().map(|a| 1.0 - self.beta_of(a)).product();
        let p_any_eviction = 1.0 - survive_all;

        let mut cost = 0.0;
        let mut raw_work = 0.0;
        let mut total_cores = 0.0;
        for a in footprint {
            let beta = self.beta_of(a);
            let tr = a.time_remaining.as_hours_f64();
            // Eq. 1: evicted hours are refunded, so only the survival
            // branch costs money.
            cost += (1.0 - beta) * a.hourly_price * f64::from(a.count) * tr;

            // ωᵢ: expected useful time, shortened to the median eviction
            // time when eviction is the likely outcome.
            let tte = match a.bid_delta {
                None => a.time_remaining,
                Some(delta) => self.beta.median_tte(a.market, delta).min(a.time_remaining),
            };
            let omega = (1.0 - beta) * tr + beta * tte.as_hours_f64();

            // Eq. 2: Δtᵢ = ωᵢ − P(any eviction)·λ − σ.
            let mut dt = omega - p_any_eviction * self.params.lambda.as_hours_f64();
            if changing {
                dt -= self.params.sigma.as_hours_f64();
            }
            let dt = dt.max(0.0);

            raw_work += f64::from(a.count) * dt * a.work_rate;
            total_cores += f64::from(a.count) * f64::from(a.market.instance_type().vcpus);
        }
        // Eq. 3: scale by the application's scalability coefficient φ.
        let phi = self.params.phi(total_cores);
        FootprintEval {
            expected_cost: cost,
            expected_work: raw_work * phi,
        }
    }

    /// Total vCPUs in a footprint.
    pub fn footprint_cores(footprint: &[AllocView]) -> u32 {
        footprint
            .iter()
            .map(|a| a.count * a.market.instance_type().vcpus)
            .sum()
    }

    /// Considers acquiring one new allocation (paper Sec. 4.2): sweeps
    /// `(instance type, bid delta)` candidates and returns the best
    /// request if it lowers expected cost-per-work by at least the
    /// configured hysteresis margin.
    ///
    /// `markets` supplies each candidate market's *current* spot price.
    pub fn consider_acquisition(
        &self,
        footprint: &[AllocView],
        markets: &[(MarketKey, f64)],
        now: SimTime,
    ) -> Option<AllocationRequest> {
        self.ranked_acquisitions(footprint, markets, now)
            .into_iter()
            .next()
    }

    /// Every acquisition that would improve the objective by the
    /// configured margin, best first — at most one candidate (the best
    /// bid delta) per market.
    ///
    /// The head of the list is exactly what [`consider_acquisition`]
    /// returns; the tail ranks the fallback markets a resilient caller
    /// walks when the best market refuses the request (capacity
    /// droughts), so a refusal never strands the driver with no plan.
    ///
    /// [`consider_acquisition`]: BidBrain::consider_acquisition
    pub fn ranked_acquisitions(
        &self,
        footprint: &[AllocView],
        markets: &[(MarketKey, f64)],
        now: SimTime,
    ) -> Vec<AllocationRequest> {
        self.ranked_acquisitions_obs(footprint, markets, now, None)
    }

    /// [`ranked_acquisitions`](BidBrain::ranked_acquisitions) with an
    /// optional recorder: each post-gate candidate is logged with the
    /// Eq. 4 terms (expected cost, expected work) that produced its
    /// score, stamped `now` — the "what did BidBrain decide and why"
    /// trail. Recording never changes the ranking.
    pub fn ranked_acquisitions_obs(
        &self,
        footprint: &[AllocView],
        markets: &[(MarketKey, f64)],
        now: SimTime,
        obs: Option<&Recorder>,
    ) -> Vec<AllocationRequest> {
        let current_cores = Self::footprint_cores(footprint);
        if current_cores >= self.config.target_cores {
            return Vec::new();
        }
        let current_score = self
            .config
            .objective
            .score(&self.evaluate(footprint, false));

        let mut ranked: Vec<(f64, AllocationRequest, FootprintEval)> = Vec::new();
        // One reusable footprint+candidate buffer for the whole
        // (market × delta) sweep: only the last slot changes per
        // candidate, so the footprint prefix is copied once, not once
        // per candidate.
        let mut with: Vec<AllocView> = Vec::with_capacity(footprint.len() + 1);
        with.extend_from_slice(footprint);
        for &(market, price) in markets {
            let vcpus = market.instance_type().vcpus;
            let headroom = (self.config.target_cores - current_cores) / vcpus;
            let count = headroom.min(self.config.max_alloc_instances);
            if count == 0 {
                continue;
            }
            let mut best: Option<(f64, AllocationRequest, FootprintEval)> = None;
            for &delta in &self.config.bid_deltas {
                let candidate = AllocView {
                    market,
                    count,
                    hourly_price: price,
                    bid_delta: Some(delta),
                    time_remaining: SimDuration::from_hours(1),
                    work_rate: f64::from(vcpus),
                };
                with.truncate(footprint.len());
                with.push(candidate);
                let eval = self.evaluate(&with, true);
                let score = self.config.objective.score(&eval);
                if best.as_ref().is_none_or(|(b, _, _)| score < *b) {
                    best = Some((
                        score,
                        AllocationRequest {
                            market,
                            count,
                            bid: price + delta,
                            delta,
                        },
                        eval,
                    ));
                }
            }
            // The improvement gate is monotone in the score, so
            // filtering per candidate is equivalent to gating only the
            // global best (as the single-result path did).
            if let Some((score, req, eval)) = best {
                if self
                    .config
                    .objective
                    .improves(score, current_score, self.config.min_improvement)
                {
                    ranked.push((score, req, eval));
                }
            }
        }
        // Stable sort: equal scores keep market order, matching the
        // strict-< first-wins tie-break of the single-result sweep.
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        if let Some(rec) = obs {
            rec.record(
                now,
                Event::Bid(BidEvent::Evaluated {
                    markets: markets.len() as u64,
                    candidates: ranked.len() as u64,
                    current_score,
                }),
            );
            for (rank, (score, req, eval)) in ranked.iter().enumerate() {
                rec.record(
                    now,
                    Event::Bid(BidEvent::CandidateRanked {
                        rank: rank as u64,
                        market: req.market.interned_name(),
                        count: u64::from(req.count),
                        bid: req.bid,
                        delta: req.delta,
                        score: *score,
                        expected_cost: eval.expected_cost,
                        expected_work: eval.expected_work,
                    }),
                );
            }
        }
        ranked.into_iter().map(|(_, req, _)| req).collect()
    }

    /// Decides, just before an allocation's billing hour ends, whether to
    /// renew it (keep it into the next hour at `renew_price`) or
    /// terminate it (Sec. 4.2).
    ///
    /// `rest` is the footprint excluding the allocation in question.
    pub fn should_renew(&self, alloc: &AllocView, rest: &[AllocView], renew_price: f64) -> bool {
        if alloc.bid_delta.is_none() {
            // On-demand resources are never terminated by BidBrain.
            return true;
        }
        let renewed = AllocView {
            hourly_price: renew_price,
            time_remaining: SimDuration::from_hours(1),
            ..alloc.clone()
        };
        let mut with: Vec<AllocView> = rest.to_vec();
        with.push(renewed);
        let ea_with = self.evaluate(&with, false).cost_per_work();
        let ea_without = self.evaluate(rest, true).cost_per_work();
        ea_with <= ea_without
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_market::instance::{catalog, Zone};
    use proteus_simtime::SimDuration;

    fn mk(type_index: usize) -> MarketKey {
        MarketKey::new(type_index, Zone(0))
    }

    /// A BidBrain with no overheads and perfect scaling, so Eq. 1–4
    /// arithmetic can be checked by hand.
    fn ideal() -> BidBrain<'static> {
        BidBrain::new(
            AppParams {
                phi_per_doubling: 1.0,
                sigma: SimDuration::ZERO,
                lambda: SimDuration::ZERO,
            },
            BetaEstimator::new(),
            BidBrainConfig {
                target_cores: 64,
                max_alloc_instances: 8,
                bid_deltas: vec![0.4],
                min_improvement: 0.0,
                objective: Objective::CostPerWork,
            },
        )
    }

    /// Reproduces the toy arithmetic of the paper's Fig. 6, phases 1–2
    /// (β = 0 because the estimator is untrained → on-demand β is zero
    /// and we pin spot β to zero by using delta-free on-demand views plus
    /// manual spot views with huge deltas… instead we use an ideal brain
    /// and β=0 via `bid_delta: None` + explicit prices).
    #[test]
    fn fig6_toy_cost_per_work() {
        let brain = ideal();
        // [0]: 1 on-demand c4.xlarge at $0.2, producing no work.
        let od = AllocView {
            market: mk(catalog::c4_xlarge()),
            count: 1,
            hourly_price: 0.2,
            bid_delta: None,
            time_remaining: SimDuration::from_hours(1),
            work_rate: 0.0,
        };
        // [1]: 2 m4.xlarge spot at $0.05 each, ν = 1 work/hour.
        let spot1 = AllocView {
            market: mk(catalog::find("m4.xlarge").unwrap()),
            count: 2,
            hourly_price: 0.05,
            bid_delta: None, // β pinned to 0 for hand arithmetic.
            time_remaining: SimDuration::from_hours(1),
            work_rate: 1.0,
        };
        // Phase 1: cost 0.2 + 2×0.05 = 0.3, work 2 → E = 0.15.
        let p1 = brain.evaluate(&[od.clone(), spot1.clone()], false);
        assert!((p1.expected_cost - 0.3).abs() < 1e-9);
        assert!((p1.expected_work - 2.0).abs() < 1e-9);
        assert!((p1.cost_per_work() - 0.15).abs() < 1e-9);

        // Phase 2 adds [2]: 2 c4.xlarge spot at $0.025 each → cost 0.35,
        // work 4 → E = 0.0875 — adding the allocation *lowers* E even
        // though it raises instantaneous cost (the Fig. 6 lesson).
        let spot2 = AllocView {
            market: mk(catalog::c4_xlarge()),
            count: 2,
            hourly_price: 0.025,
            bid_delta: None,
            time_remaining: SimDuration::from_hours(1),
            work_rate: 1.0,
        };
        let p2 = brain.evaluate(&[od, spot1, spot2], false);
        assert!((p2.expected_cost - 0.35).abs() < 1e-9);
        assert!((p2.expected_work - 4.0).abs() < 1e-9);
        assert!(p2.cost_per_work() < p1.cost_per_work());
    }

    #[test]
    fn eviction_probability_discounts_cost() {
        // Train a fake β table: delta 0.01 → β=0.5, tte=30 min.
        let mut beta = BetaEstimator::new();
        let market = mk(catalog::c4_xlarge());
        let table = crate::beta::BetaTable::new(vec![crate::beta::BetaPoint {
            delta: 0.01,
            beta: 0.5,
            median_tte: SimDuration::from_mins(30),
        }])
        .unwrap();
        // Inject via train path: easiest is to rebuild estimator.
        let _ = table;
        let trace = proteus_market::PriceTrace::constant(0.05);
        beta.train(
            market,
            &trace,
            SimTime::EPOCH,
            SimTime::from_hours(10),
            SimDuration::from_mins(30),
            &[0.01],
        );
        // Constant trace: never evicted, β=0.
        assert_eq!(beta.beta(market, 0.01), 0.0);

        let brain = BidBrain::new(AppParams::default(), beta, BidBrainConfig::default());
        let spot = AllocView {
            market,
            count: 4,
            hourly_price: 0.05,
            bid_delta: Some(0.01),
            time_remaining: SimDuration::from_hours(1),
            work_rate: 4.0,
        };
        let eval = brain.evaluate(&[spot], false);
        // β=0 → full price expected.
        assert!((eval.expected_cost - 0.2).abs() < 1e-9);
    }

    #[test]
    fn acquisition_fills_toward_target_when_cheap() {
        let brain = ideal();
        let market = mk(catalog::c4_xlarge());
        let req = brain
            .consider_acquisition(&[], &[(market, 0.05)], SimTime::EPOCH)
            .expect("empty footprint produces no work, so anything helps");
        assert_eq!(req.market, market);
        assert!(req.count > 0);
        assert!((req.bid - 0.45).abs() < 1e-9);
    }

    #[test]
    fn acquisition_respects_core_target() {
        let brain = ideal(); // target_cores = 64.
        let market = mk(catalog::c4_2xlarge()); // 8 cores each.
        let full: Vec<AllocView> = vec![AllocView {
            market,
            count: 8, // 64 cores: at target.
            hourly_price: 0.05,
            bid_delta: Some(0.4),
            time_remaining: SimDuration::from_hours(1),
            work_rate: 8.0,
        }];
        assert!(brain
            .consider_acquisition(&full, &[(market, 0.01)], SimTime::EPOCH)
            .is_none());
    }

    #[test]
    fn expensive_markets_are_not_acquired() {
        // Current footprint works cheaply; candidate market is pricier
        // than on-demand — acquisition must be declined.
        let brain = ideal();
        let cheap = AllocView {
            market: mk(catalog::c4_xlarge()),
            count: 8,
            hourly_price: 0.04,
            bid_delta: Some(0.4),
            time_remaining: SimDuration::from_hours(1),
            work_rate: 4.0,
        };
        let pricey_market = mk(catalog::c4_2xlarge());
        let od_price = pricey_market.instance_type().on_demand_price;
        let req = brain.consider_acquisition(
            &[cheap],
            &[(pricey_market, od_price * 3.0)],
            SimTime::EPOCH,
        );
        assert!(
            req.is_none(),
            "3× on-demand spot price must be rejected: {req:?}"
        );
    }

    #[test]
    fn renewal_terminates_overpriced_allocations() {
        let brain = ideal();
        let market = mk(catalog::c4_xlarge());
        let keeper = AllocView {
            market,
            count: 8,
            hourly_price: 0.04,
            bid_delta: Some(0.4),
            time_remaining: SimDuration::from_hours(1),
            work_rate: 4.0,
        };
        let doomed = AllocView {
            market,
            count: 8,
            hourly_price: 0.04,
            bid_delta: Some(0.4),
            time_remaining: SimDuration::from_mins(2),
            work_rate: 4.0,
        };
        // Renewing at a cheap price is fine…
        assert!(brain.should_renew(&doomed, std::slice::from_ref(&keeper), 0.04));
        // …renewing at 20× is not.
        assert!(!brain.should_renew(&doomed, &[keeper], 0.80));
    }

    #[test]
    fn on_demand_is_never_terminated() {
        let brain = ideal();
        let od = AllocView::on_demand(mk(catalog::c4_xlarge()), 3, 0.0);
        // Even at an absurd renewal price, on-demand stays (the paper:
        // BidBrain "does not consider terminating these resources even
        // if they negatively affect cost-per-work").
        assert!(brain.should_renew(&od, &[], 99.0));
    }

    #[test]
    fn sigma_penalizes_churn() {
        let params = AppParams {
            phi_per_doubling: 1.0,
            sigma: SimDuration::from_mins(30),
            lambda: SimDuration::ZERO,
        };
        let brain = BidBrain::new(params, BetaEstimator::new(), BidBrainConfig::default());
        let spot = AllocView {
            market: mk(catalog::c4_xlarge()),
            count: 4,
            hourly_price: 0.05,
            bid_delta: None,
            time_remaining: SimDuration::from_hours(1),
            work_rate: 4.0,
        };
        let steady = brain.evaluate(std::slice::from_ref(&spot), false);
        let changing = brain.evaluate(std::slice::from_ref(&spot), true);
        assert!(
            changing.expected_work < steady.expected_work,
            "σ must reduce expected work during reconfiguration"
        );
        // Half an hour of a one-hour window.
        assert!((changing.expected_work - steady.expected_work * 0.5).abs() < 1e-9);
    }

    #[test]
    fn phi_penalizes_large_footprints() {
        let params = AppParams {
            phi_per_doubling: 0.9,
            sigma: SimDuration::ZERO,
            lambda: SimDuration::ZERO,
        };
        let brain = BidBrain::new(params, BetaEstimator::new(), BidBrainConfig::default());
        let unit = |count: u32| AllocView {
            market: mk(catalog::c4_xlarge()),
            count,
            hourly_price: 0.05,
            bid_delta: None,
            time_remaining: SimDuration::from_hours(1),
            work_rate: 4.0,
        };
        let small = brain.evaluate(&[unit(2)], false);
        let large = brain.evaluate(&[unit(8)], false);
        // 4× the instances yields < 4× the work.
        assert!(large.expected_work < small.expected_work * 4.0);
        assert!(large.expected_work > small.expected_work * 2.0);
    }
}
