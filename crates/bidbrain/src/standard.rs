//! The standard bidding strategy baseline (paper Sec. 6.3).
//!
//! "An oft-used bidding strategy that selects the resource type with the
//! lowest current market price and bids the on-demand price. It uses
//! these resources until they are evicted, at which point it again
//! selects the resources with the lowest current market price and bids
//! the on-demand price." This is the default policy of EC2 Spot Fleet
//! and what Flint-style systems use; Proteus is evaluated against it.

use proteus_market::MarketKey;
use serde::{Deserialize, Serialize};

use crate::policy::AllocationRequest;

/// The standard strategy: cheapest market per core, bid = on-demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StandardStrategy {
    /// Total vCPUs to (re-)acquire whenever holdings are empty.
    pub target_cores: u32,
}

impl StandardStrategy {
    /// Creates the strategy for a core budget.
    pub fn new(target_cores: u32) -> Self {
        StandardStrategy { target_cores }
    }

    /// Picks the market with the lowest current price **per core** and
    /// bids the on-demand price for enough instances to fill the budget.
    ///
    /// Returns `None` when no market is offered or the budget is zero.
    pub fn acquire(&self, markets: &[(MarketKey, f64)]) -> Option<AllocationRequest> {
        if self.target_cores == 0 {
            return None;
        }
        // Prices come from traces, which reject non-finite points at
        // construction; vcpus is a non-zero hardware constant.
        #[allow(clippy::expect_used)]
        let (market, price) = markets
            .iter()
            .min_by(|(ma, pa), (mb, pb)| {
                let ca = pa / f64::from(ma.instance_type().vcpus);
                let cb = pb / f64::from(mb.instance_type().vcpus);
                ca.partial_cmp(&cb).expect("prices are finite")
            })
            .copied()?;
        let vcpus = market.instance_type().vcpus;
        let count = (self.target_cores / vcpus).max(1);
        let od = market.instance_type().on_demand_price;
        Some(AllocationRequest {
            market,
            count,
            bid: od,
            delta: od - price,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_market::instance::{catalog, Zone};

    fn mk(i: usize, z: u8) -> MarketKey {
        MarketKey::new(i, Zone(z))
    }

    #[test]
    fn picks_cheapest_per_core_market() {
        let s = StandardStrategy::new(64);
        // c4.xlarge (4 cores) at 0.05 → 0.0125/core;
        // c4.2xlarge (8 cores) at 0.08 → 0.01/core (cheaper per core).
        let req = s
            .acquire(&[
                (mk(catalog::c4_xlarge(), 0), 0.05),
                (mk(catalog::c4_2xlarge(), 1), 0.08),
            ])
            .expect("markets offered");
        assert_eq!(req.market, mk(catalog::c4_2xlarge(), 1));
        assert_eq!(req.count, 8); // 64 cores / 8 per instance.
        let od = req.market.instance_type().on_demand_price;
        assert!((req.bid - od).abs() < 1e-12, "bids the on-demand price");
    }

    #[test]
    fn empty_market_list_yields_nothing() {
        assert!(StandardStrategy::new(64).acquire(&[]).is_none());
        assert!(StandardStrategy::new(0)
            .acquire(&[(mk(0, 0), 0.05)])
            .is_none());
    }

    #[test]
    fn small_budgets_still_get_one_instance() {
        let s = StandardStrategy::new(2); // Less than one c4.xlarge.
        let req = s.acquire(&[(mk(catalog::c4_xlarge(), 0), 0.05)]).unwrap();
        assert_eq!(req.count, 1);
    }
}
