//! Property-based passivity invariant for the preemption forecaster: a
//! forecaster watching a provider's price stream is read-only on the
//! billing plane. Whatever it concludes — alerts, false alarms, nothing
//! — the watched provider's ledger must be bit-identical to an
//! unwatched twin driven through the same request loop. This is the
//! market-plane half of the eviction-defense contract; the session- and
//! training-plane halves live in `core/tests/forecast_chaos.rs` and
//! `agileml/tests/predrain.rs`.

use proptest::prelude::*;
use proteus_bidbrain::{ForecastConfig, PreemptionForecaster};
use proteus_market::{
    catalog, CloudProvider, MarketKey, MarketModel, TraceGenerator, TraceSet, Zone,
};
use proteus_simtime::{SimDuration, SimTime};

fn market() -> MarketKey {
    MarketKey::new(catalog::c4_xlarge(), Zone(0))
}

fn provider(seed: u64) -> CloudProvider<'static> {
    let gen = TraceGenerator::new(seed, MarketModel::volatile());
    let mut set = TraceSet::new();
    set.insert(
        market(),
        gen.generate(market(), SimDuration::from_hours(24 * 3)),
    );
    CloudProvider::new(set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Drive two identical providers through the same hourly request
    /// loop; feed every price sample of one into a forecaster with
    /// arbitrary (valid) tuning. Alert or no alert, the bills, ledgers,
    /// and usage breakdowns must match exactly.
    #[test]
    fn forecasting_never_bends_the_ledger(
        trace_seed in 0u64..200,
        count in 1u32..6,
        delta in 0.001f64..0.3,
        hold_hours in 2u64..14,
        alert_threshold in 0.31f64..0.9,
        margin_band in 0.05f64..0.5,
    ) {
        let cfg = ForecastConfig {
            alert_threshold,
            rearm_threshold: 0.3,
            margin_band,
            ..ForecastConfig::default()
        };
        prop_assert!(cfg.validate().is_ok(), "generated config invalid");
        let mut fc = PreemptionForecaster::new(cfg);

        let mut watched = provider(trace_seed);
        let mut plain = provider(trace_seed);
        for h in 0..hold_hours {
            let now = SimTime::from_hours(h);
            let price = watched.spot_price(market()).expect("trace covers");
            let bid = price + delta;
            for a in watched.spot_allocations() {
                prop_assert!((0.0..=1.0).contains(&fc.hazard(a.market, a.bid)));
                // Alerts may or may not fire; neither matters below.
                let _ = fc.observe(a.market, a.bid, now, price);
            }
            let _ = watched.request_spot(market(), count, bid);
            let _ = plain.request_spot(market(), count, bid);
            watched.advance_to(SimTime::from_hours(h + 1)).expect("forward");
            plain.advance_to(SimTime::from_hours(h + 1)).expect("forward");
        }
        prop_assert_eq!(
            watched.account().total_cost().to_bits(),
            plain.account().total_cost().to_bits(),
            "observation changed the bill"
        );
        prop_assert_eq!(
            watched.account().entries().len(),
            plain.account().entries().len(),
            "observation changed the ledger"
        );
        prop_assert_eq!(
            watched.account().usage(), plain.account().usage(),
            "observation changed usage accounting"
        );
    }
}
