//! Integration tests for the alternative-objective extension
//! (Sec. 4.3): the same policy engine serving batch and deadline-driven
//! jobs.

use proteus_bidbrain::{AllocView, AppParams, BetaEstimator, BidBrain, BidBrainConfig, Objective};
use proteus_market::{catalog, MarketKey, Zone};
use proteus_simtime::{SimDuration, SimTime};

fn market() -> MarketKey {
    MarketKey::new(catalog::c4_xlarge(), Zone(0))
}

fn brain(objective: Objective, target_cores: u32) -> BidBrain<'static> {
    BidBrain::new(
        AppParams {
            phi_per_doubling: 1.0,
            sigma: SimDuration::ZERO,
            lambda: SimDuration::ZERO,
        },
        BetaEstimator::new(),
        BidBrainConfig {
            target_cores,
            max_alloc_instances: 8,
            bid_deltas: vec![0.4],
            min_improvement: 0.02,
            objective,
        },
    )
}

fn holding(count: u32, price: f64) -> AllocView {
    AllocView {
        market: market(),
        count,
        hourly_price: price,
        bid_delta: None, // β pinned to zero for deterministic arithmetic.
        time_remaining: SimDuration::from_hours(1),
        work_rate: 4.0,
    }
}

#[test]
fn throughput_objective_buys_up_to_the_budget() {
    // $2/h budget; instances at $0.05/h. 8-instance chunks cost $0.40/h
    // and add work, so acquisition should proceed while affordable.
    let b = brain(
        Objective::ThroughputUnderBudget {
            max_dollars_per_hour: 2.0,
        },
        512,
    );
    let req = b
        .consider_acquisition(&[holding(8, 0.05)], &[(market(), 0.05)], SimTime::EPOCH)
        .expect("budget allows more capacity");
    assert!(req.count > 0);
}

#[test]
fn throughput_objective_stops_at_the_budget() {
    // Holdings already spend ~$1.9/h; adding 8 × $0.05 = $0.40 would
    // cross the $2/h cap, so the objective must refuse.
    let b = brain(
        Objective::ThroughputUnderBudget {
            max_dollars_per_hour: 2.0,
        },
        4096,
    );
    let footprint = [holding(38, 0.05)]; // $1.90/h.
    assert!(b
        .consider_acquisition(&footprint, &[(market(), 0.05)], SimTime::EPOCH)
        .is_none());
}

#[test]
fn objectives_disagree_when_capacity_is_pricey() {
    // Spot near the on-demand price: cost-per-work refuses to dilute a
    // cheap footprint, but a deadline-driven job under budget still
    // buys the throughput.
    let pricey = market().instance_type().on_demand_price * 0.95;
    let footprint = [holding(8, 0.02)];
    let markets = [(market(), pricey)];

    let batch = brain(Objective::CostPerWork, 512);
    assert!(
        batch
            .consider_acquisition(&footprint, &markets, SimTime::EPOCH)
            .is_none(),
        "cost-per-work declines expensive capacity"
    );

    let deadline = brain(
        Objective::ThroughputUnderBudget {
            max_dollars_per_hour: 50.0,
        },
        512,
    );
    assert!(
        deadline
            .consider_acquisition(&footprint, &markets, SimTime::EPOCH)
            .is_some(),
        "a deadline job under budget takes the throughput anyway"
    );
}
