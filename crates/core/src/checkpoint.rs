//! Durable model checkpoints for session-level restart.
//!
//! The paper's Sec. 3.3 checkpoints to reliable storage so that losing
//! *everything* — the whole reliable tier, controller included — costs
//! only the work since the last snapshot. This module is that storage:
//! a [`CheckpointStore`] holds the latest snapshot in the serialized
//! `PSNP` wire format (see [`proteus_ps::snapshot`]) together with the
//! progress metadata a relaunched job needs to resume.
//!
//! Serializing through `encode_model`/`decode_model` (rather than
//! keeping the live `BTreeMap`) is deliberate: the round-trip is
//! bit-exact, and it proves the stored artifact is self-contained — the
//! restart path exercises exactly the bytes a real deployment would
//! read back off durable media.

use proteus_agileml::{ModelSnapshot, Stage};
use proteus_ps::snapshot::{decode_model, encode_model, SnapshotError};
use proteus_simtime::SimTime;

/// One durable checkpoint: the encoded model plus resume metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableCheckpoint {
    /// The model in `PSNP` wire format.
    bytes: Vec<u8>,
    /// Minimum worker clock at snapshot time — the progress floor a
    /// restart resumes from.
    pub clock: u64,
    /// Recovery epoch at snapshot time.
    pub epoch: u64,
    /// Elasticity stage at snapshot time (informational).
    pub stage: Stage,
    /// Simulated market time the snapshot was taken.
    pub taken_at: SimTime,
}

impl DurableCheckpoint {
    /// Size of the encoded model in bytes (what the obs event reports).
    pub fn size_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }
}

/// Holds the most recent durable checkpoint, if any.
///
/// A single slot suffices: restart always resumes from the *latest*
/// checkpoint, and each save fully supersedes its predecessor.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    slot: Option<DurableCheckpoint>,
}

impl CheckpointStore {
    /// An empty store (no checkpoint taken yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes `snap` into the slot, superseding any prior
    /// checkpoint. Returns the encoded size in bytes.
    pub fn save(&mut self, snap: &ModelSnapshot, taken_at: SimTime) -> u64 {
        let bytes = encode_model(&snap.params);
        let size = bytes.len() as u64;
        self.slot = Some(DurableCheckpoint {
            bytes,
            clock: snap.clock,
            epoch: snap.epoch,
            stage: snap.stage,
            taken_at,
        });
        size
    }

    /// The latest checkpoint's metadata, if one exists.
    pub fn latest(&self) -> Option<&DurableCheckpoint> {
        self.slot.as_ref()
    }

    /// Decodes the latest checkpoint back into a [`ModelSnapshot`].
    /// `Ok(None)` when no checkpoint has been taken yet.
    pub fn restore(&self) -> Result<Option<ModelSnapshot>, SnapshotError> {
        let Some(c) = &self.slot else {
            return Ok(None);
        };
        let params = decode_model(&c.bytes)?;
        Ok(Some(ModelSnapshot {
            params,
            clock: c.clock,
            epoch: c.epoch,
            stage: c.stage,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_ps::{DenseVec, ParamKey};
    use std::collections::BTreeMap;

    fn snap(clock: u64) -> ModelSnapshot {
        let mut params = BTreeMap::new();
        params.insert(ParamKey(3), DenseVec::from(vec![1.5, -2.25]));
        params.insert(ParamKey(9), DenseVec::from(vec![0.0, 4.0, 8.5]));
        ModelSnapshot {
            params,
            clock,
            epoch: 2,
            stage: Stage::Stage2,
        }
    }

    #[test]
    fn empty_store_restores_nothing() {
        let store = CheckpointStore::new();
        assert!(store.latest().is_none());
        assert_eq!(store.restore().unwrap(), None);
    }

    #[test]
    fn save_restore_roundtrips_model_and_metadata() {
        let mut store = CheckpointStore::new();
        let original = snap(17);
        let bytes = store.save(&original, SimTime::EPOCH);
        assert!(bytes > 0);
        let meta = store.latest().unwrap();
        assert_eq!(meta.clock, 17);
        assert_eq!(meta.epoch, 2);
        assert_eq!(meta.size_bytes(), bytes);
        let restored = store.restore().unwrap().unwrap();
        assert_eq!(restored, original);
    }

    #[test]
    fn save_supersedes_prior_checkpoint() {
        let mut store = CheckpointStore::new();
        store.save(&snap(5), SimTime::EPOCH);
        store.save(&snap(11), SimTime::EPOCH);
        assert_eq!(store.latest().unwrap().clock, 11);
        assert_eq!(store.restore().unwrap().unwrap().clock, 11);
    }
}
