//! Session configuration.

use proteus_agileml::AgileConfig;
use proteus_bidbrain::{AppParams, BidBrainConfig, ForecastConfig};
use proteus_market::{catalog, MarketFaultPlan, MarketKey, MarketModel};
use proteus_simtime::SimDuration;

/// Configuration of a [`Proteus`](crate::Proteus) session.
#[derive(Debug, Clone)]
pub struct ProteusConfig {
    /// Elastic-training configuration (stages, partitions, slack, seed).
    pub agile: AgileConfig,
    /// BidBrain policy tuning (core target, bid deltas, hysteresis).
    pub brain: BidBrainConfig,
    /// Application characteristics BidBrain's formulas use (φ, σ, λ).
    pub params: AppParams,
    /// Reliable (on-demand) machine count, held for the whole job.
    pub reliable_machines: u32,
    /// On-demand anchor market (instance type + zone).
    pub on_demand_market: MarketKey,
    /// Spot markets BidBrain watches and bids in.
    pub spot_markets: Vec<MarketKey>,
    /// Synthetic market statistics for the session's provider.
    pub market_model: MarketModel,
    /// Price-history horizon to synthesize (covers β-training plus the
    /// live run).
    pub market_horizon: SimDuration,
    /// Portion of the history used to train β before the job starts.
    pub beta_training: SimDuration,
    /// Cap on instances a session will hold concurrently (keeps the
    /// threaded cluster laptop-sized; the paper ran up to 192 machines).
    pub max_machines: u32,
    /// Provider-side fault regimes to install (capacity droughts,
    /// throttling, boot delays, infant mortality). `None` — the default
    /// — leaves the market pristine and every trace bit-identical.
    pub market_faults: Option<MarketFaultPlan>,
    /// How long the acquisition loop may go with refusals and no grant
    /// before the watchdog declares it wedged and degrades to the
    /// reliable tier (plus `fallback_on_demand` machines). While
    /// degraded, the spot sweep is re-probed once per window.
    pub watchdog_window: SimDuration,
    /// Extra on-demand machines provisioned when the watchdog degrades,
    /// so forward progress never depends on a drought ending. Zero
    /// disables the fallback (degraded mode then just stops sweeping).
    pub fallback_on_demand: u32,
    /// Base backoff after a market refuses a request (doubles per
    /// consecutive refusal).
    pub backoff_base: SimDuration,
    /// Cap on the per-market backoff delay.
    pub backoff_cap: SimDuration,
    /// Online preemption forecasting: watch held (market, bid) price
    /// trajectories, pre-drain ActivePS state ahead of provider
    /// warnings, and adapt the checkpoint cadence to the forecasted
    /// hazard. `None` — the default — disables the defense entirely and
    /// keeps every session trajectory bit-identical to earlier builds.
    pub forecast: Option<ForecastConfig>,
    /// Modelled wall time one model snapshot takes, the `C` in the
    /// Young's-rule interval `τ* = √(2·C·MTTF)` used by adaptive
    /// checkpointing (only consulted when `forecast` is on).
    pub checkpoint_cost: SimDuration,
    /// Provider warning lead between a bid crossing and the eviction
    /// landing. EC2 gives two minutes, GCE thirty seconds.
    pub warning_lead: SimDuration,
}

impl Default for ProteusConfig {
    fn default() -> Self {
        ProteusConfig {
            agile: AgileConfig {
                partitions: 8,
                data_blocks: 32,
                ..AgileConfig::default()
            },
            brain: BidBrainConfig {
                target_cores: 48,
                max_alloc_instances: 4,
                ..BidBrainConfig::default()
            },
            params: AppParams::default(),
            reliable_machines: 1,
            on_demand_market: MarketKey::new(catalog::c4_xlarge(), proteus_market::Zone(0)),
            spot_markets: catalog::paper_markets(),
            market_model: MarketModel::default(),
            market_horizon: SimDuration::from_hours(24 * 21),
            beta_training: SimDuration::from_hours(24 * 14),
            max_machines: 12,
            market_faults: None,
            watchdog_window: SimDuration::from_mins(20),
            fallback_on_demand: 1,
            backoff_base: SimDuration::from_mins(2),
            backoff_cap: SimDuration::from_mins(30),
            forecast: None,
            checkpoint_cost: SimDuration::from_mins(2),
            warning_lead: proteus_market::EC2_EVICTION_WARNING,
        }
    }
}

impl ProteusConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.agile.validate()?;
        if self.reliable_machines == 0 {
            return Err("Proteus needs at least one reliable machine".into());
        }
        if self.spot_markets.is_empty() {
            return Err("BidBrain needs at least one spot market".into());
        }
        if self.beta_training + SimDuration::from_hours(1) > self.market_horizon {
            return Err("market horizon must extend beyond the β-training window".into());
        }
        if self.max_machines <= self.reliable_machines {
            return Err("max_machines must leave room for transient machines".into());
        }
        if self.watchdog_window < crate::session::STEP {
            return Err("watchdog window must cover at least one decision step".into());
        }
        if self.backoff_base > self.backoff_cap {
            return Err("backoff base must not exceed the backoff cap".into());
        }
        if let Some(fc) = &self.forecast {
            fc.validate()?;
            if self.checkpoint_cost.is_zero() {
                return Err("checkpoint cost must be positive with forecasting on".into());
            }
        }
        if self.warning_lead.is_zero() {
            return Err("warning lead must be positive (EC2 120s, GCE 30s)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ProteusConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ProteusConfig {
            reliable_machines: 0,
            ..ProteusConfig::default()
        };
        assert!(c.validate().is_err());
        c.reliable_machines = 1;
        c.spot_markets.clear();
        assert!(c.validate().is_err());
        c = ProteusConfig {
            beta_training: SimDuration::from_hours(100),
            market_horizon: SimDuration::from_hours(50),
            ..ProteusConfig::default()
        };
        assert!(c.validate().is_err());
        c = ProteusConfig {
            max_machines: 1,
            ..ProteusConfig::default()
        };
        assert!(c.validate().is_err());
        c = ProteusConfig {
            forecast: Some(ForecastConfig {
                rearm_threshold: 0.9,
                ..ForecastConfig::default()
            }),
            ..ProteusConfig::default()
        };
        assert!(c.validate().is_err());
        c = ProteusConfig {
            warning_lead: SimDuration::ZERO,
            ..ProteusConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn forecast_enabled_default_is_valid() {
        let c = ProteusConfig {
            forecast: Some(ForecastConfig::default()),
            ..ProteusConfig::default()
        };
        assert!(c.validate().is_ok());
    }
}
