//! Session configuration.

use proteus_agileml::AgileConfig;
use proteus_bidbrain::{AppParams, BidBrainConfig};
use proteus_market::{catalog, MarketKey, MarketModel};
use proteus_simtime::SimDuration;

/// Configuration of a [`Proteus`](crate::Proteus) session.
#[derive(Debug, Clone)]
pub struct ProteusConfig {
    /// Elastic-training configuration (stages, partitions, slack, seed).
    pub agile: AgileConfig,
    /// BidBrain policy tuning (core target, bid deltas, hysteresis).
    pub brain: BidBrainConfig,
    /// Application characteristics BidBrain's formulas use (φ, σ, λ).
    pub params: AppParams,
    /// Reliable (on-demand) machine count, held for the whole job.
    pub reliable_machines: u32,
    /// On-demand anchor market (instance type + zone).
    pub on_demand_market: MarketKey,
    /// Spot markets BidBrain watches and bids in.
    pub spot_markets: Vec<MarketKey>,
    /// Synthetic market statistics for the session's provider.
    pub market_model: MarketModel,
    /// Price-history horizon to synthesize (covers β-training plus the
    /// live run).
    pub market_horizon: SimDuration,
    /// Portion of the history used to train β before the job starts.
    pub beta_training: SimDuration,
    /// Cap on instances a session will hold concurrently (keeps the
    /// threaded cluster laptop-sized; the paper ran up to 192 machines).
    pub max_machines: u32,
}

impl Default for ProteusConfig {
    fn default() -> Self {
        ProteusConfig {
            agile: AgileConfig {
                partitions: 8,
                data_blocks: 32,
                ..AgileConfig::default()
            },
            brain: BidBrainConfig {
                target_cores: 48,
                max_alloc_instances: 4,
                ..BidBrainConfig::default()
            },
            params: AppParams::default(),
            reliable_machines: 1,
            on_demand_market: MarketKey::new(catalog::c4_xlarge(), proteus_market::Zone(0)),
            spot_markets: catalog::paper_markets(),
            market_model: MarketModel::default(),
            market_horizon: SimDuration::from_hours(24 * 21),
            beta_training: SimDuration::from_hours(24 * 14),
            max_machines: 12,
        }
    }
}

impl ProteusConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.agile.validate()?;
        if self.reliable_machines == 0 {
            return Err("Proteus needs at least one reliable machine".into());
        }
        if self.spot_markets.is_empty() {
            return Err("BidBrain needs at least one spot market".into());
        }
        if self.beta_training + SimDuration::from_hours(1) > self.market_horizon {
            return Err("market horizon must extend beyond the β-training window".into());
        }
        if self.max_machines <= self.reliable_machines {
            return Err("max_machines must leave room for transient machines".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ProteusConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ProteusConfig {
            reliable_machines: 0,
            ..ProteusConfig::default()
        };
        assert!(c.validate().is_err());
        c.reliable_machines = 1;
        c.spot_markets.clear();
        assert!(c.validate().is_err());
        c = ProteusConfig {
            beta_training: SimDuration::from_hours(100),
            market_horizon: SimDuration::from_hours(50),
            ..ProteusConfig::default()
        };
        assert!(c.validate().is_err());
        c = ProteusConfig {
            max_machines: 1,
            ..ProteusConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
