//! Typed failures for the session-facing API.
//!
//! Every driver method on [`Proteus`](crate::Proteus) returns a
//! [`ProteusError`] instead of a bare `String`, so callers (and the
//! market-chaos harness) can distinguish a market-side refusal from a
//! training-job fault and react in kind. Each variant's `Display`
//! renders exactly what the former string said, so example and bench
//! output is unchanged.

use std::fmt;

use proteus_agileml::JobError;
use proteus_market::MarketError;
use proteus_ps::SnapshotError;

/// An error surfaced by a [`Proteus`](crate::Proteus) session.
#[derive(Debug, Clone, PartialEq)]
pub enum ProteusError {
    /// Configuration was rejected before launch.
    Config(String),
    /// The simulated provider refused an operation.
    Market(MarketError),
    /// The elastic training job failed or became unrecoverable.
    Job(JobError),
    /// A durable checkpoint could not be decoded during restart.
    Checkpoint(SnapshotError),
}

impl fmt::Display for ProteusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProteusError::Config(why) => write!(f, "{why}"),
            ProteusError::Market(e) => write!(f, "{e}"),
            ProteusError::Job(e) => write!(f, "{e}"),
            ProteusError::Checkpoint(e) => write!(f, "checkpoint restore failed: {e}"),
        }
    }
}

impl std::error::Error for ProteusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProteusError::Config(_) => None,
            ProteusError::Market(e) => Some(e),
            ProteusError::Job(e) => Some(e),
            ProteusError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for ProteusError {
    fn from(e: SnapshotError) -> Self {
        ProteusError::Checkpoint(e)
    }
}

impl From<MarketError> for ProteusError {
    fn from(e: MarketError) -> Self {
        ProteusError::Market(e)
    }
}

impl From<JobError> for ProteusError {
    fn from(e: JobError) -> Self {
        ProteusError::Job(e)
    }
}

impl From<String> for ProteusError {
    fn from(why: String) -> Self {
        ProteusError::Config(why)
    }
}

/// Lets callers that still traffic in `Result<_, String>` propagate a
/// [`ProteusError`] with `?`.
impl From<ProteusError> for String {
    fn from(e: ProteusError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_simtime::SimDuration;

    #[test]
    fn display_is_transparent() {
        let cfg = ProteusError::Config("max_machines must leave room".into());
        assert_eq!(cfg.to_string(), "max_machines must leave room");
        let market = ProteusError::from(MarketError::RequestLimitExceeded {
            retry_after: SimDuration::from_secs(30),
        });
        assert_eq!(
            market.to_string(),
            "request limit exceeded; retry after 30s"
        );
        let job = ProteusError::from(JobError::Timeout {
            waiting_for: "clock",
        });
        assert_eq!(job.to_string(), "timed out waiting for clock");
    }

    #[test]
    fn source_chains_to_the_wrapped_error() {
        use std::error::Error;
        let e = ProteusError::from(MarketError::EmptyRequest);
        assert!(e.source().is_some());
        assert!(ProteusError::Config("x".into()).source().is_none());
    }
}
