//! # Proteus
//!
//! A reproduction of *Proteus: agile ML elasticity through tiered
//! reliability in dynamic resource markets* (EuroSys 2017).
//!
//! Proteus trains ML models faster and cheaper by aggressively exploiting
//! cheap, revocable **transient** machines (EC2 spot instances) alongside
//! a small **reliable** tier (on-demand instances). It combines:
//!
//! * [`proteus_agileml`] — **AgileML**, an elastic parameter-server
//!   framework with three stages of functionality partitioning over
//!   reliability tiers: solution state always survives on reliable
//!   machines while transient machines carry the compute and (at high
//!   ratios) the active parameter serving;
//! * [`proteus_bidbrain`] — **BidBrain**, a resource-allocation policy
//!   that minimizes expected cost per unit work across multiple spot
//!   markets, pricing in eviction probabilities and free-compute
//!   refunds.
//!
//! This crate is the facade (the paper's Sec. 5 architecture): the
//! [`Proteus`] session wires BidBrain's decisions to a simulated cloud
//! provider and forwards grants, eviction warnings, and revocations to
//! AgileML's elasticity controller, while a *real* distributed training
//! job (threads + message passing) runs under the churn.
//!
//! ## Quickstart
//!
//! ```no_run
//! use proteus::{Proteus, ProteusConfig};
//! use proteus_mlapps::data::{netflix_like, MfDataConfig};
//! use proteus_mlapps::mf::{MatrixFactorization, MfConfig};
//!
//! let data = netflix_like(&MfDataConfig::default(), 42);
//! let app = MatrixFactorization::new(MfConfig::default());
//! let mut session = Proteus::launch(app, data, ProteusConfig::default()).unwrap();
//! session.run_market_hours(2.0).unwrap();
//! let report = session.finish().unwrap();
//! println!("cost ${:.2}, objective {:.4}", report.cost, report.final_objective);
//! ```

// Fault- and refusal-reachable paths must return typed errors; any
// retained `expect` must document a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod report;
pub mod session;

pub use checkpoint::CheckpointStore;
pub use config::ProteusConfig;
pub use error::ProteusError;
pub use report::ProteusReport;
pub use session::{Proteus, ReliableRecovery};

// Re-export the component crates under their paper names.
pub use proteus_agileml as agileml;
pub use proteus_bidbrain as bidbrain;
pub use proteus_costsim as costsim;
pub use proteus_market as market;
pub use proteus_mlapps as mlapps;
pub use proteus_obs as obs;
pub use proteus_perfmodel as perfmodel;
pub use proteus_ps as ps;
pub use proteus_simnet as simnet;
pub use proteus_simtime as simtime;
