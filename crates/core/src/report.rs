//! End-of-session reporting.

use proteus_market::UsageBreakdown;
use proteus_simtime::SimDuration;
use serde::{Deserialize, Serialize};

/// What a finished [`Proteus`](crate::Proteus) session spent and
/// achieved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProteusReport {
    /// Net dollars billed (hour charges minus eviction refunds).
    pub cost: f64,
    /// Simulated market time the session spanned.
    pub market_time: SimDuration,
    /// Machine-hour breakdown (on-demand / paid spot / free).
    pub usage: UsageBreakdown,
    /// Spot evictions weathered.
    pub evictions: u32,
    /// Spot allocations acquired.
    pub allocations: u32,
    /// Training iterations (global clocks) completed.
    pub clocks: u64,
    /// Final training objective over the full dataset (lower is better).
    pub final_objective: f64,
    /// Spot requests refused for lack of capacity (fault regimes only).
    pub refusals: u32,
    /// Spot requests rejected by provider-API throttling.
    pub throttles: u32,
    /// Spot grants that delivered fewer instances than requested.
    pub partial_grants: u32,
    /// Total time the watchdog kept the loop degraded to reliable-only.
    pub degraded_time: SimDuration,
    /// On-demand machines provisioned as degraded-mode fallback.
    pub fallback_on_demand: u32,
    /// Preemption-forecast alerts emitted (0 with forecasting off).
    pub forecast_alerts: u32,
    /// Proactive pre-drains the alerts triggered.
    pub pre_drains: u32,
    /// Alerts a provider warning or eviction confirmed in time.
    pub forecast_hits: u32,
    /// Alerts that expired with no eviction (false-positive migrations).
    pub false_alerts: u32,
    /// Adaptive checkpoints taken at the hazard-chosen cadence.
    pub checkpoints: u32,
    /// Reliable-tier machine losses injected or observed (each is either
    /// repaired in-job or escalates to a session restart).
    pub reliable_failures: u32,
    /// Session-level restarts from the last durable checkpoint.
    pub restarts: u32,
    /// Global clocks of training progress forfeited across all restarts
    /// (progress past the restored checkpoint at the moment of loss).
    pub work_lost_to_restart: u64,
}

impl ProteusReport {
    /// The cost this session *would* have paid running the same
    /// machine-hours entirely on-demand at `od_price` per instance-hour —
    /// the baseline of the paper's Fig. 1 comparison.
    pub fn on_demand_equivalent(&self, od_price: f64) -> f64 {
        self.usage.total_hours() * od_price
    }

    /// Fraction of machine-hours that were free compute.
    pub fn free_fraction(&self) -> f64 {
        self.usage.free_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_demand_equivalent_prices_all_hours() {
        let report = ProteusReport {
            cost: 1.0,
            market_time: SimDuration::from_hours(2),
            usage: UsageBreakdown {
                on_demand_hours: 2.0,
                spot_paid_hours: 6.0,
                free_hours: 2.0,
            },
            evictions: 1,
            allocations: 3,
            clocks: 40,
            final_objective: 0.05,
            refusals: 0,
            throttles: 0,
            partial_grants: 0,
            degraded_time: SimDuration::ZERO,
            fallback_on_demand: 0,
            forecast_alerts: 0,
            pre_drains: 0,
            forecast_hits: 0,
            false_alerts: 0,
            checkpoints: 0,
            reliable_failures: 0,
            restarts: 0,
            work_lost_to_restart: 0,
        };
        assert!((report.on_demand_equivalent(0.2) - 2.0).abs() < 1e-12);
        assert!((report.free_fraction() - 0.2).abs() < 1e-12);
    }
}
