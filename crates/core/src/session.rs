//! The live Proteus session: BidBrain + simulated provider + a real
//! elastic training job.
//!
//! This is the paper's Sec. 5 control loop. The session owns a
//! [`CloudProvider`] replaying synthetic spot-price history, a trained
//! [`BidBrain`], and an [`AgileMlJob`] whose machines are real threads.
//! Advancing market time:
//!
//! * at every decision point (two simulated minutes, just before billing
//!   hours end, and after evictions) BidBrain may acquire allocations —
//!   each granted instance becomes a transient machine added to the
//!   running job in the background;
//! * eviction warnings are forwarded to the elasticity controller, which
//!   drains ActivePSs to their backups within the warning window before
//!   the provider takes the machines;
//! * allocations whose renewal would raise cost-per-work are released
//!   just before their next billing hour.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proteus_agileml::{AgileMlJob, JobError};
use proteus_bidbrain::{
    adaptive_interval, hazard_to_rate, AllocView, BetaEstimator, BidBrain, MarketBackoff,
    PreemptionForecaster,
};
use proteus_market::{
    AllocationId, CloudProvider, MarketError, MarketKey, ProviderEvent, TraceGenerator,
};
use proteus_mlapps::app::MlApp;
use proteus_obs::{BidEvent, Event, Recorder, SessionEvent};
use proteus_simnet::{NodeClass, NodeId};
use proteus_simtime::{SimDuration, SimTime};

use crate::checkpoint::CheckpointStore;
use crate::config::ProteusConfig;
use crate::error::ProteusError;
use crate::report::ProteusReport;

/// BidBrain's decision cadence (Sec. 5: "every two minutes").
pub(crate) const STEP: SimDuration = SimDuration::from_secs(120);

/// Metric name for the 0/1 degraded-mode gauge. Its time-weighted
/// histogram's time at `1.0` equals the report's `degraded_time`.
pub const OBS_DEGRADED_GAUGE: &str = "session.degraded";

/// Span name recorded for each completed degraded episode.
pub const OBS_DEGRADED_SPAN: &str = "session.degraded_episode";

/// How [`Proteus::inject_reliable_failure`] recovered the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliableRecovery {
    /// No live reliable machine was left to kill; nothing happened.
    NoOp,
    /// The controller re-replicated the dead machines' backup
    /// partitions onto surviving reliable machines — no restart, no
    /// rollback past what online recovery already cost.
    Repaired,
    /// The loss was unrepairable: the session tore the job down and
    /// relaunched it from the last durable checkpoint.
    Restarted,
}

/// Floor on the adaptive checkpoint cadence (never snapshot more often
/// than every other decision step, whatever the hazard says).
const CHECKPOINT_MIN: SimDuration = SimDuration::from_mins(4);

/// Ceiling on the adaptive checkpoint cadence — the relaxed interval a
/// hazard-free market earns.
const CHECKPOINT_MAX: SimDuration = SimDuration::from_hours(4);

/// A live Proteus session over one training job.
pub struct Proteus<A: MlApp> {
    config: ProteusConfig,
    // The session owns its synthesized market history and trained β, so
    // both engines hold the `'static` (owned) ends of their borrow-or-own
    // APIs.
    provider: CloudProvider<'static>,
    brain: BidBrain<'static>,
    job: AgileMlJob<A>,
    /// Allocation → the simulated machines it granted (spot grants plus
    /// any degraded-mode on-demand fallback).
    alloc_nodes: BTreeMap<AllocationId, Vec<NodeId>>,
    job_start: SimTime,
    evictions: u32,
    allocations: u32,
    /// Per-market backoff under refusals and provider-wide throttles.
    backoff: MarketBackoff,
    /// Boot-delayed grants: machines join the job at `Launched`.
    pending_launches: BTreeMap<AllocationId, u32>,
    /// Allocations whose eviction warning already drained the machines —
    /// their `Evicted` needs no rollback, unlike a warning-less death.
    warned: BTreeSet<AllocationId>,
    /// Watchdog state: last time a spot request was granted.
    last_grant: SimTime,
    /// Refusals (capacity or throttle) since the last grant.
    refusals_since_grant: u32,
    /// When the watchdog degraded the loop to reliable-only, if active.
    degraded_since: Option<SimTime>,
    /// Next time a degraded loop re-probes the spot markets.
    next_probe: SimTime,
    /// Total time spent degraded.
    degraded_time: SimDuration,
    /// Degraded-mode on-demand fallback allocations and their counts.
    fallback_allocs: Vec<(AllocationId, u32)>,
    /// Counters surfaced in the report.
    refusals: u32,
    throttles: u32,
    partial_grants: u32,
    fallback_on_demand: u32,
    /// Online preemption forecaster (`config.forecast`); `None` leaves
    /// the session bit-identical to a forecasting-free build.
    forecaster: Option<PreemptionForecaster>,
    /// Outstanding alerts: allocation → when the forecast expires and,
    /// absent an eviction, becomes a false positive.
    alerted: BTreeMap<AllocationId, SimTime>,
    /// Holdings the forecaster tracks: allocation → (market, bid), so
    /// released or reclaimed holdings free their trajectory state.
    tracked_bids: BTreeMap<AllocationId, (MarketKey, f64)>,
    /// When the last adaptive checkpoint was taken.
    last_checkpoint: SimTime,
    /// The latest durable checkpoint; session restarts resume from it.
    checkpoint_store: CheckpointStore,
    /// The reliable tier's on-demand allocation — re-acquired when a
    /// restart replaces the tier that was never supposed to fail.
    reliable_alloc: AllocationId,
    /// Reliable machines already killed by chaos injection in the
    /// current job incarnation (cleared on restart).
    dead_reliable: BTreeSet<NodeId>,
    /// Highest training clock the session has observed — the baseline
    /// for `work_lost_to_restart` accounting.
    last_known_clock: u64,
    forecast_alerts: u32,
    pre_drains: u32,
    forecast_hits: u32,
    false_alerts: u32,
    checkpoints: u32,
    reliable_failures: u32,
    restarts: u32,
    work_lost_to_restart: u64,
    /// Observability recorder shared with the provider, the job's
    /// cluster, and BidBrain; `None` keeps the loop allocation-free.
    obs: Option<Arc<Recorder>>,
}

impl<A: MlApp> Proteus<A> {
    /// Launches a session: synthesizes market history, trains β on the
    /// configured window, provisions the reliable tier, starts the
    /// elastic training job, and makes the first allocation decision.
    pub fn launch(
        app: A,
        dataset: Vec<A::Datum>,
        config: ProteusConfig,
    ) -> Result<Self, ProteusError> {
        // `PROTEUS_OBS_OUT` turns recording on; `finish` then exports
        // the timeline as JSONL to that path.
        let obs = proteus_obs::jsonl::export_path().map(|_| Arc::new(Recorder::new()));
        Self::launch_inner(app, dataset, config, obs)
    }

    /// Like [`Proteus::launch`], but records the session onto `rec`
    /// regardless of `PROTEUS_OBS_OUT` — the hook tests use to inspect
    /// the timeline and metrics in-memory.
    pub fn launch_observed(
        app: A,
        dataset: Vec<A::Datum>,
        config: ProteusConfig,
        rec: Arc<Recorder>,
    ) -> Result<Self, ProteusError> {
        Self::launch_inner(app, dataset, config, Some(rec))
    }

    fn launch_inner(
        app: A,
        dataset: Vec<A::Datum>,
        config: ProteusConfig,
        obs: Option<Arc<Recorder>>,
    ) -> Result<Self, ProteusError> {
        config.validate()?;

        // Synthesize the market and train β on its early window — the
        // analogue of loading historical AWS price data (Sec. 5).
        let gen = TraceGenerator::new(config.agile.seed, config.market_model.clone());
        let traces = gen.generate_set(&config.spot_markets, config.market_horizon);
        let mut beta = BetaEstimator::new();
        for m in &config.spot_markets {
            let trace = traces
                .get(m)
                .ok_or(ProteusError::Market(MarketError::UnknownMarket(*m)))?;
            beta.train(
                *m,
                trace,
                SimTime::EPOCH,
                SimTime::EPOCH + config.beta_training,
                SimDuration::from_mins(30),
                &BetaEstimator::default_deltas(),
            );
        }
        let brain = BidBrain::new(config.params, beta, config.brain.clone());

        let mut provider = CloudProvider::with_warning_lead(traces, config.warning_lead);
        if let Some(plan) = config.market_faults.clone() {
            provider.set_fault_plan(plan);
        }
        let job_start = SimTime::EPOCH + config.beta_training;
        if let Some(rec) = &obs {
            rec.set_now(job_start);
            provider.set_recorder(Arc::clone(rec));
        }
        provider.advance_to(job_start)?;
        let reliable_alloc =
            provider.request_on_demand(config.on_demand_market, config.reliable_machines)?;

        let mut job = AgileMlJob::launch(
            app,
            dataset,
            config.agile,
            config.reliable_machines as usize,
            0,
        )?;
        if let Some(rec) = &obs {
            job.attach_recorder(Arc::clone(rec));
            rec.record(
                job_start,
                Event::Session(SessionEvent::Launched {
                    reliable: u64::from(config.reliable_machines),
                }),
            );
            // Open the degraded gauge at 0 so its time-weighted
            // histogram covers the whole session.
            rec.gauge_set(OBS_DEGRADED_GAUGE, job_start, 0.0);
        }

        let backoff = MarketBackoff::new(config.backoff_base, config.backoff_cap);
        let forecaster = config.forecast.clone().map(PreemptionForecaster::new);
        let mut session = Proteus {
            config,
            provider,
            brain,
            job,
            alloc_nodes: BTreeMap::new(),
            job_start,
            evictions: 0,
            allocations: 0,
            backoff,
            pending_launches: BTreeMap::new(),
            warned: BTreeSet::new(),
            last_grant: job_start,
            refusals_since_grant: 0,
            degraded_since: None,
            next_probe: job_start,
            degraded_time: SimDuration::ZERO,
            fallback_allocs: Vec::new(),
            refusals: 0,
            throttles: 0,
            partial_grants: 0,
            fallback_on_demand: 0,
            forecaster,
            alerted: BTreeMap::new(),
            tracked_bids: BTreeMap::new(),
            last_checkpoint: job_start,
            checkpoint_store: CheckpointStore::new(),
            reliable_alloc,
            dead_reliable: BTreeSet::new(),
            last_known_clock: 0,
            forecast_alerts: 0,
            pre_drains: 0,
            forecast_hits: 0,
            false_alerts: 0,
            checkpoints: 0,
            reliable_failures: 0,
            restarts: 0,
            work_lost_to_restart: 0,
            obs,
        };
        session.consider_acquisition()?;
        Ok(session)
    }

    /// The elastic training job (status queries, snapshots, events).
    pub fn job(&mut self) -> &mut AgileMlJob<A> {
        &mut self.job
    }

    /// The attached observability recorder, if the session records.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.obs.as_ref()
    }

    /// Current simulated market time.
    pub fn market_now(&self) -> SimTime {
        self.provider.now()
    }

    /// Aggregate simnet delivery counters for the job's cluster —
    /// delivered and dropped message totals, accounted identically by
    /// both simnet cores. Useful for post-run network-health asserts in
    /// session tests without reaching into the job's cluster.
    pub fn net_stats(&self) -> proteus_simnet::NetStats {
        self.job.net_stats()
    }

    /// Live transient machine count.
    pub fn transient_machines(&self) -> usize {
        self.alloc_nodes.values().map(Vec::len).sum()
    }

    /// Whether the watchdog has degraded the loop to reliable-only
    /// (plus any on-demand fallback) because spot acquisition wedged.
    pub fn is_degraded(&self) -> bool {
        self.degraded_since.is_some()
    }

    /// Advances the market by `hours`, driving allocation decisions and
    /// elasticity while training threads keep running.
    pub fn run_market_hours(&mut self, hours: f64) -> Result<(), ProteusError> {
        let target = self.provider.now() + SimDuration::from_hours_f64(hours);
        while self.provider.now() < target {
            if let Some(rec) = self.obs.as_deref() {
                // Keep the recorder's sim clock current so mirrored job
                // events are stamped with market time.
                rec.set_now(self.provider.now());
            }
            self.renewals()?;
            self.forecast_step()?;
            self.maybe_checkpoint()?;
            self.consider_acquisition()?;
            let next = (self.provider.now() + STEP).min(target);
            let events = self.provider.advance_to(next)?;
            if let Some(rec) = self.obs.as_deref() {
                // The provider stamped its own events at their exact
                // occurrence instants during the advance; move the
                // recorder clock to the end of the step before reacting
                // so mirrored job events never back-date the timeline.
                rec.set_now(self.provider.now());
            }
            for (_, ev) in events {
                self.handle_event(ev)?;
            }
        }
        Ok(())
    }

    /// Waits until the training job completes `clock` global iterations.
    pub fn wait_clock(&mut self, clock: u64) -> Result<(), ProteusError> {
        self.job.wait_clock(clock)?;
        self.last_known_clock = self.last_known_clock.max(clock);
        Ok(())
    }

    fn handle_event(&mut self, ev: ProviderEvent) -> Result<(), ProteusError> {
        match ev {
            ProviderEvent::EvictionWarning { allocation, .. } => {
                // Forward to the elasticity controller: drain within the
                // warning window (the drain itself is wall-clock fast).
                self.warned.insert(allocation);
                if self.alerted.remove(&allocation).is_some() {
                    // The forecaster called this eviction ahead of the
                    // provider: the pre-drain already emptied the nodes.
                    self.forecast_hits += 1;
                }
                if let Some(nodes) = self.alloc_nodes.get(&allocation).cloned() {
                    self.job.evict_with_warning(&nodes)?;
                }
            }
            ProviderEvent::Evicted { allocation } => {
                self.evictions += 1;
                if self.alerted.remove(&allocation).is_some() {
                    // Warning-less death the forecaster still predicted.
                    self.forecast_hits += 1;
                }
                if let Some((market, bid)) = self.tracked_bids.remove(&allocation) {
                    if let Some(fc) = self.forecaster.as_mut() {
                        fc.clear(market, bid);
                    }
                }
                let was_warned = self.warned.remove(&allocation);
                if let Some(nodes) = self.alloc_nodes.remove(&allocation) {
                    if !was_warned && !nodes.is_empty() {
                        // A warning-less death (infant mortality): the
                        // machines vanish abruptly and AgileML rolls
                        // back from the BackupPSs.
                        self.job.fail_nodes(&nodes)?;
                    }
                }
                // Free compute was already banked; BidBrain reconsiders
                // immediately after evictions (Sec. 5).
                self.consider_acquisition()?;
            }
            ProviderEvent::HourCharged { .. } => {}
            ProviderEvent::Launched { allocation } => {
                // A boot-delayed grant came up: its machines join now.
                if let Some(count) = self.pending_launches.remove(&allocation) {
                    let nodes = self
                        .job
                        .add_machines(NodeClass::Transient, count as usize)?;
                    self.alloc_nodes.insert(allocation, nodes);
                }
            }
            ProviderEvent::LaunchFailed { allocation } => {
                // The market moved before the instances booted; nothing
                // was billed and no machines existed. Re-plan.
                self.pending_launches.remove(&allocation);
                self.consider_acquisition()?;
            }
        }
        Ok(())
    }

    /// One forecasting sweep: feed live prices for every held spot
    /// allocation, pre-drain on fresh alerts, age out expired ones as
    /// false positives, and drop trajectory state for holdings that no
    /// longer exist. A no-op (and allocation-free) with forecasting off.
    fn forecast_step(&mut self) -> Result<(), ProteusError> {
        if self.forecaster.is_none() {
            return Ok(());
        }
        let now = self.provider.now();
        let allocs = self.provider.spot_allocations();

        // Holdings released or reclaimed since the last sweep stop
        // being tracked; their outstanding alerts are moot (a voluntary
        // release is neither a hit nor a false positive).
        let live: BTreeSet<AllocationId> = allocs.iter().map(|a| a.id).collect();
        let stale: Vec<AllocationId> = self
            .tracked_bids
            .keys()
            .filter(|id| !live.contains(id))
            .copied()
            .collect();
        for id in stale {
            if let Some((market, bid)) = self.tracked_bids.remove(&id) {
                if let Some(fc) = self.forecaster.as_mut() {
                    fc.clear(market, bid);
                }
            }
            self.alerted.remove(&id);
        }

        for a in &allocs {
            if a.booting {
                continue;
            }
            let Ok(price) = self.provider.spot_price(a.market) else {
                continue;
            };
            self.tracked_bids.insert(a.id, (a.market, a.bid));
            let Some(fc) = self.forecaster.as_mut() else {
                break;
            };
            let Some(alert) = fc.observe(a.market, a.bid, now, price) else {
                continue;
            };
            self.forecast_alerts += 1;
            let expiry = now + fc.config().horizon + self.config.warning_lead + STEP;
            if let Some(rec) = self.obs.as_deref() {
                rec.record(
                    now,
                    Event::Bid(BidEvent::ForecastAlert {
                        market: a.market.interned_name(),
                        bid: a.bid,
                        hazard: alert.confidence,
                        horizon_ms: alert.horizon.as_millis(),
                    }),
                );
            }
            // One outstanding alert per allocation; a holding the
            // provider already warned is mid-drain and needs no help.
            if self.alerted.contains_key(&a.id) || self.warned.contains(&a.id) {
                continue;
            }
            self.alerted.insert(a.id, expiry);
            if let Some(nodes) = self.alloc_nodes.get(&a.id).cloned() {
                if !nodes.is_empty() {
                    self.job.pre_drain(&nodes)?;
                    self.pre_drains += 1;
                    if let Some(rec) = self.obs.as_deref() {
                        rec.record(
                            now,
                            Event::Session(SessionEvent::PreDrained { allocation: a.id.0 }),
                        );
                    }
                }
            }
        }

        // Alerts that outlived their horizon with no eviction were
        // false positives: the pre-drain cost migration time, nothing
        // else — correctness is untouched by construction.
        let expired: Vec<AllocationId> = self
            .alerted
            .iter()
            .filter(|(_, expiry)| now >= **expiry)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            self.alerted.remove(&id);
            self.false_alerts += 1;
            if let Some(rec) = self.obs.as_deref() {
                rec.record(
                    now,
                    Event::Session(SessionEvent::ForecastFalseAlert { allocation: id.0 }),
                );
            }
        }
        Ok(())
    }

    /// Adaptive checkpointing: snapshot the model at the Young's-rule
    /// interval derived from the forecasted hazard — tight cadence when
    /// an eviction looms, relaxed when the market is calm. Inactive
    /// (zero snapshots, zero events) with forecasting off.
    fn maybe_checkpoint(&mut self) -> Result<(), ProteusError> {
        let Some(fc) = self.forecaster.as_ref() else {
            return Ok(());
        };
        let now = self.provider.now();
        let rate = hazard_to_rate(fc.max_hazard(), fc.config().horizon);
        let interval = adaptive_interval(
            self.config.checkpoint_cost,
            rate,
            CHECKPOINT_MIN,
            CHECKPOINT_MAX,
        );
        if now.since(self.last_checkpoint) < interval {
            return Ok(());
        }
        self.take_checkpoint(now, interval.as_millis())
    }

    /// Forces a durable checkpoint immediately, regardless of the
    /// adaptive cadence. Returns the checkpointed clock. Chaos
    /// harnesses (and an operator about to do something risky) use this
    /// to bound the work a subsequent restart can lose.
    pub fn checkpoint_now(&mut self) -> Result<u64, ProteusError> {
        let now = self.provider.now();
        self.take_checkpoint(now, 0)?;
        Ok(self.checkpoint_store.latest().map_or(0, |c| c.clock))
    }

    /// Fetches a consistent model snapshot from the job and serializes
    /// it into the durable store, superseding the previous checkpoint.
    /// All timing here is modeled sim-time — a fault-free run's
    /// checkpoint schedule (and therefore its whole timeline) stays
    /// bit-identical across repetitions.
    fn take_checkpoint(&mut self, now: SimTime, interval_ms: u64) -> Result<(), ProteusError> {
        self.last_checkpoint = now;
        self.checkpoints += 1;
        let snap = self.job.snapshot()?;
        self.last_known_clock = self.last_known_clock.max(snap.clock);
        let bytes = self.checkpoint_store.save(&snap, now);
        if let Some(rec) = self.obs.as_deref() {
            rec.record(
                now,
                Event::Session(SessionEvent::CheckpointTaken {
                    interval_ms,
                    bytes,
                    clock: snap.clock,
                }),
            );
        }
        Ok(())
    }

    /// BidBrain's footprint view of current holdings.
    fn footprint(&self) -> Vec<AllocView> {
        let now = self.provider.now();
        let mut views = vec![AllocView::on_demand(
            self.config.on_demand_market,
            self.config.reliable_machines,
            0.0,
        )];
        // Degraded-mode fallback machines compute, unlike the reliable
        // tier's serving-only role.
        for &(_, count) in &self.fallback_allocs {
            views.push(AllocView::on_demand(
                self.config.on_demand_market,
                count,
                f64::from(self.config.on_demand_market.instance_type().vcpus),
            ));
        }
        for a in self.provider.spot_allocations() {
            if a.booting {
                // Not billed and not computing until launch.
                continue;
            }
            let paid = self
                .provider
                .spot_price_at(a.market, a.hour_start)
                .unwrap_or(a.bid);
            views.push(AllocView {
                market: a.market,
                count: a.count,
                hourly_price: paid,
                bid_delta: Some((a.bid - paid).max(0.0001)),
                time_remaining: (a.hour_start + SimDuration::from_hours(1)).since(now),
                work_rate: f64::from(a.market.instance_type().vcpus),
            });
        }
        views
    }

    /// One acquisition sweep: walk BidBrain's ranked candidates until a
    /// market grants, treating refusals as typed, transient outcomes.
    ///
    /// * capacity refusal → back that market off and try the next-best
    ///   market per Eq. 4;
    /// * throttle → back off provider-wide until the suggested retry;
    /// * no grant for a watchdog window → degrade to reliable-only with
    ///   an optional on-demand fallback, re-probing once per window.
    fn consider_acquisition(&mut self) -> Result<(), ProteusError> {
        let now = self.provider.now();
        if self.degraded_since.is_some() {
            // Degraded: don't hammer a wedged market every step.
            if now < self.next_probe {
                return Ok(());
            }
            self.next_probe = now + self.config.watchdog_window;
        }
        let headroom = self
            .config
            .max_machines
            .saturating_sub(self.config.reliable_machines)
            .saturating_sub(self.transient_machines() as u32)
            .saturating_sub(self.pending_launches.values().sum::<u32>());
        if headroom == 0 {
            return Ok(());
        }
        let prices: Vec<_> = self
            .config
            .spot_markets
            .iter()
            .filter(|m| !self.backoff.is_blocked(**m, now))
            .filter_map(|m| self.provider.spot_price(*m).ok().map(|p| (*m, p)))
            .collect();
        let footprint = self.footprint();
        let ranked =
            self.brain
                .ranked_acquisitions_obs(&footprint, &prices, now, self.obs.as_deref());
        let mut granted = false;
        for req in ranked {
            let count = req.count.min(headroom);
            if count == 0 {
                continue;
            }
            match self.provider.request_spot(req.market, count, req.bid) {
                Ok(grant) => {
                    self.backoff.on_success(req.market);
                    self.allocations += 1;
                    if grant.is_partial() {
                        self.partial_grants += 1;
                    }
                    self.last_grant = now;
                    self.refusals_since_grant = 0;
                    if grant.usable_at > now {
                        // Machines join the job when the provider
                        // reports the launch.
                        self.pending_launches.insert(grant.id, grant.granted);
                    } else {
                        let nodes = self
                            .job
                            .add_machines(NodeClass::Transient, grant.granted as usize)?;
                        self.alloc_nodes.insert(grant.id, nodes);
                    }
                    self.exit_degraded(now)?;
                    granted = true;
                    break;
                }
                Err(MarketError::RequestLimitExceeded { retry_after }) => {
                    // Provider-wide: no point trying the next market.
                    self.throttles += 1;
                    self.refusals_since_grant += 1;
                    self.backoff.on_throttle(now, retry_after);
                    break;
                }
                Err(MarketError::InsufficientCapacity { .. }) => {
                    // Market-local: back it off, fall to the next-best.
                    self.refusals += 1;
                    self.refusals_since_grant += 1;
                    self.backoff.on_refusal(req.market, now);
                }
                Err(MarketError::BidBelowMarket { .. }) => {
                    // The price moved between ranking and requesting;
                    // the next candidate market may still be good.
                }
                Err(e) => return Err(e.into()),
            }
        }
        if !granted {
            self.maybe_degrade(now)?;
        }
        Ok(())
    }

    /// Watchdog: if refusals have kept the loop grantless for a full
    /// window, degrade to the reliable tier instead of spinning, and
    /// provision the configured on-demand fallback so the job keeps
    /// making progress through the drought.
    fn maybe_degrade(&mut self, now: SimTime) -> Result<(), ProteusError> {
        if self.degraded_since.is_some()
            || self.refusals_since_grant == 0
            || now.since(self.last_grant) < self.config.watchdog_window
        {
            return Ok(());
        }
        self.degraded_since = Some(now);
        self.next_probe = now + self.config.watchdog_window;
        if let Some(rec) = self.obs.as_deref() {
            rec.record(now, Event::Session(SessionEvent::Degraded));
            rec.gauge_set(OBS_DEGRADED_GAUGE, now, 1.0);
        }
        if self.config.fallback_on_demand > 0 && self.fallback_allocs.is_empty() {
            let count = self.config.fallback_on_demand;
            let id = self
                .provider
                .request_on_demand(self.config.on_demand_market, count)?;
            let nodes = self
                .job
                .add_machines(NodeClass::Transient, count as usize)?;
            self.alloc_nodes.insert(id, nodes);
            self.fallback_allocs.push((id, count));
            self.fallback_on_demand += count;
            if let Some(rec) = self.obs.as_deref() {
                rec.record(
                    now,
                    Event::Session(SessionEvent::FallbackLaunched { allocation: id.0 }),
                );
            }
        }
        Ok(())
    }

    /// Leaves degraded mode after a successful grant: bank the degraded
    /// interval and release the on-demand fallback (spot is cheaper).
    fn exit_degraded(&mut self, now: SimTime) -> Result<(), ProteusError> {
        let Some(since) = self.degraded_since.take() else {
            return Ok(());
        };
        self.degraded_time += now.since(since);
        if let Some(rec) = self.obs.as_deref() {
            rec.record(
                now,
                Event::Session(SessionEvent::Restored {
                    degraded_ms: now.since(since).as_millis(),
                }),
            );
            rec.gauge_set(OBS_DEGRADED_GAUGE, now, 0.0);
            rec.span(OBS_DEGRADED_SPAN, since, now);
        }
        for (id, _) in std::mem::take(&mut self.fallback_allocs) {
            if let Some(nodes) = self.alloc_nodes.remove(&id) {
                self.job.evict_with_warning(&nodes)?;
            }
            let _ = self.provider.terminate(id);
        }
        Ok(())
    }

    /// Chaos injection: one live spot allocation vanishes with **no
    /// usable warning** (the paper's "effective failure": the two-minute
    /// notice arrived too late to drain). The machines are killed
    /// abruptly and AgileML runs online rollback recovery from the
    /// BackupPSs. Returns the clock the job rolled back to, or `None`
    /// when no spot allocation is live.
    pub fn inject_failure(&mut self) -> Result<Option<u64>, ProteusError> {
        let Some((&alloc, _)) = self.alloc_nodes.iter().next() else {
            return Ok(None);
        };
        let nodes = self.alloc_nodes.remove(&alloc).unwrap_or_default();
        // The provider still refunds the hour (it evicted the machines);
        // terminate bills nothing further since we model the provider's
        // own revocation as an immediate teardown.
        let _ = self.provider.terminate(alloc);
        self.evictions += 1;
        let rolled = self.job.fail_nodes(&nodes)?;
        Ok(Some(rolled))
    }

    /// Chaos injection on the tier that "never fails": `count` reliable
    /// worker machines die abruptly (no warning, no failure report
    /// beyond the harness's own). The controller first attempts in-job
    /// repair — re-replicating the dead machines' BackupPS partitions
    /// onto surviving reliable machines; if the loss is unrepairable it
    /// raises a typed fault and the session restarts the whole job from
    /// the last durable checkpoint. Returns which of those happened.
    pub fn inject_reliable_failure(
        &mut self,
        count: usize,
    ) -> Result<ReliableRecovery, ProteusError> {
        if let Ok(st) = self.job.status() {
            self.last_known_clock = self.last_known_clock.max(st.min_clock);
        }
        let victims: Vec<NodeId> = self
            .job
            .reliable_machines()
            .iter()
            .copied()
            .filter(|n| !self.dead_reliable.contains(n))
            .take(count)
            .collect();
        if victims.is_empty() {
            return Ok(ReliableRecovery::NoOp);
        }
        self.reliable_failures += 1;
        self.dead_reliable.extend(victims.iter().copied());
        match self.job.fail_reliable_nodes(&victims) {
            Ok(_) => Ok(ReliableRecovery::Repaired),
            Err(JobError::Fault(_)) => {
                self.restart_from_checkpoint()?;
                Ok(ReliableRecovery::Restarted)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Chaos injection: the **entire** reliable tier — every reliable
    /// worker machine and the controller host itself — vanishes at
    /// once. No in-job protocol can survive this (there is nobody left
    /// to run one), so the session restarts from the last durable
    /// checkpoint: tear down, re-acquire reliable capacity, relaunch.
    /// Returns the clock the restarted job resumed from.
    pub fn inject_total_reliable_failure(&mut self) -> Result<u64, ProteusError> {
        if let Ok(st) = self.job.status() {
            self.last_known_clock = self.last_known_clock.max(st.min_clock);
        }
        self.reliable_failures += 1;
        let mut doomed: Vec<NodeId> = self.job.reliable_machines().to_vec();
        doomed.push(self.job.controller_node());
        self.job.kill_silent(&doomed);
        self.restart_from_checkpoint()
    }

    /// Session-level restart: the current job incarnation is
    /// unsalvageable (reliable tier gone, controller possibly
    /// included). Bills the losses, tears the old cluster down,
    /// re-acquires the reliable tier from the provider, and relaunches
    /// the job from the last durable checkpoint — or from scratch if no
    /// checkpoint was ever taken. Returns the resumed clock.
    fn restart_from_checkpoint(&mut self) -> Result<u64, ProteusError> {
        let now = self.provider.now();
        self.restarts += 1;
        let snap = self.checkpoint_store.restore()?;
        let resumed = snap.as_ref().map_or(0, |s| s.clock);
        let lost = self.last_known_clock.saturating_sub(resumed);
        self.work_lost_to_restart += lost;

        // Every transient holding dies with the old cluster — its
        // machines are threads of the job being torn down. Terminate
        // the allocations; their current hours are already paid.
        for (id, _) in std::mem::take(&mut self.alloc_nodes) {
            let _ = self.provider.terminate(id);
        }
        for (id, _) in std::mem::take(&mut self.pending_launches) {
            let _ = self.provider.terminate(id);
        }
        self.fallback_allocs.clear();
        self.warned.clear();
        self.alerted.clear();
        self.tracked_bids.clear();
        self.dead_reliable.clear();

        // The reliable hosts are dead too: release the old allocation
        // and provision a fresh tier for the relaunch.
        let _ = self.provider.terminate(self.reliable_alloc);
        self.reliable_alloc = self
            .provider
            .request_on_demand(self.config.on_demand_market, self.config.reliable_machines)?;

        self.job
            .relaunch_from_checkpoint(self.config.reliable_machines as usize, 0, snap)?;
        self.last_known_clock = resumed;
        if let Some(rec) = self.obs.as_deref() {
            rec.record(
                now,
                Event::Session(SessionEvent::CheckpointRestored {
                    clock: resumed,
                    work_lost: lost,
                }),
            );
        }
        // Spot re-acquisition resumes on the normal decision cadence.
        self.consider_acquisition()?;
        Ok(resumed)
    }

    /// Hour-end renewal decisions: allocations not worth renewing are
    /// released (machines leave gracefully — a voluntary drain).
    fn renewals(&mut self) -> Result<(), ProteusError> {
        let now = self.provider.now();
        for a in self.provider.spot_allocations() {
            let to_end = (a.hour_start + SimDuration::from_hours(1)).since(now);
            if to_end > STEP || a.warned || a.booting {
                continue;
            }
            let renew_price = self.provider.spot_price(a.market).unwrap_or(a.bid);
            let view = AllocView {
                market: a.market,
                count: a.count,
                hourly_price: renew_price,
                bid_delta: Some((a.bid - renew_price).max(0.0001)),
                time_remaining: to_end,
                work_rate: f64::from(a.market.instance_type().vcpus),
            };
            let rest: Vec<AllocView> = self
                .footprint()
                .into_iter()
                .filter(|v| v.bid_delta.is_none() || v.market != a.market || v.count != a.count)
                .collect();
            let keep = self.brain.should_renew(&view, &rest, renew_price) && renew_price <= a.bid;
            if !keep {
                if let Some(nodes) = self.alloc_nodes.remove(&a.id) {
                    self.job.evict_with_warning(&nodes)?;
                }
                let _ = self.provider.terminate(a.id);
            }
        }
        Ok(())
    }

    /// Finishes the session: terminates holdings, shuts the job down,
    /// and returns the bill and training outcome.
    ///
    /// The on-demand tier is terminated immediately; per Sec. 5, spot
    /// allocations would idle to the end of their billing hours hoping
    /// for a refund — the simulated equivalent simply terminates them,
    /// since their current hours are already paid either way.
    pub fn finish(mut self) -> Result<ProteusReport, ProteusError> {
        let dataset: Vec<A::Datum> = self.job.dataset().to_vec();
        let final_objective = self.job.objective(&dataset)?;
        let status = self.job.status()?;
        for (id, _) in std::mem::take(&mut self.alloc_nodes) {
            let _ = self.provider.terminate(id);
        }
        for (id, _) in std::mem::take(&mut self.pending_launches) {
            let _ = self.provider.terminate(id);
        }
        if let Some(since) = self.degraded_since.take() {
            self.degraded_time += self.provider.now().since(since);
            if let Some(rec) = self.obs.as_deref() {
                rec.span(OBS_DEGRADED_SPAN, since, self.provider.now());
            }
        }
        let market_time = self.provider.now() - self.job_start;
        self.job.shutdown()?;
        if let Some(rec) = self.obs.as_deref() {
            let now = self.provider.now();
            rec.set_now(now);
            rec.record(
                now,
                Event::Session(SessionEvent::Finished {
                    cost: self.provider.account().total_cost(),
                    clocks: status.min_clock,
                }),
            );
            // Fold the open degraded gauge interval into its histogram
            // so `time_at(1.0)` matches the report's `degraded_time`.
            rec.close_gauges(now);
            if let Some(path) = proteus_obs::jsonl::export_path() {
                if let Err(e) = std::fs::write(&path, rec.to_jsonl()) {
                    // The report is still valid; only the export failed.
                    eprintln!("warning: could not write {}: {e}", path);
                }
            }
        }
        Ok(ProteusReport {
            cost: self.provider.account().total_cost(),
            market_time,
            usage: *self.provider.account().usage(),
            evictions: self.evictions,
            allocations: self.allocations,
            clocks: status.min_clock,
            final_objective,
            refusals: self.refusals,
            throttles: self.throttles,
            partial_grants: self.partial_grants,
            degraded_time: self.degraded_time,
            fallback_on_demand: self.fallback_on_demand,
            forecast_alerts: self.forecast_alerts,
            pre_drains: self.pre_drains,
            forecast_hits: self.forecast_hits,
            false_alerts: self.false_alerts,
            checkpoints: self.checkpoints,
            reliable_failures: self.reliable_failures,
            restarts: self.restarts,
            work_lost_to_restart: self.work_lost_to_restart,
        })
    }
}
