//! The live Proteus session: BidBrain + simulated provider + a real
//! elastic training job.
//!
//! This is the paper's Sec. 5 control loop. The session owns a
//! [`CloudProvider`] replaying synthetic spot-price history, a trained
//! [`BidBrain`], and an [`AgileMlJob`] whose machines are real threads.
//! Advancing market time:
//!
//! * at every decision point (two simulated minutes, just before billing
//!   hours end, and after evictions) BidBrain may acquire allocations —
//!   each granted instance becomes a transient machine added to the
//!   running job in the background;
//! * eviction warnings are forwarded to the elasticity controller, which
//!   drains ActivePSs to their backups within the warning window before
//!   the provider takes the machines;
//! * allocations whose renewal would raise cost-per-work are released
//!   just before their next billing hour.

use std::collections::BTreeMap;

use proteus_agileml::AgileMlJob;
use proteus_bidbrain::{AllocView, BetaEstimator, BidBrain};
use proteus_market::{AllocationId, CloudProvider, ProviderEvent, TraceGenerator};
use proteus_mlapps::app::MlApp;
use proteus_simnet::{NodeClass, NodeId};
use proteus_simtime::{SimDuration, SimTime};

use crate::config::ProteusConfig;
use crate::report::ProteusReport;

/// BidBrain's decision cadence (Sec. 5: "every two minutes").
const STEP: SimDuration = SimDuration::from_secs(120);

/// A live Proteus session over one training job.
pub struct Proteus<A: MlApp> {
    config: ProteusConfig,
    // The session owns its synthesized market history and trained β, so
    // both engines hold the `'static` (owned) ends of their borrow-or-own
    // APIs.
    provider: CloudProvider<'static>,
    brain: BidBrain<'static>,
    job: AgileMlJob<A>,
    /// Spot allocation → the simulated machines it granted.
    alloc_nodes: BTreeMap<AllocationId, Vec<NodeId>>,
    job_start: SimTime,
    evictions: u32,
    allocations: u32,
}

impl<A: MlApp> Proteus<A> {
    /// Launches a session: synthesizes market history, trains β on the
    /// configured window, provisions the reliable tier, starts the
    /// elastic training job, and makes the first allocation decision.
    pub fn launch(app: A, dataset: Vec<A::Datum>, config: ProteusConfig) -> Result<Self, String> {
        config.validate()?;

        // Synthesize the market and train β on its early window — the
        // analogue of loading historical AWS price data (Sec. 5).
        let gen = TraceGenerator::new(config.agile.seed, config.market_model.clone());
        let traces = gen.generate_set(&config.spot_markets, config.market_horizon);
        let mut beta = BetaEstimator::new();
        for m in &config.spot_markets {
            beta.train(
                *m,
                traces.get(m).expect("trace generated"),
                SimTime::EPOCH,
                SimTime::EPOCH + config.beta_training,
                SimDuration::from_mins(30),
                &BetaEstimator::default_deltas(),
            );
        }
        let brain = BidBrain::new(config.params, beta, config.brain.clone());

        let mut provider = CloudProvider::new(traces);
        let job_start = SimTime::EPOCH + config.beta_training;
        provider.advance_to(job_start).map_err(|e| e.to_string())?;
        provider
            .request_on_demand(config.on_demand_market, config.reliable_machines)
            .map_err(|e| e.to_string())?;

        let job = AgileMlJob::launch(
            app,
            dataset,
            config.agile,
            config.reliable_machines as usize,
            0,
        )?;

        let mut session = Proteus {
            config,
            provider,
            brain,
            job,
            alloc_nodes: BTreeMap::new(),
            job_start,
            evictions: 0,
            allocations: 0,
        };
        session.consider_acquisition()?;
        Ok(session)
    }

    /// The elastic training job (status queries, snapshots, events).
    pub fn job(&mut self) -> &mut AgileMlJob<A> {
        &mut self.job
    }

    /// Current simulated market time.
    pub fn market_now(&self) -> SimTime {
        self.provider.now()
    }

    /// Live transient machine count.
    pub fn transient_machines(&self) -> usize {
        self.alloc_nodes.values().map(Vec::len).sum()
    }

    /// Advances the market by `hours`, driving allocation decisions and
    /// elasticity while training threads keep running.
    pub fn run_market_hours(&mut self, hours: f64) -> Result<(), String> {
        let target = self.provider.now() + SimDuration::from_hours_f64(hours);
        while self.provider.now() < target {
            self.renewals()?;
            self.consider_acquisition()?;
            let next = (self.provider.now() + STEP).min(target);
            let events = self.provider.advance_to(next).map_err(|e| e.to_string())?;
            for (_, ev) in events {
                self.handle_event(ev)?;
            }
        }
        Ok(())
    }

    /// Waits until the training job completes `clock` global iterations.
    pub fn wait_clock(&mut self, clock: u64) -> Result<(), String> {
        self.job.wait_clock(clock).map_err(String::from)
    }

    fn handle_event(&mut self, ev: ProviderEvent) -> Result<(), String> {
        match ev {
            ProviderEvent::EvictionWarning { allocation, .. } => {
                // Forward to the elasticity controller: drain within the
                // warning window (the drain itself is wall-clock fast).
                if let Some(nodes) = self.alloc_nodes.get(&allocation).cloned() {
                    self.job.evict_with_warning(&nodes)?;
                }
            }
            ProviderEvent::Evicted { allocation } => {
                self.evictions += 1;
                self.alloc_nodes.remove(&allocation);
                // Free compute was already banked; BidBrain reconsiders
                // immediately after evictions (Sec. 5).
                self.consider_acquisition()?;
            }
            ProviderEvent::HourCharged { .. } => {}
        }
        Ok(())
    }

    /// BidBrain's footprint view of current holdings.
    fn footprint(&self) -> Vec<AllocView> {
        let now = self.provider.now();
        let mut views = vec![AllocView::on_demand(
            self.config.on_demand_market,
            self.config.reliable_machines,
            0.0,
        )];
        for a in self.provider.spot_allocations() {
            let paid = self
                .provider
                .spot_price_at(a.market, a.hour_start)
                .unwrap_or(a.bid);
            views.push(AllocView {
                market: a.market,
                count: a.count,
                hourly_price: paid,
                bid_delta: Some((a.bid - paid).max(0.0001)),
                time_remaining: (a.hour_start + SimDuration::from_hours(1)).since(now),
                work_rate: f64::from(a.market.instance_type().vcpus),
            });
        }
        views
    }

    fn consider_acquisition(&mut self) -> Result<(), String> {
        let headroom = self
            .config
            .max_machines
            .saturating_sub(self.config.reliable_machines)
            .saturating_sub(self.transient_machines() as u32);
        if headroom == 0 {
            return Ok(());
        }
        let prices: Vec<_> = self
            .config
            .spot_markets
            .iter()
            .filter_map(|m| self.provider.spot_price(*m).ok().map(|p| (*m, p)))
            .collect();
        let footprint = self.footprint();
        if let Some(req) = self
            .brain
            .consider_acquisition(&footprint, &prices, self.provider.now())
        {
            let count = req.count.min(headroom);
            if count == 0 {
                return Ok(());
            }
            if let Ok(id) = self.provider.request_spot(req.market, count, req.bid) {
                let nodes = self
                    .job
                    .add_machines(NodeClass::Transient, count as usize)?;
                self.alloc_nodes.insert(id, nodes);
                self.allocations += 1;
            }
        }
        Ok(())
    }

    /// Chaos injection: one live spot allocation vanishes with **no
    /// usable warning** (the paper's "effective failure": the two-minute
    /// notice arrived too late to drain). The machines are killed
    /// abruptly and AgileML runs online rollback recovery from the
    /// BackupPSs. Returns the clock the job rolled back to, or `None`
    /// when no spot allocation is live.
    pub fn inject_failure(&mut self) -> Result<Option<u64>, String> {
        let Some((&alloc, _)) = self.alloc_nodes.iter().next() else {
            return Ok(None);
        };
        let nodes = self.alloc_nodes.remove(&alloc).expect("key just observed");
        // The provider still refunds the hour (it evicted the machines);
        // terminate bills nothing further since we model the provider's
        // own revocation as an immediate teardown.
        let _ = self.provider.terminate(alloc);
        self.evictions += 1;
        let rolled = self.job.fail_nodes(&nodes)?;
        Ok(Some(rolled))
    }

    /// Hour-end renewal decisions: allocations not worth renewing are
    /// released (machines leave gracefully — a voluntary drain).
    fn renewals(&mut self) -> Result<(), String> {
        let now = self.provider.now();
        for a in self.provider.spot_allocations() {
            let to_end = (a.hour_start + SimDuration::from_hours(1)).since(now);
            if to_end > STEP || a.warned {
                continue;
            }
            let renew_price = self.provider.spot_price(a.market).unwrap_or(a.bid);
            let view = AllocView {
                market: a.market,
                count: a.count,
                hourly_price: renew_price,
                bid_delta: Some((a.bid - renew_price).max(0.0001)),
                time_remaining: to_end,
                work_rate: f64::from(a.market.instance_type().vcpus),
            };
            let rest: Vec<AllocView> = self
                .footprint()
                .into_iter()
                .filter(|v| v.bid_delta.is_none() || v.market != a.market || v.count != a.count)
                .collect();
            let keep = self.brain.should_renew(&view, &rest, renew_price) && renew_price <= a.bid;
            if !keep {
                if let Some(nodes) = self.alloc_nodes.remove(&a.id) {
                    self.job.evict_with_warning(&nodes)?;
                }
                let _ = self.provider.terminate(a.id);
            }
        }
        Ok(())
    }

    /// Finishes the session: terminates holdings, shuts the job down,
    /// and returns the bill and training outcome.
    ///
    /// The on-demand tier is terminated immediately; per Sec. 5, spot
    /// allocations would idle to the end of their billing hours hoping
    /// for a refund — the simulated equivalent simply terminates them,
    /// since their current hours are already paid either way.
    pub fn finish(mut self) -> Result<ProteusReport, String> {
        let dataset: Vec<A::Datum> = self.job.dataset().to_vec();
        let final_objective = self.job.objective(&dataset)?;
        let status = self.job.status()?;
        for (id, _) in std::mem::take(&mut self.alloc_nodes) {
            let _ = self.provider.terminate(id);
        }
        let market_time = self.provider.now() - self.job_start;
        self.job.shutdown()?;
        Ok(ProteusReport {
            cost: self.provider.account().total_cost(),
            market_time,
            usage: *self.provider.account().usage(),
            evictions: self.evictions,
            allocations: self.allocations,
            clocks: status.min_clock,
            final_objective,
        })
    }
}
