//! Chaos suite for the session-level eviction defense: the forecaster's
//! mistakes, billing neutrality, and the GCE short-warning regime.
//!
//! The agileml-side suite (`crates/agileml/tests/predrain.rs`) storms
//! the training plane's pre-drain path directly; this suite turns the
//! forecaster loose on a live market and checks the *session* contract:
//! whatever the forecaster gets wrong — alerts that never materialize,
//! evictions it never saw coming, storms of alerts on a volatile market
//! — the session keeps training or surfaces a typed [`ProteusError`],
//! and the defense never touches the bill (forecasting, pre-draining,
//! and adaptive checkpointing perform no market operations).

use proteus::bidbrain::ForecastConfig;
use proteus::simtime::SimDuration;
use proteus::{Proteus, ProteusConfig};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig, Rating};

/// Training clock every scenario must reach.
const TARGET: u64 = 10;

fn app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 30,
        cols: 20,
        rank: 3,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn data() -> Vec<Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 30,
            cols: 20,
            true_rank: 2,
            observed: 500,
            noise: 0.02,
        },
        7,
    )
}

/// A forecaster tuned to cry wolf: hair-trigger thresholds and a wide
/// margin band make routine calm-market jitter look dangerous, maximizing
/// false-positive pre-drains.
fn hair_trigger() -> ForecastConfig {
    ForecastConfig {
        alert_threshold: 0.35,
        rearm_threshold: 0.2,
        margin_band: 0.4,
        ..ForecastConfig::default()
    }
}

/// On a volatile market (a spike every couple of hours) the forecaster
/// fires repeatedly — anticipatory alerts on spike onsets, crossing
/// alerts at worst — and every alert pre-drains live ActivePS state.
/// The session must absorb the storm of demotions plus the real
/// evictions behind them, and still converge.
#[test]
fn alert_storm_on_volatile_market_converges() {
    let config = ProteusConfig {
        max_machines: 8,
        market_model: proteus::market::MarketModel::volatile(),
        forecast: Some(ForecastConfig::default()),
        ..ProteusConfig::default()
    };
    let mut session = Proteus::launch(app(), data(), config).expect("launch");
    session.run_market_hours(6.0).expect("market run");
    session.wait_clock(TARGET).expect("training progress");
    let report = session.finish().expect("finish");
    assert!(
        report.forecast_alerts >= 1,
        "a volatile market must trip the forecaster: {report:?}"
    );
    assert!(
        report.final_objective < 0.15,
        "converged through the alert storm: {}",
        report.final_objective
    );
    // Adaptive checkpointing ran against the forecasted hazard.
    assert!(
        report.checkpoints >= 1,
        "no adaptive checkpoint: {report:?}"
    );
}

/// A warning-less death the forecaster never predicted (the price never
/// moved — the machine just died). The alert path stays silent and the
/// established rollback recovery carries the session.
#[test]
fn eviction_without_alert_falls_back_to_rollback() {
    let config = ProteusConfig {
        max_machines: 8,
        forecast: Some(ForecastConfig::default()),
        ..ProteusConfig::default()
    };
    let mut session = Proteus::launch(app(), data(), config).expect("launch");
    assert!(session.transient_machines() > 0);
    session.wait_clock(5).expect("warm-up");
    let rolled = session
        .inject_failure()
        .expect("failure path")
        .expect("an allocation was live");
    session
        .wait_clock(rolled + 10)
        .expect("post-recovery progress");
    session.run_market_hours(2.0).expect("market continues");
    let report = session.finish().expect("finish");
    assert!(report.evictions >= 1, "the kill must register: {report:?}");
    assert!(
        report.final_objective < 0.15,
        "converged after the unforecast eviction: {}",
        report.final_objective
    );
}

/// Billing neutrality: the whole defense — forecasting, pre-draining,
/// adaptive checkpointing — is passive on the market plane, so a run
/// with a cry-wolf forecaster must produce the *bit-identical* bill,
/// machine-hours, allocations, and evictions of the forecasting-off run.
/// The false-positive pre-drains cost migration time inside the training
/// plane and nothing anywhere else.
#[test]
fn false_alerts_never_change_the_bill() {
    let run = |forecast: Option<ForecastConfig>| {
        let config = ProteusConfig {
            max_machines: 8,
            forecast,
            ..ProteusConfig::default()
        };
        let mut session = Proteus::launch(app(), data(), config).expect("launch");
        session.run_market_hours(4.0).expect("market run");
        session.wait_clock(TARGET).expect("training progress");
        session.finish().expect("finish")
    };
    let off = run(None);
    let on = run(Some(hair_trigger()));

    assert!(
        on.forecast_alerts >= 1,
        "the hair-trigger config fired no alert — the comparison is \
         vacuous: {on:?}"
    );
    assert_eq!(
        on.cost.to_bits(),
        off.cost.to_bits(),
        "forecasting changed the bill: {} vs {}",
        on.cost,
        off.cost
    );
    assert_eq!(on.usage, off.usage, "machine-hours diverged");
    assert_eq!(on.allocations, off.allocations, "acquisitions diverged");
    assert_eq!(on.evictions, off.evictions, "evictions diverged");
    // And the defense itself left zeros on the disabled run.
    assert_eq!(off.forecast_alerts, 0);
    assert_eq!(off.pre_drains, 0);
    assert_eq!(off.checkpoints, 0);
}

/// GCE gives thirty seconds of warning — less than a drain needs. With
/// the warning lead dialed down, warned evictions degrade to the
/// rollback path; the session must ride them out on a volatile market.
#[test]
fn gce_short_warning_lead_survives_volatile_market() {
    let config = ProteusConfig {
        max_machines: 8,
        market_model: proteus::market::MarketModel::volatile(),
        forecast: Some(ForecastConfig::default()),
        warning_lead: SimDuration::from_secs(30),
        ..ProteusConfig::default()
    };
    let mut session = Proteus::launch(app(), data(), config).expect("launch");
    session.run_market_hours(6.0).expect("market run");
    session.wait_clock(TARGET).expect("training progress");
    let report = session.finish().expect("finish");
    assert!(
        report.final_objective < 0.15,
        "converged under 30-second warnings: {}",
        report.final_objective
    );
}
