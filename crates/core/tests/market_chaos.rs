//! Seed-deterministic chaos suite for the *market side* of a Proteus
//! session.
//!
//! The AgileML chaos suite (`crates/agileml/tests/chaos.rs`) storms the
//! training plane; this suite storms the provider: capacity droughts
//! that refuse every spot request, API throttling, multi-minute boot
//! delays, and launch-then-die instances. The contract under every
//! regime is the same — the session either keeps training (the reliable
//! tier guarantees forward progress) or surfaces a typed
//! [`ProteusError`]; it never panics and never wedges past a driver
//! timeout.
//!
//! Each run prints `chaos: scenario=<name> seed=<seed>` *before* doing
//! anything, so a CI failure replays from the printed seed alone:
//! `PROTEUS_CHAOS_SEEDS=<seed> cargo test -p proteus --test
//! market_chaos <name>`. `PROTEUS_CHAOS_FULL=1` widens the sweep.

use std::sync::Arc;

use proteus::market::{obs_keys, MarketFaultPlan};
use proteus::obs::Recorder;
use proteus::simtime::{SimDuration, SimTime};
use proteus::{Proteus, ProteusConfig, ProteusError, ProteusReport};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig, Rating};

/// Training clock every scenario must reach — modest, because a
/// drought-starved session trains on the reliable tier alone.
const TARGET: u64 = 10;

fn app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 30,
        cols: 20,
        rank: 3,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn data() -> Vec<Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 30,
            cols: 20,
            true_rank: 2,
            observed: 500,
            noise: 0.02,
        },
        7,
    )
}

/// Session shape shared by every scenario: laptop-sized cluster, a
/// short watchdog window and backoff cap so wedge → degrade → recover
/// all fits inside a two-hour market run.
fn chaos_config(plan: MarketFaultPlan) -> ProteusConfig {
    ProteusConfig {
        max_machines: 8,
        market_faults: Some(plan),
        watchdog_window: SimDuration::from_mins(10),
        backoff_base: SimDuration::from_mins(2),
        backoff_cap: SimDuration::from_mins(10),
        ..ProteusConfig::default()
    }
}

/// Seeds to sweep; the seed feeds the provider's fault-plan RNG.
fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("PROTEUS_CHAOS_SEEDS") {
        return s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
    }
    if std::env::var("PROTEUS_CHAOS_FULL").is_ok() {
        return vec![3, 5, 7, 11, 13, 17, 19, 23];
    }
    vec![3, 11]
}

/// Runs `scenario` across the seed sweep. Every market regime leaves
/// the reliable tier untouched, so recovery is always possible: a typed
/// error is a failure here, a panic doubly so.
fn sweep(name: &str, scenario: impl Fn(u64) -> Result<ProteusReport, ProteusError>) {
    for seed in seeds() {
        println!("chaos: scenario={name} seed={seed}");
        let report = match scenario(seed) {
            Ok(r) => r,
            Err(e) => panic!("chaos: scenario={name} seed={seed}: expected recovery, got: {e}"),
        };
        assert!(
            report.clocks >= TARGET,
            "chaos: scenario={name} seed={seed}: trained only {} clocks",
            report.clocks
        );
        assert!(
            report.final_objective.is_finite() && report.final_objective < 0.5,
            "chaos: scenario={name} seed={seed}: objective {} did not converge",
            report.final_objective
        );
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// Total capacity drought for the first hour: every spot request is
/// refused, the backoff ladder climbs, the watchdog degrades the loop
/// onto the reliable tier plus an on-demand fallback machine, and when
/// the drought lifts a re-probe reacquires spot capacity.
fn capacity_drought(seed: u64) -> Result<ProteusReport, ProteusError> {
    // The job starts after the β-training window; anchor the drought
    // there so it covers the session's first market hour.
    let start = SimTime::EPOCH + ProteusConfig::default().beta_training;
    let plan =
        MarketFaultPlan::new(seed).with_drought(start, start + SimDuration::from_hours(1), 0);
    let rec = Arc::new(Recorder::new());
    let mut session =
        Proteus::launch_observed(app(), data(), chaos_config(plan), Arc::clone(&rec))?;
    assert_eq!(
        session.transient_machines(),
        0,
        "a total drought must refuse the launch-time sweep"
    );
    session.run_market_hours(2.0)?;
    session.wait_clock(TARGET)?;
    let report = session.finish()?;
    assert!(report.refusals >= 1, "no refusal recorded: {report:?}");
    assert!(
        report.degraded_time > SimDuration::ZERO,
        "the watchdog never degraded: {report:?}"
    );
    assert!(
        report.fallback_on_demand >= 1,
        "degraded mode provisioned no fallback: {report:?}"
    );
    assert!(
        report.allocations >= 1,
        "the sweep never recovered after the drought: {report:?}"
    );
    // The injected refusals must surface through the metrics registry —
    // not silently die inside the fault layer (the report is the
    // session's view; the recorder is the provider's).
    let metrics = rec.metrics();
    assert!(
        metrics.counter(obs_keys::CAPACITY_REFUSALS) >= u64::from(report.refusals),
        "recorded {} capacity refusals, report saw {}",
        metrics.counter(obs_keys::CAPACITY_REFUSALS),
        report.refusals
    );
    // And the degraded episode must be on the timeline, with the
    // gauge's time-at-1.0 matching the report's degraded_time.
    let tl = rec.timeline();
    assert!(tl.count("session.degraded") >= 1, "no degraded event");
    assert!(tl.count("session.restored") >= 1, "no restore event");
    assert_eq!(
        metrics.gauge_hist("session.degraded").time_at(1.0),
        report.degraded_time,
        "degraded gauge disagrees with the report"
    );
    assert!(tl.is_monotone(), "timeline stamps must be monotone");
    Ok(report)
}

/// Heavy API throttling for the whole run: three in four spot requests
/// bounce with `RequestLimitExceeded`. The loop honors the advertised
/// retry delay; either a grant lands between bursts or — on seeds where
/// every draw bounces — the watchdog falls back to on-demand capacity.
fn throttle_burst(seed: u64) -> Result<ProteusReport, ProteusError> {
    let plan = MarketFaultPlan::new(seed).with_throttle(0.75, SimDuration::from_mins(5));
    let rec = Arc::new(Recorder::new());
    let mut session =
        Proteus::launch_observed(app(), data(), chaos_config(plan), Arc::clone(&rec))?;
    session.run_market_hours(2.0)?;
    session.wait_clock(TARGET)?;
    let report = session.finish()?;
    assert!(report.throttles >= 1, "no throttle recorded: {report:?}");
    assert!(
        report.allocations >= 1 || report.fallback_on_demand >= 1,
        "neither a grant nor the on-demand fallback landed: {report:?}"
    );
    // Injected throttles surface as recorder counters and timeline
    // events, one per refused request.
    let metrics = rec.metrics();
    assert!(
        metrics.counter(obs_keys::THROTTLED) >= u64::from(report.throttles),
        "recorded {} throttles, report saw {}",
        metrics.counter(obs_keys::THROTTLED),
        report.throttles
    );
    assert!(
        rec.timeline().count("market.throttled") as u64 >= u64::from(report.throttles),
        "throttle events missing from the timeline"
    );
    Ok(report)
}

/// Every launch takes three to ten minutes to boot. Booting instances
/// must not be handed to the trainer, double-requested against, or
/// billed before they come up.
fn slow_boot(seed: u64) -> Result<ProteusReport, ProteusError> {
    let plan = MarketFaultPlan::new(seed)
        .with_boot_delay(SimDuration::from_mins(3), SimDuration::from_mins(10));
    let mut session = Proteus::launch(app(), data(), chaos_config(plan))?;
    session.run_market_hours(2.0)?;
    session.wait_clock(TARGET)?;
    let report = session.finish()?;
    assert!(report.allocations >= 1, "no allocation landed: {report:?}");
    assert!(
        report.cost > 0.0,
        "launched spot hours must bill: {report:?}"
    );
    Ok(report)
}

/// Launch-then-die: every grant is fated to die — warning-less, hour
/// refunded — within twenty minutes of coming up. The session must
/// absorb the repeated rollback recoveries and keep converging on the
/// reliable tier between corpses.
fn launch_then_die(seed: u64) -> Result<ProteusReport, ProteusError> {
    let plan = MarketFaultPlan::new(seed).with_infant_mortality(1.0, SimDuration::from_mins(20));
    let rec = Arc::new(Recorder::new());
    let mut session =
        Proteus::launch_observed(app(), data(), chaos_config(plan), Arc::clone(&rec))?;
    session.run_market_hours(2.0)?;
    session.wait_clock(TARGET)?;
    let report = session.finish()?;
    assert!(report.allocations >= 1, "no allocation landed: {report:?}");
    assert!(
        report.evictions >= 1,
        "every grant was doomed, yet none died: {report:?}"
    );
    // Infant deaths must land in the metrics registry and on the
    // timeline as provider evictions.
    let metrics = rec.metrics();
    assert!(
        metrics.counter(obs_keys::INFANT_DEATHS) >= 1,
        "no infant death recorded"
    );
    assert!(
        metrics.counter(obs_keys::EVICTIONS) >= metrics.counter(obs_keys::INFANT_DEATHS),
        "evictions counter must include infant deaths"
    );
    assert!(
        rec.timeline().count("market.evicted") >= 1,
        "no eviction event on the timeline"
    );
    Ok(report)
}

// ---------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------

#[test]
fn capacity_drought_degrades_then_recovers() {
    sweep("capacity_drought", capacity_drought);
}

#[test]
fn throttle_burst_backs_off_and_lands_grants() {
    sweep("throttle_burst", throttle_burst);
}

#[test]
fn slow_boot_defers_integration_and_billing() {
    sweep("slow_boot", slow_boot);
}

#[test]
fn launch_then_die_rolls_back_and_converges() {
    sweep("launch_then_die", launch_then_die);
}

/// Misconfigured resilience knobs surface as typed config errors, not
/// panics deep in the loop.
#[test]
fn resilience_config_is_validated() {
    let bad = ProteusConfig {
        watchdog_window: SimDuration::from_secs(30),
        ..ProteusConfig::default()
    };
    let err = match Proteus::launch(app(), data(), bad) {
        Err(e) => e,
        Ok(_) => panic!("sub-step watchdog must be rejected"),
    };
    assert!(matches!(err, ProteusError::Config(_)), "got: {err:?}");

    let bad = ProteusConfig {
        backoff_base: SimDuration::from_mins(40),
        backoff_cap: SimDuration::from_mins(10),
        ..ProteusConfig::default()
    };
    let err = match Proteus::launch(app(), data(), bad) {
        Err(e) => e,
        Ok(_) => panic!("inverted backoff must be rejected"),
    };
    assert!(matches!(err, ProteusError::Config(_)), "got: {err:?}");
}
