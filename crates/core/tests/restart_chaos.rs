//! Session-level restart chaos: the whole reliable tier — controller
//! host included — vanishes, and the session must come back from its
//! last durable checkpoint.
//!
//! The contract under every schedule:
//!
//! * **100% reliable loss** tears the job down and relaunches from the
//!   last durable checkpoint (or from scratch if none was ever taken);
//!   the restarted job's clock resumes at the checkpointed clock and
//!   only moves forward — the consistent clock is monotone
//!   non-decreasing across restarts;
//! * **strict-subset loss** is handled in-job wherever the controller
//!   can prove repair safe, without burning a restart;
//! * every path either converges or surfaces a typed [`ProteusError`] —
//!   never a panic, and the report's `reliable_failures` / `restarts` /
//!   `work_lost_to_restart` counters account for what happened.

use std::sync::Arc;

use proteus::bidbrain::ForecastConfig;
use proteus::session::ReliableRecovery;
use proteus::simtime::SimDuration;
use proteus::{Proteus, ProteusConfig};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig, Rating};
use proteus_obs::Recorder;

fn app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 30,
        cols: 20,
        rank: 3,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn data() -> Vec<Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 30,
            cols: 20,
            true_rank: 2,
            observed: 500,
            noise: 0.02,
        },
        7,
    )
}

fn cfg(reliable: u32) -> ProteusConfig {
    ProteusConfig {
        max_machines: 8,
        reliable_machines: reliable,
        ..ProteusConfig::default()
    }
}

/// The acceptance scenario: checkpoint, lose the entire reliable tier
/// (controller included), restart, and finish training — with the
/// resumed clock exactly the checkpointed clock and all progress
/// monotone from there.
#[test]
fn total_reliable_loss_restarts_from_last_checkpoint() {
    let rec = Arc::new(Recorder::new());
    let mut session =
        Proteus::launch_observed(app(), data(), cfg(2), Arc::clone(&rec)).expect("launch");
    session.run_market_hours(1.0).expect("market warm-up");
    session.wait_clock(8).expect("pre-checkpoint progress");
    let ck = session.checkpoint_now().expect("forced checkpoint");
    assert!(ck >= 8, "checkpoint clock tracks training progress: {ck}");

    // Make progress past the checkpoint so the restart has work to lose.
    session
        .wait_clock(ck + 5)
        .expect("post-checkpoint progress");
    let resumed = session
        .inject_total_reliable_failure()
        .expect("restart path");
    assert_eq!(
        resumed, ck,
        "the session must resume from the checkpointed clock"
    );

    // The restarted incarnation only moves forward from the checkpoint.
    let st = session.job().status().expect("restarted controller status");
    assert!(
        st.min_clock >= resumed,
        "clock regressed across restart: {} < {resumed}",
        st.min_clock
    );
    session
        .wait_clock(resumed + 10)
        .expect("post-restart progress");
    session.run_market_hours(1.0).expect("market resumes");

    let report = session.finish().expect("finish");
    assert_eq!(report.reliable_failures, 1, "one injected loss: {report:?}");
    assert_eq!(report.restarts, 1, "one restart: {report:?}");
    assert!(
        report.work_lost_to_restart >= 5,
        "progress past the checkpoint was forfeited: {report:?}"
    );
    assert!(
        report.clocks >= resumed + 10,
        "training finished past the restart point: {report:?}"
    );
    assert!(
        report.final_objective < 0.15,
        "converged after the restart: {}",
        report.final_objective
    );
    let timeline = rec.to_jsonl();
    assert!(
        timeline.contains("session.checkpoint_restored"),
        "restore must be on the obs timeline"
    );
    assert!(
        timeline.contains("session.checkpoint"),
        "the checkpoint itself must be on the obs timeline"
    );
}

/// Total loss before any checkpoint was ever taken: the restart falls
/// back to a from-scratch relaunch (clock 0) and every completed clock
/// is accounted as lost work. The session still converges.
#[test]
fn total_loss_without_checkpoint_restarts_from_scratch() {
    let mut session = Proteus::launch(app(), data(), cfg(2)).expect("launch");
    session.run_market_hours(0.5).expect("market warm-up");
    session.wait_clock(6).expect("progress");
    let resumed = session
        .inject_total_reliable_failure()
        .expect("restart path");
    assert_eq!(resumed, 0, "no checkpoint means a from-scratch restart");
    session.wait_clock(10).expect("post-restart progress");
    let report = session.finish().expect("finish");
    assert_eq!(report.restarts, 1);
    assert!(
        report.work_lost_to_restart >= 6,
        "all pre-restart progress was lost: {report:?}"
    );
    assert!(report.final_objective < 0.15);
}

/// A strict-subset reliable loss goes through the controller first: if
/// the protocol state allows in-job repair the session spends no
/// restart; if not, the typed fault escalates to a checkpoint restart.
/// Either way the session converges and the counters agree with the
/// outcome.
#[test]
fn partial_reliable_loss_prefers_in_job_repair() {
    let mut session = Proteus::launch(app(), data(), cfg(3)).expect("launch");
    session.run_market_hours(0.5).expect("market warm-up");
    session.wait_clock(6).expect("progress");
    session.checkpoint_now().expect("safety checkpoint");
    let outcome = session.inject_reliable_failure(1).expect("injection");
    assert_ne!(outcome, ReliableRecovery::NoOp, "a victim existed");
    session.wait_clock(12).expect("post-recovery progress");
    let report = session.finish().expect("finish");
    assert_eq!(report.reliable_failures, 1);
    match outcome {
        ReliableRecovery::Repaired => {
            assert_eq!(report.restarts, 0, "repair must not burn a restart")
        }
        ReliableRecovery::Restarted => assert_eq!(report.restarts, 1),
        ReliableRecovery::NoOp => unreachable!(),
    }
    assert!(report.final_objective < 0.15);
}

/// Back-to-back disasters: a second total loss lands right after the
/// first restart, before any new checkpoint. Both restarts resume from
/// the same checkpoint and the clock still never regresses below it.
#[test]
fn repeated_total_loss_keeps_clock_monotone() {
    let mut session = Proteus::launch(app(), data(), cfg(2)).expect("launch");
    session.run_market_hours(0.5).expect("market warm-up");
    session.wait_clock(5).expect("progress");
    let ck = session.checkpoint_now().expect("checkpoint");
    let first = session.inject_total_reliable_failure().expect("restart 1");
    assert_eq!(first, ck);
    let second = session.inject_total_reliable_failure().expect("restart 2");
    assert_eq!(
        second, ck,
        "no newer checkpoint: the second restart resumes from the same one"
    );
    session.wait_clock(ck + 8).expect("post-restart progress");
    let report = session.finish().expect("finish");
    assert_eq!(report.restarts, 2);
    assert_eq!(report.reliable_failures, 2);
    assert!(
        report.clocks >= ck + 8,
        "progress is monotone across both restarts: {report:?}"
    );
    assert!(report.final_objective < 0.15);
}

/// Fault-free runs stay bit-identical with durable checkpointing
/// enabled at (near-)zero cost — the tightest adaptive cadence the
/// config validator allows: the checkpoint path is pure sim-time plus
/// in-memory serialization, so two identical runs bill identically —
/// and a checkpointing run bills exactly what a checkpointing-free run
/// bills.
#[test]
fn fault_free_checkpointing_is_deterministic_and_billing_neutral() {
    let run = |forecast: Option<ForecastConfig>| {
        let config = ProteusConfig {
            max_machines: 8,
            reliable_machines: 2,
            forecast,
            checkpoint_cost: SimDuration::from_secs(1),
            ..ProteusConfig::default()
        };
        let mut session = Proteus::launch(app(), data(), config).expect("launch");
        session.run_market_hours(4.0).expect("market run");
        session.wait_clock(10).expect("progress");
        session.finish().expect("finish")
    };
    let a = run(Some(ForecastConfig::default()));
    let b = run(Some(ForecastConfig::default()));
    assert!(a.checkpoints >= 1, "cost 0 must checkpoint: {a:?}");
    assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "bill diverged");
    assert_eq!(a.usage, b.usage, "machine-hours diverged");
    assert_eq!(a.allocations, b.allocations);
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.checkpoints, b.checkpoints, "checkpoint schedule diverged");

    let off = run(None);
    assert_eq!(
        a.cost.to_bits(),
        off.cost.to_bits(),
        "durable checkpointing changed the bill"
    );
    assert_eq!(a.usage, off.usage);
    assert_eq!(off.checkpoints, 0);
}

/// The kill lands *between* a checkpoint and the next decision step —
/// the checkpoint just taken must be the restart point, proving saves
/// are atomic with respect to disasters (a half-written checkpoint can
/// never be restored because the store swaps whole encoded snapshots).
#[test]
fn checkpoint_interrupted_by_kill_restores_cleanly() {
    let mut session = Proteus::launch(app(), data(), cfg(2)).expect("launch");
    session.run_market_hours(0.5).expect("market warm-up");
    session.wait_clock(6).expect("progress");
    let ck = session.checkpoint_now().expect("checkpoint");
    // No intervening progress wait: the disaster races whatever was in
    // flight when the snapshot was cut.
    let resumed = session.inject_total_reliable_failure().expect("restart");
    assert_eq!(resumed, ck);
    session.wait_clock(ck + 5).expect("post-restart progress");
    let report = session.finish().expect("finish");
    assert_eq!(report.restarts, 1);
    assert!(report.final_objective < 0.15);
}
