//! End-to-end test of the full Proteus session: market + BidBrain +
//! real elastic training.

use proteus::{Proteus, ProteusConfig};
use proteus_mlapps::data::{netflix_like, MfDataConfig};
use proteus_mlapps::mf::{MatrixFactorization, MfConfig};

fn app() -> MatrixFactorization {
    MatrixFactorization::new(MfConfig {
        rows: 40,
        cols: 30,
        rank: 4,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    })
}

fn data() -> Vec<proteus_mlapps::mf::Rating> {
    netflix_like(
        &MfDataConfig {
            rows: 40,
            cols: 30,
            true_rank: 3,
            observed: 800,
            noise: 0.02,
        },
        42,
    )
}

#[test]
fn full_session_trains_under_market_churn() {
    let config = ProteusConfig {
        max_machines: 8,
        ..ProteusConfig::default()
    };
    let mut session = Proteus::launch(app(), data(), config).expect("launch");

    // BidBrain should have bought spot capacity immediately: the spot
    // discount makes acquisition a clear cost-per-work win.
    assert!(
        session.transient_machines() > 0,
        "initial allocation expected"
    );

    // Run six simulated market hours while training proceeds; require
    // real training progress.
    session.run_market_hours(6.0).expect("market run");
    session.wait_clock(20).expect("training progress");

    // Training implies network traffic; the aggregate simnet counters
    // are visible at the session surface.
    assert!(session.net_stats().messages > 0, "no cluster traffic seen");

    let report = session.finish().expect("finish");
    assert!(report.clocks >= 20);
    assert!(report.cost > 0.0, "spot hours cost money");
    assert!(report.allocations >= 1);
    assert!(
        report.final_objective < 0.1,
        "MF converged under churn: {}",
        report.final_objective
    );
    // The bill must beat renting the same machine-hours on-demand.
    let od_equiv = report.on_demand_equivalent(0.209);
    assert!(
        report.cost < od_equiv,
        "spot exploitation saves money: {} vs {}",
        report.cost,
        od_equiv
    );
}

#[test]
fn session_survives_injected_failure() {
    let config = ProteusConfig {
        max_machines: 8,
        ..ProteusConfig::default()
    };
    let mut session = Proteus::launch(app(), data(), config).expect("launch");
    assert!(session.transient_machines() > 0);
    session.wait_clock(5).expect("warm-up");

    // An allocation disappears with no usable warning.
    let rolled = session
        .inject_failure()
        .expect("failure path")
        .expect("an allocation was live");

    // Training recovers and keeps converging.
    session
        .wait_clock(rolled + 10)
        .expect("post-recovery progress");
    session.run_market_hours(2.0).expect("market continues");
    let report = session.finish().expect("finish");
    assert!(report.evictions >= 1);
    assert!(
        report.final_objective < 0.15,
        "converged after rollback recovery: {}",
        report.final_objective
    );
}

#[test]
fn session_rejects_invalid_config() {
    let bad = ProteusConfig {
        reliable_machines: 0,
        ..ProteusConfig::default()
    };
    assert!(Proteus::launch(app(), data(), bad).is_err());
}

/// An observed session puts every subsystem on one timeline: market
/// grants and billing, BidBrain's Eq. 4 candidate rankings, AgileML's
/// elasticity events, and the session state machine — with monotone
/// sim-time stamps, exportable as JSONL.
#[test]
fn observed_session_records_every_subsystem() {
    use proteus::obs::Recorder;
    use std::sync::Arc;

    let config = ProteusConfig {
        max_machines: 8,
        ..ProteusConfig::default()
    };
    let rec = Arc::new(Recorder::new());
    let mut session =
        Proteus::launch_observed(app(), data(), config, Arc::clone(&rec)).expect("launch");
    session.run_market_hours(2.0).expect("market run");
    session.wait_clock(10).expect("training progress");
    // Drain pending job events onto the timeline before finishing.
    let _ = session.job().events();
    let report = session.finish().expect("finish");

    let tl = rec.timeline();
    assert!(tl.count("market.") > 0, "no market events");
    assert!(tl.count("bid.") > 0, "no BidBrain events");
    assert!(tl.count("agile.") > 0, "no AgileML events");
    assert!(tl.count("session.launched") == 1, "no session launch");
    assert!(tl.count("session.finished") == 1, "no session finish");
    assert!(tl.is_monotone(), "timeline stamps must be monotone");

    // The export serializes every timeline record as one JSONL line.
    let jsonl = rec.to_jsonl();
    assert_eq!(jsonl.lines().count(), tl.len());
    assert!(jsonl.lines().all(|l| l.starts_with("{\"t_ms\":")));

    // Spot grants recorded must cover the report's allocations.
    let metrics = rec.metrics();
    assert!(
        metrics.counter(proteus::market::obs_keys::SPOT_GRANTS) >= u64::from(report.allocations),
        "grant counter fell behind the report"
    );
}
