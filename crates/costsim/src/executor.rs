//! Parallel fan-out of independent study job runs.
//!
//! A paper-scale study (Sec. 6.3: 1000 random starts × 4 schemes) is
//! embarrassingly parallel: every `run_job` is a pure function of the
//! shared trace set, β estimator, scheme, and start time. The executor
//! fans tasks across a thread pool with a work-stealing index and
//! writes each result into a pre-sized slot keyed by task index, so
//! aggregation order — and therefore every floating-point sum — is
//! identical to the serial loop regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable overriding the thread count.
pub const THREADS_ENV: &str = "PROTEUS_THREADS";

/// A fixed-size thread pool for index-addressed task fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyExecutor {
    threads: usize,
}

impl StudyExecutor {
    /// An executor running tasks on `threads` worker threads. One thread
    /// means the caller's thread runs everything (no spawning at all).
    pub fn new(threads: usize) -> Self {
        StudyExecutor {
            threads: threads.max(1),
        }
    }

    /// A strictly serial executor (the reference path).
    pub fn serial() -> Self {
        StudyExecutor::new(1)
    }

    /// Thread count from `PROTEUS_THREADS`, falling back to the
    /// machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        StudyExecutor::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(i)` for every `i in 0..n` and returns the results in
    /// index order.
    ///
    /// Workers claim indices from a shared atomic counter (work
    /// stealing, so long tasks don't serialize behind a static split)
    /// and publish into per-index slots. Because results are collected
    /// by index, the output is bit-identical to the serial loop for
    /// deterministic tasks, whatever the thread count or scheduling.
    pub fn run_indexed<T, F>(&self, n: usize, task: F) -> Vec<T>
    where
        T: Send + Sync,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(task).collect();
        }
        let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Each index is claimed exactly once, so the slot is
                    // always empty here.
                    let filled = slots[i].set(task(i)).is_ok();
                    debug_assert!(filled, "slot {i} claimed twice");
                });
            }
        });
        // The scoped threads above exit only after the shared counter
        // passes `n`, so every slot has been filled exactly once.
        #[allow(clippy::expect_used)]
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every index was claimed"))
            .collect()
    }
}

impl Default for StudyExecutor {
    fn default() -> Self {
        StudyExecutor::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let task = |i: usize| (i as f64).sqrt() * 3.0 + i as f64;
        let serial = StudyExecutor::serial().run_indexed(97, task);
        for threads in [2, 3, 8] {
            let parallel = StudyExecutor::new(threads).run_indexed(97, task);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn results_are_in_index_order() {
        let out = StudyExecutor::new(4).run_indexed(100, |i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert!(StudyExecutor::new(4).run_indexed(0, |i| i).is_empty());
        assert_eq!(StudyExecutor::new(4).run_indexed(1, |i| i), vec![0]);
    }

    #[test]
    fn zero_thread_request_is_clamped_to_one() {
        assert_eq!(StudyExecutor::new(0).threads(), 1);
    }

    #[test]
    fn long_tasks_do_not_serialize_behind_a_static_split() {
        // With work stealing, a pool of 2 finishes one slow task and
        // many fast ones concurrently; this is a smoke test that all
        // indices are claimed exactly once under contention.
        let out = StudyExecutor::new(2).run_indexed(64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }
}
