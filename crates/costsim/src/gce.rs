//! GCE-preemptible job simulation (paper Sec. 7 generality claim).
//!
//! Google preemptible instances have no bidding and no refunds: a fixed
//! 70 % discount, Poisson preemptions, a 30-second warning, and a
//! 24-hour lifetime cap. BidBrain's cost-per-work framework still
//! applies — β comes from the preemption model instead of price-history
//! replay — and AgileML's elasticity still turns each preemption into a
//! short pause rather than a restart. This module simulates such a job
//! so the EC2-vs-GCE comparison is a tested library capability.

use proteus_market::gce::{GceMarket, PreemptionModel};
use proteus_market::MarketKey;
use proteus_simtime::rng::seeded_stream;
use proteus_simtime::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scheme::JobSpec;

/// Parameters of a GCE run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GceRunConfig {
    /// Preemptible instances held (replaced immediately on preemption).
    pub fleet: u32,
    /// Preemption statistics.
    pub preemption: PreemptionModel,
    /// Progress pause per preemption (AgileML λ).
    pub eviction_pause: SimDuration,
    /// Simulation seed.
    pub seed: u64,
    /// Give up after this much simulated time.
    pub max_hours: f64,
}

impl Default for GceRunConfig {
    fn default() -> Self {
        GceRunConfig {
            fleet: 384,
            preemption: PreemptionModel::default(),
            eviction_pause: SimDuration::from_secs(240),
            seed: 0,
            max_hours: 96.0,
        }
    }
}

/// Outcome of a GCE preemptible run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GceOutcome {
    /// Dollars billed (fixed discount price × machine-hours).
    pub cost: f64,
    /// Wall-clock hours to completion.
    pub runtime_hours: f64,
    /// Preemptions suffered.
    pub preemptions: u32,
    /// Whether the job finished before `max_hours`.
    pub completed: bool,
}

/// Runs a job on a GCE-style provider: fixed-price preemptible fleet
/// plus the job's on-demand tier, Poisson preemptions, immediate
/// replacement (no bidding), λ pauses.
pub fn run_gce_job(job: &JobSpec, market: MarketKey, config: &GceRunConfig) -> GceOutcome {
    let gce = GceMarket::new(config.seed, config.preemption);
    let od_price = market.instance_type().on_demand_price;
    let preemptible_price = gce.price(market);
    let vcpus = f64::from(market.instance_type().vcpus);

    let fleet = f64::from(config.fleet);
    let mut cores = fleet * vcpus;
    if job.on_demand_works {
        cores += f64::from(job.on_demand_count) * vcpus;
    }
    let phi = job.phi_per_doubling.powf(cores.log2()).clamp(0.0, 1.0);
    let rate = cores * phi; // φ-scaled core-hours per hour.

    let fleet_rate_per_hour = fleet * config.preemption.preemptions_per_day / 24.0;
    let mut rng = seeded_stream(config.seed, 0x6CE);
    let mut exp_interval = || -> f64 {
        if fleet_rate_per_hour <= 0.0 {
            return f64::INFINITY;
        }
        let u: f64 = rng.gen_range(1e-12..1.0);
        -u.ln() / fleet_rate_per_hour
    };

    let step = 1.0 / 30.0; // Two-minute steps, matching the EC2 sim.
    let mut t = 0.0f64;
    let mut work = 0.0f64;
    let mut preemptions = 0u32;
    let mut next_preempt = exp_interval();
    let mut paused_until = 0.0f64;
    let mut completed = false;
    while t < config.max_hours {
        if t >= next_preempt {
            preemptions += 1;
            paused_until = paused_until.max(t + config.eviction_pause.as_hours_f64());
            next_preempt = t + exp_interval();
        }
        if t >= paused_until {
            work += rate * step;
        }
        t += step;
        if work >= job.work_core_hours {
            completed = true;
            break;
        }
    }

    let cost = fleet * preemptible_price * t + f64::from(job.on_demand_count) * od_price * t;
    GceOutcome {
        cost,
        runtime_hours: t,
        preemptions,
        completed,
    }
}

/// The β analogue for a GCE fleet: probability at least one preemption
/// hits within `window` (used by cost-per-work reasoning on GCE).
pub fn gce_fleet_beta(fleet: u32, model: &PreemptionModel, window: SimDuration) -> f64 {
    let per_instance = GceMarket::new(0, *model).preemption_probability(window);
    1.0 - (1.0 - per_instance).powi(fleet as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::default_on_demand_market;

    fn job() -> JobSpec {
        JobSpec::cluster_b_job(2.0, default_on_demand_market())
    }

    #[test]
    fn gce_run_completes_and_prices_at_fixed_discount() {
        let out = run_gce_job(&job(), default_on_demand_market(), &GceRunConfig::default());
        assert!(out.completed, "{out:?}");
        // Cost must be ~30% of the same machine-hours at on-demand price
        // (plus the small on-demand tier).
        let od_price = default_on_demand_market().instance_type().on_demand_price;
        let od_equiv = 384.0 * od_price * out.runtime_hours;
        assert!(
            out.cost < od_equiv * 0.45,
            "cost {} vs {}",
            out.cost,
            od_equiv
        );
        assert!(out.cost > od_equiv * 0.25);
    }

    #[test]
    fn preemption_pressure_slows_the_job() {
        let calm = run_gce_job(
            &job(),
            default_on_demand_market(),
            &GceRunConfig {
                preemption: PreemptionModel {
                    preemptions_per_day: 0.0,
                },
                ..GceRunConfig::default()
            },
        );
        let stormy = run_gce_job(
            &job(),
            default_on_demand_market(),
            &GceRunConfig {
                preemption: PreemptionModel {
                    preemptions_per_day: 10.0,
                },
                ..GceRunConfig::default()
            },
        );
        assert_eq!(calm.preemptions, 0);
        assert!(stormy.preemptions > 0);
        assert!(stormy.runtime_hours > calm.runtime_hours);
    }

    #[test]
    fn fleet_beta_grows_with_fleet_size() {
        let model = PreemptionModel::default();
        let one = gce_fleet_beta(1, &model, SimDuration::from_hours(1));
        let many = gce_fleet_beta(384, &model, SimDuration::from_hours(1));
        assert!(one < many);
        assert!(many < 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_gce_job(&job(), default_on_demand_market(), &GceRunConfig::default());
        let b = run_gce_job(&job(), default_on_demand_market(), &GceRunConfig::default());
        assert_eq!(a, b);
    }
}
