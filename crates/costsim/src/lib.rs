//! End-to-end cost/runtime simulation of elastic ML training schemes on
//! a dynamic spot market (paper Sec. 6.3).
//!
//! The paper's headline cost results come from replaying months of AWS
//! spot price history under four configurations:
//!
//! * **all on-demand** — the traditional baseline (cost 100 %);
//! * **Standard + Checkpoint** — run entirely on spot instances acquired
//!   with the standard strategy (cheapest market, bid = on-demand
//!   price), checkpointing at an MTTF-derived frequency and restarting
//!   from the last checkpoint on eviction;
//! * **Standard + AgileML** — the same bidding, but elasticity handled
//!   by AgileML (no checkpoint overhead, cheap evictions);
//! * **Proteus** — AgileML plus BidBrain's cost-per-work bidding across
//!   every market, hour-end renewal decisions, and free-compute
//!   exploitation.
//!
//! [`sim::run_job`] executes one job under one scheme against the
//! (synthetic) price traces via the full [`proteus_market`] billing
//! engine and [`proteus_bidbrain`] policy code; [`study`] aggregates
//! across many random start times exactly like the paper's methodology
//! (1000 random day/time starting points, cost normalized to the
//! on-demand baseline, final partial billing hours not charged to the
//! job).

// Study/simulation code returns typed outcomes, never panics; any
// retained expect documents a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod executor;
pub mod gce;
pub mod queue;
pub mod scheme;
pub mod sim;
pub mod study;

pub use executor::StudyExecutor;
pub use gce::{gce_fleet_beta, run_gce_job, GceOutcome, GceRunConfig};
pub use queue::{run_job_queue, QueueOutcome};
pub use scheme::{youngs_interval, JobSpec, Scheme, SchemeKind};
pub use sim::{run_job, run_job_observed, run_job_with_faults, SimOutcome};
pub use study::{run_study, run_study_with, StudyConfig, StudyEnv, StudyResult};

/// The bid-delta sweep the paper's BidBrain evaluates: `[$0.0001, $0.4]`
/// above the market price.
pub fn default_bid_deltas() -> Vec<f64> {
    proteus_bidbrain::BetaEstimator::default_deltas()
}
