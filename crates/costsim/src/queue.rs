//! Job-queue execution (paper Sec. 5).
//!
//! "Proteus assumes that multiple ML applications are executed in
//! sequence. Upon completing the final job in the queue, Proteus
//! immediately terminates the on-demand resources. It then waits until
//! the end of current billing hours to terminate the spot allocations,
//! in hope that they are evicted by AWS prior to the end of the billing
//! hour, lowering the overall cost."
//!
//! This module runs such a sequence against one shared provider: spot
//! allocations (and their already-paid partial hours) carry across job
//! boundaries — exactly the behavior the paper's per-job accounting
//! ("do not charge a given job for any minutes that remained in a job's
//! final billing hours") assumes — and the final teardown idles spot
//! allocations to their billing-hour ends hoping for eviction refunds.

use proteus_bidbrain::BetaEstimator;
use proteus_market::{ProviderEvent, TraceSet, UsageBreakdown};
use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::scheme::Scheme;
use crate::sim::JobSim;

/// Outcome of a queue of sequentially executed jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueOutcome {
    /// Wall-clock runtime of each job (start of its work to completion).
    pub job_runtimes: Vec<SimDuration>,
    /// Total dollars billed for the whole queue, including the final
    /// idle-to-hour-end teardown (minus any lucky eviction refunds).
    pub total_cost: f64,
    /// Time from queue start to the completion of the last job.
    pub makespan: SimDuration,
    /// Spot evictions across the queue (including teardown evictions).
    pub evictions: u32,
    /// Machine-hour usage across the queue.
    pub usage: UsageBreakdown,
    /// Whether every job finished within its horizon.
    pub completed: bool,
    /// Refunds collected during the hopeful teardown specifically.
    pub teardown_refunds: f64,
}

/// Runs `n_jobs` identical jobs back-to-back under one scheme, sharing
/// the provider (and therefore live spot allocations and their paid
/// hours) across job boundaries.
pub fn run_job_queue(
    scheme: &Scheme,
    n_jobs: usize,
    traces: &TraceSet,
    beta: &BetaEstimator,
    start: SimTime,
    per_job_horizon: SimDuration,
) -> QueueOutcome {
    assert!(n_jobs > 0, "a queue needs at least one job");
    let mut sim = JobSim::new(scheme, traces, beta, start);
    sim.provision_base();

    let mut job_runtimes = Vec::with_capacity(n_jobs);
    let mut completed = true;
    let mut last_end = start;
    for _ in 0..n_jobs {
        let job_start = sim.now().max(start);
        sim.reset_work_quota();
        let (end, done) = sim.run_until_done(job_start + per_job_horizon);
        job_runtimes.push(end - job_start);
        completed &= done;
        last_end = end;
    }

    // Sec. 5 teardown: on-demand released immediately; spot allocations
    // idle to the ends of their billing hours hoping for evictions.
    let refunds_before = sim.account_refunds();
    let evictions = sim.hopeful_teardown();
    let teardown_refunds = sim.account_refunds() - refunds_before;

    QueueOutcome {
        job_runtimes,
        total_cost: sim.account_cost(),
        makespan: last_end - start,
        evictions,
        usage: sim.account_usage(),
        completed,
        teardown_refunds,
    }
}

/// Internal teardown helpers surfaced by [`JobSim`] for the queue
/// runner; implemented here to keep `sim.rs` focused on the per-job
/// loop.
impl JobSim<'_> {
    /// The Sec. 5 hopeful teardown. Returns total evictions suffered
    /// over the whole simulation (including any during teardown).
    pub(crate) fn hopeful_teardown(&mut self) -> u32 {
        self.release_on_demand();
        // Idle each spot allocation to its billing-hour end; the
        // provider evicts (and refunds) any whose market spikes first.
        loop {
            let allocs = self.provider_mut().spot_allocations();
            // A warned allocation stops billing new hours (its hour
            // boundary never moves), so wait for its eviction instead —
            // otherwise a warning issued just before an hour end pins
            // `next_end` in place and the loop never advances.
            let Some(next_end) = allocs
                .iter()
                .map(|a| {
                    a.evict_at
                        .unwrap_or(a.hour_start + SimDuration::from_hours(1))
                })
                .min()
            else {
                break;
            };
            // `next_end` is a future hour boundary or eviction instant;
            // `advance_to` only errors on time moving backwards.
            #[allow(clippy::expect_used)]
            let events = self
                .provider_mut()
                .advance_to(next_end)
                .expect("time moves forward");
            let mut evicted_now = 0;
            for (_, ev) in &events {
                if matches!(ev, ProviderEvent::Evicted { .. }) {
                    evicted_now += 1;
                }
            }
            self.add_evictions(evicted_now);
            // Terminate every allocation whose hour just ended (before
            // it gets recharged the provider charges at the boundary —
            // we advanced exactly to the boundary, so the recharge has
            // happened; terminate and strip that fresh unused hour).
            for a in self.provider_mut().spot_allocations() {
                if a.hour_start >= next_end {
                    // The boundary recharge just hit: refund it by
                    // terminating immediately (zero usage this hour) and
                    // crediting the fresh charge like the per-job
                    // accounting does.
                    let paid = self
                        .provider_mut()
                        .spot_price_at(a.market, a.hour_start)
                        .unwrap_or(0.0);
                    self.credit(paid * f64::from(a.count));
                    let _ = self.provider_mut().terminate(a.id);
                }
            }
        }
        self.evictions_so_far()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{JobSpec, SchemeKind};
    use crate::sim::default_on_demand_market;
    use proteus_market::{MarketModel, PriceTrace, TraceGenerator};

    fn flat_traces(price: f64) -> TraceSet {
        let mut set = TraceSet::new();
        set.insert(default_on_demand_market(), PriceTrace::constant(price));
        set
    }

    fn scheme(hours: f64) -> Scheme {
        Scheme {
            kind: SchemeKind::paper_proteus(),
            job: JobSpec::cluster_b_job(hours, default_on_demand_market()),
        }
    }

    #[test]
    fn queue_completes_all_jobs_in_sequence() {
        let out = run_job_queue(
            &scheme(1.0),
            3,
            &flat_traces(0.05),
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(24),
        );
        assert!(out.completed);
        assert_eq!(out.job_runtimes.len(), 3);
        // Makespan covers all three jobs back to back.
        let sum: f64 = out.job_runtimes.iter().map(|r| r.as_hours_f64()).sum();
        assert!((out.makespan.as_hours_f64() - sum).abs() < 0.1);
    }

    #[test]
    fn job_boundaries_in_a_queue_are_free() {
        // The Sec. 5 point of queueing: allocations (and their paid
        // hours) carry across job boundaries, so three queued half-hour
        // jobs cost the same as one job with the combined work — the
        // boundary itself adds nothing.
        let traces = flat_traces(0.05);
        let beta = BetaEstimator::new();
        let fused = run_job_queue(
            &scheme(1.5),
            1,
            &traces,
            &beta,
            SimTime::EPOCH,
            SimDuration::from_hours(24),
        );
        assert!(fused.completed);
        let queued = run_job_queue(
            &scheme(0.5),
            3,
            &traces,
            &beta,
            SimTime::EPOCH,
            SimDuration::from_hours(24),
        );
        assert!(queued.completed);
        let ratio = queued.total_cost / fused.total_cost;
        assert!(
            (0.8..1.2).contains(&ratio),
            "3 queued jobs ({}) ≈ 1 fused job ({}), ratio {ratio}",
            queued.total_cost,
            fused.total_cost
        );
        // And the queue's realized total still beats renting the same
        // machine-hours on-demand.
        let od_equiv = queued.usage.total_hours() * 0.209;
        assert!(queued.total_cost < od_equiv);
    }

    #[test]
    fn teardown_survives_warning_straddling_an_hour_end() {
        // Regression test: a price spike just before a billing-hour end
        // issues a warning whose eviction lands *after* the boundary.
        // Warned leases stop billing new hours, so the teardown loop
        // must wait on `evict_at` rather than the (now frozen) hour end
        // — the old hour-end-only target spun forever here.
        let mut traces = TraceSet::new();
        traces.insert(
            default_on_demand_market(),
            PriceTrace::from_points(vec![
                (SimTime::EPOCH, 0.05),
                (SimTime::EPOCH + SimDuration::from_secs(3594), 5.0),
                (SimTime::EPOCH + SimDuration::from_secs(3780), 0.05),
            ])
            .expect("ordered points"),
        );
        let out = run_job_queue(
            &scheme(0.25),
            1,
            &traces,
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(24),
        );
        assert!(out.completed);
        assert!(
            out.evictions >= 1,
            "the straddling warning must land as an eviction: {out:?}"
        );
        assert!(
            out.teardown_refunds > 0.0,
            "the evicted hour is refunded during teardown: {out:?}"
        );
    }

    #[test]
    fn teardown_collects_refunds_on_spiky_markets() {
        // A market that spikes frequently: during the hopeful teardown
        // some allocations should be evicted and refunded.
        let gen = TraceGenerator::new(40, MarketModel::volatile());
        let keys = proteus_market::catalog::paper_markets();
        let traces = gen.generate_set(&keys, SimDuration::from_hours(24 * 4));
        let mut beta = BetaEstimator::new();
        for k in &keys {
            beta.train(
                *k,
                traces.get(k).expect("generated"),
                SimTime::EPOCH,
                SimTime::from_hours(24),
                SimDuration::from_mins(60),
                &BetaEstimator::default_deltas(),
            );
        }
        let mut any_refund = false;
        for start_h in [24u64, 30, 36, 42, 48] {
            let out = run_job_queue(
                &scheme(1.0),
                2,
                &traces,
                &beta,
                SimTime::from_hours(start_h),
                SimDuration::from_hours(24),
            );
            any_refund |= out.teardown_refunds > 0.0;
        }
        assert!(
            any_refund,
            "volatile markets should occasionally evict idling teardown allocations"
        );
    }
}
