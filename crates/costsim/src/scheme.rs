//! Job specifications and the four evaluated schemes.

use proteus_market::MarketKey;
use proteus_simtime::SimDuration;
use serde::{Deserialize, Serialize};

/// What the job needs and which reliable base it keeps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Useful work required, in core-hours at perfect scaling (φ = 1).
    pub work_core_hours: f64,
    /// Market whose instance type is used for on-demand machines.
    pub on_demand_market: MarketKey,
    /// On-demand machines held for the whole job (the reliable tier for
    /// the AgileML schemes; the paper's Proteus runs used 3).
    pub on_demand_count: u32,
    /// Whether the on-demand machines contribute compute (they do not in
    /// stage 3, the common configuration at high transient ratios — and
    /// the paper's Fig. 6 toy likewise counts their work as zero).
    pub on_demand_works: bool,
    /// vCPU budget BidBrain provisions toward. Proteus grows its
    /// footprint well past the on-demand fleet when spot capacity is
    /// cheap — the paper ran up to 189 spot + 3 on-demand machines
    /// against a 128-machine on-demand baseline.
    pub target_cores: u32,
    /// vCPU budget of the standard-bidding schemes, which replace the
    /// on-demand fleet like-for-like (Spot Fleet semantics).
    pub standard_cores: u32,
    /// Scalability coefficient per doubling (the φ model).
    pub phi_per_doubling: f64,
}

impl JobSpec {
    /// A job sized like the paper's Cluster-B runs: `hours` of work for
    /// 128 c4.xlarge machines (512 cores).
    pub fn cluster_b_job(hours: f64, on_demand_market: MarketKey) -> Self {
        let phi = 0.97f64;
        let cores = 512.0;
        JobSpec {
            // Work the 128-machine on-demand fleet finishes in `hours`.
            work_core_hours: cores * hours * phi.powf(cores.log2()),
            on_demand_market,
            on_demand_count: 3,
            on_demand_works: false,
            target_cores: 1_536, // Proteus over-provisions when cheap.
            standard_cores: 512, // Standard schemes replace like-for-like.
            phi_per_doubling: phi,
        }
    }
}

/// Which policy stack runs the job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchemeKind {
    /// All on-demand machines, no spot (the 100 % cost baseline).
    AllOnDemand {
        /// Machines to run.
        machines: u32,
    },
    /// Standard bidding + checkpoint/restart elasticity.
    StandardCheckpoint {
        /// Steady-state throughput lost to producing/storing checkpoints
        /// (paper observes 17 % with MTTF-derived frequency).
        checkpoint_overhead: f64,
        /// Work interval between checkpoints, in core-hours; work since
        /// the last checkpoint is lost on eviction.
        checkpoint_interval_core_hours: f64,
        /// Delay to restart on fresh machines after an eviction.
        restart_delay: SimDuration,
    },
    /// Standard bidding + checkpoint/restart with the checkpoint cadence
    /// re-derived every decision step from a live preemption forecast:
    /// Young's rule `τ* = sqrt(2·C/λ̂)` on the hazard rate `λ̂` the
    /// [`proteus_bidbrain::PreemptionForecaster`] reads off the held
    /// markets' price trajectories. Calm markets stretch the interval
    /// (shrinking the `C/τ` throughput tax); a climbing price tightens
    /// it, and an eviction alert triggers one immediate checkpoint so
    /// the predicted eviction loses almost nothing.
    AdaptiveCheckpoint {
        /// Wall time one checkpoint write takes (the `C` in Young's
        /// rule); also the pause paid for an alert-triggered checkpoint.
        checkpoint_cost: SimDuration,
        /// Delay to restart on fresh machines after an eviction.
        restart_delay: SimDuration,
    },
    /// Standard bidding + AgileML elasticity.
    StandardAgileML {
        /// Progress pause per eviction (AgileML λ).
        eviction_pause: SimDuration,
    },
    /// Full Proteus: BidBrain bidding + AgileML elasticity.
    Proteus {
        /// Progress pause per eviction (AgileML λ).
        eviction_pause: SimDuration,
        /// Progress pause per footprint change (AgileML σ).
        scale_pause: SimDuration,
        /// Candidate bid deltas BidBrain sweeps; pin to one value for
        /// the fixed-delta ablation (paper Sec. 6.3 reports that always
        /// bidding just above market ran 3–4× slower).
        bid_deltas: Vec<f64>,
    },
    /// One fleet-managed trial run as an *independent* job: the same
    /// BidBrain policy stack as [`SchemeKind::Proteus`] but with the
    /// trial's own dedicated reliable machines. This is the baseline the
    /// fleet scheduler is judged against — a fleet that bin-packs many
    /// trials onto a shared reliable pool must beat a per-job-independent
    /// run of the same trials on $/work.
    Fleet {
        /// Progress pause per eviction (AgileML λ).
        eviction_pause: SimDuration,
        /// Progress pause per footprint change (AgileML σ).
        scale_pause: SimDuration,
        /// Candidate bid deltas BidBrain sweeps.
        bid_deltas: Vec<f64>,
    },
}

impl SchemeKind {
    /// The paper's checkpointing baseline parameters (17 % overhead).
    pub fn paper_checkpoint() -> Self {
        SchemeKind::StandardCheckpoint {
            checkpoint_overhead: 0.17,
            // ≈20 minutes of 512-core progress between checkpoints.
            checkpoint_interval_core_hours: 170.0,
            restart_delay: SimDuration::from_mins(8),
        }
    }

    /// The adaptive arm of the checkpointing baseline: same restart
    /// delay, same per-checkpoint cost the fixed baseline's 17 %
    /// overhead implies (0.17 × ≈20 min of fleet progress ≈ 3.4 min),
    /// but the interval floats with the forecasted hazard instead of
    /// being pinned to the MTTF-derived constant.
    pub fn paper_adaptive_checkpoint() -> Self {
        SchemeKind::AdaptiveCheckpoint {
            checkpoint_cost: SimDuration::from_secs(204),
            restart_delay: SimDuration::from_mins(8),
        }
    }

    /// Standard bidding with AgileML's cheap elasticity.
    pub fn paper_standard_agileml() -> Self {
        SchemeKind::StandardAgileML {
            eviction_pause: SimDuration::from_secs(90),
        }
    }

    /// Full Proteus with AgileML overheads.
    ///
    /// The eviction pause covers the λ the paper measures end-to-end:
    /// the one-iteration blip plus data-reassignment and (for bulk
    /// evictions) the drain/promotion transition — a few minutes, which
    /// is what keeps BidBrain from bidding recklessly close to the
    /// market price purely to farm free compute (Sec. 6.3 reports that
    /// always bidding just above market ran 3–4× slower).
    pub fn paper_proteus() -> Self {
        SchemeKind::Proteus {
            eviction_pause: SimDuration::from_secs(240),
            scale_pause: SimDuration::from_secs(30),
            bid_deltas: crate::default_bid_deltas(),
        }
    }

    /// Proteus pinned to a single bid delta (ablation).
    pub fn proteus_fixed_delta(delta: f64) -> Self {
        SchemeKind::Proteus {
            eviction_pause: SimDuration::from_secs(240),
            scale_pause: SimDuration::from_secs(30),
            bid_deltas: vec![delta],
        }
    }

    /// A fleet trial run independently (the per-job baseline the fleet
    /// scheduler must beat), with the paper's Proteus overheads.
    pub fn fleet_trial() -> Self {
        SchemeKind::Fleet {
            eviction_pause: SimDuration::from_secs(240),
            scale_pause: SimDuration::from_secs(30),
            bid_deltas: crate::default_bid_deltas(),
        }
    }

    /// Short label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::AllOnDemand { .. } => "AllOnDemand",
            SchemeKind::StandardCheckpoint { .. } => "Standard+Checkpoint",
            SchemeKind::AdaptiveCheckpoint { .. } => "Adaptive+Checkpoint",
            SchemeKind::StandardAgileML { .. } => "Standard+AgileML",
            SchemeKind::Proteus { .. } => "Proteus",
            SchemeKind::Fleet { .. } => "Fleet",
        }
    }
}

/// Young's approximation for the optimal checkpoint interval:
/// `τ* = sqrt(2 · C · MTTF)` where `C` is the time to write one
/// checkpoint. Returns the interval and the resulting steady-state
/// overhead fraction `C / τ*` — the paper's MTTF-derived frequency with
/// its observed ~17 % overhead corresponds to frequent spot evictions
/// and a checkpoint cost of a few minutes.
///
/// # Panics
///
/// Panics if either argument is non-positive.
pub fn youngs_interval(checkpoint_cost: SimDuration, mttf: SimDuration) -> (SimDuration, f64) {
    assert!(
        !checkpoint_cost.is_zero() && !mttf.is_zero(),
        "Young's formula needs positive checkpoint cost and MTTF"
    );
    let c = checkpoint_cost.as_hours_f64();
    let tau = (2.0 * c * mttf.as_hours_f64()).sqrt();
    (SimDuration::from_hours_f64(tau), c / tau)
}

/// A scheme bound to a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scheme {
    /// The policy stack.
    pub kind: SchemeKind,
    /// The job it runs.
    pub job: JobSpec,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_market::instance::{catalog, Zone};

    #[test]
    fn cluster_b_job_scales_with_hours() {
        let mk = MarketKey::new(catalog::c4_xlarge(), Zone(0));
        let j2 = JobSpec::cluster_b_job(2.0, mk);
        let j20 = JobSpec::cluster_b_job(20.0, mk);
        assert!((j20.work_core_hours / j2.work_core_hours - 10.0).abs() < 1e-9);
        assert_eq!(j2.on_demand_count, 3);
    }

    #[test]
    fn youngs_formula_matches_hand_arithmetic() {
        // C = 2 min, MTTF = 100 min → τ* = sqrt(2·2·100) = 20 min,
        // overhead = 2/20 = 10 %.
        let (tau, overhead) =
            youngs_interval(SimDuration::from_mins(2), SimDuration::from_mins(100));
        assert_eq!(tau.as_mins(), 20);
        assert!((overhead - 0.10).abs() < 1e-9);
        // The paper's 17 % corresponds to spot-market MTTFs of tens of
        // minutes with multi-minute checkpoints.
        let (_, heavy) = youngs_interval(SimDuration::from_mins(3), SimDuration::from_mins(52));
        assert!((0.15..0.20).contains(&heavy), "got {heavy}");
    }

    #[test]
    #[should_panic(expected = "positive checkpoint cost")]
    fn youngs_formula_rejects_zero() {
        youngs_interval(SimDuration::ZERO, SimDuration::from_mins(1));
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            SchemeKind::AllOnDemand { machines: 1 }.label(),
            SchemeKind::paper_checkpoint().label(),
            SchemeKind::paper_adaptive_checkpoint().label(),
            SchemeKind::paper_standard_agileml().label(),
            SchemeKind::paper_proteus().label(),
            SchemeKind::fleet_trial().label(),
        ];
        let set: std::collections::BTreeSet<&str> = labels.into_iter().collect();
        assert_eq!(set.len(), 6);
    }
}
