//! The discrete-event job simulator.
//!
//! Time advances in two-minute decision steps (BidBrain's cadence,
//! Sec. 5). Between steps the [`proteus_market::CloudProvider`] fires
//! hour charges, eviction warnings, and evictions; at each step the
//! scheme's policy reacts: accrues work, applies eviction/scale pauses
//! or checkpoint rollbacks, terminates allocations whose renewal would
//! hurt cost-per-work, and considers acquisitions.

use proteus_bidbrain::{
    adaptive_interval, hazard_to_rate, AllocView, AppParams, BetaEstimator, BidBrain,
    BidBrainConfig, ForecastConfig, PreemptionForecaster, StandardStrategy,
};
use std::collections::BTreeMap;
use std::sync::Arc;

use proteus_market::{
    catalog, CloudProvider, MarketError, MarketFaultPlan, MarketKey, ProviderEvent, TraceSet,
    UsageBreakdown,
};
use proteus_obs::{CostEvent, Event, MarketEvent, Recorder};
use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::scheme::{JobSpec, Scheme, SchemeKind};

/// Outcome of one simulated job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Dollars charged to this job (final partial billing hours are
    /// credited back, per the paper's accounting).
    pub cost: f64,
    /// Wall-clock from job start to completion.
    pub runtime: SimDuration,
    /// Machine-hour breakdown (on-demand / paid spot / free).
    pub usage: UsageBreakdown,
    /// Number of spot evictions suffered.
    pub evictions: u32,
    /// Whether the job finished within the simulation horizon.
    pub completed: bool,
    /// Spot instances acquired per market over the whole job — the
    /// multi-market exploitation signature (the paper's BidBrain tracks
    /// "multiple instance types, which move relatively independently").
    pub market_mix: BTreeMap<String, u32>,
}

/// BidBrain's decision cadence.
const STEP: SimDuration = SimDuration::from_secs(120);

/// Tightest cadence adaptive checkpointing will accept — below this the
/// `C/τ` throughput tax exceeds what any plausible eviction would lose.
const ADAPTIVE_CKPT_MIN: SimDuration = SimDuration::from_mins(5);

/// Loosest adaptive cadence (calm markets); bounds the worst-case loss
/// of an eviction the forecaster never saw coming.
const ADAPTIVE_CKPT_MAX: SimDuration = SimDuration::from_hours(2);

/// Runs one job under one scheme.
///
/// `traces` must cover `[start, start + horizon]`; `beta` should be
/// trained on an earlier window of the same markets (Proteus only uses
/// it; the other schemes ignore it).
pub fn run_job(
    scheme: &Scheme,
    traces: &TraceSet,
    beta: &BetaEstimator,
    start: SimTime,
    horizon: SimDuration,
) -> SimOutcome {
    run_job_with_faults(scheme, traces, beta, start, horizon, None)
}

/// Runs one job under one scheme with provider-side fault regimes
/// installed — the fault-regime ablation axis. `faults: None` is
/// exactly [`run_job`].
pub fn run_job_with_faults(
    scheme: &Scheme,
    traces: &TraceSet,
    beta: &BetaEstimator,
    start: SimTime,
    horizon: SimDuration,
    faults: Option<&MarketFaultPlan>,
) -> SimOutcome {
    run_job_observed(scheme, traces, beta, start, horizon, faults, None)
}

/// Runs one job with an optional observability recorder attached.
///
/// With a recorder, the run additionally emits `market.*` provider
/// events, `bid.*` candidate rankings, change-only `market.price_move`
/// records, and hourly `costsim.sample` records — without one the run
/// is byte-for-byte the unobserved simulation (recording is passive).
pub fn run_job_observed(
    scheme: &Scheme,
    traces: &TraceSet,
    beta: &BetaEstimator,
    start: SimTime,
    horizon: SimDuration,
    faults: Option<&MarketFaultPlan>,
    obs: Option<Arc<Recorder>>,
) -> SimOutcome {
    let mut sim = JobSim::new(scheme, traces, beta, start);
    if let Some(plan) = faults {
        sim.set_fault_plan(plan.clone());
    }
    if let Some(rec) = obs {
        sim.set_recorder(rec);
    }
    sim.run(start + horizon)
}

/// Mutable simulation state.
///
/// Borrows the trace set and β estimator for its whole lifetime: a
/// study spawns thousands of `JobSim`s against one shared history, and
/// cloning either per run dominated study wall-clock time.
pub(crate) struct JobSim<'a> {
    kind: SchemeKind,
    job: JobSpec,
    provider: CloudProvider<'a>,
    markets: Vec<MarketKey>,
    brain: BidBrain<'a>,
    standard: StandardStrategy,
    start: SimTime,
    /// Useful work accumulated (φ-scaled core-hours).
    work_done: f64,
    /// Work level at the last checkpoint (checkpoint scheme only).
    checkpointed_work: f64,
    /// Progress is paused until this instant (eviction/scale overheads,
    /// restart delays).
    paused_until: SimTime,
    evictions: u32,
    /// Markets of allocations currently under eviction warning (their
    /// replacement is deferred until the eviction lands).
    pending_evictions: usize,
    /// Spot instances acquired per market.
    market_mix: BTreeMap<String, u32>,
    /// Credits applied by queue accounting (terminated fresh hours).
    credits: f64,
    /// The on-demand allocation, when provisioned.
    od_alloc: Option<proteus_market::AllocationId>,
    /// Degraded-mode on-demand machines, provisioned when every spot
    /// market refuses capacity and the footprint produces no work;
    /// released the moment usable spot capacity returns. Only a fault
    /// plan can refuse capacity, so this stays `None` fault-free.
    fallback_alloc: Option<proteus_market::AllocationId>,
    fallback_count: u32,
    fallback_since: SimTime,
    /// Cumulative degraded-mode fallback provisionings over the run.
    fallback_launches: u32,
    /// Live preemption forecaster (adaptive-checkpoint scheme only);
    /// `None` for every other scheme keeps their steps untouched.
    forecaster: Option<PreemptionForecaster>,
    /// Holdings the forecaster is watching, so an eviction or
    /// termination frees its per-(market, bid) state.
    fc_tracked: BTreeMap<proteus_market::AllocationId, (MarketKey, f64)>,
    /// Current Young's-rule interval from the forecasted hazard.
    adaptive_tau: SimDuration,
    /// Next scheduled adaptive checkpoint commit.
    next_checkpoint: SimTime,
    /// Observability recorder; `None` keeps every step allocation-free.
    obs: Option<Arc<Recorder>>,
    /// Last prices emitted, in `current_prices` order, for change-only
    /// `PriceMove` events; a slice compare keeps the no-change step on a
    /// branch-only fast path.
    obs_last_prices: Vec<(MarketKey, f64)>,
    /// Interned market names, parallel to `markets`, so emitting a
    /// `PriceMove` is an `Arc` clone rather than a `Display` render.
    obs_market_names: Vec<Arc<str>>,
    /// Next instant a periodic `costsim.sample` record is due.
    obs_next_sample: SimTime,
}

impl<'a> JobSim<'a> {
    pub(crate) fn new(
        scheme: &Scheme,
        traces: &'a TraceSet,
        beta: &'a BetaEstimator,
        start: SimTime,
    ) -> Self {
        let markets: Vec<MarketKey> = traces.markets().copied().collect();
        let params = AppParams {
            phi_per_doubling: scheme.job.phi_per_doubling,
            sigma: match scheme.kind {
                SchemeKind::Proteus { scale_pause, .. } | SchemeKind::Fleet { scale_pause, .. } => {
                    scale_pause
                }
                SchemeKind::StandardCheckpoint { restart_delay, .. }
                | SchemeKind::AdaptiveCheckpoint { restart_delay, .. } => restart_delay,
                _ => SimDuration::from_secs(30),
            },
            lambda: match scheme.kind {
                SchemeKind::Proteus { eviction_pause, .. }
                | SchemeKind::Fleet { eviction_pause, .. } => eviction_pause,
                SchemeKind::StandardAgileML { eviction_pause } => eviction_pause,
                SchemeKind::StandardCheckpoint { restart_delay, .. }
                | SchemeKind::AdaptiveCheckpoint { restart_delay, .. } => restart_delay,
                SchemeKind::AllOnDemand { .. } => SimDuration::ZERO,
            },
        };
        let bid_deltas = match &scheme.kind {
            SchemeKind::Proteus { bid_deltas, .. } | SchemeKind::Fleet { bid_deltas, .. } => {
                bid_deltas.clone()
            }
            _ => BidBrainConfig::default().bid_deltas,
        };
        let brain = BidBrain::new(
            params,
            beta,
            BidBrainConfig {
                target_cores: scheme.job.target_cores,
                max_alloc_instances: 64,
                bid_deltas,
                ..BidBrainConfig::default()
            },
        );
        let forecaster = matches!(scheme.kind, SchemeKind::AdaptiveCheckpoint { .. })
            .then(|| PreemptionForecaster::new(ForecastConfig::default()));
        JobSim {
            kind: scheme.kind.clone(),
            job: scheme.job,
            provider: CloudProvider::new(traces),
            markets,
            brain,
            standard: StandardStrategy::new(scheme.job.standard_cores),
            start,
            work_done: 0.0,
            checkpointed_work: 0.0,
            paused_until: start,
            evictions: 0,
            pending_evictions: 0,
            market_mix: BTreeMap::new(),
            credits: 0.0,
            od_alloc: None,
            fallback_alloc: None,
            fallback_count: 0,
            fallback_since: start,
            fallback_launches: 0,
            forecaster,
            fc_tracked: BTreeMap::new(),
            adaptive_tau: ADAPTIVE_CKPT_MAX,
            next_checkpoint: start + ADAPTIVE_CKPT_MAX,
            obs: None,
            obs_last_prices: Vec::new(),
            obs_market_names: Vec::new(),
            obs_next_sample: start,
        }
    }

    /// Attaches an observability recorder. The provider mirrors grants,
    /// refusals, evictions, and billing onto it; BidBrain mirrors its
    /// ranked Eq. 4 candidate evaluations; the sim itself adds
    /// change-only price moves and a periodic cumulative cost/work
    /// sample (the Fig. 9/10 axes). Recording is passive — it never
    /// feeds back into decisions.
    pub(crate) fn set_recorder(&mut self, rec: Arc<Recorder>) {
        rec.set_now(self.provider.now().max(self.start));
        self.provider.set_recorder(Arc::clone(&rec));
        // Intern the market names once: `PriceMove` is the hottest
        // event, and rendering a `MarketKey` through `Display` per
        // emission would dominate the recording overhead.
        self.obs_market_names = self.markets.iter().map(MarketKey::interned_name).collect();
        self.obs = Some(rec);
    }

    /// Emits the periodic sample plus change-only price moves, both at
    /// the sample cadence. This runs every decision step, so the
    /// between-samples fast path is a single time compare; spot prices
    /// tick every few minutes, and scanning them per step would emit
    /// nearly one event per market tick — the hourly change-only scan
    /// keeps the timeline plottable (the Fig. 9/10 axes are hourly
    /// anyway) at a fraction of the recording cost. Market-plane truth
    /// (grants, evictions, charges) is still mirrored exactly,
    /// per-event, by the provider.
    fn obs_step(&mut self, now: SimTime, prices: &[(MarketKey, f64)]) {
        let Some(rec) = self.obs.as_deref() else {
            return;
        };
        if now >= self.obs_next_sample {
            for (i, (m, p)) in prices.iter().enumerate() {
                if self.obs_last_prices.get(i) != Some(&(*m, *p)) {
                    let name = self
                        .markets
                        .iter()
                        .position(|k| k == m)
                        .and_then(|j| self.obs_market_names.get(j));
                    rec.record(
                        now,
                        Event::Market(MarketEvent::PriceMove {
                            market: name.map_or_else(|| m.interned_name(), Arc::clone),
                            price: *p,
                        }),
                    );
                }
            }
            self.obs_last_prices.clear();
            self.obs_last_prices.extend_from_slice(prices);
            let spot: u64 = self
                .provider
                .spot_allocations()
                .iter()
                .filter(|a| !a.booting)
                .map(|a| u64::from(a.count))
                .sum();
            let on_demand = match self.kind {
                SchemeKind::AllOnDemand { machines } => u64::from(machines),
                _ => u64::from(self.job.on_demand_count),
            };
            rec.record(
                now,
                Event::Cost(CostEvent::Sample {
                    cum_cost: self.account_cost(),
                    cum_work: self.work_done,
                    spot,
                    on_demand,
                    fallback: u64::from(self.fallback_count),
                }),
            );
            while self.obs_next_sample <= now {
                self.obs_next_sample += SimDuration::from_hours(1);
            }
        }
    }

    // ------------------------------------------------------------------
    // Crate-internal accessors for the queue runner (`queue.rs`).
    // ------------------------------------------------------------------

    /// Current provider time.
    pub(crate) fn now(&self) -> SimTime {
        self.provider.now()
    }

    /// Mutable provider access (teardown orchestration).
    pub(crate) fn provider_mut(&mut self) -> &mut CloudProvider<'a> {
        &mut self.provider
    }

    /// Installs provider-side fault regimes (capacity caps, throttling,
    /// boot delays, infant mortality).
    pub(crate) fn set_fault_plan(&mut self, plan: MarketFaultPlan) {
        self.provider.set_fault_plan(plan);
    }

    /// Starts a fresh work quota for the next job in a queue.
    pub(crate) fn reset_work_quota(&mut self) {
        self.work_done = 0.0;
        self.checkpointed_work = 0.0;
    }

    /// Net billed dollars so far, minus queue-accounting credits.
    pub(crate) fn account_cost(&self) -> f64 {
        (self.provider.account().total_cost() - self.credits).max(0.0)
    }

    /// Total provider refunds so far.
    pub(crate) fn account_refunds(&self) -> f64 {
        self.provider.account().total_refunds()
    }

    /// Machine-hour usage so far.
    pub(crate) fn account_usage(&self) -> UsageBreakdown {
        *self.provider.account().usage()
    }

    /// Registers `n` extra evictions observed by the caller.
    pub(crate) fn add_evictions(&mut self, n: u32) {
        self.evictions += n;
    }

    /// Evictions observed so far.
    pub(crate) fn evictions_so_far(&self) -> u32 {
        self.evictions
    }

    /// Applies an accounting credit (a charged-but-unused fresh hour).
    pub(crate) fn credit(&mut self, dollars: f64) {
        self.credits += dollars;
    }

    /// Records a granted spot allocation in the market mix.
    fn note_acquisition(&mut self, market: MarketKey, count: u32) {
        *self.market_mix.entry(market.to_string()).or_insert(0) += count;
    }

    /// Current total vCPUs across live spot allocations (booting
    /// instances produce no work yet).
    fn spot_cores(&self) -> u32 {
        self.provider
            .spot_allocations()
            .iter()
            .filter(|a| !a.booting)
            .map(|a| a.count * a.market.instance_type().vcpus)
            .sum()
    }

    /// Work produced per hour by the current footprint (φ-scaled
    /// core-hours per hour), including checkpointing overhead.
    fn work_rate(&self) -> f64 {
        let mut cores = f64::from(self.spot_cores());
        let od_cores =
            f64::from(self.job.on_demand_count * self.job.on_demand_market.instance_type().vcpus);
        if self.job.on_demand_works {
            cores += od_cores;
        }
        cores += f64::from(self.fallback_count * self.job.on_demand_market.instance_type().vcpus);
        if let SchemeKind::AllOnDemand { machines } = self.kind {
            cores = f64::from(machines * self.job.on_demand_market.instance_type().vcpus);
        }
        if cores <= 0.0 {
            return 0.0;
        }
        let phi = self.job.phi_per_doubling.powf(cores.log2()).clamp(0.0, 1.0);
        let mut rate = cores * phi;
        if let SchemeKind::StandardCheckpoint {
            checkpoint_overhead,
            ..
        } = self.kind
        {
            rate *= 1.0 - checkpoint_overhead;
        }
        if let SchemeKind::AdaptiveCheckpoint {
            checkpoint_cost, ..
        } = self.kind
        {
            // Dynamic throughput tax C/τ: vanishes on calm markets where
            // the forecaster lets τ stretch to its cap.
            let tau = self.adaptive_tau.as_hours_f64().max(1e-9);
            rate *= (1.0 - checkpoint_cost.as_hours_f64() / tau).max(0.0);
        }
        rate
    }

    /// Adaptive-checkpoint forecasting pass, run once per decision step.
    ///
    /// Feeds every live holding's spot price to the forecaster, rederives
    /// the Young's-rule interval from the worst forecasted hazard, commits
    /// scheduled checkpoints, and — on a fresh eviction alert — takes one
    /// immediate out-of-schedule checkpoint (paying its write cost as a
    /// pause) so the predicted eviction loses at most a step of work.
    /// No-op for every other scheme.
    fn forecast_step(&mut self, now: SimTime, prices: &[(MarketKey, f64)]) {
        let SchemeKind::AdaptiveCheckpoint {
            checkpoint_cost, ..
        } = self.kind
        else {
            return;
        };
        let allocs = self.provider.spot_allocations();
        let Some(fc) = self.forecaster.as_mut() else {
            return;
        };
        // Forget holdings that are gone (evicted or terminated) so a
        // stale spike cannot pin the cadence at its tightest forever.
        let live: std::collections::BTreeSet<_> = allocs.iter().map(|a| a.id).collect();
        let gone: Vec<_> = self
            .fc_tracked
            .keys()
            .filter(|id| !live.contains(id))
            .copied()
            .collect();
        for id in gone {
            if let Some((m, b)) = self.fc_tracked.remove(&id) {
                if !allocs.iter().any(|a| a.market == m && a.bid == b) {
                    fc.clear(m, b);
                }
            }
        }
        let mut alerted = false;
        for a in &allocs {
            if a.booting {
                continue;
            }
            let Some(price) = Self::price_in(prices, a.market) else {
                continue;
            };
            self.fc_tracked.insert(a.id, (a.market, a.bid));
            if fc.observe(a.market, a.bid, now, price).is_some() {
                alerted = true;
            }
        }
        let rate = hazard_to_rate(fc.max_hazard(), fc.config().horizon);
        self.adaptive_tau =
            adaptive_interval(checkpoint_cost, rate, ADAPTIVE_CKPT_MIN, ADAPTIVE_CKPT_MAX);
        if alerted {
            // Proactive save: everything accrued so far survives the
            // predicted eviction; one checkpoint write is paid now.
            self.checkpointed_work = self.work_done;
            self.next_checkpoint = now + self.adaptive_tau;
            self.pause(checkpoint_cost);
        } else if now >= self.next_checkpoint {
            self.checkpointed_work = self.work_done;
            self.next_checkpoint = now + self.adaptive_tau;
        }
    }

    /// Builds BidBrain's view of the current footprint.
    fn footprint(&self) -> Vec<AllocView> {
        let now = self.provider.now();
        let mut views = Vec::new();
        if self.job.on_demand_count > 0 && !matches!(self.kind, SchemeKind::AllOnDemand { .. }) {
            views.push(AllocView::on_demand(
                self.job.on_demand_market,
                self.job.on_demand_count,
                if self.job.on_demand_works {
                    f64::from(self.job.on_demand_market.instance_type().vcpus)
                } else {
                    0.0
                },
            ));
        }
        for a in self.provider.spot_allocations() {
            if a.booting {
                // Not billed and not computing until launch.
                continue;
            }
            let paid = self
                .provider
                .spot_price_at(a.market, a.hour_start)
                .unwrap_or(a.bid);
            let delta = (a.bid - paid).max(0.0001);
            views.push(AllocView {
                market: a.market,
                count: a.count,
                hourly_price: paid,
                bid_delta: Some(delta),
                time_remaining: (a.hour_start + SimDuration::from_hours(1)).since(now),
                work_rate: f64::from(a.market.instance_type().vcpus),
            });
        }
        views
    }

    /// Spot prices of every market at the current instant, computed once
    /// per decision step and shared by the renewal and acquisition
    /// passes (each price is a trace lookup).
    fn current_prices(&self) -> Vec<(MarketKey, f64)> {
        self.markets
            .iter()
            .filter_map(|m| self.provider.spot_price(*m).ok().map(|p| (*m, p)))
            .collect()
    }

    /// Looks a market's price up in a memoized per-step price list.
    fn price_in(prices: &[(MarketKey, f64)], market: MarketKey) -> Option<f64> {
        prices.iter().find(|(m, _)| *m == market).map(|(_, p)| *p)
    }

    fn pause(&mut self, d: SimDuration) {
        let until = self.provider.now() + d;
        if until > self.paused_until {
            self.paused_until = until;
        }
    }

    /// Handles provider events from the last step.
    fn handle_events(&mut self, events: Vec<(SimTime, ProviderEvent)>) {
        for (_, ev) in events {
            match ev {
                ProviderEvent::EvictionWarning { .. } => {
                    self.pending_evictions += 1;
                }
                ProviderEvent::Evicted { .. } => {
                    self.pending_evictions = self.pending_evictions.saturating_sub(1);
                    self.evictions += 1;
                    match self.kind {
                        SchemeKind::StandardCheckpoint { restart_delay, .. }
                        | SchemeKind::AdaptiveCheckpoint { restart_delay, .. } => {
                            // Lose progress back to the last checkpoint
                            // and pay the restart delay.
                            self.work_done = self.checkpointed_work;
                            self.pause(restart_delay);
                        }
                        SchemeKind::StandardAgileML { eviction_pause }
                        | SchemeKind::Proteus { eviction_pause, .. }
                        | SchemeKind::Fleet { eviction_pause, .. } => {
                            self.pause(eviction_pause);
                        }
                        SchemeKind::AllOnDemand { .. } => {}
                    }
                }
                ProviderEvent::HourCharged { .. } => {}
                // Launch state is read from the allocation views each
                // step; a failed launch billed nothing and computed
                // nothing, so neither event needs bookkeeping here.
                ProviderEvent::Launched { .. } | ProviderEvent::LaunchFailed { .. } => {}
            }
        }
    }

    /// Accrues work over `[from, to]`, respecting pauses.
    fn accrue(&mut self, from: SimTime, to: SimTime, rate: f64) {
        let active_from = from.max(self.paused_until);
        if active_from >= to {
            return;
        }
        let hours = (to - active_from).as_hours_f64();
        self.work_done += rate * hours;
        if let SchemeKind::StandardCheckpoint {
            checkpoint_interval_core_hours,
            ..
        } = self.kind
        {
            // Checkpoints complete at fixed work intervals.
            let interval = checkpoint_interval_core_hours.max(1e-9);
            self.checkpointed_work = (self.work_done / interval).floor() * interval;
        }
    }

    /// Renewal decisions shortly before billing-hour ends.
    fn renewals(&mut self, prices: &[(MarketKey, f64)]) {
        let now = self.provider.now();
        let allocs = self.provider.spot_allocations();
        for a in &allocs {
            let to_end = (a.hour_start + SimDuration::from_hours(1)).since(now);
            if to_end > STEP || a.warned || a.booting {
                continue;
            }
            let keep = match self.kind {
                SchemeKind::Proteus { .. } | SchemeKind::Fleet { .. } => {
                    let rest: Vec<AllocView> = self
                        .footprint()
                        .into_iter()
                        .filter(|v| {
                            v.bid_delta.is_none()
                                || v.market != a.market
                                || v.count != a.count
                                || (v.time_remaining.as_millis() as i64 - to_end.as_millis() as i64)
                                    .abs()
                                    > 1
                        })
                        .collect();
                    let renew_price = Self::price_in(prices, a.market).unwrap_or(a.bid);
                    let view = AllocView {
                        market: a.market,
                        count: a.count,
                        hourly_price: renew_price,
                        bid_delta: Some((a.bid - renew_price).max(0.0001)),
                        time_remaining: to_end,
                        work_rate: f64::from(a.market.instance_type().vcpus),
                    };
                    self.brain.should_renew(&view, &rest, renew_price) && renew_price <= a.bid
                }
                // Standard strategies hold until evicted; renewal is
                // automatic while the bid covers the market.
                _ => true,
            };
            if !keep {
                let _ = self.provider.terminate(a.id);
            }
        }
    }

    /// Acquisition decisions.
    fn acquisitions(&mut self, prices: &[(MarketKey, f64)]) {
        if self.work_remaining() <= 0.0 {
            return;
        }
        // Bindings are `Copy` fields only, so no clone of the variant's
        // heap state (the Proteus bid-delta vector) is needed.
        match self.kind {
            SchemeKind::AllOnDemand { .. } => {}
            SchemeKind::StandardCheckpoint { .. }
            | SchemeKind::AdaptiveCheckpoint { .. }
            | SchemeKind::StandardAgileML { .. } => {
                // Re-acquire the full fleet whenever empty (initially and
                // after evictions complete). A refusal retries naturally:
                // spot_cores stays zero, so the next step asks again.
                if self.spot_cores() == 0
                    && self.pending_evictions == 0
                    && !self.provider.spot_allocations().iter().any(|a| a.booting)
                {
                    if let Some(req) = self.standard.acquire(prices) {
                        if let Ok(grant) =
                            self.provider.request_spot(req.market, req.count, req.bid)
                        {
                            self.note_acquisition(req.market, grant.granted);
                        }
                    }
                }
            }
            SchemeKind::Proteus { scale_pause, .. } | SchemeKind::Fleet { scale_pause, .. } => {
                // Walk the ranked candidates: a capacity refusal falls
                // through to the next-best market per Eq. 4; a throttle
                // is provider-wide, so stop and retry next step.
                let footprint = self.footprint();
                let ranked = self.brain.ranked_acquisitions_obs(
                    &footprint,
                    prices,
                    self.provider.now(),
                    self.obs.as_deref(),
                );
                let mut capacity_refused = false;
                for req in ranked {
                    match self.provider.request_spot(req.market, req.count, req.bid) {
                        Ok(grant) => {
                            self.note_acquisition(req.market, grant.granted);
                            self.pause(scale_pause);
                            break;
                        }
                        Err(MarketError::InsufficientCapacity { .. }) => {
                            capacity_refused = true;
                        }
                        Err(MarketError::BidBelowMarket { .. }) => {}
                        Err(_) => break,
                    }
                }
                self.manage_fallback(capacity_refused);
            }
        }
    }

    /// Degraded mode for the Proteus scheme, mirroring the session
    /// loop's watchdog: when every spot market refuses capacity and the
    /// footprint produces no work, replace the transient fleet with
    /// on-demand machines so the job keeps moving; hand the cores back
    /// the moment usable spot capacity returns. The fallback is kept
    /// out of BidBrain's footprint so the brain keeps probing spot.
    fn manage_fallback(&mut self, capacity_refused: bool) {
        if self.spot_cores() > 0 {
            if let Some(id) = self.fallback_alloc.take() {
                let _ = self.provider.terminate(id);
                self.fallback_count = 0;
            }
            return;
        }
        let booting = self.provider.spot_allocations().iter().any(|a| a.booting);
        if capacity_refused && !booting && self.fallback_alloc.is_none() && self.work_rate() <= 0.0
        {
            let vcpus = self.job.on_demand_market.instance_type().vcpus.max(1);
            let count = self.job.standard_cores.div_ceil(vcpus);
            if count > 0 {
                self.fallback_since = self.provider.now();
                self.fallback_alloc = self
                    .provider
                    .request_on_demand(self.job.on_demand_market, count)
                    .ok();
                if self.fallback_alloc.is_some() {
                    self.fallback_count = count;
                    self.fallback_launches += 1;
                }
            }
        }
    }

    fn work_remaining(&self) -> f64 {
        self.job.work_core_hours - self.work_done
    }

    /// Runs decision steps until the current work quota completes or
    /// `deadline` passes; returns the stop instant and completion flag.
    pub(crate) fn run_until_done(&mut self, deadline: SimTime) -> (SimTime, bool) {
        let mut now = self.provider.now().max(self.start);
        let mut completed = false;
        while now < deadline {
            // One trace lookup per market per step, shared by both
            // decision passes.
            let prices = self.current_prices();
            self.obs_step(now, &prices);
            self.forecast_step(now, &prices);
            self.renewals(&prices);
            self.acquisitions(&prices);

            let rate = self.work_rate();
            let next = (now + STEP).min(deadline);
            // `next > now` by construction; `advance_to` only errors on
            // time moving backwards.
            #[allow(clippy::expect_used)]
            let events = self.provider.advance_to(next).expect("time moves forward");
            // Work between events: approximate with the rate sampled at
            // step start; evictions mid-step slightly overcount work by
            // less than one step, symmetrically for all schemes.
            self.handle_events(events);
            self.accrue(now, next, rate);
            now = next;

            if self.work_remaining() <= 0.0 {
                completed = true;
                break;
            }
        }
        (now, completed)
    }

    /// Provisions the reliable (on-demand) base at the start instant.
    pub(crate) fn provision_base(&mut self) {
        // The provider starts at `SimTime::EPOCH <= self.start`;
        // `advance_to` only errors on time moving backwards.
        #[allow(clippy::expect_used)]
        self.provider
            .advance_to(self.start)
            .expect("time moves forward");
        match self.kind {
            SchemeKind::AllOnDemand { machines } => {
                self.od_alloc = self
                    .provider
                    .request_on_demand(self.job.on_demand_market, machines)
                    .ok();
            }
            _ => {
                if self.job.on_demand_count > 0 {
                    self.od_alloc = self
                        .provider
                        .request_on_demand(self.job.on_demand_market, self.job.on_demand_count)
                        .ok();
                }
            }
        }
    }

    /// Releases the on-demand tier (queue teardown).
    pub(crate) fn release_on_demand(&mut self) {
        if let Some(id) = self.od_alloc.take() {
            let _ = self.provider.terminate(id);
        }
        if let Some(id) = self.fallback_alloc.take() {
            let _ = self.provider.terminate(id);
            self.fallback_count = 0;
        }
    }

    /// Runs to completion (or the horizon), returning the outcome.
    fn run(&mut self, deadline: SimTime) -> SimOutcome {
        self.provision_base();

        let (now, completed) = self.run_until_done(deadline);

        // Job done: release everything. The paper's accounting does not
        // charge a job for the unused remainder of its final billing
        // hours (the next job in the sequence uses them), so credit the
        // unused fraction of each live allocation's current hour back.
        let mut refund = 0.0;
        for a in self.provider.spot_allocations() {
            if a.booting {
                // Nothing billed yet; cancelling the boot is free.
                let _ = self.provider.terminate(a.id);
                continue;
            }
            let unused = (a.hour_start + SimDuration::from_hours(1))
                .since(now)
                .as_hours_f64();
            let paid = self
                .provider
                .spot_price_at(a.market, a.hour_start)
                .unwrap_or(0.0);
            refund += paid * f64::from(a.count) * unused;
            let _ = self.provider.terminate(a.id);
        }
        // On-demand final-hour credit.
        let od_price = self.job.on_demand_market.instance_type().on_demand_price;
        let od_count = match self.kind {
            SchemeKind::AllOnDemand { machines } => machines,
            _ => self.job.on_demand_count,
        };
        if od_count > 0 && now > self.start {
            // `time_into_billing_hour == 0` means a fresh hour was just
            // charged and is entirely unused.
            let into_hour = now.time_into_billing_hour(self.start).as_hours_f64();
            let unused = 1.0 - into_hour;
            refund += od_price * f64::from(od_count) * unused;
        }
        // Degraded-mode fallback still held at the end: same final-hour
        // credit, anchored at its own billing epoch.
        if let Some(id) = self.fallback_alloc.take() {
            let into_hour = now
                .time_into_billing_hour(self.fallback_since)
                .as_hours_f64();
            refund += od_price * f64::from(self.fallback_count) * (1.0 - into_hour);
            let _ = self.provider.terminate(id);
            self.fallback_count = 0;
        }

        let outcome = SimOutcome {
            cost: (self.provider.account().total_cost() - refund).max(0.0),
            runtime: now - self.start,
            usage: *self.provider.account().usage(),
            evictions: self.evictions,
            completed,
            market_mix: std::mem::take(&mut self.market_mix),
        };
        if let Some(rec) = self.obs.as_deref() {
            rec.set_now(now);
            rec.record(
                now,
                Event::Cost(CostEvent::RunEnd {
                    cost: outcome.cost,
                    work: self.work_done,
                    evictions: u64::from(self.evictions),
                    fallback_count: u64::from(self.fallback_launches),
                }),
            );
        }
        outcome
    }
}

/// The c4.xlarge market in zone 0 — the default on-demand anchor.
pub fn default_on_demand_market() -> MarketKey {
    MarketKey::new(catalog::c4_xlarge(), proteus_market::Zone(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{JobSpec, Scheme, SchemeKind};
    use proteus_market::{MarketModel, PriceTrace, TraceGenerator};

    fn flat_traces(price: f64) -> TraceSet {
        let mut set = TraceSet::new();
        set.insert(default_on_demand_market(), PriceTrace::constant(price));
        set
    }

    fn job(hours: f64) -> JobSpec {
        JobSpec::cluster_b_job(hours, default_on_demand_market())
    }

    #[test]
    fn all_on_demand_costs_match_hand_arithmetic() {
        let spec = job(2.0);
        let scheme = Scheme {
            kind: SchemeKind::AllOnDemand { machines: 128 },
            job: spec,
        };
        let out = run_job(
            &scheme,
            &flat_traces(0.05),
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(48),
        );
        assert!(out.completed);
        // 128 machines × 512-core φ-scaled rate finish 2 h of work in
        // exactly 2 h; cost = 128 × $0.209 × 2.
        assert!(
            (out.runtime.as_hours_f64() - 2.0).abs() < 0.05,
            "{:?}",
            out.runtime
        );
        let expect = 128.0 * 0.209 * 2.0;
        assert!(
            (out.cost - expect).abs() < expect * 0.03,
            "cost {} vs {}",
            out.cost,
            expect
        );
        assert_eq!(out.evictions, 0);
    }

    #[test]
    fn spot_scheme_is_cheaper_on_calm_market() {
        let traces = flat_traces(0.05); // ~24 % of on-demand.
        let spec = job(2.0);
        let od = run_job(
            &Scheme {
                kind: SchemeKind::AllOnDemand { machines: 128 },
                job: spec,
            },
            &traces,
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(48),
        );
        let agile = run_job(
            &Scheme {
                kind: SchemeKind::paper_standard_agileml(),
                job: spec,
            },
            &traces,
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(48),
        );
        assert!(agile.completed);
        assert!(
            agile.cost < od.cost * 0.5,
            "spot at 24 % of on-demand must at least halve cost: {} vs {}",
            agile.cost,
            od.cost
        );
    }

    #[test]
    fn checkpoint_scheme_pays_overhead() {
        let traces = flat_traces(0.05);
        let spec = job(2.0);
        let agile = run_job(
            &Scheme {
                kind: SchemeKind::paper_standard_agileml(),
                job: spec,
            },
            &traces,
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(48),
        );
        let ckpt = run_job(
            &Scheme {
                kind: SchemeKind::paper_checkpoint(),
                job: spec,
            },
            &traces,
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(48),
        );
        assert!(ckpt.completed);
        // No evictions on a flat trace, so the difference is exactly the
        // 17 % checkpoint throughput tax (runtime) and the extra billed
        // hours it causes.
        assert!(
            ckpt.runtime > agile.runtime,
            "checkpointing is slower: {:?} vs {:?}",
            ckpt.runtime,
            agile.runtime
        );
    }

    #[test]
    fn adaptive_checkpoint_beats_fixed_on_calm_market() {
        // Flat trace → hazard stays ~0 → τ stretches to its cap, so the
        // throughput tax is a few percent instead of the fixed 17 %.
        let traces = flat_traces(0.05);
        let spec = job(2.0);
        let fixed = run_job(
            &Scheme {
                kind: SchemeKind::paper_checkpoint(),
                job: spec,
            },
            &traces,
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(48),
        );
        let adaptive = run_job(
            &Scheme {
                kind: SchemeKind::paper_adaptive_checkpoint(),
                job: spec,
            },
            &traces,
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(48),
        );
        assert!(adaptive.completed, "{adaptive:?}");
        assert!(
            adaptive.runtime < fixed.runtime,
            "adaptive cadence must shed overhead on a calm market: {:?} vs {:?}",
            adaptive.runtime,
            fixed.runtime
        );
    }

    #[test]
    fn adaptive_checkpoint_survives_volatile_market() {
        let gen = TraceGenerator::new(11, MarketModel::volatile());
        let keys = vec![default_on_demand_market()];
        let traces = gen.generate_set(&keys, SimDuration::from_hours(96));
        let out = run_job(
            &Scheme {
                kind: SchemeKind::paper_adaptive_checkpoint(),
                job: job(2.0),
            },
            &traces,
            &BetaEstimator::new(),
            SimTime::EPOCH,
            SimDuration::from_hours(96),
        );
        // Evictions roll back to checkpointed work and the job still
        // finishes inside the horizon.
        assert!(out.completed, "{out:?}");
    }

    #[test]
    fn proteus_completes_and_exploits_cheap_markets() {
        // Synthetic multi-market week.
        let gen = TraceGenerator::new(3, MarketModel::default());
        let keys = proteus_market::catalog::paper_markets();
        let traces = gen.generate_set(&keys, SimDuration::from_hours(24 * 7));
        let mut beta = BetaEstimator::new();
        for k in &keys {
            beta.train(
                *k,
                traces.get(k).unwrap(),
                SimTime::EPOCH,
                SimTime::from_hours(24 * 3),
                SimDuration::from_mins(60),
                &BetaEstimator::default_deltas(),
            );
        }
        let spec = JobSpec::cluster_b_job(2.0, keys[0]);
        let out = run_job(
            &Scheme {
                kind: SchemeKind::paper_proteus(),
                job: spec,
            },
            &traces,
            &beta,
            SimTime::from_hours(24 * 3),
            SimDuration::from_hours(48),
        );
        assert!(out.completed, "Proteus finishes the job: {out:?}");
        assert!(out.cost > 0.0);
        let od_cost = 128.0 * 0.209 * 2.0;
        assert!(
            out.cost < od_cost * 0.6,
            "Proteus on a 75 %-discount market saves: {} vs {}",
            out.cost,
            od_cost
        );
    }
}
