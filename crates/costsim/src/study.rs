//! Multi-start studies replicating the paper's methodology.
//!
//! Sec. 6.3: "For each scheme and bidding model considered, we present
//! the average cost (relative to full on-demand price) across 1000
//! randomly chosen day/time starting points in each zone." This module
//! generates a long synthetic multi-market history, trains β on an
//! early window (the paper trains on March–June and evaluates on
//! June–August), and replays each scheme from many random starts in the
//! evaluation window.

use proteus_bidbrain::BetaEstimator;
use proteus_market::{
    catalog, MarketFaultPlan, MarketModel, TraceGenerator, TraceSet, UsageBreakdown,
};
use proteus_simtime::rng::seeded_stream;
use proteus_simtime::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use proteus_obs::{CostEvent, Event, Recorder};

use crate::executor::StudyExecutor;
use crate::scheme::{JobSpec, Scheme, SchemeKind};
use crate::sim::{run_job_observed, run_job_with_faults, SimOutcome};
use std::sync::{Arc, OnceLock};

/// Study parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Experiment seed (traces, start sampling).
    pub seed: u64,
    /// Length of the β-training window.
    pub train_days: u64,
    /// Length of the evaluation window random starts are drawn from.
    pub eval_days: u64,
    /// Number of random starting points.
    pub starts: usize,
    /// Job length in on-demand-fleet hours (2 or 20 in the paper).
    pub job_hours: f64,
    /// Market model for the synthetic region.
    pub market_model: MarketModel,
    /// Simulation horizon per job (jobs not finished by then count as
    /// incomplete).
    pub max_job_hours: f64,
    /// Provider-side fault regimes installed in every job simulation.
    /// `None` (the default, and what absent-field deserialization
    /// yields) keeps the study bit-identical to the pristine market.
    #[serde(default)]
    pub market_faults: Option<MarketFaultPlan>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 1,
            train_days: 14,
            eval_days: 28,
            starts: 100,
            job_hours: 2.0,
            market_model: MarketModel::default(),
            max_job_hours: 96.0,
            market_faults: None,
        }
    }
}

/// Aggregated result of one scheme across all starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyResult {
    /// Scheme label.
    pub scheme: String,
    /// Mean cost in dollars per job.
    pub mean_cost: f64,
    /// 10th-percentile cost across starts (a lucky market window).
    pub cost_p10: f64,
    /// 90th-percentile cost across starts (an unlucky market window).
    pub cost_p90: f64,
    /// Mean cost as a percentage of the all-on-demand baseline.
    pub cost_pct_of_on_demand: f64,
    /// Mean runtime in hours.
    pub mean_runtime_hours: f64,
    /// Mean evictions per job.
    pub mean_evictions: f64,
    /// Accumulated machine-hours across all runs.
    pub usage: UsageBreakdown,
    /// Fraction of runs that completed within the horizon.
    pub completion_rate: f64,
}

/// Shared study environment: traces + trained β + sampled starts.
pub struct StudyEnv {
    /// The synthetic price history.
    pub traces: TraceSet,
    /// β trained on the training window.
    pub beta: BetaEstimator,
    /// Random evaluation start instants.
    pub starts: Vec<SimTime>,
    /// The on-demand anchor market.
    pub on_demand_market: proteus_market::MarketKey,
    config: StudyConfig,
    /// Lazily simulated all-on-demand baseline, shared by every
    /// `run_scheme` call (the four-scheme comparison needs it once, not
    /// four times).
    baseline: OnceLock<SimOutcome>,
}

impl StudyEnv {
    /// Builds the environment for a configuration.
    pub fn new(config: StudyConfig) -> Self {
        let keys = catalog::paper_markets();
        let total_days = config.train_days + config.eval_days;
        let horizon = SimDuration::from_hours(24 * total_days + config.max_job_hours as u64 + 1);
        let gen = TraceGenerator::new(config.seed, config.market_model.clone());
        let traces = gen.generate_set(&keys, horizon);

        let mut beta = BetaEstimator::new();
        let train_end = SimTime::from_hours(24 * config.train_days);
        for k in &keys {
            // `generate_set` produced exactly one trace per key above.
            #[allow(clippy::expect_used)]
            beta.train(
                *k,
                traces.get(k).expect("trace generated"),
                SimTime::EPOCH,
                train_end,
                SimDuration::from_mins(30),
                &BetaEstimator::default_deltas(),
            );
        }

        let mut rng = seeded_stream(config.seed, 0x57A7);
        let eval_start = 24 * config.train_days;
        let eval_end = 24 * total_days;
        let starts: Vec<SimTime> = (0..config.starts)
            .map(|_| {
                let h = rng.gen_range((eval_start * 60)..(eval_end * 60));
                SimTime::EPOCH + SimDuration::from_mins(h)
            })
            .collect();

        StudyEnv {
            traces,
            beta,
            starts,
            on_demand_market: keys[0],
            config,
            baseline: OnceLock::new(),
        }
    }

    /// The job spec for this study.
    pub fn job(&self) -> JobSpec {
        JobSpec::cluster_b_job(self.config.job_hours, self.on_demand_market)
    }

    /// The simulation horizon per job.
    fn horizon(&self) -> SimDuration {
        SimDuration::from_hours(self.config.max_job_hours as u64)
    }

    /// The all-on-demand baseline for one job, simulated at most once
    /// per environment and cached.
    pub fn on_demand_baseline(&self) -> &SimOutcome {
        self.baseline.get_or_init(|| {
            let scheme = Scheme {
                kind: SchemeKind::AllOnDemand { machines: 128 },
                job: self.job(),
            };
            run_job_with_faults(
                &scheme,
                &self.traces,
                &self.beta,
                self.starts[0],
                self.horizon(),
                self.config.market_faults.as_ref(),
            )
        })
    }

    /// Aggregates per-start outcomes (in start order) into a result.
    fn aggregate(&self, kind: &SchemeKind, outcomes: &[SimOutcome]) -> StudyResult {
        let baseline = self.on_demand_baseline().cost;
        let mut costs: Vec<f64> = Vec::with_capacity(outcomes.len());
        let mut runtime_sum = 0.0;
        let mut evict_sum = 0.0;
        let mut usage = UsageBreakdown::default();
        let mut completed = 0usize;
        for out in outcomes {
            costs.push(out.cost);
            runtime_sum += out.runtime.as_hours_f64();
            evict_sum += f64::from(out.evictions);
            usage.accumulate(&out.usage);
            completed += usize::from(out.completed);
        }
        let n = outcomes.len() as f64;
        let cost_sum: f64 = costs.iter().sum();
        // Costs come from the billing account, which only ever adds
        // finite trace prices.
        #[allow(clippy::expect_used)]
        costs.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
        let pct = |q: f64| -> f64 {
            let idx = ((costs.len() as f64 - 1.0) * q).round() as usize;
            costs[idx]
        };
        StudyResult {
            scheme: kind.label().to_string(),
            mean_cost: cost_sum / n,
            cost_p10: pct(0.10),
            cost_p90: pct(0.90),
            cost_pct_of_on_demand: 100.0 * (cost_sum / n) / baseline.max(1e-9),
            mean_runtime_hours: runtime_sum / n,
            mean_evictions: evict_sum / n,
            usage,
            completion_rate: completed as f64 / n,
        }
    }

    /// Runs one scheme across every start on the calling thread.
    pub fn run_scheme(&self, kind: SchemeKind) -> StudyResult {
        self.run_scheme_with(kind, &StudyExecutor::serial())
    }

    /// Runs one scheme across every start, fanning the independent job
    /// simulations over `exec`'s thread pool. Results are aggregated in
    /// start order, so the output is identical to [`Self::run_scheme`]
    /// whatever the thread count.
    pub fn run_scheme_with(&self, kind: SchemeKind, exec: &StudyExecutor) -> StudyResult {
        // Warm the shared baseline before fanning out so workers never
        // race to simulate it.
        let _ = self.on_demand_baseline();
        let job = self.job();
        let horizon = self.horizon();
        let scheme = Scheme {
            kind: kind.clone(),
            job,
        };
        let outcomes = exec.run_indexed(self.starts.len(), |i| {
            run_job_with_faults(
                &scheme,
                &self.traces,
                &self.beta,
                self.starts[i],
                horizon,
                self.config.market_faults.as_ref(),
            )
        });
        self.aggregate(&kind, &outcomes)
    }

    /// Runs the four-scheme comparison, fanning every `(scheme, start)`
    /// pair over `exec`'s pool as one flat task set so the pool stays
    /// saturated across scheme boundaries.
    pub fn run_comparison_with(&self, exec: &StudyExecutor) -> Vec<StudyResult> {
        let kinds = [
            SchemeKind::AllOnDemand { machines: 128 },
            SchemeKind::paper_checkpoint(),
            SchemeKind::paper_standard_agileml(),
            SchemeKind::paper_proteus(),
        ];
        let _ = self.on_demand_baseline();
        let job = self.job();
        let horizon = self.horizon();
        let schemes: Vec<Scheme> = kinds
            .iter()
            .map(|kind| Scheme {
                kind: kind.clone(),
                job,
            })
            .collect();
        let n = self.starts.len();
        let outcomes = exec.run_indexed(kinds.len() * n, |t| {
            run_job_with_faults(
                &schemes[t / n],
                &self.traces,
                &self.beta,
                self.starts[t % n],
                horizon,
                self.config.market_faults.as_ref(),
            )
        });
        kinds
            .iter()
            .enumerate()
            .map(|(s, kind)| self.aggregate(kind, &outcomes[s * n..(s + 1) * n]))
            .collect()
    }

    /// Like [`Self::run_comparison_with`], but every `(scheme, start)`
    /// job records onto its own observability [`Recorder`]; the
    /// recorders come back **in task-index order**, un-rendered, so the
    /// recording cost can be measured (and paid) separately from the
    /// JSONL export cost.
    pub fn run_comparison_recorders(
        &self,
        exec: &StudyExecutor,
    ) -> (Vec<StudyResult>, Vec<Arc<Recorder>>) {
        let kinds = [
            SchemeKind::AllOnDemand { machines: 128 },
            SchemeKind::paper_checkpoint(),
            SchemeKind::paper_standard_agileml(),
            SchemeKind::paper_proteus(),
        ];
        let _ = self.on_demand_baseline();
        let job = self.job();
        let horizon = self.horizon();
        let schemes: Vec<Scheme> = kinds
            .iter()
            .map(|kind| Scheme {
                kind: kind.clone(),
                job,
            })
            .collect();
        let n = self.starts.len();
        let tasks = exec.run_indexed(kinds.len() * n, |t| {
            let scheme = &schemes[t / n];
            let start = self.starts[t % n];
            let rec = Arc::new(Recorder::new());
            rec.record(
                start,
                Event::Cost(CostEvent::RunStart {
                    scheme: scheme.kind.label().to_string(),
                    index: t as u64,
                    start_ms: start.as_millis(),
                }),
            );
            let out = run_job_observed(
                scheme,
                &self.traces,
                &self.beta,
                start,
                horizon,
                self.config.market_faults.as_ref(),
                Some(Arc::clone(&rec)),
            );
            (out, rec)
        });
        let mut recorders = Vec::with_capacity(tasks.len());
        let mut outcomes = Vec::with_capacity(tasks.len());
        for (out, rec) in tasks {
            recorders.push(rec);
            outcomes.push(out);
        }
        let results = kinds
            .iter()
            .enumerate()
            .map(|(s, kind)| self.aggregate(kind, &outcomes[s * n..(s + 1) * n]))
            .collect();
        (results, recorders)
    }

    /// [`Self::run_comparison_recorders`] plus the export: the per-job
    /// JSONL timelines are concatenated **in task-index order**.
    ///
    /// Each job's segment is delimited by `costsim.run_start` /
    /// `costsim.run_end` records and carries its own `seq` numbering.
    /// Because each task's recorder is task-local and tasks are merged
    /// in index order, the returned string is byte-identical for any
    /// thread count — and across reruns of the same config.
    pub fn run_comparison_recorded(&self, exec: &StudyExecutor) -> (Vec<StudyResult>, String) {
        let (results, recorders) = self.run_comparison_recorders(exec);
        let mut jsonl = String::new();
        for rec in &recorders {
            rec.append_jsonl(&mut jsonl);
        }
        (results, jsonl)
    }
}

/// Runs the full four-scheme comparison (the paper's Figs. 8/9 setup)
/// on the calling thread.
pub fn run_study(config: StudyConfig) -> Vec<StudyResult> {
    run_study_with(config, &StudyExecutor::serial())
}

/// Runs the full four-scheme comparison over a thread pool. The result
/// is identical to [`run_study`] for any thread count: each `(scheme,
/// start)` simulation is an independent deterministic task, and
/// aggregation always happens in (scheme, start) order.
pub fn run_study_with(config: StudyConfig, exec: &StudyExecutor) -> Vec<StudyResult> {
    let env = StudyEnv::new(config);
    match proteus_obs::jsonl::export_path() {
        Some(path) => {
            let (results, jsonl) = env.run_comparison_recorded(exec);
            if let Err(e) = std::fs::write(&path, jsonl) {
                // Surface the failure without failing the study: the
                // numeric results are still valid, only the export is
                // lost.
                eprintln!("warning: could not write {}: {e}", path);
            }
            results
        }
        None => env.run_comparison_with(exec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> StudyConfig {
        StudyConfig {
            seed: 5,
            train_days: 5,
            eval_days: 7,
            starts: 12,
            job_hours: 2.0,
            market_model: MarketModel::default(),
            max_job_hours: 48.0,
            market_faults: None,
        }
    }

    #[test]
    fn study_reproduces_the_paper_ordering() {
        let results = run_study(small_config());
        assert_eq!(results.len(), 4);
        let by_label = |l: &str| {
            results
                .iter()
                .find(|r| r.scheme == l)
                .unwrap_or_else(|| panic!("{l} missing"))
        };
        let od = by_label("AllOnDemand");
        let ckpt = by_label("Standard+Checkpoint");
        let agile = by_label("Standard+AgileML");
        let proteus = by_label("Proteus");

        // Everyone finishes.
        for r in &results {
            assert!(
                r.completion_rate > 0.9,
                "{} completion {}",
                r.scheme,
                r.completion_rate
            );
        }
        // Percentiles bracket the mean sensibly.
        for r in &results {
            assert!(r.cost_p10 <= r.mean_cost + 1e-9, "{r:?}");
            assert!(r.cost_p90 + 1e-9 >= r.mean_cost * 0.5, "{r:?}");
            assert!(r.cost_p10 <= r.cost_p90);
        }
        // Cost ordering: Proteus < Standard+AgileML < Standard+Checkpoint
        // < AllOnDemand.
        assert!(
            proteus.mean_cost < agile.mean_cost,
            "{proteus:?} vs {agile:?}"
        );
        assert!(agile.mean_cost < ckpt.mean_cost, "{agile:?} vs {ckpt:?}");
        assert!(ckpt.mean_cost < od.mean_cost, "{ckpt:?} vs {od:?}");
        // Headline magnitude: Proteus saves most of the on-demand cost.
        assert!(
            proteus.cost_pct_of_on_demand < 35.0,
            "Proteus at {}% of on-demand",
            proteus.cost_pct_of_on_demand
        );
        // Checkpointing is the slowest spot scheme.
        assert!(ckpt.mean_runtime_hours > agile.mean_runtime_hours);
    }

    #[test]
    fn proteus_collects_free_compute() {
        let env = StudyEnv::new(small_config());
        let proteus = env.run_scheme(SchemeKind::paper_proteus());
        assert!(
            proteus.usage.free_fraction() > 0.02,
            "some free compute expected, got {}",
            proteus.usage.free_fraction()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_study(small_config());
        let b = run_study(small_config());
        assert_eq!(a, b);
    }
}
