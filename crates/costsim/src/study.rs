//! Multi-start studies replicating the paper's methodology.
//!
//! Sec. 6.3: "For each scheme and bidding model considered, we present
//! the average cost (relative to full on-demand price) across 1000
//! randomly chosen day/time starting points in each zone." This module
//! generates a long synthetic multi-market history, trains β on an
//! early window (the paper trains on March–June and evaluates on
//! June–August), and replays each scheme from many random starts in the
//! evaluation window.

use proteus_bidbrain::BetaEstimator;
use proteus_market::{catalog, MarketModel, TraceGenerator, TraceSet, UsageBreakdown};
use proteus_simtime::rng::seeded_stream;
use proteus_simtime::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scheme::{JobSpec, Scheme, SchemeKind};
use crate::sim::{run_job, SimOutcome};

/// Study parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Experiment seed (traces, start sampling).
    pub seed: u64,
    /// Length of the β-training window.
    pub train_days: u64,
    /// Length of the evaluation window random starts are drawn from.
    pub eval_days: u64,
    /// Number of random starting points.
    pub starts: usize,
    /// Job length in on-demand-fleet hours (2 or 20 in the paper).
    pub job_hours: f64,
    /// Market model for the synthetic region.
    pub market_model: MarketModel,
    /// Simulation horizon per job (jobs not finished by then count as
    /// incomplete).
    pub max_job_hours: f64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 1,
            train_days: 14,
            eval_days: 28,
            starts: 100,
            job_hours: 2.0,
            market_model: MarketModel::default(),
            max_job_hours: 96.0,
        }
    }
}

/// Aggregated result of one scheme across all starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyResult {
    /// Scheme label.
    pub scheme: String,
    /// Mean cost in dollars per job.
    pub mean_cost: f64,
    /// 10th-percentile cost across starts (a lucky market window).
    pub cost_p10: f64,
    /// 90th-percentile cost across starts (an unlucky market window).
    pub cost_p90: f64,
    /// Mean cost as a percentage of the all-on-demand baseline.
    pub cost_pct_of_on_demand: f64,
    /// Mean runtime in hours.
    pub mean_runtime_hours: f64,
    /// Mean evictions per job.
    pub mean_evictions: f64,
    /// Accumulated machine-hours across all runs.
    pub usage: UsageBreakdown,
    /// Fraction of runs that completed within the horizon.
    pub completion_rate: f64,
}

/// Shared study environment: traces + trained β + sampled starts.
pub struct StudyEnv {
    /// The synthetic price history.
    pub traces: TraceSet,
    /// β trained on the training window.
    pub beta: BetaEstimator,
    /// Random evaluation start instants.
    pub starts: Vec<SimTime>,
    /// The on-demand anchor market.
    pub on_demand_market: proteus_market::MarketKey,
    config: StudyConfig,
}

impl StudyEnv {
    /// Builds the environment for a configuration.
    pub fn new(config: StudyConfig) -> Self {
        let keys = catalog::paper_markets();
        let total_days = config.train_days + config.eval_days;
        let horizon = SimDuration::from_hours(24 * total_days + config.max_job_hours as u64 + 1);
        let gen = TraceGenerator::new(config.seed, config.market_model.clone());
        let traces = gen.generate_set(&keys, horizon);

        let mut beta = BetaEstimator::new();
        let train_end = SimTime::from_hours(24 * config.train_days);
        for k in &keys {
            beta.train(
                *k,
                traces.get(k).expect("trace generated"),
                SimTime::EPOCH,
                train_end,
                SimDuration::from_mins(30),
                &BetaEstimator::default_deltas(),
            );
        }

        let mut rng = seeded_stream(config.seed, 0x57A7);
        let eval_start = 24 * config.train_days;
        let eval_end = 24 * total_days;
        let starts: Vec<SimTime> = (0..config.starts)
            .map(|_| {
                let h = rng.gen_range((eval_start * 60)..(eval_end * 60));
                SimTime::EPOCH + SimDuration::from_mins(h)
            })
            .collect();

        StudyEnv {
            traces,
            beta,
            starts,
            on_demand_market: keys[0],
            config,
        }
    }

    /// The job spec for this study.
    pub fn job(&self) -> JobSpec {
        JobSpec::cluster_b_job(self.config.job_hours, self.on_demand_market)
    }

    /// The all-on-demand baseline cost for one job (by simulation).
    pub fn on_demand_baseline(&self) -> SimOutcome {
        let scheme = Scheme {
            kind: SchemeKind::AllOnDemand { machines: 128 },
            job: self.job(),
        };
        run_job(
            &scheme,
            &self.traces,
            &self.beta,
            self.starts[0],
            SimDuration::from_hours(self.config.max_job_hours as u64),
        )
    }

    /// Runs one scheme across every start, aggregating.
    pub fn run_scheme(&self, kind: SchemeKind) -> StudyResult {
        let job = self.job();
        let baseline = self.on_demand_baseline().cost;
        let horizon = SimDuration::from_hours(self.config.max_job_hours as u64);

        let mut costs: Vec<f64> = Vec::with_capacity(self.starts.len());
        let mut runtime_sum = 0.0;
        let mut evict_sum = 0.0;
        let mut usage = UsageBreakdown::default();
        let mut completed = 0usize;
        for &start in &self.starts {
            let out = run_job(
                &Scheme {
                    kind: kind.clone(),
                    job,
                },
                &self.traces,
                &self.beta,
                start,
                horizon,
            );
            costs.push(out.cost);
            runtime_sum += out.runtime.as_hours_f64();
            evict_sum += f64::from(out.evictions);
            usage.accumulate(&out.usage);
            completed += usize::from(out.completed);
        }
        let n = self.starts.len() as f64;
        let cost_sum: f64 = costs.iter().sum();
        costs.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
        let pct = |q: f64| -> f64 {
            let idx = ((costs.len() as f64 - 1.0) * q).round() as usize;
            costs[idx]
        };
        StudyResult {
            scheme: kind.label().to_string(),
            mean_cost: cost_sum / n,
            cost_p10: pct(0.10),
            cost_p90: pct(0.90),
            cost_pct_of_on_demand: 100.0 * (cost_sum / n) / baseline.max(1e-9),
            mean_runtime_hours: runtime_sum / n,
            mean_evictions: evict_sum / n,
            usage,
            completion_rate: completed as f64 / n,
        }
    }
}

/// Runs the full four-scheme comparison (the paper's Figs. 8/9 setup).
pub fn run_study(config: StudyConfig) -> Vec<StudyResult> {
    let env = StudyEnv::new(config);
    vec![
        env.run_scheme(SchemeKind::AllOnDemand { machines: 128 }),
        env.run_scheme(SchemeKind::paper_checkpoint()),
        env.run_scheme(SchemeKind::paper_standard_agileml()),
        env.run_scheme(SchemeKind::paper_proteus()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> StudyConfig {
        StudyConfig {
            seed: 5,
            train_days: 5,
            eval_days: 7,
            starts: 12,
            job_hours: 2.0,
            market_model: MarketModel::default(),
            max_job_hours: 48.0,
        }
    }

    #[test]
    fn study_reproduces_the_paper_ordering() {
        let results = run_study(small_config());
        assert_eq!(results.len(), 4);
        let by_label = |l: &str| {
            results
                .iter()
                .find(|r| r.scheme == l)
                .unwrap_or_else(|| panic!("{l} missing"))
        };
        let od = by_label("AllOnDemand");
        let ckpt = by_label("Standard+Checkpoint");
        let agile = by_label("Standard+AgileML");
        let proteus = by_label("Proteus");

        // Everyone finishes.
        for r in &results {
            assert!(
                r.completion_rate > 0.9,
                "{} completion {}",
                r.scheme,
                r.completion_rate
            );
        }
        // Percentiles bracket the mean sensibly.
        for r in &results {
            assert!(r.cost_p10 <= r.mean_cost + 1e-9, "{r:?}");
            assert!(r.cost_p90 + 1e-9 >= r.mean_cost * 0.5, "{r:?}");
            assert!(r.cost_p10 <= r.cost_p90);
        }
        // Cost ordering: Proteus < Standard+AgileML < Standard+Checkpoint
        // < AllOnDemand.
        assert!(
            proteus.mean_cost < agile.mean_cost,
            "{proteus:?} vs {agile:?}"
        );
        assert!(agile.mean_cost < ckpt.mean_cost, "{agile:?} vs {ckpt:?}");
        assert!(ckpt.mean_cost < od.mean_cost, "{ckpt:?} vs {od:?}");
        // Headline magnitude: Proteus saves most of the on-demand cost.
        assert!(
            proteus.cost_pct_of_on_demand < 35.0,
            "Proteus at {}% of on-demand",
            proteus.cost_pct_of_on_demand
        );
        // Checkpointing is the slowest spot scheme.
        assert!(ckpt.mean_runtime_hours > agile.mean_runtime_hours);
    }

    #[test]
    fn proteus_collects_free_compute() {
        let env = StudyEnv::new(small_config());
        let proteus = env.run_scheme(SchemeKind::paper_proteus());
        assert!(
            proteus.usage.free_fraction() > 0.02,
            "some free compute expected, got {}",
            proteus.usage.free_fraction()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_study(small_config());
        let b = run_study(small_config());
        assert_eq!(a, b);
    }
}
