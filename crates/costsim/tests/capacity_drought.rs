//! Cost-study behavior under capacity-limited markets: schemes must
//! still complete every job (the on-demand tier is never rationed),
//! spot exploitation must shrink in proportion to the drought, and the
//! faulted study must stay seed-deterministic.

use proteus_costsim::{run_study, SchemeKind, StudyConfig, StudyEnv};
use proteus_market::{MarketFaultPlan, MarketModel};
use proteus_simtime::{SimDuration, SimTime};

fn config(faults: Option<MarketFaultPlan>) -> StudyConfig {
    StudyConfig {
        seed: 5,
        train_days: 5,
        eval_days: 7,
        starts: 8,
        job_hours: 2.0,
        market_model: MarketModel::default(),
        max_job_hours: 48.0,
        market_faults: faults,
    }
}

/// A drought covering every possible job window of `config`.
fn total_drought(cap: u32) -> MarketFaultPlan {
    let horizon = SimDuration::from_hours(24 * (5 + 7) + 48);
    MarketFaultPlan::new(9).with_drought(SimTime::EPOCH, SimTime::EPOCH + horizon, cap)
}

/// With every spot market rationed to zero, Proteus degenerates to its
/// reliable on-demand core: every job still completes, no spot hour is
/// ever paid, and the cost premium over the spot-exploiting baseline
/// reappears.
#[test]
fn total_drought_completes_on_demand_only() {
    let baseline = StudyEnv::new(config(None)).run_scheme(SchemeKind::paper_proteus());
    assert!(
        baseline.usage.spot_paid_hours > 0.0,
        "fault-free baseline must exploit spot: {baseline:?}"
    );

    let drought =
        StudyEnv::new(config(Some(total_drought(0)))).run_scheme(SchemeKind::paper_proteus());
    assert!(
        (drought.completion_rate - 1.0).abs() < 1e-12,
        "jobs must complete on the reliable tier alone: {drought:?}"
    );
    assert_eq!(
        drought.usage.spot_paid_hours, 0.0,
        "a total drought grants no spot capacity: {drought:?}"
    );
    assert_eq!(
        drought.usage.free_hours, 0.0,
        "no spot, no eviction refunds"
    );
    assert!(
        drought.mean_cost > baseline.mean_cost,
        "losing spot must cost more: drought {} vs baseline {}",
        drought.mean_cost,
        baseline.mean_cost
    );
}

/// A partial cap squeezes, but does not eliminate, spot exploitation.
/// Total paid spot hours may legitimately *grow* (a smaller fleet runs
/// longer); what must shrink is the concurrent spot footprint — paid
/// spot machine-hours per job-hour — and jobs take longer to finish.
#[test]
fn partial_drought_shrinks_spot_footprint() {
    let starts = config(None).starts as f64;
    let baseline = StudyEnv::new(config(None)).run_scheme(SchemeKind::paper_proteus());
    let capped =
        StudyEnv::new(config(Some(total_drought(2)))).run_scheme(SchemeKind::paper_proteus());
    assert!(
        (capped.completion_rate - 1.0).abs() < 1e-12,
        "capped jobs must still complete: {capped:?}"
    );
    assert!(
        capped.usage.spot_paid_hours > 0.0,
        "a partial cap still grants some spot: {capped:?}"
    );
    let footprint = |r: &proteus_costsim::StudyResult| {
        r.usage.spot_paid_hours / (starts * r.mean_runtime_hours)
    };
    assert!(
        footprint(&capped) < footprint(&baseline),
        "the cap must shrink the concurrent spot footprint: capped {} vs baseline {}",
        footprint(&capped),
        footprint(&baseline)
    );
    assert!(
        capped.mean_runtime_hours > baseline.mean_runtime_hours,
        "a rationed fleet cannot finish as fast: capped {} vs baseline {}",
        capped.mean_runtime_hours,
        baseline.mean_runtime_hours
    );
}

/// A harsh per-market cap separates the resilient loop from the
/// baselines: Proteus (degraded-mode fallback) and the all-on-demand
/// fleet (never rationed) still complete every job; the standard
/// bidding schemes, which only retry the spot market, may not — but
/// every scheme must report sane, finite numbers rather than wedge.
#[test]
fn harsh_drought_separates_resilient_from_standard() {
    let results = run_study(config(Some(total_drought(1))));
    for r in &results {
        assert!(r.mean_cost.is_finite() && r.mean_cost >= 0.0, "{r:?}");
        assert!(
            (0.0..=1.0).contains(&r.completion_rate),
            "scheme {}: {r:?}",
            r.scheme
        );
        if r.scheme == "Proteus" || r.scheme.starts_with("AllOnDemand") {
            assert!(
                (r.completion_rate - 1.0).abs() < 1e-12,
                "scheme {} must complete under drought: {r:?}",
                r.scheme
            );
        }
    }
}

/// The faulted study replays bit-identically from its seeds — chaos
/// results are quotable and debuggable.
#[test]
fn faulted_study_is_deterministic() {
    let a = run_study(config(Some(total_drought(2))));
    let b = run_study(config(Some(total_drought(2))));
    assert_eq!(a, b, "same seeds, same drought, different results");
}
