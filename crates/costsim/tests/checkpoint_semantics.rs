//! Direct checks of the checkpoint baseline's semantics on scripted
//! markets: work rollback on eviction and restart delays — the
//! mechanisms whose absence is AgileML's advantage.

use proteus_bidbrain::BetaEstimator;
use proteus_costsim::{run_job, JobSpec, Scheme, SchemeKind};
use proteus_market::{PriceTrace, TraceSet};
use proteus_simtime::{SimDuration, SimTime};

fn on_demand_market() -> proteus_market::MarketKey {
    proteus_market::MarketKey::new(
        proteus_market::catalog::c4_xlarge(),
        proteus_market::Zone(0),
    )
}

/// A trace that spikes above the on-demand price at `spike_min` minutes
/// for ten minutes, evicting anyone bidding the on-demand price.
fn spiking_trace(spike_min: u64) -> TraceSet {
    let od = on_demand_market().instance_type().on_demand_price;
    let spike_at = SimTime::EPOCH + SimDuration::from_mins(spike_min);
    let spike_end = spike_at + SimDuration::from_mins(10);
    let mut set = TraceSet::new();
    set.insert(
        on_demand_market(),
        PriceTrace::from_points(vec![
            (SimTime::EPOCH, 0.05),
            (spike_at, od * 3.0),
            (spike_end, 0.05),
        ])
        .expect("valid trace"),
    );
    set
}

fn job() -> JobSpec {
    JobSpec::cluster_b_job(2.0, on_demand_market())
}

#[test]
fn one_eviction_costs_checkpoint_scheme_more_than_agileml() {
    // Both schemes hit exactly one eviction (the scripted spike). The
    // checkpoint scheme pays a work rollback plus a restart delay; the
    // AgileML scheme pays only the eviction pause.
    let beta = BetaEstimator::new();
    let horizon = SimDuration::from_hours(24);
    let ckpt = run_job(
        &Scheme {
            kind: SchemeKind::paper_checkpoint(),
            job: job(),
        },
        &spiking_trace(45),
        &beta,
        SimTime::EPOCH,
        horizon,
    );
    let agile = run_job(
        &Scheme {
            kind: SchemeKind::paper_standard_agileml(),
            job: job(),
        },
        &spiking_trace(45),
        &beta,
        SimTime::EPOCH,
        horizon,
    );
    assert!(ckpt.completed && agile.completed);
    assert_eq!(ckpt.evictions, 1, "{ckpt:?}");
    assert_eq!(agile.evictions, 1, "{agile:?}");
    assert!(
        ckpt.runtime > agile.runtime,
        "rollback + restart must cost more than a drain: {:?} vs {:?}",
        ckpt.runtime,
        agile.runtime
    );
    // The runtime gap exceeds the pure restart delay: work was lost too.
    let gap = ckpt.runtime.saturating_sub(agile.runtime);
    assert!(
        gap > SimDuration::from_mins(5),
        "rollback loss visible in the runtime gap: {gap}"
    );
}

#[test]
fn late_spike_hurts_checkpoint_scheme_more_than_early_spike() {
    // An eviction just before the job would finish discards more
    // un-checkpointed work than one right after a checkpoint; AgileML's
    // loss is position-independent.
    let beta = BetaEstimator::new();
    let horizon = SimDuration::from_hours(24);
    let early = run_job(
        &Scheme {
            kind: SchemeKind::paper_checkpoint(),
            job: job(),
        },
        &spiking_trace(10),
        &beta,
        SimTime::EPOCH,
        horizon,
    );
    let late = run_job(
        &Scheme {
            kind: SchemeKind::paper_checkpoint(),
            job: job(),
        },
        &spiking_trace(110),
        &beta,
        SimTime::EPOCH,
        horizon,
    );
    assert!(early.completed && late.completed);
    // Both suffer one eviction; the later one wastes more total time
    // because more accumulated-but-uncheckpointed work is redone.
    assert_eq!(early.evictions, 1);
    assert_eq!(late.evictions, 1);
    assert!(
        late.runtime >= early.runtime,
        "late evictions redo more work: {:?} vs {:?}",
        late.runtime,
        early.runtime
    );
}

#[test]
fn all_on_demand_is_immune_to_spikes() {
    let beta = BetaEstimator::new();
    let od = run_job(
        &Scheme {
            kind: SchemeKind::AllOnDemand { machines: 128 },
            job: job(),
        },
        &spiking_trace(30),
        &beta,
        SimTime::EPOCH,
        SimDuration::from_hours(24),
    );
    assert!(od.completed);
    assert_eq!(od.evictions, 0);
    assert!((od.runtime.as_hours_f64() - 2.0).abs() < 0.05);
}
