//! Multi-market exploitation: Proteus should spread acquisitions across
//! markets as their prices move independently, while the standard
//! strategy concentrates on whatever was cheapest at (re)start.

use proteus_costsim::{run_job, Scheme, SchemeKind, StudyConfig, StudyEnv};
use proteus_simtime::SimDuration;

#[test]
fn proteus_spreads_across_markets_over_long_jobs() {
    let env = StudyEnv::new(StudyConfig {
        seed: 12,
        train_days: 7,
        eval_days: 10,
        starts: 6,
        job_hours: 20.0,
        market_model: proteus_market::MarketModel::default(),
        max_job_hours: 96.0,
        market_faults: None,
    });
    let mut distinct_markets = 0usize;
    for &start in &env.starts {
        let out = run_job(
            &Scheme {
                kind: SchemeKind::paper_proteus(),
                job: env.job(),
            },
            &env.traces,
            &env.beta,
            start,
            SimDuration::from_hours(96),
        );
        assert!(out.completed);
        distinct_markets = distinct_markets.max(out.market_mix.len());
        let total: u32 = out.market_mix.values().sum();
        assert!(total > 0, "some spot capacity was acquired");
    }
    assert!(
        distinct_markets >= 2,
        "a 20-hour job should touch multiple markets, saw {distinct_markets}"
    );
}

#[test]
fn market_mix_is_recorded_for_standard_strategy_too() {
    let env = StudyEnv::new(StudyConfig {
        seed: 13,
        train_days: 5,
        eval_days: 7,
        starts: 3,
        job_hours: 2.0,
        market_model: proteus_market::MarketModel::default(),
        max_job_hours: 48.0,
        market_faults: None,
    });
    let out = run_job(
        &Scheme {
            kind: SchemeKind::paper_standard_agileml(),
            job: env.job(),
        },
        &env.traces,
        &env.beta,
        env.starts[0],
        SimDuration::from_hours(48),
    );
    assert!(out.completed);
    // The standard strategy fills its 512-core budget in one shot from
    // whichever market is cheapest per core; the largest catalog type
    // has 16 vCPUs, so a full fleet is at least 32 instances.
    let total: u32 = out.market_mix.values().sum();
    assert!(total >= 32, "the standard fleet is one big allocation");
}
