//! The observability determinism contract (DESIGN.md "Observability").
//!
//! A recorded cost study must be a pure function of its configuration:
//! the JSONL timeline is byte-identical across reruns and across
//! executor thread counts, and attaching a recorder must not perturb
//! the simulation itself (recording is passive — it never feeds back
//! into decisions or RNG draws).

use proteus_costsim::study::{StudyConfig, StudyEnv};
use proteus_costsim::StudyExecutor;
use proteus_market::MarketModel;

/// A deliberately small study: 4 schemes × 6 starts = 24 recorded jobs.
fn config() -> StudyConfig {
    StudyConfig {
        seed: 9,
        train_days: 4,
        eval_days: 6,
        starts: 6,
        job_hours: 2.0,
        market_model: MarketModel::default(),
        max_job_hours: 48.0,
        market_faults: None,
    }
}

#[test]
fn identical_runs_emit_byte_identical_jsonl() {
    let exec = StudyExecutor::serial();
    let (results_a, jsonl_a) = StudyEnv::new(config()).run_comparison_recorded(&exec);
    let (results_b, jsonl_b) = StudyEnv::new(config()).run_comparison_recorded(&exec);
    assert_eq!(results_a, results_b, "numeric results must be stable");
    assert!(!jsonl_a.is_empty(), "the recorded study produced no events");
    assert_eq!(jsonl_a, jsonl_b, "JSONL timelines diverged across reruns");
}

#[test]
fn thread_count_does_not_change_the_timeline() {
    let (serial_results, serial_jsonl) =
        StudyEnv::new(config()).run_comparison_recorded(&StudyExecutor::serial());
    let (par_results, par_jsonl) =
        StudyEnv::new(config()).run_comparison_recorded(&StudyExecutor::new(4));
    assert_eq!(serial_results, par_results);
    assert_eq!(
        serial_jsonl, par_jsonl,
        "JSONL must be byte-identical for any executor width"
    );
}

#[test]
fn recording_is_passive() {
    let env = StudyEnv::new(config());
    let exec = StudyExecutor::serial();
    let unrecorded = env.run_comparison_with(&exec);
    let (recorded, _) = env.run_comparison_recorded(&exec);
    assert_eq!(
        unrecorded, recorded,
        "attaching a recorder changed the simulation"
    );
}

#[test]
fn jsonl_covers_the_figure_axes() {
    let exec = StudyExecutor::serial();
    let (_, jsonl) = StudyEnv::new(config()).run_comparison_recorded(&exec);
    // Every job is delimited, and the export carries the Fig. 9/10
    // axes: cumulative cost/work samples plus market-plane events.
    let count = |needle: &str| jsonl.matches(needle).count();
    let jobs = 4 * config().starts;
    assert_eq!(count("\"kind\":\"costsim.run_start\""), jobs);
    assert_eq!(count("\"kind\":\"costsim.run_end\""), jobs);
    assert!(
        count("\"kind\":\"costsim.sample\"") >= jobs,
        "missing samples"
    );
    assert!(
        count("\"kind\":\"market.price_move\"") > 0,
        "no price moves"
    );
    assert!(count("\"kind\":\"market.spot_granted\"") > 0, "no grants");
    assert!(count("\"kind\":\"bid.candidate\"") > 0, "no Eq. 4 rankings");
    // Sim-time stamps are non-decreasing within each job's segment
    // (each `run_start` resets both `seq` and the clock to the job's
    // own start instant).
    let mut last_t: Option<u64> = None;
    for line in jsonl.lines() {
        let t = line
            .split("\"t_ms\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("unparseable line: {line}"));
        if line.contains("\"kind\":\"costsim.run_start\"") {
            last_t = None;
        }
        if let Some(prev) = last_t {
            assert!(t >= prev, "time went backwards: {prev} -> {t} in {line}");
        }
        last_t = Some(t);
    }
}
