//! The parallel study engine must be a pure speedup: running the same
//! study over any thread count yields `PartialEq`-identical results,
//! because every (scheme, start) simulation is deterministic and
//! aggregation always folds outcomes in (scheme, start) order.

use proteus_costsim::{run_study, run_study_with, StudyConfig, StudyExecutor};
use proteus_market::MarketModel;

fn config() -> StudyConfig {
    StudyConfig {
        seed: 21,
        train_days: 5,
        eval_days: 7,
        starts: 10,
        job_hours: 2.0,
        market_model: MarketModel::default(),
        max_job_hours: 48.0,
        market_faults: None,
    }
}

#[test]
fn study_results_identical_across_thread_counts() {
    let serial = run_study(config());
    assert_eq!(serial.len(), 4);
    for threads in [2, 4, 7] {
        let parallel = run_study_with(config(), &StudyExecutor::new(threads));
        assert_eq!(serial, parallel, "divergence at {threads} threads");
    }
}

#[test]
fn per_scheme_runs_match_the_comparison_fanout() {
    use proteus_costsim::{SchemeKind, StudyEnv};
    let env = StudyEnv::new(config());
    let exec = StudyExecutor::new(4);
    let comparison = env.run_comparison_with(&exec);
    let solo = [
        env.run_scheme(SchemeKind::AllOnDemand { machines: 128 }),
        env.run_scheme(SchemeKind::paper_checkpoint()),
        env.run_scheme(SchemeKind::paper_standard_agileml()),
        env.run_scheme(SchemeKind::paper_proteus()),
    ];
    assert_eq!(comparison.as_slice(), solo.as_slice());
}
