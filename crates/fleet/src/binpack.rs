//! Bin-packing of job slots onto shared reliable machines.
//!
//! Proteus keeps a small reliable (on-demand) tier per job for its
//! ActivePS/controller state. Run independently, every trial pays for a
//! whole machine; at fleet scale the reliable tier amortizes — many
//! jobs' slots pack onto one shared machine. This module does the
//! packing: first-fit onto existing machines, acquiring a new on-demand
//! machine only when every open machine is full, and terminating
//! machines the moment they empty.

use proteus_market::{AllocationId, CloudProvider, MarketError, MarketKey};
use proteus_simtime::{SimDuration, SimTime};

/// One shared on-demand machine and its slot occupancy.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Machine {
    alloc: AllocationId,
    used: u32,
    /// Billing-hour anchor (grant time) for the final-hour credit.
    granted_at: SimTime,
}

/// The shared reliable pool.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliablePool {
    market: MarketKey,
    slots_per_machine: u32,
    machines: Vec<Option<Machine>>,
    /// Peak machine count, for reporting.
    peak: usize,
}

impl ReliablePool {
    /// An empty pool of `market` machines carved into
    /// `slots_per_machine` slots each.
    pub fn new(market: MarketKey, slots_per_machine: u32) -> Self {
        ReliablePool {
            market,
            slots_per_machine: slots_per_machine.max(1),
            machines: Vec::new(),
            peak: 0,
        }
    }

    /// Machines currently held.
    pub fn machine_count(&self) -> usize {
        self.machines.iter().flatten().count()
    }

    /// Most machines ever held at once.
    pub fn peak_machines(&self) -> usize {
        self.peak
    }

    /// Assigns `slots` slots to a job, first-fit onto the lowest-index
    /// machine with room, acquiring a fresh machine when none fits.
    /// Returns the machine index the job must pass back to
    /// [`release`](Self::release). Requests wider than a whole machine
    /// are refused rather than split — a job's reliable state lives on
    /// one machine.
    pub fn assign(
        &mut self,
        provider: &mut CloudProvider<'_>,
        slots: u32,
        now: SimTime,
    ) -> Result<usize, MarketError> {
        if slots == 0 || slots > self.slots_per_machine {
            return Err(MarketError::EmptyRequest);
        }
        for (i, m) in self.machines.iter_mut().enumerate() {
            if let Some(m) = m {
                if m.used + slots <= self.slots_per_machine {
                    m.used += slots;
                    return Ok(i);
                }
            }
        }
        let alloc = provider.request_on_demand(self.market, 1)?;
        let machine = Machine {
            alloc,
            used: slots,
            granted_at: now,
        };
        // Reuse a vacated index if one exists, else append.
        let idx = match self.machines.iter().position(Option::is_none) {
            Some(i) => {
                self.machines[i] = Some(machine);
                i
            }
            None => {
                self.machines.push(Some(machine));
                self.machines.len() - 1
            }
        };
        self.peak = self.peak.max(self.machine_count());
        Ok(idx)
    }

    /// Returns `slots` slots on machine `idx`. An emptied machine is
    /// terminated immediately (the already-paid hour is forfeited, as
    /// with any voluntary termination).
    pub fn release(&mut self, provider: &mut CloudProvider<'_>, idx: usize, slots: u32) {
        let Some(slot) = self.machines.get_mut(idx) else {
            return;
        };
        let Some(m) = slot else {
            return;
        };
        m.used = m.used.saturating_sub(slots);
        if m.used == 0 {
            let _ = provider.terminate(m.alloc);
            *slot = None;
        }
    }

    /// Terminates every held machine and returns the paper-accounting
    /// credit for the unused fraction of each machine's current billing
    /// hour (a fleet that ends mid-hour is not charged for the
    /// remainder).
    pub fn teardown(&mut self, provider: &mut CloudProvider<'_>, now: SimTime) -> f64 {
        let price = self.market.instance_type().on_demand_price;
        let mut credit = 0.0;
        for slot in self.machines.iter_mut() {
            if let Some(m) = slot.take() {
                if now > m.granted_at {
                    let into_hour = now.time_into_billing_hour(m.granted_at).as_hours_f64();
                    credit += price * (1.0 - into_hour);
                } else {
                    credit += price;
                }
                let _ = provider.terminate(m.alloc);
            }
        }
        credit
    }

    /// Machine-hours a full fleet of `machines` machines would have
    /// held over `span` — the amortization denominator for reporting.
    pub fn machine_hours(machines: usize, span: SimDuration) -> f64 {
        machines as f64 * span.as_hours_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_market::{catalog, PriceTrace, TraceSet, Zone};

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    fn provider() -> CloudProvider<'static> {
        let mut set = TraceSet::new();
        set.insert(
            key(),
            PriceTrace::from_points(vec![(SimTime::EPOCH, 0.05)]).expect("trace"),
        );
        CloudProvider::new(set)
    }

    #[test]
    fn first_fit_shares_one_machine_until_full() {
        let mut p = provider();
        let mut pool = ReliablePool::new(key(), 4);
        let a = pool.assign(&mut p, 2, SimTime::EPOCH).expect("assign");
        let b = pool.assign(&mut p, 2, SimTime::EPOCH).expect("assign");
        assert_eq!(a, b, "both jobs share the first machine");
        assert_eq!(pool.machine_count(), 1);
        let c = pool.assign(&mut p, 1, SimTime::EPOCH).expect("assign");
        assert_ne!(a, c, "the full machine overflows to a second");
        assert_eq!(pool.machine_count(), 2);
    }

    #[test]
    fn release_terminates_emptied_machines_and_reuses_indices() {
        let mut p = provider();
        let mut pool = ReliablePool::new(key(), 2);
        let a = pool.assign(&mut p, 2, SimTime::EPOCH).expect("assign");
        let b = pool.assign(&mut p, 1, SimTime::EPOCH).expect("assign");
        pool.release(&mut p, a, 2);
        assert_eq!(pool.machine_count(), 1);
        let c = pool.assign(&mut p, 2, SimTime::EPOCH).expect("assign");
        assert_eq!(c, a, "vacated index is reused");
        assert_ne!(b, c);
        assert_eq!(pool.peak_machines(), 2);
    }

    #[test]
    fn oversized_and_zero_requests_are_refused() {
        let mut p = provider();
        let mut pool = ReliablePool::new(key(), 2);
        assert!(pool.assign(&mut p, 3, SimTime::EPOCH).is_err());
        assert!(pool.assign(&mut p, 0, SimTime::EPOCH).is_err());
        assert_eq!(pool.machine_count(), 0);
    }

    #[test]
    fn teardown_credits_unused_hour_fraction() {
        let mut p = provider();
        let mut pool = ReliablePool::new(key(), 4);
        pool.assign(&mut p, 1, SimTime::EPOCH).expect("assign");
        p.advance_to(SimTime::EPOCH + SimDuration::from_mins(15))
            .expect("advance");
        let now = p.now();
        let credit = pool.teardown(&mut p, now);
        let price = key().instance_type().on_demand_price;
        assert!((credit - 0.75 * price).abs() < 1e-9, "credit={credit}");
        assert_eq!(pool.machine_count(), 0);
    }
}
