//! Job identity, specification, and lifecycle state.

use std::fmt;

use proteus_market::TenantId;
use serde::{Deserialize, Serialize};

/// Identifies one job within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl JobId {
    /// The market-plane tenant this job's fault draws route through.
    ///
    /// Tenant 0 is [`TenantId::DEFAULT`] (the legacy single-job stream),
    /// so fleet jobs map to tenants `1..`: every job gets a seed-split
    /// RNG stream of its own and one job's request pattern never
    /// perturbs another's fate — the property that makes fleet runs
    /// bit-identical whatever the scheduler interleaving.
    pub fn tenant(self) -> TenantId {
        TenantId(self.0 + 1)
    }
}

/// What one fleet job needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetJobSpec {
    /// Useful work required, in φ-scaled core-hours. The sweep driver
    /// extends this target rung by rung.
    pub work_core_hours: f64,
    /// Minimum worker set: the gang acquires exactly this many spot
    /// instances atomically, or not at all.
    pub min_gang: u32,
    /// Priority tier (0 = highest). Tiers weight the fair queue; aging
    /// keeps low tiers from starving.
    pub tier: u32,
    /// Whether the scheduler may preempt this job's gang to make room
    /// for a higher-value gang. Sweep trials are preemptible; a
    /// production job would not be.
    pub preemptible: bool,
    /// Slots needed on the shared reliable (on-demand) pool — the
    /// job's parameter-server / controller footprint, bin-packed with
    /// other tenants' slots onto shared machines.
    pub reliable_slots: u32,
    /// Scalability coefficient per core-count doubling (the φ model).
    pub phi_per_doubling: f64,
}

impl FleetJobSpec {
    /// A small sweep-style trial: a preemptible low-tier gang of
    /// `gang` instances chasing `work` core-hours.
    pub fn trial(work: f64, gang: u32, tier: u32) -> Self {
        FleetJobSpec {
            work_core_hours: work,
            min_gang: gang,
            tier,
            preemptible: true,
            reliable_slots: 1,
            phi_per_doubling: 0.97,
        }
    }
}

/// Where a job is in its lifecycle. Every job ends in one of the three
/// terminal states — `Completed`, `Killed`, or `Unfinished` — never a
/// panic: an impossible market yields `Unfinished`, not a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted, waiting to pass admission control.
    Submitted,
    /// Admitted; queued for gang acquisition.
    Waiting,
    /// Gang held; accruing work.
    Running,
    /// Reached its work target; gang released with the final partial
    /// hour credited.
    Completed,
    /// Killed by its owner (the sweep's early-kill rule).
    Killed,
    /// The fleet horizon ended first — the typed "did not converge"
    /// outcome.
    Unfinished,
}

impl JobState {
    /// Whether the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Killed | JobState::Unfinished
        )
    }
}

/// Per-job accounting the fleet reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSummary {
    /// The job.
    pub id: JobId,
    /// Terminal (or last observed) state.
    pub state: JobState,
    /// φ-scaled core-hours accrued.
    pub work_done: f64,
    /// Dollars billed to this job's spot gangs, net of eviction refunds
    /// and final-hour credits.
    pub spot_cost: f64,
    /// Provider evictions absorbed.
    pub evictions: u32,
    /// Scheduler preemptions absorbed.
    pub preemptions: u32,
    /// Gang launches (first launch plus every relaunch).
    pub launches: u32,
    /// Most scheduling rounds the job ever waited between becoming
    /// runnable and launching — the fairness/starvation axis.
    pub max_rounds_waited: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_are_distinct_and_never_default() {
        assert_ne!(JobId(0).tenant(), TenantId::DEFAULT);
        assert_ne!(JobId(0).tenant(), JobId(1).tenant());
    }

    #[test]
    fn terminal_states() {
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Killed.is_terminal());
        assert!(JobState::Unfinished.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Waiting.is_terminal());
        assert!(!JobState::Submitted.is_terminal());
    }
}
