//! Multi-tenant fleet scheduling: many jobs, one market.
//!
//! Proteus (EuroSys 2017) optimizes one job's cost-per-work (Eq. 4) on
//! a dynamic spot market. At organization scale the unit of optimization
//! is a *fleet*: hundreds-to-thousands of concurrent training jobs —
//! hyperparameter sweeps, production retrains, ad-hoc experiments —
//! competing for the same markets and the same reliable tier. This
//! crate schedules that fleet:
//!
//! - [`FleetSim`](sim::FleetSim) — admission control, weighted-fair
//!   priority tiers with aging (low tiers can be delayed, never
//!   starved), **gang acquisition** (a job's minimum worker set acquires
//!   atomically or queues whole — never a half-launched, money-bleeding
//!   gang), and **global** Eq. 4 ranking across jobs with value-ordered
//!   preemption of low-value preemptible gangs.
//! - [`ReliablePool`](binpack::ReliablePool) — bin-packs every job's
//!   reliable (parameter-server) slots onto shared on-demand machines,
//!   amortizing the reliable tier the paper pays per job.
//! - [`sweep`] — a SpotTune-style hyperparameter sweep driver:
//!   asynchronous successive halving over fleet trials, early-killing
//!   laggards and losers, promoting the winner into a real
//!   [`proteus::Proteus`] training session.
//!
//! Determinism is load-bearing throughout: market fault draws come from
//! per-tenant seed-split streams ([`proteus_market::TenantId`]), Eq. 4
//! evaluations fan out over the study executor and return in index
//! order, and all mutation is serial — so a fleet outcome is
//! bit-identical for any `PROTEUS_THREADS` setting.

// Scheduler code returns typed outcomes, never panics; any retained
// expect must document a real invariant at its use site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod binpack;
pub mod job;
pub mod scheduler;
pub mod sim;
pub mod sweep;

pub use binpack::ReliablePool;
pub use job::{FleetJobSpec, JobId, JobState, JobSummary};
pub use scheduler::{FairnessConfig, RankEntry};
pub use sim::{FleetConfig, FleetOutcome, FleetSim, FleetTiming};
pub use sweep::{promote_winner, run_sweep, SweepConfig, SweepOutcome, TrialResult};
