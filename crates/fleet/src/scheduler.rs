//! Fairness policy: weighted fair queuing with aging.
//!
//! Pending gangs are ranked by *value* = fairness weight × marginal
//! cost-per-work advantage (Eq. 4 across jobs). The weight starts from
//! the job's priority tier and grows with every scheduling round the
//! job spends waiting, so a low tier is cheap to delay but impossible
//! to starve: past [`FairnessConfig::max_wait_rounds`] the job is
//! *starved* and jumps to the front of the launch walk regardless of
//! value, with preemption rights over any preemptible gang.

use serde::{Deserialize, Serialize};

/// Tuning for the weighted fair queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessConfig {
    /// Weight ratio between adjacent tiers: tier `t` has base weight
    /// `tier_base^-t`.
    pub tier_base: f64,
    /// Fractional weight gained per round spent waiting — the aging
    /// term `1 + aging_boost × rounds`.
    pub aging_boost: f64,
    /// Rounds after which a waiting job is declared starved and served
    /// ahead of everything, whatever its tier.
    pub max_wait_rounds: u32,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig {
            tier_base: 2.0,
            aging_boost: 0.25,
            max_wait_rounds: 16,
        }
    }
}

impl FairnessConfig {
    /// The aged weight of a job on priority `tier` that has waited
    /// `rounds_waiting` scheduling rounds.
    pub fn effective_weight(&self, tier: u32, rounds_waiting: u32) -> f64 {
        let base = self.tier_base.powi(-(tier.min(64) as i32));
        base * (1.0 + self.aging_boost * f64::from(rounds_waiting))
    }

    /// Whether a job that has waited `rounds_waiting` rounds is starved.
    pub fn is_starved(&self, rounds_waiting: u32) -> bool {
        rounds_waiting >= self.max_wait_rounds
    }
}

/// One pending gang's place in the launch walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankEntry {
    /// Index into the caller's job table.
    pub job_idx: usize,
    /// Aged weight × Eq. 4 advantage; higher launches first.
    pub value: f64,
    /// Starved jobs sort ahead of everything.
    pub starved: bool,
}

/// Orders pending gangs for the launch walk: starved first, then by
/// descending value, ties broken by ascending job index so the order is
/// total and deterministic.
pub fn rank(entries: &mut [RankEntry]) {
    entries.sort_by(|a, b| {
        b.starved
            .cmp(&a.starved)
            .then_with(|| b.value.total_cmp(&a.value))
            .then_with(|| a.job_idx.cmp(&b.job_idx))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_tier_number_means_lower_weight() {
        let f = FairnessConfig::default();
        assert!(f.effective_weight(0, 0) > f.effective_weight(1, 0));
        assert!(f.effective_weight(1, 0) > f.effective_weight(3, 0));
    }

    #[test]
    fn aging_eventually_overtakes_a_fresh_higher_tier() {
        let f = FairnessConfig::default();
        // A tier-3 job that has waited long enough outweighs a fresh
        // tier-0 job: weight ratio 8 needs (w-1)/0.25 > 7 → 28 rounds.
        let mut rounds = 0;
        while f.effective_weight(3, rounds) <= f.effective_weight(0, 0) {
            rounds += 1;
            assert!(rounds < 100, "aging never overtook the higher tier");
        }
        assert!(rounds > 0);
    }

    #[test]
    fn rank_puts_starved_first_then_value_then_index() {
        let mut e = vec![
            RankEntry {
                job_idx: 0,
                value: 5.0,
                starved: false,
            },
            RankEntry {
                job_idx: 1,
                value: 1.0,
                starved: true,
            },
            RankEntry {
                job_idx: 2,
                value: 5.0,
                starved: false,
            },
            RankEntry {
                job_idx: 3,
                value: 9.0,
                starved: false,
            },
        ];
        rank(&mut e);
        let order: Vec<usize> = e.iter().map(|x| x.job_idx).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn starvation_threshold() {
        let f = FairnessConfig::default();
        assert!(!f.is_starved(f.max_wait_rounds - 1));
        assert!(f.is_starved(f.max_wait_rounds));
    }
}
