//! The fleet scheduler: many jobs, one market.
//!
//! [`FleetSim`] drives hundreds-to-thousands of concurrent training
//! jobs against a single [`CloudProvider`] and a single shared
//! reliable-machine pool. Each scheduling round (the paper's two-minute
//! decision cadence) it:
//!
//! 1. **admits** submitted jobs while the active set has room,
//!    assigning each a bin-packed slot on the shared reliable pool;
//! 2. **evaluates** every pending gang's best `(market, bid-delta)`
//!    candidate by Eq. 4 cost-per-work — a pure fan-out over the study
//!    executor, collected in index order so results are bit-identical
//!    whatever the thread count;
//! 3. **ranks** pending gangs globally by aged fairness weight ×
//!    marginal Eq. 4 value and walks the ranking, acquiring each gang
//!    atomically ([`CloudProvider::request_spot_gang`]) — a capacity
//!    shortfall triggers value-ordered **preemption** of running
//!    low-value preemptible gangs (settled exactly like evictions);
//! 4. **routes** provider events (evictions, launch failures) back to
//!    their jobs via the allocation map and accrues φ-scaled work over
//!    the exact live segments.
//!
//! Every job ends in a typed terminal state; an impossible market
//! yields [`JobState::Unfinished`], never a hang or a panic.

use std::collections::BTreeMap;
use std::sync::Arc;

use proteus_bidbrain::{AllocView, AppParams, BetaEstimator, BidBrain, BidBrainConfig, Objective};
use proteus_costsim::StudyExecutor;
use proteus_market::{
    AllocationId, CloudProvider, MarketError, MarketFaultPlan, MarketKey, ProviderEvent, TraceSet,
    UsageBreakdown,
};
use proteus_obs::{Event, FleetEvent, Recorder};
use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::binpack::ReliablePool;
use crate::job::{FleetJobSpec, JobId, JobState, JobSummary};
use crate::scheduler::{rank, FairnessConfig, RankEntry};

/// Metrics-registry keys the fleet scheduler maintains.
pub mod obs_keys {
    /// Jobs that passed admission control.
    pub const JOBS_ADMITTED: &str = "fleet.jobs_admitted";
    /// Gang acquisition attempts that queued instead of launching.
    pub const GANGS_QUEUED: &str = "fleet.gangs_queued";
    /// Gangs launched (first launch plus relaunches).
    pub const GANGS_LAUNCHED: &str = "fleet.gangs_launched";
    /// Trials killed early by their owner (lag or successive halving).
    pub const TRIALS_EARLY_KILLED: &str = "fleet.trials_early_killed";
    /// Running gangs preempted for a higher-value gang.
    pub const PREEMPTIONS: &str = "fleet.preemptions";
    /// Histogram of time spent queued before each launch, in hours.
    pub const QUEUE_WAIT_HOURS: &str = "fleet.queue_wait_hours";
}

/// Fleet-wide tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Scheduling cadence (the paper's 2-minute decision loop).
    pub step: SimDuration,
    /// Most jobs allowed past admission at once (Waiting + Running).
    pub max_active_jobs: usize,
    /// Reliable-slot density per shared on-demand machine.
    pub slots_per_machine: u32,
    /// Weighted-fair-queue tuning.
    pub fairness: FairnessConfig,
    /// Per-job progress pause after an eviction or preemption (λ).
    pub eviction_pause: SimDuration,
    /// Per-job progress pause after a (re)launch (σ).
    pub scale_pause: SimDuration,
    /// Bid deltas swept per candidate market.
    pub bid_deltas: Vec<f64>,
    /// A pending gang preempts a victim only when its value exceeds
    /// `preemption_margin ×` the victim's (starved gangs ignore this).
    pub preemption_margin: f64,
    /// Market backing the shared reliable pool.
    pub on_demand_market: MarketKey,
    /// Candidate spot markets for gang acquisition.
    pub markets: Vec<MarketKey>,
}

impl FleetConfig {
    /// Paper-cadence defaults over the given markets, with the first
    /// market anchoring the reliable pool.
    pub fn paper_defaults(markets: Vec<MarketKey>) -> Self {
        FleetConfig {
            step: SimDuration::from_secs(120),
            max_active_jobs: 64,
            slots_per_machine: 8,
            fairness: FairnessConfig::default(),
            eviction_pause: SimDuration::from_secs(240),
            scale_pause: SimDuration::from_secs(30),
            bid_deltas: vec![0.0001, 0.01, 0.05, 0.4],
            preemption_margin: 1.5,
            on_demand_market: markets[0],
            markets,
        }
    }
}

/// One job's live record.
#[derive(Debug, Clone)]
struct JobRec {
    spec: FleetJobSpec,
    state: JobState,
    submit_at: SimTime,
    /// Live gang, if running.
    alloc: Option<AllocationId>,
    alloc_market: Option<MarketKey>,
    alloc_delta: f64,
    /// Work accrues from here (launch + σ, or last accrual point).
    accrued_until: SimTime,
    /// No progress before this instant (λ/σ pauses).
    usable_from: SimTime,
    work_done: f64,
    /// Current work target in φ-scaled core-hours (the sweep raises it
    /// rung by rung).
    target: f64,
    queued_since: SimTime,
    rounds_waiting: u32,
    max_rounds_waited: u32,
    evictions: u32,
    preemptions: u32,
    launches: u32,
    /// Final-hour credits earned at completion/teardown.
    credits: f64,
    /// Slot machine index on the reliable pool, while admitted.
    reliable_idx: Option<usize>,
}

/// Deterministic fleet outcome. Compares bit-for-bit across thread
/// counts; wall-clock scheduler timing lives in [`FleetTiming`], kept
/// out of this struct on purpose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Per-job summaries, in job-id order.
    pub jobs: Vec<JobSummary>,
    /// Net dollars across the whole fleet: all billing minus eviction
    /// refunds and final-hour credits (spot gangs + reliable pool).
    pub total_cost: f64,
    /// φ-scaled core-hours accrued across all jobs.
    pub total_work: f64,
    /// Provider evictions absorbed fleet-wide.
    pub evictions: u64,
    /// Scheduler preemptions issued fleet-wide.
    pub preemptions: u64,
    /// Jobs that reached their work target.
    pub completed: usize,
    /// Scheduling rounds executed.
    pub scheduling_rounds: u64,
    /// Most shared reliable machines held at once.
    pub peak_reliable_machines: usize,
    /// Machine-hours by kind across the fleet.
    pub usage: UsageBreakdown,
}

impl FleetOutcome {
    /// Fleet-wide dollars per unit work (Eq. 4 realized).
    pub fn cost_per_work(&self) -> f64 {
        if self.total_work <= 0.0 {
            f64::INFINITY
        } else {
            self.total_cost / self.total_work
        }
    }
}

/// Wall-clock scheduler bookkeeping time, reported separately from the
/// deterministic outcome (timing differs run to run; decisions do not).
#[derive(Debug, Clone, Copy)]
pub struct FleetTiming {
    /// Seconds spent in scheduler bookkeeping (admission, ranking,
    /// victim selection, launch-walk decisions) — excludes the Eq. 4
    /// evaluation fan-out and all provider calls (gang acquisition,
    /// revocation, market advance), which any per-job baseline pays
    /// too. This is the marginal cost of scheduling *globally*.
    pub sched_seconds: f64,
    /// Rounds over which the time accrued.
    pub rounds: u64,
}

/// An Eq. 4 evaluation task: pending gang or running victim.
struct EvalTask {
    gang: u32,
    phi: f64,
    /// `Some((market, delta))` pins the evaluation to a live gang's
    /// current footprint (victim valuation); `None` sweeps every
    /// `(market, delta)` candidate (pending gang).
    pinned: Option<(MarketKey, f64)>,
}

/// The best acquisition candidate for a pending gang.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    market: MarketKey,
    price: f64,
    delta: f64,
    cost_per_work: f64,
}

/// The multi-tenant fleet scheduler (see the module docs for the round
/// structure).
pub struct FleetSim<'a> {
    cfg: FleetConfig,
    provider: CloudProvider<'a>,
    beta: &'a BetaEstimator,
    pool: ReliablePool,
    jobs: Vec<JobRec>,
    /// Live gang → job index.
    alloc_to_job: BTreeMap<AllocationId, usize>,
    /// Every gang ever → job index (ledger attribution; never pruned).
    alloc_owner: BTreeMap<u64, usize>,
    obs: Option<Arc<Recorder>>,
    started_at: SimTime,
    rounds: u64,
    evictions: u64,
    preemptions: u64,
    /// Jobs awaiting admission, FIFO by (submission time, id). Entries
    /// are lazily discarded if the job was killed while queued, so the
    /// admission pass costs O(admitted) per round, not O(all jobs).
    admission_queue: std::collections::BTreeSet<(SimTime, usize)>,
    /// Jobs currently past admission (`Waiting` or `Running`),
    /// maintained incrementally by [`Self::set_state`]. Transitions
    /// *within* {Waiting, Running} (launch, eviction) don't move it, so
    /// those sites may write `state` directly.
    active: usize,
    sched_nanos: u128,
    /// Time spent inside provider calls (gang acquisition, revocation,
    /// reliable-pool requests) while a scheduler timer was running.
    /// Credited back out of `sched_nanos`: it is market simulation a
    /// per-job runner pays identically, not the price of *global*
    /// scheduling.
    market_credit_nanos: u128,
}

impl<'a> FleetSim<'a> {
    /// A fleet over shared price history and a shared trained β.
    pub fn new(traces: &'a TraceSet, beta: &'a BetaEstimator, cfg: FleetConfig) -> Self {
        let pool = ReliablePool::new(cfg.on_demand_market, cfg.slots_per_machine);
        FleetSim {
            cfg,
            provider: CloudProvider::new(traces),
            beta,
            pool,
            jobs: Vec::new(),
            alloc_to_job: BTreeMap::new(),
            alloc_owner: BTreeMap::new(),
            obs: None,
            started_at: SimTime::EPOCH,
            rounds: 0,
            evictions: 0,
            preemptions: 0,
            admission_queue: std::collections::BTreeSet::new(),
            active: 0,
            sched_nanos: 0,
            market_credit_nanos: 0,
        }
    }

    /// Attaches an observability recorder to the fleet and its provider.
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        self.provider.set_recorder(Arc::clone(&rec));
        self.obs = Some(rec);
    }

    /// Installs provider-side fault regimes (droughts, throttling, boot
    /// delay, infant mortality). Per-tenant draw streams keep each job's
    /// fate independent of the others' request patterns.
    pub fn set_fault_plan(&mut self, plan: MarketFaultPlan) {
        self.provider.set_fault_plan(plan);
    }

    /// Moves the fleet clock to `start` before any scheduling happens
    /// (studies start mid-history). Must precede the first round.
    pub fn start_at(&mut self, start: SimTime) -> Result<(), MarketError> {
        self.provider.advance_to(start)?;
        self.started_at = start;
        Ok(())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.provider.now()
    }

    /// The provider's billing account (read-only).
    pub fn account(&self) -> &proteus_market::BillingAccount {
        self.provider.account()
    }

    /// Submits a job; it competes for admission from `submit_at` (or
    /// the current time, if later).
    pub fn submit(&mut self, spec: FleetJobSpec, submit_at: SimTime) -> JobId {
        let id = JobId(self.jobs.len() as u64);
        let now = self.now();
        self.jobs.push(JobRec {
            spec,
            state: JobState::Submitted,
            submit_at: submit_at.max(now),
            alloc: None,
            alloc_market: None,
            alloc_delta: 0.0,
            accrued_until: now,
            usable_from: now,
            work_done: 0.0,
            target: 0.0,
            queued_since: now,
            rounds_waiting: 0,
            max_rounds_waited: 0,
            evictions: 0,
            preemptions: 0,
            launches: 0,
            credits: 0.0,
            reliable_idx: None,
        });
        let idx = id.0 as usize;
        self.jobs[idx].target = self.jobs[idx].spec.work_core_hours;
        self.admission_queue.insert((self.jobs[idx].submit_at, idx));
        id
    }

    /// The job's current lifecycle state.
    pub fn state(&self, id: JobId) -> Option<JobState> {
        self.jobs.get(id.0 as usize).map(|j| j.state)
    }

    /// φ-scaled core-hours the job has accrued.
    pub fn work_done(&self, id: JobId) -> f64 {
        self.jobs.get(id.0 as usize).map_or(0.0, |j| j.work_done)
    }

    /// The job's current work target.
    pub fn target(&self, id: JobId) -> f64 {
        self.jobs.get(id.0 as usize).map_or(0.0, |j| j.target)
    }

    /// Raises (or lowers) a job's work target. Raising the target of a
    /// `Completed` job reopens it: it rejoins the gang queue and runs to
    /// the new target (the sweep's rung-promotion primitive).
    pub fn set_target(&mut self, id: JobId, target: f64) {
        let now = self.now();
        let reopened = {
            let Some(job) = self.jobs.get_mut(id.0 as usize) else {
                return;
            };
            job.target = target;
            if job.state == JobState::Completed && job.work_done < target {
                job.queued_since = now;
                job.rounds_waiting = 0;
                true
            } else {
                false
            }
        };
        if reopened {
            let idx = id.0 as usize;
            self.set_state(idx, JobState::Waiting);
            if self.jobs[idx].reliable_idx.is_none() {
                self.assign_reliable_slot(idx);
            }
        }
    }

    /// Kills a job: its gang is voluntarily terminated (the paid hour
    /// is forfeited — the tenant walked away), its reliable slot is
    /// released, and the kill is recorded as an early-killed trial.
    /// Killing a `Completed` job marks it `Killed` too — the sweep's
    /// "completed this rung but ranked out" early stop.
    pub fn kill(&mut self, id: JobId) {
        let idx = id.0 as usize;
        let now = self.now();
        self.accrue(idx, now);
        let Some(job) = self.jobs.get(idx) else {
            return;
        };
        if matches!(job.state, JobState::Killed | JobState::Unfinished) {
            return;
        }
        if let Some(alloc) = job.alloc {
            let _ = self.provider.terminate(alloc);
            self.alloc_to_job.remove(&alloc);
        }
        let work_done = {
            let job = &mut self.jobs[idx];
            job.alloc = None;
            job.alloc_market = None;
            job.work_done
        };
        self.set_state(idx, JobState::Killed);
        self.release_reliable_slot(idx);
        if let Some(rec) = self.obs.as_deref() {
            rec.counter_add(obs_keys::TRIALS_EARLY_KILLED, 1);
            rec.record(
                now,
                Event::Fleet(FleetEvent::TrialEarlyKilled {
                    job: id.0,
                    work_done,
                }),
            );
        }
    }

    /// Runs scheduling rounds until the clock reaches `until`.
    pub fn run_to(&mut self, until: SimTime, exec: &StudyExecutor) -> Result<(), MarketError> {
        while self.now() < until {
            let target = (self.now() + self.cfg.step).min(until);
            self.step_to(target, exec)?;
        }
        Ok(())
    }

    /// One scheduling round: advance the market to `target`, route its
    /// events, accrue work, settle completions, then admit/rank/launch.
    fn step_to(&mut self, target: SimTime, exec: &StudyExecutor) -> Result<(), MarketError> {
        let events = self.provider.advance_to(target)?;
        for (t, ev) in events {
            self.route_event(t, &ev);
        }
        for idx in 0..self.jobs.len() {
            self.accrue(idx, target);
        }
        self.settle_completions();
        self.schedule_round(exec);
        self.rounds += 1;
        Ok(())
    }

    /// Ends the fleet: outstanding gangs and the reliable pool are torn
    /// down with final-hour credits, non-terminal jobs become
    /// [`JobState::Unfinished`], and the deterministic outcome plus the
    /// wall-clock scheduler timing are returned.
    pub fn finish(mut self) -> (FleetOutcome, FleetTiming) {
        let now = self.now();
        for idx in 0..self.jobs.len() {
            self.accrue(idx, now);
            let state = self.jobs[idx].state;
            if state.is_terminal() {
                continue;
            }
            if let Some(alloc) = self.jobs[idx].alloc {
                let credit = self.gang_credit(alloc);
                let _ = self.provider.terminate(alloc);
                self.alloc_to_job.remove(&alloc);
                self.jobs[idx].credits += credit;
                self.jobs[idx].alloc = None;
            }
            self.release_reliable_slot(idx);
            self.jobs[idx].state = JobState::Unfinished;
        }
        let pool_credit = self.pool.teardown(&mut self.provider, now);

        // Ledger attribution: every entry carries its allocation id, and
        // `alloc_owner` remembers which job minted each gang.
        let mut per_job_cost = vec![0.0f64; self.jobs.len()];
        for entry in self.provider.account().entries() {
            if let Some(&idx) = self.alloc_owner.get(&entry.allocation.0) {
                per_job_cost[idx] += entry.amount;
            }
        }

        let jobs: Vec<JobSummary> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(idx, j)| JobSummary {
                id: JobId(idx as u64),
                state: j.state,
                work_done: j.work_done,
                spot_cost: (per_job_cost[idx] - j.credits).max(0.0),
                evictions: j.evictions,
                preemptions: j.preemptions,
                launches: j.launches,
                max_rounds_waited: j.max_rounds_waited,
            })
            .collect();
        let credits: f64 = self.jobs.iter().map(|j| j.credits).sum::<f64>() + pool_credit;
        let outcome = FleetOutcome {
            total_cost: (self.provider.account().total_cost() - credits).max(0.0),
            total_work: self.jobs.iter().map(|j| j.work_done).sum(),
            evictions: self.evictions,
            preemptions: self.preemptions,
            completed: jobs
                .iter()
                .filter(|j| j.state == JobState::Completed)
                .count(),
            scheduling_rounds: self.rounds,
            peak_reliable_machines: self.pool.peak_machines(),
            usage: *self.provider.account().usage(),
            jobs,
        };
        let timing = FleetTiming {
            sched_seconds: self.sched_nanos.saturating_sub(self.market_credit_nanos) as f64 / 1e9,
            rounds: self.rounds,
        };
        (outcome, timing)
    }

    /// Routes one provider event back to its job.
    fn route_event(&mut self, t: SimTime, ev: &ProviderEvent) {
        match ev {
            ProviderEvent::Evicted { allocation } => {
                let Some(idx) = self.alloc_to_job.remove(allocation) else {
                    return;
                };
                self.accrue(idx, t);
                let job = &mut self.jobs[idx];
                job.alloc = None;
                job.alloc_market = None;
                job.state = JobState::Waiting;
                job.evictions += 1;
                self.evictions += 1;
                job.usable_from = t + self.cfg.eviction_pause;
                job.queued_since = t;
                job.rounds_waiting = 0;
            }
            ProviderEvent::LaunchFailed { allocation } => {
                let Some(idx) = self.alloc_to_job.remove(allocation) else {
                    return;
                };
                let job = &mut self.jobs[idx];
                job.alloc = None;
                job.alloc_market = None;
                job.state = JobState::Waiting;
                job.queued_since = t;
                job.rounds_waiting = 0;
            }
            // Warnings, hour charges, and delayed launches need no job
            // action: billing flows through the ledger and work accrual
            // anchors on `usable_from`.
            ProviderEvent::EvictionWarning { .. }
            | ProviderEvent::HourCharged { .. }
            | ProviderEvent::Launched { .. } => {}
        }
    }

    /// Accrues φ-scaled work for job `idx` up to `upto`.
    fn accrue(&mut self, idx: usize, upto: SimTime) {
        let job = &mut self.jobs[idx];
        if job.state != JobState::Running || job.alloc.is_none() {
            job.accrued_until = upto.max(job.accrued_until);
            return;
        }
        let from = job.accrued_until.max(job.usable_from);
        if upto > from {
            let cores = f64::from(job.spec.min_gang)
                * job
                    .alloc_market
                    .map_or(0.0, |m| f64::from(m.instance_type().vcpus));
            let phi = AppParams {
                phi_per_doubling: job.spec.phi_per_doubling,
                sigma: SimDuration::ZERO,
                lambda: SimDuration::ZERO,
            }
            .phi(cores);
            job.work_done += upto.since(from).as_hours_f64() * cores * phi;
        }
        job.accrued_until = upto.max(job.accrued_until);
    }

    /// Completes every running job that reached its target: the gang
    /// terminates with the unused fraction of its current billing hour
    /// credited (the paper's "final partial hours not charged" rule).
    fn settle_completions(&mut self) {
        for idx in 0..self.jobs.len() {
            let job = &self.jobs[idx];
            if job.state != JobState::Running || job.work_done < job.target {
                continue;
            }
            if let Some(alloc) = job.alloc {
                let credit = self.gang_credit(alloc);
                let _ = self.provider.terminate(alloc);
                self.alloc_to_job.remove(&alloc);
                self.jobs[idx].credits += credit;
            }
            let job = &mut self.jobs[idx];
            job.alloc = None;
            job.alloc_market = None;
            self.set_state(idx, JobState::Completed);
            self.release_reliable_slot(idx);
        }
    }

    /// The unused-hour credit a gang earns if terminated right now.
    fn gang_credit(&self, id: AllocationId) -> f64 {
        let Some(view) = self.provider.spot_allocation(id) else {
            return 0.0;
        };
        if view.booting {
            return 0.0;
        }
        let Ok(paid) = self.provider.spot_price_at(view.market, view.hour_start) else {
            return 0.0;
        };
        let hour_end = view.hour_start + SimDuration::from_hours(1);
        if hour_end > self.now() {
            paid * f64::from(view.count) * hour_end.since(self.now()).as_hours_f64()
        } else {
            0.0
        }
    }

    /// Assigns job `idx` its reliable slot; an impossible request (wider
    /// than a machine) ends the job as `Unfinished` instead of looping.
    fn assign_reliable_slot(&mut self, idx: usize) {
        let slots = self.jobs[idx].spec.reliable_slots;
        if slots == 0 {
            return;
        }
        let now = self.now();
        let m = std::time::Instant::now();
        let assigned = self.pool.assign(&mut self.provider, slots, now);
        self.market_credit_nanos += m.elapsed().as_nanos();
        match assigned {
            Ok(machine) => self.jobs[idx].reliable_idx = Some(machine),
            Err(_) => self.set_state(idx, JobState::Unfinished),
        }
    }

    fn release_reliable_slot(&mut self, idx: usize) {
        if let Some(machine) = self.jobs[idx].reliable_idx.take() {
            let slots = self.jobs[idx].spec.reliable_slots;
            self.pool.release(&mut self.provider, machine, slots);
        }
    }

    /// Jobs currently past admission and not terminal (recount; the
    /// scheduler itself uses the incremental `active` field).
    fn active_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.state, JobState::Waiting | JobState::Running))
            .count()
    }

    /// Writes a job's state, keeping the incremental active count in
    /// sync. Every transition that can cross the admitted/terminal
    /// boundary must go through here.
    fn set_state(&mut self, idx: usize, to: JobState) {
        let was = matches!(self.jobs[idx].state, JobState::Waiting | JobState::Running);
        let is = matches!(to, JobState::Waiting | JobState::Running);
        self.jobs[idx].state = to;
        match (was, is) {
            (false, true) => self.active += 1,
            (true, false) => self.active = self.active.saturating_sub(1),
            _ => {}
        }
    }

    /// One admission + evaluation + ranking + launch pass.
    fn schedule_round(&mut self, exec: &StudyExecutor) {
        let now = self.now();
        debug_assert_eq!(self.active, self.active_count(), "active counter drifted");

        // --- Admission (timed bookkeeping). ---
        let t0 = std::time::Instant::now();
        // Admission pops the FIFO queue — (submit time, id) order — so
        // rounds with nothing to admit cost one comparison, not a scan.
        if self
            .admission_queue
            .first()
            .is_some_and(|&(at, _)| at <= now)
        {
            while self.active < self.cfg.max_active_jobs {
                let Some(&(at, idx)) = self.admission_queue.first() else {
                    break;
                };
                if at > now {
                    break;
                }
                self.admission_queue.pop_first();
                if self.jobs[idx].state != JobState::Submitted {
                    continue; // killed while still queued for admission
                }
                self.set_state(idx, JobState::Waiting);
                self.jobs[idx].queued_since = now;
                self.jobs[idx].rounds_waiting = 0;
                self.assign_reliable_slot(idx);
                if self.jobs[idx].state != JobState::Waiting {
                    continue; // the slot request refused: typed Unfinished
                }
                if let Some(rec) = self.obs.as_deref() {
                    rec.counter_add(obs_keys::JOBS_ADMITTED, 1);
                    rec.record(
                        now,
                        Event::Fleet(FleetEvent::JobAdmitted {
                            job: idx as u64,
                            tier: u64::from(self.jobs[idx].spec.tier),
                        }),
                    );
                }
            }
        }
        self.sched_nanos += t0.elapsed().as_nanos();

        // --- Eq. 4 evaluation fan-out (untimed: a per-job baseline pays
        // these same evaluations). Prices are sampled once, serially,
        // then the pure evaluations fan across the pool and come back in
        // index order — bit-identical for any thread count. ---
        let prices: Vec<(MarketKey, f64)> = self
            .cfg
            .markets
            .iter()
            .filter_map(|&m| self.provider.spot_price(m).ok().map(|p| (m, p)))
            .collect();

        let pending: Vec<usize> = (0..self.jobs.len())
            .filter(|&i| self.jobs[i].state == JobState::Waiting && self.jobs[i].usable_from <= now)
            .collect();
        // Preemption can only trigger where a capacity rule can refuse a
        // gang; an uncapped market never needs victim valuations, so
        // skip pricing the running fleet entirely.
        let capacity_limited = self
            .provider
            .fault_plan()
            .is_some_and(|p| !p.capacity.is_empty());
        let victims: Vec<usize> = if capacity_limited {
            (0..self.jobs.len())
                .filter(|&i| {
                    self.jobs[i].state == JobState::Running
                        && self.jobs[i].spec.preemptible
                        && self.jobs[i].alloc.is_some()
                })
                .collect()
        } else {
            Vec::new()
        };
        if pending.is_empty() {
            return;
        }

        let tasks: Vec<EvalTask> = pending
            .iter()
            .map(|&i| EvalTask {
                gang: self.jobs[i].spec.min_gang,
                phi: self.jobs[i].spec.phi_per_doubling,
                pinned: None,
            })
            .chain(victims.iter().map(|&i| {
                EvalTask {
                    gang: self.jobs[i].spec.min_gang,
                    phi: self.jobs[i].spec.phi_per_doubling,
                    pinned: self.jobs[i]
                        .alloc_market
                        .map(|m| (m, self.jobs[i].alloc_delta)),
                }
            }))
            .collect();
        let beta = self.beta;
        let deltas = self.cfg.bid_deltas.clone();
        let sigma = self.cfg.scale_pause;
        let lambda = self.cfg.eviction_pause;
        let evals: Vec<Option<Candidate>> = exec.run_indexed(tasks.len(), |ti| {
            let task = &tasks[ti];
            evaluate_task(task, beta, &prices, &deltas, sigma, lambda)
        });

        // --- Ranking + launch walk (timed bookkeeping). ---
        let t1 = std::time::Instant::now();
        let mut entries: Vec<RankEntry> = Vec::with_capacity(pending.len());
        let mut candidates: BTreeMap<usize, Candidate> = BTreeMap::new();
        for (slot, &idx) in pending.iter().enumerate() {
            let Some(cand) = evals[slot] else {
                self.queue_gang(idx, now);
                continue;
            };
            if !cand.cost_per_work.is_finite() || cand.cost_per_work <= 0.0 {
                self.queue_gang(idx, now);
                continue;
            }
            let weight = self
                .cfg
                .fairness
                .effective_weight(self.jobs[idx].spec.tier, self.jobs[idx].rounds_waiting);
            candidates.insert(idx, cand);
            entries.push(RankEntry {
                job_idx: idx,
                value: weight / cand.cost_per_work,
                starved: self.cfg.fairness.is_starved(self.jobs[idx].rounds_waiting),
            });
        }
        // Victim value: aged weight over its *current* footprint's Eq. 4
        // score — what the fleet gives up by revoking it.
        let mut victim_value: BTreeMap<usize, f64> = BTreeMap::new();
        for (slot, &idx) in victims.iter().enumerate() {
            if let Some(c) = evals[pending.len() + slot] {
                if c.cost_per_work.is_finite() && c.cost_per_work > 0.0 {
                    let weight = self
                        .cfg
                        .fairness
                        .effective_weight(self.jobs[idx].spec.tier, 0);
                    victim_value.insert(idx, weight / c.cost_per_work);
                }
            }
        }
        rank(&mut entries);
        self.sched_nanos += t1.elapsed().as_nanos();

        // One timer pair for the whole walk: per-attempt timers would
        // cost more clock reads than the decisions they measure.
        let t2 = std::time::Instant::now();
        for entry in entries {
            let idx = entry.job_idx;
            // A victim revoked earlier in this walk is no longer Running.
            if self.jobs[idx].state != JobState::Waiting {
                continue;
            }
            let Some(cand) = candidates.get(&idx).copied() else {
                continue;
            };
            let launched = self.try_launch(idx, cand, entry, &victim_value, now);
            if !launched {
                self.queue_gang(idx, now);
            }
        }
        self.sched_nanos += t2.elapsed().as_nanos();
    }

    /// One gang acquisition attempt, with value-ordered preemption on a
    /// capacity shortfall. Returns whether the gang launched.
    fn try_launch(
        &mut self,
        idx: usize,
        cand: Candidate,
        entry: RankEntry,
        victim_value: &BTreeMap<usize, f64>,
        now: SimTime,
    ) -> bool {
        let tenant = JobId(idx as u64).tenant();
        let gang = self.jobs[idx].spec.min_gang;
        let bid = cand.price + cand.delta;
        let m = std::time::Instant::now();
        let first_try = self
            .provider
            .request_spot_gang(tenant, cand.market, gang, bid);
        self.market_credit_nanos += m.elapsed().as_nanos();
        match first_try {
            Ok(grant) => {
                self.commit_launch(idx, cand, grant.id, grant.usable_at, now);
                true
            }
            Err(MarketError::InsufficientCapacity { available, .. }) => {
                let needed = gang.saturating_sub(available);
                if !self.preempt_for(idx, cand.market, needed, entry, victim_value, now) {
                    return false;
                }
                // Capacity was freed; one retry.
                let m = std::time::Instant::now();
                let retry = self
                    .provider
                    .request_spot_gang(tenant, cand.market, gang, bid);
                self.market_credit_nanos += m.elapsed().as_nanos();
                match retry {
                    Ok(grant) => {
                        self.commit_launch(idx, cand, grant.id, grant.usable_at, now);
                        true
                    }
                    Err(_) => false,
                }
            }
            Err(_) => false,
        }
    }

    /// Revokes running preemptible gangs in `market`, lowest value
    /// first, until `needed` instances are free — but only victims worth
    /// less than the gang's value over the preemption margin (starved
    /// gangs preempt regardless of margin). Returns whether enough
    /// capacity was freed.
    fn preempt_for(
        &mut self,
        for_idx: usize,
        market: MarketKey,
        needed: u32,
        entry: RankEntry,
        victim_value: &BTreeMap<usize, f64>,
        now: SimTime,
    ) -> bool {
        let mut pool: Vec<(f64, usize)> = victim_value
            .iter()
            .filter(|&(&v_idx, _)| {
                v_idx != for_idx
                    && self.jobs[v_idx].state == JobState::Running
                    && self.jobs[v_idx].alloc_market == Some(market)
            })
            .map(|(&v_idx, &value)| (value, v_idx))
            .collect();
        pool.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        // Plan first: commit only if the victims cover the shortfall.
        let mut chosen: Vec<usize> = Vec::new();
        let mut freed = 0u32;
        for &(value, v_idx) in &pool {
            if freed >= needed {
                break;
            }
            let worthwhile = entry.starved || entry.value > self.cfg.preemption_margin * value;
            if !worthwhile {
                break; // pool is value-sorted: nothing further qualifies
            }
            chosen.push(v_idx);
            freed += self.jobs[v_idx].spec.min_gang;
        }
        if freed < needed {
            return false;
        }
        for v_idx in chosen {
            let Some(alloc) = self.jobs[v_idx].alloc else {
                continue;
            };
            self.accrue(v_idx, now);
            let m = std::time::Instant::now();
            let revoked = self.provider.revoke(alloc);
            self.market_credit_nanos += m.elapsed().as_nanos();
            if revoked.is_err() {
                continue;
            }
            self.alloc_to_job.remove(&alloc);
            let job = &mut self.jobs[v_idx];
            job.alloc = None;
            job.alloc_market = None;
            job.state = JobState::Waiting;
            job.preemptions += 1;
            self.preemptions += 1;
            job.usable_from = now + self.cfg.eviction_pause;
            job.queued_since = now;
            job.rounds_waiting = 0;
            if let Some(rec) = self.obs.as_deref() {
                rec.counter_add(obs_keys::PREEMPTIONS, 1);
                rec.record(
                    now,
                    Event::Fleet(FleetEvent::PreemptedByPriority {
                        job: v_idx as u64,
                        by: for_idx as u64,
                    }),
                );
            }
        }
        true
    }

    /// Finalizes a successful gang grant into the job record.
    fn commit_launch(
        &mut self,
        idx: usize,
        cand: Candidate,
        alloc: AllocationId,
        usable_at: SimTime,
        now: SimTime,
    ) {
        self.alloc_to_job.insert(alloc, idx);
        self.alloc_owner.insert(alloc.0, idx);
        let waited = now.since(self.jobs[idx].queued_since);
        let job = &mut self.jobs[idx];
        job.alloc = Some(alloc);
        job.alloc_market = Some(cand.market);
        job.alloc_delta = cand.delta;
        job.state = JobState::Running;
        job.launches += 1;
        job.max_rounds_waited = job.max_rounds_waited.max(job.rounds_waiting);
        job.rounds_waiting = 0;
        job.accrued_until = now;
        job.usable_from = usable_at.max(now) + self.cfg.scale_pause;
        if let Some(rec) = self.obs.as_deref() {
            rec.counter_add(obs_keys::GANGS_LAUNCHED, 1);
            rec.hist_add(
                obs_keys::QUEUE_WAIT_HOURS,
                waited.as_hours_f64(),
                SimDuration::from_mins(1),
            );
            rec.record(
                now,
                Event::Fleet(FleetEvent::GangLaunched {
                    job: idx as u64,
                    market: cand.market.interned_name(),
                    count: u64::from(self.jobs[idx].spec.min_gang),
                    bid: cand.price + cand.delta,
                    waited_ms: waited.as_millis(),
                }),
            );
        }
    }

    /// Records one more round of waiting for a gang that did not launch.
    fn queue_gang(&mut self, idx: usize, now: SimTime) {
        let job = &mut self.jobs[idx];
        job.rounds_waiting += 1;
        job.max_rounds_waited = job.max_rounds_waited.max(job.rounds_waiting);
        if let Some(rec) = self.obs.as_deref() {
            rec.counter_add(obs_keys::GANGS_QUEUED, 1);
            rec.record(
                now,
                Event::Fleet(FleetEvent::GangQueued {
                    job: idx as u64,
                    count: u64::from(job.spec.min_gang),
                }),
            );
        }
    }
}

/// Pure Eq. 4 evaluation of one task: best `(market, delta)` candidate
/// for a pending gang, or the pinned current footprint for a victim.
fn evaluate_task(
    task: &EvalTask,
    beta: &BetaEstimator,
    prices: &[(MarketKey, f64)],
    deltas: &[f64],
    sigma: SimDuration,
    lambda: SimDuration,
) -> Option<Candidate> {
    let params = AppParams {
        phi_per_doubling: task.phi,
        sigma,
        lambda,
    };
    let config = BidBrainConfig {
        target_cores: u32::MAX,
        max_alloc_instances: task.gang,
        bid_deltas: deltas.to_vec(),
        min_improvement: 0.0,
        objective: Objective::CostPerWork,
    };
    let brain = BidBrain::new(params, beta, config);
    let view = |market: MarketKey, price: f64, delta: f64| AllocView {
        market,
        count: task.gang,
        hourly_price: price,
        bid_delta: Some(delta),
        time_remaining: SimDuration::from_hours(1),
        work_rate: f64::from(market.instance_type().vcpus),
    };
    match task.pinned {
        Some((market, delta)) => {
            let price = prices.iter().find(|(m, _)| *m == market).map(|(_, p)| *p)?;
            let eval = brain.evaluate(&[view(market, price, delta)], false);
            Some(Candidate {
                market,
                price,
                delta,
                cost_per_work: eval.cost_per_work(),
            })
        }
        None => {
            let mut best: Option<Candidate> = None;
            for &(market, price) in prices {
                for &delta in deltas {
                    let eval = brain.evaluate(&[view(market, price, delta)], true);
                    let e = eval.cost_per_work();
                    if best.as_ref().is_none_or(|b| e < b.cost_per_work) {
                        best = Some(Candidate {
                            market,
                            price,
                            delta,
                            cost_per_work: e,
                        });
                    }
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_market::{catalog, PriceTrace, Zone};

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    fn traces() -> TraceSet {
        let mut set = TraceSet::new();
        set.insert(
            key(),
            PriceTrace::from_points(vec![(SimTime::EPOCH, 0.05)]).expect("trace"),
        );
        set
    }

    fn cfg() -> FleetConfig {
        FleetConfig::paper_defaults(vec![key()])
    }

    #[test]
    fn a_small_fleet_completes_its_jobs() {
        let traces = traces();
        let beta = BetaEstimator::new();
        let mut fleet = FleetSim::new(&traces, &beta, cfg());
        let exec = StudyExecutor::serial();
        let _ = fleet.submit(FleetJobSpec::trial(2.0, 2, 0), SimTime::EPOCH);
        let _ = fleet.submit(FleetJobSpec::trial(1.0, 2, 1), SimTime::EPOCH);
        fleet.run_to(SimTime::from_hours(4), &exec).expect("run");
        let (out, timing) = fleet.finish();
        assert_eq!(out.jobs.len(), 2);
        for j in &out.jobs {
            assert_eq!(j.state, JobState::Completed, "{j:?}");
            assert!(j.work_done >= 1.0 - 1e-9);
            assert!(j.spot_cost > 0.0);
        }
        assert!(out.total_cost > 0.0);
        assert!(out.total_work >= 3.0 - 1e-9);
        assert!(out.cost_per_work().is_finite());
        assert_eq!(out.completed, 2);
        // Two one-slot jobs share a single reliable machine.
        assert_eq!(out.peak_reliable_machines, 1);
        assert!(timing.rounds > 0);
    }

    #[test]
    fn outcome_is_identical_across_thread_counts() {
        let traces = traces();
        let beta = BetaEstimator::new();
        let run = |threads: usize| {
            let mut fleet = FleetSim::new(&traces, &beta, cfg());
            for i in 0..8 {
                fleet.submit(
                    FleetJobSpec::trial(1.0 + 0.25 * i as f64, 2, (i % 3) as u32),
                    SimTime::EPOCH + SimDuration::from_mins(2 * i),
                );
            }
            let exec = StudyExecutor::new(threads);
            fleet.run_to(SimTime::from_hours(6), &exec).expect("run");
            fleet.finish().0
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn admission_control_bounds_the_active_set() {
        let traces = traces();
        let beta = BetaEstimator::new();
        let mut c = cfg();
        c.max_active_jobs = 2;
        let mut fleet = FleetSim::new(&traces, &beta, c);
        let ids: Vec<JobId> = (0..4)
            .map(|_| fleet.submit(FleetJobSpec::trial(50.0, 2, 0), SimTime::EPOCH))
            .collect();
        let exec = StudyExecutor::serial();
        fleet
            .run_to(SimTime::EPOCH + SimDuration::from_mins(10), &exec)
            .expect("run");
        let admitted = ids
            .iter()
            .filter(|&&id| matches!(fleet.state(id), Some(JobState::Waiting | JobState::Running)))
            .count();
        let submitted = ids
            .iter()
            .filter(|&&id| fleet.state(id) == Some(JobState::Submitted))
            .count();
        assert_eq!(admitted, 2);
        assert_eq!(submitted, 2);
    }

    #[test]
    fn kill_terminates_and_marks_killed() {
        let traces = traces();
        let beta = BetaEstimator::new();
        let mut fleet = FleetSim::new(&traces, &beta, cfg());
        let id = fleet.submit(FleetJobSpec::trial(100.0, 2, 0), SimTime::EPOCH);
        let exec = StudyExecutor::serial();
        fleet
            .run_to(SimTime::EPOCH + SimDuration::from_mins(30), &exec)
            .expect("run");
        assert_eq!(fleet.state(id), Some(JobState::Running));
        fleet.kill(id);
        assert_eq!(fleet.state(id), Some(JobState::Killed));
        let (out, _) = fleet.finish();
        assert_eq!(out.jobs[0].state, JobState::Killed);
        // The kill forfeited the paid hour: cost stays positive.
        assert!(out.jobs[0].spot_cost > 0.0);
        assert!(out.jobs[0].work_done > 0.0);
    }

    #[test]
    fn set_target_reopens_a_completed_job() {
        let traces = traces();
        let beta = BetaEstimator::new();
        let mut fleet = FleetSim::new(&traces, &beta, cfg());
        let id = fleet.submit(FleetJobSpec::trial(1.0, 2, 0), SimTime::EPOCH);
        let exec = StudyExecutor::serial();
        fleet.run_to(SimTime::from_hours(2), &exec).expect("run");
        assert_eq!(fleet.state(id), Some(JobState::Completed));
        let w1 = fleet.work_done(id);
        fleet.set_target(id, w1 + 2.0);
        assert_eq!(fleet.state(id), Some(JobState::Waiting));
        fleet.run_to(SimTime::from_hours(4), &exec).expect("run");
        assert_eq!(fleet.state(id), Some(JobState::Completed));
        assert!(fleet.work_done(id) >= w1 + 2.0 - 1e-9);
    }

    #[test]
    fn horizon_end_yields_typed_unfinished() {
        let traces = traces();
        let beta = BetaEstimator::new();
        let mut fleet = FleetSim::new(&traces, &beta, cfg());
        let id = fleet.submit(FleetJobSpec::trial(1e6, 2, 0), SimTime::EPOCH);
        let exec = StudyExecutor::serial();
        fleet.run_to(SimTime::from_hours(1), &exec).expect("run");
        let (out, _) = fleet.finish();
        assert_eq!(out.jobs[0].state, JobState::Unfinished);
        let _ = id;
    }
}
