//! SpotTune-style hyperparameter sweep driven through the fleet.
//!
//! A sweep submits many preemptible trials as fleet jobs and reallocates
//! budget between them with asynchronous successive halving (ASHA):
//! each trial runs to a **rung** (a cumulative work milestone), reports
//! a score, and is **promoted** to the next rung only if it ranks in the
//! configured keep-fraction of everything seen at that rung so far —
//! otherwise it is killed early and its budget flows to the survivors.
//! A lag rule additionally kills trials whose realized throughput falls
//! far behind nominal (stuck in a starved market), so a drought cannot
//! pin the sweep's budget on a trial that is not producing work.
//!
//! Trial quality is a pure function of `(sweep seed, trial id, rung)` —
//! seed-stable, so the whole sweep is bit-identical across scheduler
//! thread counts. The winning configuration can be handed to a real
//! [`proteus::Proteus`] training session via [`promote_winner`].

use proteus_bidbrain::{AppParams, BetaEstimator};
use proteus_costsim::StudyExecutor;
use proteus_market::{MarketError, TraceSet};
use proteus_simtime::rng::derive_seed;
use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::job::{FleetJobSpec, JobId, JobState};
use crate::sim::{FleetConfig, FleetOutcome, FleetSim, FleetTiming};

/// Sweep parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of trials to generate.
    pub trials: usize,
    /// Gang size per trial.
    pub gang: u32,
    /// Priority tier trials run at.
    pub tier: u32,
    /// Cumulative work milestones in φ-scaled core-hours, strictly
    /// increasing; a trial completing the last rung is a finisher.
    pub rungs: Vec<f64>,
    /// Fraction of trials seen at a rung that get promoted past it.
    pub keep_fraction: f64,
    /// Kill a running trial whose realized work is below `lag_factor ×`
    /// nominal after the grace period.
    pub lag_factor: f64,
    /// How long a trial may run before the lag rule applies.
    pub lag_grace: SimDuration,
    /// Sweep seed: trial qualities derive from it, nothing else.
    pub seed: u64,
    /// Submission stagger between consecutive trials.
    pub submit_every: SimDuration,
    /// Sweep horizon; unfinished trials end typed-`Unfinished`.
    pub horizon: SimDuration,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            trials: 32,
            gang: 2,
            tier: 2,
            rungs: vec![2.0, 4.0, 8.0],
            keep_fraction: 0.5,
            lag_factor: 0.25,
            lag_grace: SimDuration::from_mins(30),
            seed: 1,
            submit_every: SimDuration::from_secs(120),
            horizon: SimDuration::from_hours(48),
        }
    }
}

/// One trial's final record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// The fleet job backing the trial.
    pub job: JobId,
    /// Terminal fleet state.
    pub state: JobState,
    /// Rungs fully completed (0..=rungs.len()).
    pub rungs_completed: usize,
    /// Best (lowest) score observed; infinite if never scored.
    pub score: f64,
    /// φ-scaled core-hours the trial accrued.
    pub work_done: f64,
}

/// The whole sweep's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Per-trial records, in trial order.
    pub trials: Vec<TrialResult>,
    /// The underlying fleet's deterministic outcome.
    pub fleet: FleetOutcome,
    /// The finisher with the lowest final score, if any trial finished.
    pub best: Option<JobId>,
}

/// Per-trial driver state.
struct TrialState {
    rung: usize,
    score: f64,
    first_ran_at: Option<SimTime>,
    done: bool,
}

/// The score trial `trial` reports at rung `rung`: a trial-intrinsic
/// base quality plus rung-shrinking noise, all derived from the sweep
/// seed (lower is better). Pure, so replays are exact.
fn trial_score(seed: u64, trial: u64, rung: usize) -> f64 {
    let unit = |s: u64| (s >> 11) as f64 / (1u64 << 53) as f64;
    let base = unit(derive_seed(seed, trial));
    let noise = unit(derive_seed(
        seed,
        trial.wrapping_mul(0x10_0001).wrapping_add(rung as u64),
    ));
    base + (noise - 0.5) * 0.3 / (rung as f64 + 1.0)
}

/// Runs a full sweep through a fresh [`FleetSim`] over the shared
/// traces and β. Returns the outcome plus the fleet's wall-clock
/// scheduler timing.
pub fn run_sweep(
    traces: &TraceSet,
    beta: &BetaEstimator,
    fleet_cfg: FleetConfig,
    cfg: &SweepConfig,
    exec: &StudyExecutor,
) -> Result<(SweepOutcome, FleetTiming), MarketError> {
    let step = fleet_cfg.step;
    let nominal_rate = {
        // Work a healthy gang produces per hour on the first market.
        let vcpus = f64::from(fleet_cfg.markets[0].instance_type().vcpus);
        let cores = f64::from(cfg.gang) * vcpus;
        let params = AppParams {
            phi_per_doubling: 0.97,
            sigma: SimDuration::ZERO,
            lambda: SimDuration::ZERO,
        };
        cores * params.phi(cores)
    };
    let mut fleet = FleetSim::new(traces, beta, fleet_cfg);
    let first_rung = cfg.rungs.first().copied().unwrap_or(1.0);
    let ids: Vec<JobId> = (0..cfg.trials)
        .map(|i| {
            fleet.submit(
                FleetJobSpec::trial(first_rung, cfg.gang, cfg.tier),
                SimTime::EPOCH + SimDuration::from_millis(cfg.submit_every.as_millis() * i as u64),
            )
        })
        .collect();
    let mut trials: Vec<TrialState> = (0..cfg.trials)
        .map(|_| TrialState {
            rung: 0,
            score: f64::INFINITY,
            first_ran_at: None,
            done: false,
        })
        .collect();
    // Scores seen at each rung, in completion order (the ASHA ledger).
    let mut rung_scores: Vec<Vec<f64>> = vec![Vec::new(); cfg.rungs.len()];

    let end = SimTime::EPOCH + cfg.horizon;
    while fleet.now() < end {
        let target = (fleet.now() + step).min(end);
        fleet.run_to(target, exec)?;
        let now = fleet.now();

        for (i, &id) in ids.iter().enumerate() {
            if trials[i].done {
                continue;
            }
            let Some(state) = fleet.state(id) else {
                continue;
            };
            match state {
                JobState::Running => {
                    let first = *trials[i].first_ran_at.get_or_insert(now);
                    let elapsed = now.since(first).as_hours_f64();
                    if now.since(first) > cfg.lag_grace
                        && fleet.work_done(id) < cfg.lag_factor * nominal_rate * elapsed
                    {
                        fleet.kill(id);
                        trials[i].done = true;
                    }
                }
                JobState::Completed => {
                    let rung = trials[i].rung;
                    let observed = trial_score(cfg.seed, i as u64, rung);
                    trials[i].score = observed.min(trials[i].score);
                    let seen = &mut rung_scores[rung];
                    seen.push(observed);
                    trials[i].rung = rung + 1;
                    if rung + 1 >= cfg.rungs.len() {
                        // The final rung has no promotion gate: every
                        // completer is a finisher; selection happens at
                        // the end.
                        trials[i].done = true;
                        continue;
                    }
                    let keep = ((seen.len() as f64 * cfg.keep_fraction).ceil() as usize).max(1);
                    let mut sorted = seen.clone();
                    sorted.sort_by(f64::total_cmp);
                    let cutoff = sorted[keep - 1];
                    if observed <= cutoff {
                        fleet.set_target(id, cfg.rungs[rung + 1]);
                    } else {
                        fleet.kill(id);
                        trials[i].done = true;
                    }
                }
                JobState::Killed | JobState::Unfinished => {
                    trials[i].done = true;
                }
                JobState::Submitted | JobState::Waiting => {}
            }
        }
        if trials.iter().all(|t| t.done) {
            break;
        }
    }

    let (fleet_out, timing) = fleet.finish();
    let results: Vec<TrialResult> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| TrialResult {
            job: id,
            state: fleet_out.jobs[id.0 as usize].state,
            rungs_completed: trials[i].rung.min(cfg.rungs.len()),
            score: trials[i].score,
            work_done: fleet_out.jobs[id.0 as usize].work_done,
        })
        .collect();
    let best = results
        .iter()
        .filter(|t| t.state == JobState::Completed && t.rungs_completed == cfg.rungs.len())
        .min_by(|a, b| a.score.total_cmp(&b.score).then(a.job.0.cmp(&b.job.0)))
        .map(|t| t.job);
    Ok((
        SweepOutcome {
            trials: results,
            fleet: fleet_out,
            best,
        },
        timing,
    ))
}

/// Promotes the sweep winner to a real (tiny) Proteus training session:
/// the fleet found the configuration, the production stack trains it.
/// Returns `None` when no trial finished.
pub fn promote_winner(
    outcome: &SweepOutcome,
) -> Option<Result<proteus::ProteusReport, proteus::ProteusError>> {
    let _best = outcome.best?;
    let app = proteus_mlapps::mf::MatrixFactorization::new(proteus_mlapps::mf::MfConfig {
        rows: 30,
        cols: 20,
        rank: 3,
        learning_rate: 0.05,
        reg: 1e-4,
        init_scale: 0.2,
    });
    let data = proteus_mlapps::data::netflix_like(
        &proteus_mlapps::data::MfDataConfig {
            rows: 30,
            cols: 20,
            true_rank: 2,
            observed: 500,
            noise: 0.02,
        },
        7,
    );
    let config = proteus::ProteusConfig {
        max_machines: 4,
        reliable_machines: 1,
        ..proteus::ProteusConfig::default()
    };
    let run = || {
        let mut session = proteus::Proteus::launch(app, data, config)?;
        session.run_market_hours(0.5)?;
        session.wait_clock(5)?;
        session.finish()
    };
    Some(run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_market::{catalog, MarketKey, PriceTrace, Zone};

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    fn traces() -> TraceSet {
        let mut set = TraceSet::new();
        set.insert(
            key(),
            PriceTrace::from_points(vec![(SimTime::EPOCH, 0.05)]).expect("trace"),
        );
        set
    }

    fn sweep_cfg() -> SweepConfig {
        SweepConfig {
            trials: 12,
            gang: 2,
            tier: 2,
            rungs: vec![1.0, 2.0],
            keep_fraction: 0.5,
            lag_factor: 0.25,
            lag_grace: SimDuration::from_mins(30),
            seed: 11,
            submit_every: SimDuration::from_secs(120),
            horizon: SimDuration::from_hours(12),
        }
    }

    #[test]
    fn halving_kills_losers_and_crowns_a_winner() {
        let traces = traces();
        let beta = BetaEstimator::new();
        let (out, _) = run_sweep(
            &traces,
            &beta,
            FleetConfig::paper_defaults(vec![key()]),
            &sweep_cfg(),
            &StudyExecutor::serial(),
        )
        .expect("sweep");
        assert_eq!(out.trials.len(), 12);
        let finished = out
            .trials
            .iter()
            .filter(|t| t.rungs_completed == 2 && t.state == JobState::Completed)
            .count();
        let killed = out
            .trials
            .iter()
            .filter(|t| t.state == JobState::Killed)
            .count();
        assert!(finished >= 1, "at least one finisher: {out:?}");
        assert!(killed >= 1, "halving must kill someone: {out:?}");
        let best = out.best.expect("winner");
        let winner = &out.trials[best.0 as usize];
        // The winner's score is minimal among finishers.
        for t in &out.trials {
            if t.rungs_completed == 2 && t.state == JobState::Completed {
                assert!(winner.score <= t.score + 1e-12);
            }
        }
        // Early kills saved work: killed trials accrued less than a
        // finisher's full budget.
        for t in &out.trials {
            if t.state == JobState::Killed {
                assert!(t.work_done < 2.0, "{t:?}");
            }
        }
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        let traces = traces();
        let beta = BetaEstimator::new();
        let run = |threads: usize| {
            run_sweep(
                &traces,
                &beta,
                FleetConfig::paper_defaults(vec![key()]),
                &sweep_cfg(),
                &StudyExecutor::new(threads),
            )
            .expect("sweep")
            .0
        };
        let serial = run(1);
        for threads in [2, 8] {
            assert_eq!(serial, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn scores_are_seed_stable_and_seed_sensitive() {
        assert_eq!(trial_score(1, 3, 0), trial_score(1, 3, 0));
        assert_ne!(trial_score(1, 3, 0), trial_score(2, 3, 0));
        assert_ne!(trial_score(1, 3, 0), trial_score(1, 4, 0));
    }

    #[test]
    fn promote_winner_trains_through_the_production_stack() {
        let traces = traces();
        let beta = BetaEstimator::new();
        let (out, _) = run_sweep(
            &traces,
            &beta,
            FleetConfig::paper_defaults(vec![key()]),
            &sweep_cfg(),
            &StudyExecutor::serial(),
        )
        .expect("sweep");
        let report = promote_winner(&out).expect("winner exists").expect("run");
        assert!(report.final_objective.is_finite());
    }
}
