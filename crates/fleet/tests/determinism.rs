//! Thread-count invariance for the whole fleet stack.
//!
//! The fleet's only parallelism is the Eq. 4 evaluation fan-out, which
//! returns results in index order; every mutation is serial. So a fleet
//! run — outcome struct *and* the recorded observability stream — must
//! be byte-identical whatever `PROTEUS_THREADS` says. This is the gate
//! that makes `PROTEUS_CHAOS_SEEDS` replays trustworthy.

use std::sync::Arc;

use proteus_bidbrain::BetaEstimator;
use proteus_costsim::StudyExecutor;
use proteus_fleet::{run_sweep, FleetConfig, FleetJobSpec, FleetSim, SweepConfig};
use proteus_market::{catalog, MarketKey, MarketModel, TraceGenerator, TraceSet};
use proteus_obs::Recorder;
use proteus_simtime::{SimDuration, SimTime};

fn markets() -> Vec<MarketKey> {
    catalog::paper_markets().into_iter().take(2).collect()
}

fn traces(seed: u64) -> TraceSet {
    TraceGenerator::new(seed, MarketModel::default())
        .generate_set(&markets(), SimDuration::from_hours(30))
}

/// One full fleet run on `threads` threads, returning the outcome and
/// the recorder's JSONL dump.
fn run(traces: &TraceSet, beta: &BetaEstimator, threads: usize) -> (String, String) {
    let mut fleet = FleetSim::new(traces, beta, FleetConfig::paper_defaults(markets()));
    let rec = Arc::new(Recorder::new());
    fleet.set_recorder(Arc::clone(&rec));
    for i in 0..24u64 {
        fleet.submit(
            FleetJobSpec::trial(
                0.5 + 0.2 * (i % 5) as f64,
                1 + (i % 3) as u32,
                (i % 4) as u32,
            ),
            SimTime::EPOCH + SimDuration::from_mins(5 * i),
        );
    }
    let exec = StudyExecutor::new(threads);
    fleet.run_to(SimTime::from_hours(12), &exec).expect("run");
    let (out, _) = fleet.finish();
    // The vendored serde stub has no serde_json; Debug formatting is
    // total over FleetOutcome's plain data and serves the same purpose.
    (format!("{out:?}"), rec.to_jsonl())
}

#[test]
fn fleet_outcome_and_obs_stream_are_thread_invariant() {
    let traces = traces(17);
    let beta = BetaEstimator::new();
    let (serial_out, serial_jsonl) = run(&traces, &beta, 1);
    assert!(
        serial_jsonl.contains("fleet."),
        "obs stream never saw a fleet event"
    );
    for threads in [2, 4, 8] {
        let (out, jsonl) = run(&traces, &beta, threads);
        assert_eq!(serial_out, out, "outcome diverged at threads={threads}");
        assert_eq!(
            serial_jsonl, jsonl,
            "obs JSONL diverged at threads={threads}"
        );
    }
}

#[test]
fn sweep_outcome_is_thread_invariant() {
    let traces = traces(23);
    let beta = BetaEstimator::new();
    let sweep_cfg = SweepConfig {
        trials: 10,
        seed: 5,
        rungs: vec![0.5, 1.0],
        horizon: SimDuration::from_hours(10),
        ..SweepConfig::default()
    };
    let run = |threads: usize| {
        let exec = StudyExecutor::new(threads);
        let (out, _) = run_sweep(
            &traces,
            &beta,
            FleetConfig::paper_defaults(markets()),
            &sweep_cfg,
            &exec,
        )
        .expect("sweep");
        out
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run(threads), "threads={threads}");
    }
}
