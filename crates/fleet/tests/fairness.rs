//! Starvation regression: aging must bound every tier's queue wait.
//!
//! The weighted fair queue is allowed to *delay* a low-priority gang
//! indefinitely often, but never to starve it: once a gang has waited
//! [`FairnessConfig::max_wait_rounds`] scheduling rounds it is served
//! ahead of everything, with preemption rights that ignore the value
//! margin. This test pins that bound under the worst case — a
//! capacity-capped market under sustained high-priority arrivals.

use proteus_bidbrain::BetaEstimator;
use proteus_costsim::StudyExecutor;
use proteus_fleet::{FleetConfig, FleetJobSpec, FleetSim, JobState};
use proteus_market::{catalog, MarketFaultPlan, MarketKey, PriceTrace, TraceSet, Zone};
use proteus_simtime::{SimDuration, SimTime};

fn key() -> MarketKey {
    MarketKey::new(catalog::c4_xlarge(), Zone(0))
}

/// A flat calm price: the only scheduling pressure is the capacity cap,
/// so the test isolates fairness from market noise.
fn traces() -> TraceSet {
    let mut set = TraceSet::new();
    set.insert(
        key(),
        PriceTrace::from_points(vec![(SimTime::EPOCH, 0.05)]).expect("trace"),
    );
    set
}

#[test]
fn low_tier_gang_launches_within_the_starvation_bound() {
    let traces = traces();
    let beta = BetaEstimator::new();
    let cfg = FleetConfig::paper_defaults(vec![key()]);
    let max_wait = cfg.fairness.max_wait_rounds;
    let step = cfg.step;
    let mut fleet = FleetSim::new(&traces, &beta, cfg);
    // Cap the market at exactly one 2-wide gang, forever.
    fleet.set_fault_plan(MarketFaultPlan::new(7).with_drought(
        SimTime::EPOCH,
        SimTime::EPOCH + SimDuration::from_hours(1000),
        2,
    ));

    // The victim-to-be: a lowest-priority gang submitted first.
    let low = fleet.submit(FleetJobSpec::trial(50.0, 2, 3), SimTime::EPOCH);
    // Sustained tier-0 pressure: a fresh high-priority long job every
    // scheduling round, each happy to hold the whole market for hours.
    let rounds = max_wait + 8;
    for i in 0..u64::from(rounds) {
        fleet.submit(FleetJobSpec::trial(50.0, 2, 0), SimTime::EPOCH + step * i);
    }

    let exec = StudyExecutor::serial();
    let horizon = SimTime::EPOCH + step * u64::from(rounds + 4);
    fleet.run_to(horizon, &exec).expect("run");
    assert!(
        matches!(
            fleet.state(low),
            Some(JobState::Running | JobState::Waiting)
        ),
        "low job in unexpected state {:?}",
        fleet.state(low)
    );
    let (out, _) = fleet.finish();
    let low_job = &out.jobs[low.0 as usize];
    assert!(
        low_job.launches >= 1,
        "tier-3 gang never launched under tier-0 pressure: {low_job:?}"
    );
    // The bound itself: the starved gang was served within a small slack
    // of the starvation threshold, not "eventually".
    assert!(
        low_job.max_rounds_waited <= max_wait + 2,
        "tier-3 gang waited {} rounds (bound {})",
        low_job.max_rounds_waited,
        max_wait + 2
    );
    // And the launch was real work, not an accounting fiction: the
    // preempted tier-0 victim settled like an eviction.
    assert!(out.preemptions >= 1, "starvation never preempted: {out:?}");
}

#[test]
fn aging_weight_is_monotone_in_rounds_waiting() {
    let f = FleetConfig::paper_defaults(vec![key()]).fairness;
    let mut last = 0.0;
    for rounds in 0..64 {
        let w = f.effective_weight(3, rounds);
        assert!(w > last, "aging regressed at round {rounds}");
        last = w;
    }
    // Sanity: an aged tier-3 eventually outweighs a fresh tier-0.
    assert!(f.effective_weight(3, 64) > f.effective_weight(0, 0));
}
