//! Seed-deterministic chaos suite for the fleet scheduler.
//!
//! Every scenario drives ≥100 concurrent jobs through a volatile
//! market with provider-side fault regimes layered on top: eviction
//! storms (spiky prices under tight bids), capacity droughts, API
//! throttling, slow boots, and infant mortality. The contract under
//! every schedule is the same: the fleet run finishes, every job lands
//! in a typed terminal state ([`JobState::is_terminal`]), the books
//! balance to finite numbers, and the whole outcome replays
//! bit-identically from the seed — zero panics, zero hangs.
//!
//! Each run prints `chaos: scenario=<name> seed=<seed>` *before* doing
//! anything, so a failure in CI is reproducible from the printed seed
//! alone: `PROTEUS_CHAOS_SEEDS=<seed> cargo test -p proteus-fleet
//! --test fleet_chaos <name>`. `PROTEUS_CHAOS_FULL=1` widens the sweep.

use proteus_bidbrain::BetaEstimator;
use proteus_costsim::StudyExecutor;
use proteus_fleet::{FleetConfig, FleetJobSpec, FleetOutcome, FleetSim};
use proteus_market::{catalog, MarketFaultPlan, MarketKey, MarketModel, TraceGenerator, TraceSet};
use proteus_simtime::{SimDuration, SimTime};

/// Jobs per scenario — the "many jobs, one market" floor.
const JOBS: usize = 120;
/// Scenario horizon.
const HORIZON: SimDuration = SimDuration::from_hours(24);

/// Seeds to sweep. Chaos seeds double as trace seeds so the market a
/// faulted run perturbs is the exact market the replay reproduces.
fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("PROTEUS_CHAOS_SEEDS") {
        return s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
    }
    if std::env::var("PROTEUS_CHAOS_FULL").is_ok() {
        return vec![3, 5, 7, 11, 13, 17, 19, 23];
    }
    vec![3, 11]
}

fn markets() -> Vec<MarketKey> {
    catalog::paper_markets().into_iter().take(3).collect()
}

/// A turbulent price history: frequent spikes make bid crossings (and
/// so eviction storms) routine rather than exceptional.
fn volatile_traces(seed: u64) -> TraceSet {
    let gen = TraceGenerator::new(seed, MarketModel::volatile());
    gen.generate_set(&markets(), HORIZON + SimDuration::from_hours(2))
}

/// β trained on the first stretch of the same volatile history, so the
/// bids the fleet places are informed rather than arbitrary.
fn trained_beta(traces: &TraceSet) -> BetaEstimator {
    let mut beta = BetaEstimator::new();
    for k in &markets() {
        if let Some(trace) = traces.get(k) {
            beta.train(
                *k,
                trace,
                SimTime::EPOCH,
                SimTime::from_hours(12),
                SimDuration::from_mins(30),
                &BetaEstimator::default_deltas(),
            );
        }
    }
    beta
}

/// The canonical chaos fleet: 120 trials of mixed size, tier, and
/// arrival time, most preemptible, a few protected.
fn submit_fleet(fleet: &mut FleetSim<'_>) {
    for i in 0..JOBS {
        let mut spec = FleetJobSpec::trial(
            0.5 + 0.1 * (i % 7) as f64,
            1 + (i % 3) as u32,
            (i % 4) as u32,
        );
        spec.preemptible = i % 5 != 0;
        let at = SimTime::EPOCH + SimDuration::from_mins(3 * i as u64);
        fleet.submit(spec, at);
    }
}

fn run_scenario(name: &str, seed: u64, plan: Option<MarketFaultPlan>) -> FleetOutcome {
    println!("chaos: scenario={name} seed={seed}");
    let traces = volatile_traces(seed);
    let beta = trained_beta(&traces);
    let mut cfg = FleetConfig::paper_defaults(markets());
    cfg.max_active_jobs = JOBS; // chaos comes from the market, not admission
    let mut fleet = FleetSim::new(&traces, &beta, cfg);
    if let Some(plan) = plan {
        fleet.set_fault_plan(plan);
    }
    submit_fleet(&mut fleet);
    let exec = StudyExecutor::from_env();
    fleet
        .run_to(SimTime::EPOCH + HORIZON, &exec)
        .expect("fleet run never surfaces a fatal market error");
    let (out, _) = fleet.finish();
    assert_outcome_sane(name, seed, &out);
    out
}

/// The universal postcondition: typed terminal states and finite books.
fn assert_outcome_sane(name: &str, seed: u64, out: &FleetOutcome) {
    assert_eq!(out.jobs.len(), JOBS, "{name} seed={seed}");
    for j in &out.jobs {
        assert!(
            j.state.is_terminal(),
            "{name} seed={seed}: non-terminal job {j:?}"
        );
        assert!(
            j.spot_cost.is_finite() && j.work_done.is_finite(),
            "{name} seed={seed}: non-finite books {j:?}"
        );
    }
    assert!(out.total_cost.is_finite() && out.total_cost >= 0.0);
    assert!(out.total_work.is_finite() && out.total_work >= 0.0);
    // Some jobs must actually get through even under chaos: the market
    // always has capacity outside drought windows.
    assert!(
        out.completed > 0,
        "{name} seed={seed}: nothing completed ({} evictions, {} preemptions)",
        out.evictions,
        out.preemptions
    );
}

#[test]
fn eviction_storms_leave_every_job_typed() {
    for seed in seeds() {
        let out = run_scenario("eviction_storms", seed, None);
        // Volatile prices must actually have produced storms; otherwise
        // the scenario tests nothing.
        assert!(
            out.evictions > 0,
            "seed={seed}: volatile market produced no evictions"
        );
    }
}

#[test]
fn capacity_drought_starves_but_never_wedges() {
    for seed in seeds() {
        let plan = MarketFaultPlan::new(seed)
            .with_drought(SimTime::from_hours(4), SimTime::from_hours(9), 6)
            .with_drought(SimTime::from_hours(14), SimTime::from_hours(17), 2);
        let out = run_scenario("capacity_drought", seed, Some(plan));
        // Drought forces queueing; gangs must have waited at least once.
        assert!(
            out.jobs.iter().any(|j| j.max_rounds_waited > 0),
            "seed={seed}: drought never queued a gang"
        );
    }
}

#[test]
fn full_fault_stack_converges_or_types_out() {
    for seed in seeds() {
        let plan = MarketFaultPlan::new(seed)
            .with_drought(SimTime::from_hours(6), SimTime::from_hours(10), 8)
            .with_throttle(0.15, SimDuration::from_mins(5))
            .with_boot_delay(SimDuration::from_secs(30), SimDuration::from_mins(4))
            .with_infant_mortality(0.08, SimDuration::from_mins(20));
        run_scenario("full_fault_stack", seed, Some(plan));
    }
}

#[test]
fn chaos_outcome_replays_bit_identically() {
    for seed in seeds() {
        let plan = || {
            MarketFaultPlan::new(seed)
                .with_throttle(0.1, SimDuration::from_mins(5))
                .with_boot_delay(SimDuration::from_secs(30), SimDuration::from_mins(2))
                .with_infant_mortality(0.05, SimDuration::from_mins(15))
        };
        let a = run_scenario("replay_a", seed, Some(plan()));
        let b = run_scenario("replay_b", seed, Some(plan()));
        assert_eq!(a, b, "seed={seed}: chaos outcome failed to replay");
    }
}
