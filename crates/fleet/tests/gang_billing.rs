//! Property-based gang-billing conservation.
//!
//! Gang acquisition is all-or-nothing, so the ledger must be too: a
//! gang that queues or is denied leaves *zero* ledger entries — no
//! charge, no refund, no usage — and a gang the scheduler preempts
//! ([`CloudProvider::revoke`]) settles exactly like a provider
//! eviction: current billing hour refunded, usage up to the revocation
//! reclassified as free. These properties are what make global
//! preemption safe to use as a scheduling primitive — the preempted
//! tenant is made whole, mechanically.

use proptest::prelude::*;
use proteus_market::{
    catalog, CloudProvider, LedgerKind, MarketError, MarketFaultPlan, MarketKey, PriceTrace,
    TenantId, TraceSet, Zone,
};
use proteus_simtime::{SimDuration, SimTime};

fn market() -> MarketKey {
    MarketKey::new(catalog::c4_xlarge(), Zone(0))
}

/// A provider over a hand-scripted trace: flat `base` price until
/// `spike_at`, then a spike far above any bid. Warning lead is zero so
/// a market eviction settles at the crossing instant itself, directly
/// comparable to a scheduler revocation at the same instant.
fn provider(base: f64, spike_at: Option<SimTime>) -> CloudProvider<'static> {
    let mut points = vec![(SimTime::EPOCH, base)];
    if let Some(t) = spike_at {
        points.push((t, base * 100.0));
    }
    let mut set = TraceSet::new();
    set.insert(market(), PriceTrace::from_points(points).expect("trace"));
    CloudProvider::with_warning_lead(set, SimDuration::ZERO)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A gang refused for capacity adds nothing to the books: no ledger
    /// entry, no usage, no live instances. Queued-not-launched must be
    /// financially indistinguishable from never-asked.
    #[test]
    fn refused_gang_leaves_a_zero_ledger(
        gang in 2u32..12,
        cap in 0u32..2,
        tenant in 0u64..50,
        delta in 0.001f64..0.5,
    ) {
        let mut p = provider(0.05, None);
        p.set_fault_plan(MarketFaultPlan::new(tenant).with_drought(
            SimTime::EPOCH,
            SimTime::from_hours(1000),
            cap, // below any gang width drawn above
        ));
        let price = p.spot_price(market()).expect("trace");
        let got = p.request_spot_gang(TenantId(tenant), market(), gang, price + delta);
        prop_assert!(
            matches!(got, Err(MarketError::InsufficientCapacity { available, .. }) if available == cap)
        );
        prop_assert!(p.account().entries().is_empty());
        prop_assert_eq!(p.account().total_cost(), 0.0);
        prop_assert_eq!(p.account().usage().total_hours(), 0.0);
        prop_assert_eq!(p.live_instance_count(), 0);
    }

    /// A gang denied for an under-market bid is equally free.
    #[test]
    fn underbid_gang_leaves_a_zero_ledger(
        gang in 1u32..12,
        frac in 0.01f64..0.99,
    ) {
        let mut p = provider(0.05, None);
        let price = p.spot_price(market()).expect("trace");
        let got = p.request_spot_gang(TenantId(1), market(), gang, price * frac);
        prop_assert!(matches!(got, Err(MarketError::BidBelowMarket { .. })));
        prop_assert!(p.account().entries().is_empty());
        prop_assert_eq!(p.live_instance_count(), 0);
    }

    /// Scheduler preemption settles *exactly* like a provider eviction:
    /// launch the same gang on the same trace twice — once revoked by
    /// the scheduler at minute `m`, once evicted by a price spike at
    /// minute `m` — and the two ledgers and usage breakdowns must be
    /// identical, entry for entry.
    #[test]
    fn preemption_settles_exactly_like_eviction(
        gang in 1u32..8,
        minute in 5u64..55,
        base in 0.02f64..0.5,
        delta in 0.001f64..0.05,
    ) {
        let when = SimTime::EPOCH + SimDuration::from_mins(minute);

        // Arm A: the scheduler revokes the gang at `when`.
        let mut a = provider(base, None);
        let grant = a
            .request_spot_gang(TenantId(9), market(), gang, base + delta)
            .expect("grant");
        a.advance_to(when).expect("advance");
        a.revoke(grant.id).expect("revoke");

        // Arm B: the market price crosses the bid at `when`.
        let mut b = provider(base, Some(when));
        let _ = b
            .request_spot_gang(TenantId(9), market(), gang, base + delta)
            .expect("grant");
        b.advance_to(when + SimDuration::from_mins(1)).expect("advance");

        let ea = a.account().entries();
        let eb = b.account().entries();
        prop_assert_eq!(ea.len(), eb.len(), "a={:?} b={:?}", ea, eb);
        for (x, y) in ea.iter().zip(eb.iter()) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(x.instances, y.instances);
            prop_assert!((x.amount - y.amount).abs() < 1e-12, "{:?} vs {:?}", x, y);
            prop_assert_eq!(x.time, y.time);
        }
        prop_assert_eq!(a.account().usage(), b.account().usage());
        // Both arms refunded the whole (and only) charged hour.
        let refunds: f64 = ea
            .iter()
            .filter(|e| e.kind == LedgerKind::EvictionRefund)
            .map(|e| -e.amount)
            .sum();
        let charges: f64 = ea
            .iter()
            .filter(|e| e.kind == LedgerKind::SpotHour)
            .map(|e| e.amount)
            .sum();
        prop_assert!((refunds - charges).abs() < 1e-12);
        prop_assert!(a.account().total_cost().abs() < 1e-12);
    }

    /// Termination (the tenant walking away) is the asymmetry check:
    /// the paid hour is forfeited, so unlike revocation the ledger keeps
    /// its charge and the usage stays in the paid bucket.
    #[test]
    fn termination_forfeits_where_revocation_refunds(
        gang in 1u32..8,
        minute in 5u64..55,
    ) {
        let when = SimTime::EPOCH + SimDuration::from_mins(minute);
        let mut p = provider(0.05, None);
        let grant = p
            .request_spot_gang(TenantId(2), market(), gang, 0.06)
            .expect("grant");
        p.advance_to(when).expect("advance");
        p.terminate(grant.id).expect("terminate");
        prop_assert!(p.account().total_cost() > 0.0);
        prop_assert_eq!(p.account().total_refunds(), 0.0);
        prop_assert_eq!(p.account().usage().free_hours, 0.0);
        prop_assert!(p.account().usage().spot_paid_hours > 0.0);
    }
}
