//! Price-trace analytics: spike detection and market characterization.
//!
//! BidBrain's bidding quality depends on the *character* of a market —
//! how often it spikes, how long spikes last, how deep the calm-regime
//! discount is. This module extracts those statistics from any
//! [`PriceTrace`], supporting the Fig. 3 reproduction, market-model
//! calibration, and market-selection diagnostics.

use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::trace::PriceTrace;

/// One contiguous interval during which the price exceeded a level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spike {
    /// When the price first exceeded the level.
    pub start: SimTime,
    /// When it fell back (or the analysis window ended).
    pub end: SimTime,
    /// The maximum price reached within the spike.
    pub peak: f64,
}

impl Spike {
    /// Spike duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Summary statistics of a trace over a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarketStats {
    /// Time-weighted mean price.
    pub mean_price: f64,
    /// Minimum price observed.
    pub min_price: f64,
    /// Maximum price observed.
    pub max_price: f64,
    /// Fraction of time the price exceeded the reference level.
    pub fraction_above_ref: f64,
    /// Spikes (excursions above the reference level) per day.
    pub spikes_per_day: f64,
    /// Mean spike duration.
    pub mean_spike_duration: SimDuration,
}

/// Finds every excursion of the price strictly above `level` within
/// `[from, to]`.
pub fn find_spikes(trace: &PriceTrace, level: f64, from: SimTime, to: SimTime) -> Vec<Spike> {
    assert!(to > from, "analysis window must be non-empty");
    let mut spikes = Vec::new();
    let mut current: Option<Spike> = None;
    let mut t = from;
    let mut price = trace.price_at(from);
    loop {
        let seg_end = match trace.next_change_after(t) {
            Some((ct, _)) if ct < to => ct,
            _ => to,
        };
        if price > level {
            match current.as_mut() {
                Some(s) => {
                    s.end = seg_end;
                    s.peak = s.peak.max(price);
                }
                None => {
                    current = Some(Spike {
                        start: t,
                        end: seg_end,
                        peak: price,
                    });
                }
            }
        } else if let Some(s) = current.take() {
            spikes.push(s);
        }
        if seg_end == to {
            break;
        }
        t = seg_end;
        price = trace.price_at(seg_end);
    }
    if let Some(s) = current {
        spikes.push(s);
    }
    spikes
}

/// Computes summary statistics of `trace` over `[from, to]` with
/// `reference` as the spike level (typically the on-demand price).
pub fn market_stats(trace: &PriceTrace, reference: f64, from: SimTime, to: SimTime) -> MarketStats {
    assert!(to > from, "analysis window must be non-empty");
    let spikes = find_spikes(trace, reference, from, to);
    let days = (to - from).as_hours_f64() / 24.0;
    let mean_spike_duration = if spikes.is_empty() {
        SimDuration::ZERO
    } else {
        let total_ms: u64 = spikes.iter().map(|s| s.duration().as_millis()).sum();
        SimDuration::from_millis(total_ms / spikes.len() as u64)
    };

    // Min/max over change points plus the window edges.
    let mut min_price = trace.price_at(from);
    let mut max_price = min_price;
    for (pt, price) in trace.points() {
        if *pt >= from && *pt <= to {
            min_price = min_price.min(*price);
            max_price = max_price.max(*price);
        }
    }

    MarketStats {
        mean_price: trace.mean_price(from, to),
        min_price,
        max_price,
        fraction_above_ref: trace.fraction_above(reference, from, to),
        spikes_per_day: spikes.len() as f64 / days.max(1e-9),
        mean_spike_duration,
    }
}

/// Ranks markets by time-weighted mean price per core over a window —
/// the first-order signal for where transient capacity is cheapest.
pub fn rank_markets_by_core_price(
    markets: &[(crate::instance::MarketKey, &PriceTrace)],
    from: SimTime,
    to: SimTime,
) -> Vec<(crate::instance::MarketKey, f64)> {
    let mut out: Vec<(crate::instance::MarketKey, f64)> = markets
        .iter()
        .map(|(key, trace)| {
            let per_core = trace.mean_price(from, to) / f64::from(key.instance_type().vcpus);
            (*key, per_core)
        })
        .collect();
    // Invariant: mean_price integrates finite trace points over a
    // positive window and vcpus ≥ 1, so per-core prices are never NaN.
    #[allow(clippy::expect_used)]
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite prices"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{MarketModel, TraceGenerator};
    use crate::instance::{catalog, MarketKey, Zone};

    fn scripted() -> PriceTrace {
        PriceTrace::from_points(vec![
            (SimTime::EPOCH, 0.05),
            (SimTime::from_hours(1), 0.50), // Spike 1: 1h-2h.
            (SimTime::from_hours(2), 0.05),
            (SimTime::from_hours(5), 0.80), // Spike 2: 5h-5.5h.
            (SimTime::EPOCH + SimDuration::from_mins(330), 0.05),
        ])
        .expect("valid")
    }

    #[test]
    fn spikes_are_detected_with_bounds_and_peaks() {
        let spikes = find_spikes(&scripted(), 0.2, SimTime::EPOCH, SimTime::from_hours(10));
        assert_eq!(spikes.len(), 2);
        assert_eq!(spikes[0].start, SimTime::from_hours(1));
        assert_eq!(spikes[0].end, SimTime::from_hours(2));
        assert_eq!(spikes[0].peak, 0.50);
        assert_eq!(spikes[1].duration(), SimDuration::from_mins(30));
        assert_eq!(spikes[1].peak, 0.80);
    }

    #[test]
    fn spike_open_at_window_end_is_reported() {
        let trace =
            PriceTrace::from_points(vec![(SimTime::EPOCH, 0.05), (SimTime::from_hours(1), 0.9)])
                .expect("valid");
        let spikes = find_spikes(&trace, 0.2, SimTime::EPOCH, SimTime::from_hours(3));
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].end, SimTime::from_hours(3));
    }

    #[test]
    fn stats_summarize_the_scripted_trace() {
        let s = market_stats(&scripted(), 0.2, SimTime::EPOCH, SimTime::from_hours(10));
        assert_eq!(s.min_price, 0.05);
        assert_eq!(s.max_price, 0.80);
        // 1.5 spike-hours over 10 hours.
        assert!((s.fraction_above_ref - 0.15).abs() < 1e-9);
        // 2 spikes over 10/24 days = 4.8/day.
        assert!((s.spikes_per_day - 4.8).abs() < 1e-9);
        assert_eq!(s.mean_spike_duration, SimDuration::from_mins(45));
    }

    #[test]
    fn generated_traces_match_their_model_statistics() {
        let model = MarketModel::default();
        let gen = TraceGenerator::new(31, model.clone());
        let key = MarketKey::new(catalog::c4_xlarge(), Zone(0));
        let horizon = SimDuration::from_hours(24 * 30);
        let trace = gen.generate(key, horizon);
        let od = key.instance_type().on_demand_price;
        let s = market_stats(&trace, od, SimTime::EPOCH, SimTime::EPOCH + horizon);
        // The generator draws spikes at `spikes_per_day`, but only those
        // whose peak clears the on-demand level count here.
        assert!(
            s.spikes_per_day > model.spikes_per_day * 0.5
                && s.spikes_per_day < model.spikes_per_day * 1.5,
            "spike rate {} vs model {}",
            s.spikes_per_day,
            model.spikes_per_day
        );
        assert!(s.mean_price < od * 0.8);
        assert!(s.min_price > 0.0);
    }

    #[test]
    fn ranking_orders_by_per_core_price() {
        let cheap = PriceTrace::constant(0.04); // c4.xlarge: 0.01/core.
        let pricey = PriceTrace::constant(0.12); // c4.2xlarge: 0.015/core.
        let a = MarketKey::new(catalog::c4_xlarge(), Zone(0));
        let b = MarketKey::new(catalog::c4_2xlarge(), Zone(0));
        let ranked = rank_markets_by_core_price(
            &[(b, &pricey), (a, &cheap)],
            SimTime::EPOCH,
            SimTime::from_hours(1),
        );
        assert_eq!(ranked[0].0, a);
        assert!((ranked[0].1 - 0.01).abs() < 1e-9);
        assert!((ranked[1].1 - 0.015).abs() < 1e-9);
    }
}
