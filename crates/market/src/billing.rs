//! Hourly billing ledger and machine-hour accounting.
//!
//! EC2-era billing semantics (Sec. 2.2 of the paper):
//!
//! * every allocation is charged at the **start** of each billing hour, at
//!   the spot price in effect at that instant (on-demand allocations at
//!   their fixed price);
//! * if the provider evicts a spot allocation, the charge for the current
//!   (partial) billing hour is refunded — any work done in that hour was
//!   **free compute**;
//! * voluntary termination mid-hour forfeits the remainder of the paid
//!   hour (so smart customers terminate just before hour boundaries).
//!
//! The ledger also tracks used machine-hours split into on-demand, paid
//! spot, and free categories, which is exactly the breakdown of the
//! paper's Fig. 10.

use proteus_simtime::SimTime;
use serde::{Deserialize, Serialize};

use crate::provider::AllocationId;

/// The kind of a ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LedgerKind {
    /// An hour of on-demand capacity charged in advance.
    OnDemandHour,
    /// An hour of spot capacity charged in advance at the market price.
    SpotHour,
    /// Refund of the current billing hour after a provider eviction.
    EvictionRefund,
}

/// One billing event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// When the charge or refund was applied.
    pub time: SimTime,
    /// The allocation it applies to.
    pub allocation: AllocationId,
    /// Charge or refund classification.
    pub kind: LedgerKind,
    /// Signed dollar amount: positive for charges, negative for refunds.
    pub amount: f64,
    /// Number of instances covered by the entry.
    pub instances: u32,
}

/// Used machine-hours split by how they were paid for.
///
/// "Free" hours are spot hours whose billing hour was refunded because the
/// provider evicted the allocation (Fig. 10's third category).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UsageBreakdown {
    /// Machine-hours on on-demand (reliable) instances.
    pub on_demand_hours: f64,
    /// Machine-hours on spot instances that were paid for.
    pub spot_paid_hours: f64,
    /// Machine-hours on spot instances refunded after eviction.
    pub free_hours: f64,
}

impl UsageBreakdown {
    /// Total used machine-hours across all categories.
    pub fn total_hours(&self) -> f64 {
        self.on_demand_hours + self.spot_paid_hours + self.free_hours
    }

    /// Fraction of all machine-hours that were free compute.
    ///
    /// Returns 0 when no hours have been used.
    pub fn free_fraction(&self) -> f64 {
        let total = self.total_hours();
        if total <= 0.0 {
            0.0
        } else {
            self.free_hours / total
        }
    }

    /// Accumulates another breakdown into this one.
    pub fn accumulate(&mut self, other: &UsageBreakdown) {
        self.on_demand_hours += other.on_demand_hours;
        self.spot_paid_hours += other.spot_paid_hours;
        self.free_hours += other.free_hours;
    }
}

/// Accumulates ledger entries and usage for one simulated customer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BillingAccount {
    entries: Vec<LedgerEntry>,
    usage: UsageBreakdown,
}

impl BillingAccount {
    /// An empty account.
    pub fn new() -> Self {
        BillingAccount::default()
    }

    /// Records a charge (positive `amount`) or refund (negative).
    pub fn record(&mut self, entry: LedgerEntry) {
        self.entries.push(entry);
    }

    /// Adds used on-demand machine-hours.
    pub fn add_on_demand_usage(&mut self, hours: f64) {
        self.usage.on_demand_hours += hours;
    }

    /// Adds used, paid-for spot machine-hours.
    pub fn add_spot_usage(&mut self, hours: f64) {
        self.usage.spot_paid_hours += hours;
    }

    /// Adds free (refunded) spot machine-hours.
    pub fn add_free_usage(&mut self, hours: f64) {
        self.usage.free_hours += hours;
    }

    /// Net dollars spent so far (charges minus refunds).
    pub fn total_cost(&self) -> f64 {
        self.entries.iter().map(|e| e.amount).sum()
    }

    /// Dollars spent on a specific allocation.
    pub fn cost_of(&self, allocation: AllocationId) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.allocation == allocation)
            .map(|e| e.amount)
            .sum()
    }

    /// Total refunds received (a non-negative number).
    pub fn total_refunds(&self) -> f64 {
        -self
            .entries
            .iter()
            .filter(|e| e.kind == LedgerKind::EvictionRefund)
            .map(|e| e.amount)
            .sum::<f64>()
    }

    /// All ledger entries in the order they were recorded.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// The machine-hour usage breakdown.
    pub fn usage(&self) -> &UsageBreakdown {
        &self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: LedgerKind, amount: f64) -> LedgerEntry {
        LedgerEntry {
            time: SimTime::EPOCH,
            allocation: AllocationId(1),
            kind,
            amount,
            instances: 2,
        }
    }

    #[test]
    fn total_cost_nets_refunds() {
        let mut acct = BillingAccount::new();
        acct.record(entry(LedgerKind::SpotHour, 0.10));
        acct.record(entry(LedgerKind::SpotHour, 0.10));
        acct.record(entry(LedgerKind::EvictionRefund, -0.10));
        assert!((acct.total_cost() - 0.10).abs() < 1e-12);
        assert!((acct.total_refunds() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn cost_of_filters_by_allocation() {
        let mut acct = BillingAccount::new();
        acct.record(LedgerEntry {
            allocation: AllocationId(1),
            ..entry(LedgerKind::SpotHour, 0.10)
        });
        acct.record(LedgerEntry {
            allocation: AllocationId(2),
            ..entry(LedgerKind::OnDemandHour, 0.42)
        });
        assert!((acct.cost_of(AllocationId(1)) - 0.10).abs() < 1e-12);
        assert!((acct.cost_of(AllocationId(2)) - 0.42).abs() < 1e-12);
        assert_eq!(acct.cost_of(AllocationId(3)), 0.0);
    }

    #[test]
    fn usage_breakdown_accumulates() {
        let mut acct = BillingAccount::new();
        acct.add_on_demand_usage(2.0);
        acct.add_spot_usage(5.0);
        acct.add_free_usage(3.0);
        let u = acct.usage();
        assert!((u.total_hours() - 10.0).abs() < 1e-12);
        assert!((u.free_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn free_fraction_of_empty_usage_is_zero() {
        assert_eq!(UsageBreakdown::default().free_fraction(), 0.0);
    }

    #[test]
    fn accumulate_merges_categories() {
        let mut a = UsageBreakdown {
            on_demand_hours: 1.0,
            spot_paid_hours: 2.0,
            free_hours: 3.0,
        };
        let b = UsageBreakdown {
            on_demand_hours: 0.5,
            spot_paid_hours: 0.5,
            free_hours: 0.5,
        };
        a.accumulate(&b);
        assert!((a.total_hours() - 7.5).abs() < 1e-12);
    }
}
