//! Error types for market operations.

use std::fmt;

use proteus_simtime::SimDuration;

use crate::instance::MarketKey;
use crate::provider::AllocationId;

/// Errors returned by market and provider operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketError {
    /// A bid was placed below the current market price, so no resources
    /// were granted.
    BidBelowMarket {
        /// The market the bid targeted.
        market: MarketKey,
        /// The rejected bid price per instance-hour.
        bid: f64,
        /// The prevailing spot price when the bid arrived.
        market_price: f64,
    },
    /// No price trace is registered for the requested market.
    UnknownMarket(MarketKey),
    /// The referenced allocation does not exist or was already terminated.
    UnknownAllocation(AllocationId),
    /// Time was asked to move backwards.
    TimeWentBackwards,
    /// An allocation request asked for zero instances.
    EmptyRequest,
    /// The market had no spot capacity left for the request (a
    /// [`CapacityRule`](crate::fault::CapacityRule) window is active).
    /// Transient: capacity frees up as other allocations end.
    InsufficientCapacity {
        /// The market that refused the request.
        market: MarketKey,
        /// Instances asked for.
        requested: u32,
        /// Instances the market could still grant (zero here — partial
        /// fits are granted, not refused).
        available: u32,
    },
    /// The provider API throttled the request before it reached the
    /// market. Transient: retry after the suggested delay.
    RequestLimitExceeded {
        /// Suggested wait before retrying.
        retry_after: SimDuration,
    },
}

impl MarketError {
    /// Whether retrying the same request later could succeed without
    /// any change on the caller's side. Capacity refusals and API
    /// throttling are transient; bad bids, unknown markets, and
    /// protocol misuse are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MarketError::InsufficientCapacity { .. } | MarketError::RequestLimitExceeded { .. }
        )
    }
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::BidBelowMarket {
                market,
                bid,
                market_price,
            } => write!(
                f,
                "bid ${bid:.4} below market price ${market_price:.4} for {market}"
            ),
            MarketError::UnknownMarket(key) => write!(f, "no price trace for market {key}"),
            MarketError::UnknownAllocation(id) => write!(f, "unknown allocation {id}"),
            MarketError::TimeWentBackwards => write!(f, "simulation time may not move backwards"),
            MarketError::EmptyRequest => write!(f, "allocation request for zero instances"),
            MarketError::InsufficientCapacity {
                market,
                requested,
                available,
            } => write!(
                f,
                "insufficient capacity in {market}: requested {requested}, available {available}"
            ),
            MarketError::RequestLimitExceeded { retry_after } => write!(
                f,
                "request limit exceeded; retry after {}s",
                retry_after.as_secs()
            ),
        }
    }
}

impl std::error::Error for MarketError {}
