//! Error types for market operations.

use std::fmt;

use crate::instance::MarketKey;
use crate::provider::AllocationId;

/// Errors returned by market and provider operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketError {
    /// A bid was placed below the current market price, so no resources
    /// were granted.
    BidBelowMarket {
        /// The market the bid targeted.
        market: MarketKey,
        /// The rejected bid price per instance-hour.
        bid: f64,
        /// The prevailing spot price when the bid arrived.
        market_price: f64,
    },
    /// No price trace is registered for the requested market.
    UnknownMarket(MarketKey),
    /// The referenced allocation does not exist or was already terminated.
    UnknownAllocation(AllocationId),
    /// Time was asked to move backwards.
    TimeWentBackwards,
    /// An allocation request asked for zero instances.
    EmptyRequest,
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::BidBelowMarket {
                market,
                bid,
                market_price,
            } => write!(
                f,
                "bid ${bid:.4} below market price ${market_price:.4} for {market}"
            ),
            MarketError::UnknownMarket(key) => write!(f, "no price trace for market {key}"),
            MarketError::UnknownAllocation(id) => write!(f, "unknown allocation {id}"),
            MarketError::TimeWentBackwards => write!(f, "simulation time may not move backwards"),
            MarketError::EmptyRequest => write!(f, "allocation request for zero instances"),
        }
    }
}

impl std::error::Error for MarketError {}
