//! Seed-deterministic provider-side fault regimes.
//!
//! The paper's Sec. 2.2 market semantics imply more than price motion:
//! requests can go unfulfilled (capacity is *why* prices move), the
//! provider API itself throttles, granted instances take minutes to
//! boot, and freshly launched instances sometimes die. A
//! [`MarketFaultPlan`] scripts those behaviors onto a
//! [`CloudProvider`](crate::CloudProvider):
//!
//! * **capacity limits** ([`CapacityRule`]) — a per-market cap on live
//!   spot instances during a time window. Requests beyond the cap are
//!   refused with [`MarketError::InsufficientCapacity`](crate::MarketError)
//!   or partially granted;
//! * **throttling** ([`ThrottleRule`]) — spot requests fail with
//!   [`MarketError::RequestLimitExceeded`](crate::MarketError) with some
//!   probability, carrying a suggested retry delay;
//! * **boot delay** ([`BootDelayRule`]) — a grant at `t` becomes usable
//!   at `t + delay`; billing starts when the instances come up, and a
//!   price crossing during boot aborts the launch unbilled;
//! * **infant mortality** ([`InfantMortalityRule`]) — a launched
//!   allocation dies without warning shortly after boot (the current
//!   hour is refunded, like any provider-side revocation).
//!
//! # Determinism
//!
//! The plan owns one root SplitMix64 stream (the same generator simnet's
//! message [`FaultPlan`](proteus_simnet::FaultPlan) uses) seeded from
//! `plan.seed`. The provider is single-threaded and requests arrive in
//! program order, so the n-th spot request always consumes the same
//! draws: a chaos failure replays from the printed seed alone. Every
//! regime is off by default, and a provider with no plan installed
//! draws nothing — existing traces and benches are bit-identical.
//!
//! Multi-tenant callers (the fleet scheduler) tag requests with a
//! [`TenantId`]: each tenant draws from its own stream, seeded from
//! `(plan.seed, tenant)`, so one job's fault fate depends only on its
//! own request ordinal — never on how many requests *other* jobs made
//! first, or on the scheduler's interleaving. [`TenantId::DEFAULT`]
//! routes to the root stream, keeping every single-job caller
//! bit-identical to earlier builds.

use std::collections::BTreeMap;

use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::instance::MarketKey;

/// Identifies one tenant (job) of a shared provider for fault draws.
///
/// The fleet scheduler maps each job onto a distinct tenant so fault
/// streams split per job id; everything else uses
/// [`TenantId::DEFAULT`], which draws from the plan's root stream.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TenantId(pub u64);

impl TenantId {
    /// The root stream every non-fleet caller draws from.
    pub const DEFAULT: TenantId = TenantId(0);
}

/// SplitMix64 — tiny, seedable, and identical to the stream generator
/// used by simnet's message-fault plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A per-market cap on live spot instances during a time window.
///
/// While active, the provider grants at most `capacity` live spot
/// instances in the matching market(s): a request that fits is granted
/// in full, a request that partially fits is granted partially, and a
/// request arriving with zero headroom is refused.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityRule {
    /// Market the cap applies to (`None` = every market).
    #[serde(default)]
    pub market: Option<MarketKey>,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Maximum live spot instances in the market while active.
    pub capacity: u32,
}

impl CapacityRule {
    fn applies(&self, market: MarketKey, now: SimTime) -> bool {
        self.market.is_none_or(|m| m == market) && self.from <= now && now < self.until
    }
}

/// Transient API throttling: spot requests fail with
/// [`MarketError::RequestLimitExceeded`](crate::MarketError) with
/// probability `probability` while the (optional) window is active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottleRule {
    /// Probability a spot request is rejected.
    pub probability: f64,
    /// Retry delay the error suggests to the caller.
    pub retry_after: SimDuration,
    /// Window start (`None` = from the epoch).
    #[serde(default)]
    pub from: Option<SimTime>,
    /// Window end (`None` = forever).
    #[serde(default)]
    pub until: Option<SimTime>,
}

impl ThrottleRule {
    fn active(&self, now: SimTime) -> bool {
        self.from.is_none_or(|f| f <= now) && self.until.is_none_or(|u| now < u)
    }
}

/// Delayed instance launch: a granted allocation becomes usable a
/// uniform draw in `[min, max]` after the grant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootDelayRule {
    /// Minimum boot delay.
    pub min: SimDuration,
    /// Maximum boot delay.
    pub max: SimDuration,
}

/// Launch-then-die: with probability `probability` a granted allocation
/// dies — warning-less, current hour refunded — a uniform draw in
/// `(0, max_lifetime]` after it becomes usable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InfantMortalityRule {
    /// Probability a grant is fated to die young.
    pub probability: f64,
    /// Upper bound on the doomed allocation's usable lifetime.
    pub max_lifetime: SimDuration,
}

/// A seeded catalogue of provider-side fault regimes for one run.
///
/// Every regime defaults to off; an empty plan behaves exactly like no
/// plan at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketFaultPlan {
    /// Root seed for every probabilistic draw; printed by chaos
    /// harnesses so failures replay.
    pub seed: u64,
    /// Capacity caps (all matching active rules apply; tightest wins).
    #[serde(default)]
    pub capacity: Vec<CapacityRule>,
    /// API throttling.
    #[serde(default)]
    pub throttle: Option<ThrottleRule>,
    /// Launch delay.
    #[serde(default)]
    pub boot: Option<BootDelayRule>,
    /// Launch-then-die failures.
    #[serde(default)]
    pub infant: Option<InfantMortalityRule>,
}

impl MarketFaultPlan {
    /// An empty plan (no market faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        MarketFaultPlan {
            seed,
            capacity: Vec::new(),
            throttle: None,
            boot: None,
            infant: None,
        }
    }

    /// Adds a capacity cap; builder style.
    pub fn with_capacity(mut self, rule: CapacityRule) -> Self {
        self.capacity.push(rule);
        self
    }

    /// Caps every market at `capacity` live spot instances during
    /// `[from, until)` — the capacity-drought scenario.
    pub fn with_drought(self, from: SimTime, until: SimTime, capacity: u32) -> Self {
        self.with_capacity(CapacityRule {
            market: None,
            from,
            until,
            capacity,
        })
    }

    /// Throttles spot requests with probability `p`, suggesting
    /// `retry_after` to the caller.
    pub fn with_throttle(mut self, p: f64, retry_after: SimDuration) -> Self {
        self.throttle = Some(ThrottleRule {
            probability: p,
            retry_after,
            from: None,
            until: None,
        });
        self
    }

    /// Delays every launch by a uniform draw in `[min, max]`.
    pub fn with_boot_delay(mut self, min: SimDuration, max: SimDuration) -> Self {
        self.boot = Some(BootDelayRule { min, max });
        self
    }

    /// Dooms each grant with probability `p` to die warning-less within
    /// `max_lifetime` of becoming usable.
    pub fn with_infant_mortality(mut self, p: f64, max_lifetime: SimDuration) -> Self {
        self.infant = Some(InfantMortalityRule {
            probability: p,
            max_lifetime,
        });
        self
    }

    /// The tightest capacity cap applying to `market` at `now`, if any.
    pub fn capacity_limit(&self, market: MarketKey, now: SimTime) -> Option<u32> {
        self.capacity
            .iter()
            .filter(|r| r.applies(market, now))
            .map(|r| r.capacity)
            .min()
    }
}

/// Counters of fault-regime activity, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarketFaultStats {
    /// Requests rejected by the throttle regime.
    pub throttled: u64,
    /// Requests refused outright for lack of capacity.
    pub capacity_refusals: u64,
    /// Requests granted below the asked count.
    pub partial_grants: u64,
    /// Grants whose launch was delayed.
    pub boot_delays: u64,
    /// Launches aborted by a price crossing during boot.
    pub launch_failures: u64,
    /// Allocations killed by the infant-mortality regime.
    pub infant_deaths: u64,
}

/// Live fault state a provider carries: the plan, its draw streams
/// (the root stream plus lazily-split per-tenant streams), and
/// activity counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct FaultState {
    pub(crate) plan: MarketFaultPlan,
    rng: SplitMix64,
    /// Per-tenant independent streams, keyed by tenant id and seeded
    /// from `(plan.seed, tenant)` on first use. [`TenantId::DEFAULT`]
    /// never lands here — it draws from the root `rng` above.
    tenant_rngs: BTreeMap<u64, SplitMix64>,
    pub(crate) stats: MarketFaultStats,
}

/// Seeds a tenant's draw stream from the plan's root seed: one
/// SplitMix64 scramble of the combined word spreads adjacent tenant
/// ids across the full state space.
fn tenant_seed(root: u64, tenant: u64) -> u64 {
    SplitMix64::new(root ^ tenant.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

impl FaultState {
    pub(crate) fn new(plan: MarketFaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        FaultState {
            plan,
            rng,
            tenant_rngs: BTreeMap::new(),
            stats: MarketFaultStats::default(),
        }
    }

    /// The draw stream for `tenant`: the root stream for the default
    /// tenant, a seed-stable split stream otherwise.
    fn rng_for(&mut self, tenant: TenantId) -> &mut SplitMix64 {
        if tenant == TenantId::DEFAULT {
            &mut self.rng
        } else {
            let seed = tenant_seed(self.plan.seed, tenant.0);
            self.tenant_rngs
                .entry(tenant.0)
                .or_insert_with(|| SplitMix64::new(seed))
        }
    }

    /// Draws the throttle gate for `tenant`'s request at `now`. Returns
    /// the suggested retry delay when the request is rejected.
    pub(crate) fn draw_throttle(&mut self, tenant: TenantId, now: SimTime) -> Option<SimDuration> {
        let rule = self.plan.throttle.as_ref()?;
        if !rule.active(now) {
            return None;
        }
        let p = rule.probability;
        let retry_after = rule.retry_after;
        if self.rng_for(tenant).next_f64() < p {
            self.stats.throttled += 1;
            Some(retry_after)
        } else {
            None
        }
    }

    /// Draws the boot delay for `tenant`'s fresh grant
    /// ([`SimDuration::ZERO`] when the regime is off).
    pub(crate) fn draw_boot_delay(&mut self, tenant: TenantId) -> SimDuration {
        let Some(rule) = self.plan.boot else {
            return SimDuration::ZERO;
        };
        let span = rule.max.as_millis().saturating_sub(rule.min.as_millis());
        let extra = (self.rng_for(tenant).next_f64() * span as f64) as u64;
        let delay = rule.min + SimDuration::from_millis(extra);
        if delay > SimDuration::ZERO {
            self.stats.boot_delays += 1;
        }
        delay
    }

    /// Draws the infant-mortality fate for `tenant`'s grant that
    /// becomes usable at `usable_at`: `Some(dies_at)` when the
    /// allocation is doomed.
    pub(crate) fn draw_infant_death(
        &mut self,
        tenant: TenantId,
        usable_at: SimTime,
    ) -> Option<SimTime> {
        let rule = self.plan.infant?;
        let rng = self.rng_for(tenant);
        if rng.next_f64() >= rule.probability {
            return None;
        }
        // Strictly positive lifetime so the death is observable after
        // the launch.
        let max_ms = rule.max_lifetime.as_millis().max(1);
        let life_ms = ((rng.next_f64() * max_ms as f64) as u64).max(1);
        Some(usable_at + SimDuration::from_millis(life_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{catalog, Zone};

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    #[test]
    fn splitmix_streams_are_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = SplitMix64::new(9).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn capacity_limit_takes_the_tightest_active_rule() {
        let plan = MarketFaultPlan::new(1)
            .with_drought(SimTime::from_hours(1), SimTime::from_hours(3), 8)
            .with_capacity(CapacityRule {
                market: Some(key()),
                from: SimTime::from_hours(2),
                until: SimTime::from_hours(4),
                capacity: 2,
            });
        assert_eq!(plan.capacity_limit(key(), SimTime::EPOCH), None);
        assert_eq!(plan.capacity_limit(key(), SimTime::from_hours(1)), Some(8));
        assert_eq!(plan.capacity_limit(key(), SimTime::from_hours(2)), Some(2));
        assert_eq!(plan.capacity_limit(key(), SimTime::from_hours(3)), Some(2));
        assert_eq!(plan.capacity_limit(key(), SimTime::from_hours(4)), None);
        // The wildcard drought caps other markets too.
        let other = MarketKey::new(catalog::c4_2xlarge(), Zone(1));
        assert_eq!(plan.capacity_limit(other, SimTime::from_hours(2)), Some(8));
    }

    #[test]
    fn throttle_draws_match_probability_and_replay() {
        let mk = |seed| {
            FaultState::new(
                MarketFaultPlan::new(seed).with_throttle(0.3, SimDuration::from_secs(30)),
            )
        };
        let mut a = mk(5);
        let mut b = mk(5);
        let mut hits = 0;
        for _ in 0..1000 {
            let ra = a.draw_throttle(TenantId::DEFAULT, SimTime::EPOCH);
            assert_eq!(ra, b.draw_throttle(TenantId::DEFAULT, SimTime::EPOCH));
            hits += u32::from(ra.is_some());
        }
        assert!((200..400).contains(&hits), "≈30% expected, got {hits}");
        assert_eq!(a.stats.throttled, u64::from(hits));
    }

    #[test]
    fn boot_delay_draws_stay_in_range() {
        let mut fs = FaultState::new(
            MarketFaultPlan::new(2)
                .with_boot_delay(SimDuration::from_secs(60), SimDuration::from_secs(300)),
        );
        for _ in 0..100 {
            let d = fs.draw_boot_delay(TenantId::DEFAULT);
            assert!(d >= SimDuration::from_secs(60) && d <= SimDuration::from_secs(300));
        }
        assert_eq!(fs.stats.boot_delays, 100);
    }

    #[test]
    fn infant_death_lands_after_launch() {
        let mut fs = FaultState::new(
            MarketFaultPlan::new(3).with_infant_mortality(1.0, SimDuration::from_mins(10)),
        );
        let usable = SimTime::from_hours(1);
        for _ in 0..50 {
            let dies = fs
                .draw_infant_death(TenantId::DEFAULT, usable)
                .expect("p=1 always dooms");
            assert!(dies > usable);
            assert!(dies <= usable + SimDuration::from_mins(10));
        }
    }

    #[test]
    fn disabled_regimes_draw_nothing() {
        let mut fs = FaultState::new(MarketFaultPlan::new(4));
        assert_eq!(fs.draw_throttle(TenantId::DEFAULT, SimTime::EPOCH), None);
        assert_eq!(fs.draw_boot_delay(TenantId::DEFAULT), SimDuration::ZERO);
        assert_eq!(
            fs.draw_infant_death(TenantId::DEFAULT, SimTime::EPOCH),
            None
        );
        assert_eq!(fs.stats, MarketFaultStats::default());
    }

    /// The satellite contract: one tenant's draws are a pure function of
    /// `(plan.seed, tenant, its own request ordinal)` — interleaving a
    /// second tenant's draws between them changes nothing.
    #[test]
    fn tenant_streams_are_independent_of_interleaving() {
        let plan = || MarketFaultPlan::new(21).with_throttle(0.5, SimDuration::from_secs(30));
        // Tenant 1 alone.
        let mut alone = FaultState::new(plan());
        let solo: Vec<_> = (0..50)
            .map(|_| alone.draw_throttle(TenantId(1), SimTime::EPOCH))
            .collect();
        // Tenant 1 interleaved with tenants 2 and the default stream.
        let mut mixed = FaultState::new(plan());
        let inter: Vec<_> = (0..50)
            .map(|_| {
                let _ = mixed.draw_throttle(TenantId(2), SimTime::EPOCH);
                let _ = mixed.draw_throttle(TenantId::DEFAULT, SimTime::EPOCH);
                mixed.draw_throttle(TenantId(1), SimTime::EPOCH)
            })
            .collect();
        assert_eq!(solo, inter, "tenant streams must not couple");
    }

    /// Distinct tenants under one plan see distinct streams, and the
    /// default tenant's stream is the root stream (bit-identical to the
    /// pre-tenant behavior).
    #[test]
    fn tenant_streams_diverge_and_default_matches_root() {
        let plan = || MarketFaultPlan::new(33).with_throttle(0.5, SimDuration::from_secs(30));
        let mut fs = FaultState::new(plan());
        let t7: Vec<_> = (0..64)
            .map(|_| fs.draw_throttle(TenantId(7), SimTime::EPOCH).is_some())
            .collect();
        let t8: Vec<_> = (0..64)
            .map(|_| fs.draw_throttle(TenantId(8), SimTime::EPOCH).is_some())
            .collect();
        assert_ne!(t7, t8, "different tenants should diverge");

        // Default draws reproduce a raw root stream over the same plan.
        let mut root = SplitMix64::new(33);
        let mut fresh = FaultState::new(plan());
        for _ in 0..64 {
            let hit = fresh
                .draw_throttle(TenantId::DEFAULT, SimTime::EPOCH)
                .is_some();
            assert_eq!(hit, root.next_f64() < 0.5);
        }
    }

    #[test]
    fn builder_composes_all_regimes() {
        let plan = MarketFaultPlan::new(9)
            .with_drought(SimTime::EPOCH, SimTime::from_hours(2), 4)
            .with_throttle(0.1, SimDuration::from_secs(15))
            .with_boot_delay(SimDuration::from_secs(30), SimDuration::from_secs(90))
            .with_infant_mortality(0.05, SimDuration::from_mins(5));
        assert_eq!(plan.capacity.len(), 1);
        assert!(plan.throttle.is_some());
        assert!(plan.boot.is_some());
        assert!(plan.infant.is_some());
        assert_eq!(plan.capacity_limit(key(), SimTime::from_hours(1)), Some(4));
    }
}
