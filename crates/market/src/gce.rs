//! Google Compute Engine preemptible-instance market model.
//!
//! GCE preemptible instances (Sec. 2.2 of the paper) differ from EC2 spot:
//! a *fixed* price 70 % below on-demand (no bidding, no price variability),
//! a 30-second warning instead of two minutes, a hard 24-hour lifetime, and
//! no refund mechanism (billing is per-minute in practice; we keep the
//! hourly accounting for comparability). Revocations arrive exogenously —
//! modelled as a Poisson process — rather than through price crossings.
//!
//! This module exists to demonstrate that BidBrain's framework "can also be
//! applied in other cloud provider settings" (Sec. 4): cost-per-work still
//! drives decisions, with β supplied by the revocation rate rather than by
//! price-history simulation.

use proteus_simtime::rng::seeded_stream;
use proteus_simtime::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::instance::MarketKey;

/// Fixed preemptible discount: 70 % below on-demand.
pub const GCE_DISCOUNT: f64 = 0.70;
/// GCE's warning lead before preemption.
pub const GCE_WARNING: SimDuration = SimDuration::from_secs(30);
/// Maximum preemptible-instance lifetime.
pub const GCE_MAX_LIFETIME: SimDuration = SimDuration::from_hours(24);

/// Parameters of the exogenous preemption process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreemptionModel {
    /// Mean preemptions per instance per 24 hours.
    pub preemptions_per_day: f64,
}

impl Default for PreemptionModel {
    fn default() -> Self {
        // Published GCE preemption rates for busy zones hover around
        // 5–15 %/day per instance; pick the middle.
        PreemptionModel {
            preemptions_per_day: 0.10,
        }
    }
}

/// A granted preemptible allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreemptibleLease {
    /// Market (the zone is ignored for pricing; GCE prices are regional).
    pub market: MarketKey,
    /// Instance count.
    pub count: u32,
    /// Grant instant.
    pub granted_at: SimTime,
    /// Scheduled revocation instant (preemption or the 24 h limit).
    pub revoke_at: SimTime,
}

impl PreemptibleLease {
    /// The fixed hourly price per instance.
    pub fn hourly_price(&self) -> f64 {
        self.market.instance_type().on_demand_price * (1.0 - GCE_DISCOUNT)
    }

    /// When the 30-second warning fires.
    pub fn warning_at(&self) -> SimTime {
        self.revoke_at - GCE_WARNING
    }
}

/// A minimal GCE-style provider: fixed prices, Poisson preemptions,
/// 24-hour lifetime cap.
#[derive(Debug, Clone)]
pub struct GceMarket {
    model: PreemptionModel,
    seed: u64,
    grants: u64,
}

impl GceMarket {
    /// Creates a GCE market with the given preemption model.
    pub fn new(seed: u64, model: PreemptionModel) -> Self {
        GceMarket {
            model,
            seed,
            grants: 0,
        }
    }

    /// The fixed preemptible price for an instance type.
    pub fn price(&self, market: MarketKey) -> f64 {
        market.instance_type().on_demand_price * (1.0 - GCE_DISCOUNT)
    }

    /// Grants a preemptible allocation at `now`, drawing its preemption
    /// time from the Poisson model (capped at the 24-hour lifetime).
    pub fn grant(&mut self, market: MarketKey, count: u32, now: SimTime) -> PreemptibleLease {
        let mut rng = seeded_stream(self.seed, self.grants);
        self.grants += 1;
        let rate_per_hour = self.model.preemptions_per_day / 24.0;
        let ttl = if rate_per_hour <= 0.0 {
            GCE_MAX_LIFETIME
        } else {
            let u: f64 = rng.gen_range(1e-12..1.0);
            SimDuration::from_hours_f64(-u.ln() / rate_per_hour).min(GCE_MAX_LIFETIME)
        };
        PreemptibleLease {
            market,
            count,
            granted_at: now,
            revoke_at: now + ttl,
        }
    }

    /// Probability an instance is preempted within `window`, under the
    /// exponential lifetime model — the analogue of the paper's β.
    pub fn preemption_probability(&self, window: SimDuration) -> f64 {
        let rate_per_hour = self.model.preemptions_per_day / 24.0;
        1.0 - (-rate_per_hour * window.as_hours_f64()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{catalog, Zone};

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    #[test]
    fn fixed_discount_is_seventy_percent() {
        let m = GceMarket::new(1, PreemptionModel::default());
        let od = key().instance_type().on_demand_price;
        assert!((m.price(key()) - 0.3 * od).abs() < 1e-12);
    }

    #[test]
    fn lifetime_capped_at_24_hours() {
        let mut m = GceMarket::new(
            1,
            PreemptionModel {
                preemptions_per_day: 0.0,
            },
        );
        let lease = m.grant(key(), 2, SimTime::EPOCH);
        assert_eq!(lease.revoke_at, SimTime::EPOCH + GCE_MAX_LIFETIME);
        assert_eq!(lease.warning_at(), lease.revoke_at - GCE_WARNING);
    }

    #[test]
    fn grants_are_deterministic_per_seed() {
        let mut a = GceMarket::new(9, PreemptionModel::default());
        let mut b = GceMarket::new(9, PreemptionModel::default());
        assert_eq!(
            a.grant(key(), 1, SimTime::EPOCH),
            b.grant(key(), 1, SimTime::EPOCH)
        );
    }

    #[test]
    fn preemption_probability_increases_with_window() {
        let m = GceMarket::new(
            1,
            PreemptionModel {
                preemptions_per_day: 1.0,
            },
        );
        let p1 = m.preemption_probability(SimDuration::from_hours(1));
        let p12 = m.preemption_probability(SimDuration::from_hours(12));
        assert!(p1 > 0.0 && p1 < p12 && p12 < 1.0);
    }

    #[test]
    fn higher_preemption_rate_shortens_lifetimes_on_average() {
        let mut calm = GceMarket::new(
            4,
            PreemptionModel {
                preemptions_per_day: 0.05,
            },
        );
        let mut busy = GceMarket::new(
            4,
            PreemptionModel {
                preemptions_per_day: 5.0,
            },
        );
        let mean = |m: &mut GceMarket| -> f64 {
            (0..200)
                .map(|_| m.grant(key(), 1, SimTime::EPOCH).revoke_at.as_hours_f64())
                .sum::<f64>()
                / 200.0
        };
        assert!(mean(&mut busy) < mean(&mut calm));
    }
}
