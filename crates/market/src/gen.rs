//! Synthetic spot-price trace generation.
//!
//! Real AWS price history from 2016 is unavailable offline, so traces are
//! synthesized with the qualitative character visible in the paper's
//! Fig. 3 and documented in the spot-pricing literature the paper cites:
//!
//! * a *calm* regime where the price sits at a small fraction of the
//!   on-demand price (spot discounts of 70–80 %) with mild multiplicative
//!   jitter and occasional small drifts;
//! * sharp *spike* regimes, arriving roughly as a Poisson process, where
//!   the price jumps well above the on-demand price for minutes to tens of
//!   minutes (these produce the evictions — and the free compute — that
//!   BidBrain reasons about);
//! * independent evolution per (instance type, zone) market.
//!
//! Everything is parameterized by [`MarketModel`] and fully deterministic
//! under a seed.

use proteus_simtime::rng::seeded_stream;
use proteus_simtime::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::instance::MarketKey;
use crate::trace::{PriceTrace, TraceSet};

/// Statistical parameters of one market's synthetic price process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketModel {
    /// Calm-regime price as a fraction of the on-demand price
    /// (EC2 spot discounts are typically 70–80 %, so 0.2–0.3).
    pub base_fraction: f64,
    /// Multiplicative jitter amplitude within the calm regime (e.g. 0.10
    /// allows ±10 % wiggle around the base price).
    pub jitter: f64,
    /// Mean minutes between calm-regime price updates.
    pub calm_step_mins: f64,
    /// Mean spikes per 24 simulated hours.
    pub spikes_per_day: f64,
    /// Spike peak as a multiple of the on-demand price, lower bound.
    pub spike_mult_min: f64,
    /// Spike peak as a multiple of the on-demand price, upper bound.
    pub spike_mult_max: f64,
    /// Mean spike duration in minutes.
    pub spike_duration_mins: f64,
}

impl Default for MarketModel {
    fn default() -> Self {
        MarketModel {
            base_fraction: 0.24,
            jitter: 0.10,
            calm_step_mins: 9.0,
            spikes_per_day: 5.0,
            spike_mult_min: 1.1,
            spike_mult_max: 6.0,
            spike_duration_mins: 12.0,
        }
    }
}

impl MarketModel {
    /// A calmer market with rarer, shorter spikes — handy for experiments
    /// that need low eviction pressure.
    pub fn calm() -> Self {
        MarketModel {
            spikes_per_day: 1.5,
            spike_duration_mins: 6.0,
            ..MarketModel::default()
        }
    }

    /// A turbulent market with frequent spikes — high eviction pressure.
    pub fn volatile() -> Self {
        MarketModel {
            spikes_per_day: 12.0,
            spike_duration_mins: 20.0,
            jitter: 0.18,
            ..MarketModel::default()
        }
    }
}

/// Deterministic synthetic trace generator.
///
/// # Examples
///
/// ```
/// use proteus_market::{catalog, MarketModel, TraceGenerator, Zone, MarketKey};
/// use proteus_simtime::{SimDuration, SimTime};
///
/// let gen = TraceGenerator::new(42, MarketModel::default());
/// let key = MarketKey::new(catalog::c4_xlarge(), Zone(0));
/// let trace = gen.generate(key, SimDuration::from_hours(24));
/// let od = key.instance_type().on_demand_price;
/// // The market spends the overwhelming majority of its time below
/// // the on-demand price.
/// let frac = trace.fraction_above(od, SimTime::EPOCH, SimTime::from_hours(24));
/// assert!(frac < 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
    model: MarketModel,
}

impl TraceGenerator {
    /// Creates a generator with an experiment seed and market model.
    pub fn new(seed: u64, model: MarketModel) -> Self {
        TraceGenerator { seed, model }
    }

    /// The model parameters in use.
    pub fn model(&self) -> &MarketModel {
        &self.model
    }

    /// Generates the price trace for one market over `[0, horizon]`.
    ///
    /// The RNG stream is derived from the market key, so each market's
    /// trace is independent yet reproducible, and generating one market
    /// does not perturb another.
    pub fn generate(&self, key: MarketKey, horizon: SimDuration) -> PriceTrace {
        let stream = (key.type_index as u64) << 8 | u64::from(key.zone.0);
        let mut rng = seeded_stream(self.seed, stream);
        let od = key.instance_type().on_demand_price;
        let base = od * self.model.base_fraction;
        let m = &self.model;

        let mut points: Vec<(SimTime, f64)> = Vec::new();
        let mut t = SimTime::EPOCH;
        let end = SimTime::EPOCH + horizon;
        // Price floor: AWS markets rarely drop below a few percent of
        // on-demand.
        let floor = od * 0.05;

        // Draw the first spike arrival.
        let mut next_spike =
            SimTime::EPOCH + exp_duration(&mut rng, 24.0 * 60.0 / m.spikes_per_day);

        let mut price = jittered(&mut rng, base, m.jitter).max(floor);
        points.push((t, price));

        while t < end {
            let step = exp_duration(&mut rng, m.calm_step_mins);
            let mut next_calm = t + step;
            if next_calm <= t {
                next_calm = t + SimDuration::from_secs(30);
            }
            if next_spike <= next_calm && next_spike < end {
                // Enter a spike regime.
                let mult = rng.gen_range(m.spike_mult_min..m.spike_mult_max);
                let spike_price = od * mult;
                let dur =
                    exp_duration(&mut rng, m.spike_duration_mins).max(SimDuration::from_mins(1));
                push_point(&mut points, next_spike, spike_price);
                let spike_end = next_spike + dur;
                // Fall back to a fresh calm price after the spike.
                price = jittered(&mut rng, base, m.jitter).max(floor);
                if spike_end < end {
                    push_point(&mut points, spike_end, price);
                }
                t = spike_end;
                next_spike = t + exp_duration(&mut rng, 24.0 * 60.0 / m.spikes_per_day);
            } else {
                // Calm-regime update: multiplicative random walk that mean
                // reverts towards the base price.
                let reverted = 0.8 * price + 0.2 * base;
                price = jittered(&mut rng, reverted, m.jitter).max(floor);
                if next_calm < end {
                    push_point(&mut points, next_calm, price);
                }
                t = next_calm;
            }
        }

        // Invariant: push_point deduplicates equal timestamps and the
        // loop emits strictly forward in time with positive prices —
        // exactly the well-formedness from_points checks.
        #[allow(clippy::expect_used)]
        PriceTrace::from_points(points).expect("generator produces well-formed traces")
    }

    /// Generates traces for every market in `keys` over `[0, horizon]`.
    pub fn generate_set(&self, keys: &[MarketKey], horizon: SimDuration) -> TraceSet {
        let mut set = TraceSet::new();
        for &key in keys {
            set.insert(key, self.generate(key, horizon));
        }
        set
    }
}

/// Multiplicative jitter around `center`.
fn jittered(rng: &mut impl Rng, center: f64, jitter: f64) -> f64 {
    let factor = 1.0 + rng.gen_range(-jitter..jitter);
    center * factor
}

/// An exponentially distributed duration with the given mean (minutes).
fn exp_duration(rng: &mut impl Rng, mean_mins: f64) -> SimDuration {
    let u: f64 = rng.gen_range(1e-12..1.0);
    SimDuration::from_secs_f64(-mean_mins.max(1e-6) * 60.0 * u.ln())
}

fn push_point(points: &mut Vec<(SimTime, f64)>, t: SimTime, price: f64) {
    match points.last_mut() {
        Some((last_t, last_p)) if *last_t == t => *last_p = price,
        _ => points.push((t, price)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{catalog, Zone};

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    #[test]
    fn generation_is_deterministic() {
        let g1 = TraceGenerator::new(7, MarketModel::default());
        let g2 = TraceGenerator::new(7, MarketModel::default());
        let h = SimDuration::from_hours(48);
        assert_eq!(g1.generate(key(), h), g2.generate(key(), h));
    }

    #[test]
    fn different_seeds_differ() {
        let h = SimDuration::from_hours(48);
        let a = TraceGenerator::new(1, MarketModel::default()).generate(key(), h);
        let b = TraceGenerator::new(2, MarketModel::default()).generate(key(), h);
        assert_ne!(a, b);
    }

    #[test]
    fn markets_evolve_independently() {
        let g = TraceGenerator::new(7, MarketModel::default());
        let h = SimDuration::from_hours(48);
        let a = g.generate(MarketKey::new(catalog::c4_xlarge(), Zone(0)), h);
        let b = g.generate(MarketKey::new(catalog::c4_xlarge(), Zone(1)), h);
        assert_ne!(a, b);
    }

    #[test]
    fn calm_price_sits_near_discount_level() {
        let g = TraceGenerator::new(11, MarketModel::default());
        let h = SimDuration::from_hours(24 * 7);
        let trace = g.generate(key(), h);
        let od = key().instance_type().on_demand_price;
        let mean = trace.mean_price(SimTime::EPOCH, SimTime::EPOCH + h);
        // Mean is pulled up by spikes, but should stay well below
        // on-demand and above the floor.
        assert!(mean > 0.05 * od, "mean {mean} too low");
        assert!(mean < 0.8 * od, "mean {mean} too high vs on-demand {od}");
    }

    #[test]
    fn spikes_exceed_on_demand_occasionally() {
        let g = TraceGenerator::new(13, MarketModel::default());
        let h = SimDuration::from_hours(24 * 7);
        let trace = g.generate(key(), h);
        let od = key().instance_type().on_demand_price;
        let frac = trace.fraction_above(od, SimTime::EPOCH, SimTime::EPOCH + h);
        assert!(frac > 0.0, "a week of default market should show spikes");
        assert!(frac < 0.2, "spikes should be rare, got fraction {frac}");
    }

    #[test]
    fn volatile_spikes_more_than_calm() {
        let h = SimDuration::from_hours(24 * 14);
        let od = key().instance_type().on_demand_price;
        let calm = TraceGenerator::new(5, MarketModel::calm()).generate(key(), h);
        let wild = TraceGenerator::new(5, MarketModel::volatile()).generate(key(), h);
        let fc = calm.fraction_above(od, SimTime::EPOCH, SimTime::EPOCH + h);
        let fw = wild.fraction_above(od, SimTime::EPOCH, SimTime::EPOCH + h);
        assert!(
            fw > fc,
            "volatile ({fw}) should spike more than calm ({fc})"
        );
    }

    #[test]
    fn generate_set_covers_all_keys() {
        let g = TraceGenerator::new(3, MarketModel::default());
        let keys = catalog::paper_markets();
        let set = g.generate_set(&keys, SimDuration::from_hours(4));
        assert_eq!(set.len(), keys.len());
        for k in &keys {
            assert!(set.get(k).is_some());
        }
    }

    #[test]
    fn prices_always_positive() {
        let g = TraceGenerator::new(17, MarketModel::volatile());
        let trace = g.generate(key(), SimDuration::from_hours(24 * 30));
        assert!(trace.points().iter().all(|(_, p)| *p > 0.0));
    }
}
