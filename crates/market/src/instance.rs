//! Instance types, availability zones, and the default catalog.
//!
//! The paper's experiments use the EC2 c4 family (c4.xlarge with 4 vCPUs,
//! c4.2xlarge with 8 vCPUs) across the four US-EAST-1 availability zones,
//! and BidBrain's toy example also references m4 types. The catalog here
//! mirrors the January-2016-era US-EAST-1 on-demand prices.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A purchasable machine type.
///
/// `work_rate` follows the paper's ν convention: the work an instance
/// produces per unit time is proportional to its virtual core count
/// (Sec. 4.1, footnote 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// EC2-style type name, e.g. `"c4.2xlarge"`.
    pub name: &'static str,
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Memory in GiB.
    pub mem_gib: f64,
    /// Fixed on-demand price per instance-hour in dollars.
    pub on_demand_price: f64,
}

impl InstanceType {
    /// The work produced per hour by one instance of this type, in
    /// core-hours (the paper's ν, proportional to vCPU count).
    pub fn work_rate(&self) -> f64 {
        f64::from(self.vcpus)
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// An availability zone within the simulated region.
///
/// Spot prices for the same instance type move independently per zone,
/// which is what makes multi-market bidding profitable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Zone(pub u8);

impl Zone {
    /// The four zones of the simulated US-EAST-1-like region.
    pub const ALL: [Zone; 4] = [Zone(0), Zone(1), Zone(2), Zone(3)];
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like EC2 zone suffixes: us-east-1a, -1b, ...
        write!(f, "us-east-1{}", (b'a' + self.0) as char)
    }
}

/// Identifies one spot market: an (instance type, zone) pair.
///
/// The instance type is referenced by catalog index so the key stays
/// `Copy` and hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MarketKey {
    /// Index into [`catalog::all`].
    pub type_index: usize,
    /// Availability zone.
    pub zone: Zone,
}

impl MarketKey {
    /// Builds a key from a catalog index and zone.
    pub fn new(type_index: usize, zone: Zone) -> Self {
        MarketKey { type_index, zone }
    }

    /// Resolves the instance type from the default catalog.
    ///
    /// # Panics
    ///
    /// Panics if `type_index` is out of range for the catalog; keys built
    /// via [`catalog::find`] or enumeration are always in range.
    pub fn instance_type(&self) -> &'static InstanceType {
        &catalog::all()[self.type_index]
    }

    /// The `Display` rendering of this key, interned process-wide.
    ///
    /// Observability events carry market names on hot paths (price
    /// moves, grants, bid candidates); rendering through `Display` once
    /// per key and sharing the `Arc` keeps per-event cost to a refcount
    /// bump instead of a format-and-allocate.
    pub fn interned_name(&self) -> std::sync::Arc<str> {
        use std::collections::BTreeMap;
        use std::sync::{Arc, Mutex, OnceLock};
        static NAMES: OnceLock<Mutex<BTreeMap<MarketKey, Arc<str>>>> = OnceLock::new();
        let cache = NAMES.get_or_init(|| Mutex::new(BTreeMap::new()));
        let mut names = cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(
            names
                .entry(*self)
                .or_insert_with(|| self.to_string().into_boxed_str().into()),
        )
    }
}

impl fmt::Display for MarketKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.instance_type().name, self.zone)
    }
}

/// The built-in instance catalog.
pub mod catalog {
    use super::{InstanceType, MarketKey, Zone};

    /// Catalog entries, ordered; index is the `type_index` used by
    /// [`MarketKey`](super::MarketKey).
    const CATALOG: [InstanceType; 6] = [
        InstanceType {
            name: "c4.xlarge",
            vcpus: 4,
            mem_gib: 7.5,
            on_demand_price: 0.209,
        },
        InstanceType {
            name: "c4.2xlarge",
            vcpus: 8,
            mem_gib: 15.0,
            on_demand_price: 0.419,
        },
        InstanceType {
            name: "c4.4xlarge",
            vcpus: 16,
            mem_gib: 30.0,
            on_demand_price: 0.838,
        },
        InstanceType {
            name: "m4.xlarge",
            vcpus: 4,
            mem_gib: 16.0,
            on_demand_price: 0.215,
        },
        InstanceType {
            name: "m4.2xlarge",
            vcpus: 8,
            mem_gib: 32.0,
            on_demand_price: 0.431,
        },
        InstanceType {
            name: "r3.xlarge",
            vcpus: 4,
            mem_gib: 30.5,
            on_demand_price: 0.333,
        },
    ];

    /// All catalog entries.
    pub fn all() -> &'static [InstanceType] {
        &CATALOG
    }

    /// Looks up a type index by name.
    pub fn find(name: &str) -> Option<usize> {
        CATALOG.iter().position(|t| t.name == name)
    }

    /// Convenience: the catalog index of `c4.xlarge`.
    pub fn c4_xlarge() -> usize {
        0
    }

    /// Convenience: the catalog index of `c4.2xlarge`.
    pub fn c4_2xlarge() -> usize {
        1
    }

    /// Every (type, zone) market key over the whole catalog.
    pub fn all_markets() -> Vec<MarketKey> {
        let mut keys = Vec::new();
        for (i, _) in CATALOG.iter().enumerate() {
            for zone in Zone::ALL {
                keys.push(MarketKey::new(i, zone));
            }
        }
        keys
    }

    /// Market keys restricted to the two c4 types the paper evaluates.
    pub fn paper_markets() -> Vec<MarketKey> {
        let mut keys = Vec::new();
        for i in [c4_xlarge(), c4_2xlarge()] {
            for zone in Zone::ALL {
                keys.push(MarketKey::new(i, zone));
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup_by_name() {
        let idx = catalog::find("c4.2xlarge").expect("present");
        let t = &catalog::all()[idx];
        assert_eq!(t.vcpus, 8);
        assert!((t.on_demand_price - 0.419).abs() < 1e-9);
        assert!(catalog::find("z9.mega").is_none());
    }

    #[test]
    fn work_rate_proportional_to_cores() {
        let small = &catalog::all()[catalog::c4_xlarge()];
        let big = &catalog::all()[catalog::c4_2xlarge()];
        // Paper footnote 7: ν(c4.2xlarge) = 2 × ν(c4.xlarge).
        assert!((big.work_rate() - 2.0 * small.work_rate()).abs() < 1e-9);
    }

    #[test]
    fn market_key_display_names_type_and_zone() {
        let key = MarketKey::new(catalog::c4_xlarge(), Zone(2));
        assert_eq!(key.to_string(), "c4.xlarge@us-east-1c");
    }

    #[test]
    fn all_markets_covers_catalog_times_zones() {
        assert_eq!(catalog::all_markets().len(), catalog::all().len() * 4);
        assert_eq!(catalog::paper_markets().len(), 8);
    }
}
