//! Plain-text (CSV) import/export of price traces.
//!
//! Real deployments feed BidBrain from provider price-history dumps;
//! this module reads and writes the simple two-column format
//! `millis_since_epoch,price` so traces can be captured from one run,
//! inspected with standard tools, and replayed in another — without any
//! extra dependencies.

use std::fmt::Write as _;

use proteus_simtime::SimTime;

use crate::trace::PriceTrace;

/// Errors raised while parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCsvError {
    /// A line did not have exactly two comma-separated fields.
    BadShape {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// The points were rejected by [`PriceTrace::from_points`]
    /// (unsorted, empty, missing the epoch point, or non-positive
    /// prices).
    InvalidTrace,
}

impl std::fmt::Display for TraceCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCsvError::BadShape { line } => {
                write!(f, "line {line}: expected `millis,price`")
            }
            TraceCsvError::BadNumber { line } => {
                write!(f, "line {line}: unparsable number")
            }
            TraceCsvError::InvalidTrace => write!(f, "points do not form a valid trace"),
        }
    }
}

impl std::error::Error for TraceCsvError {}

/// Serializes a trace to CSV (`millis,price` per change point, with a
/// header line).
pub fn trace_to_csv(trace: &PriceTrace) -> String {
    let mut out = String::from("millis,price\n");
    for (t, p) in trace.points() {
        let _ = writeln!(out, "{},{}", t.as_millis(), p);
    }
    out
}

/// Parses a trace from the CSV produced by [`trace_to_csv`]. Blank
/// lines and a leading header are tolerated.
pub fn trace_from_csv(csv: &str) -> Result<PriceTrace, TraceCsvError> {
    let mut points = Vec::new();
    for (idx, raw) in csv.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || (idx == 0 && line.starts_with("millis")) {
            continue;
        }
        let mut fields = line.split(',');
        let (Some(ts), Some(price), None) = (fields.next(), fields.next(), fields.next()) else {
            return Err(TraceCsvError::BadShape { line: idx + 1 });
        };
        let ts: u64 = ts
            .trim()
            .parse()
            .map_err(|_| TraceCsvError::BadNumber { line: idx + 1 })?;
        let price: f64 = price
            .trim()
            .parse()
            .map_err(|_| TraceCsvError::BadNumber { line: idx + 1 })?;
        points.push((SimTime::from_millis(ts), price));
    }
    PriceTrace::from_points(points).ok_or(TraceCsvError::InvalidTrace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{MarketModel, TraceGenerator};
    use crate::instance::{catalog, MarketKey, Zone};
    use proteus_simtime::SimDuration;

    #[test]
    fn round_trips_a_generated_trace() {
        let gen = TraceGenerator::new(9, MarketModel::default());
        let key = MarketKey::new(catalog::c4_xlarge(), Zone(0));
        let trace = gen.generate(key, SimDuration::from_hours(24 * 3));
        let csv = trace_to_csv(&trace);
        let back = trace_from_csv(&csv).expect("round trip");
        assert_eq!(trace, back);
    }

    #[test]
    fn tolerates_header_and_blank_lines() {
        let csv = "millis,price\n\n0,0.05\n3600000,0.10\n\n";
        let t = trace_from_csv(csv).expect("parse");
        assert_eq!(t.price_at(SimTime::from_hours(2)), 0.10);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        assert_eq!(
            trace_from_csv("millis,price\n0,0.05\nnot-a-line\n"),
            Err(TraceCsvError::BadShape { line: 3 })
        );
        assert_eq!(
            trace_from_csv("0,0.05\n5,abc\n"),
            Err(TraceCsvError::BadNumber { line: 2 })
        );
        assert_eq!(
            trace_from_csv("1000,0.05\n"), // Missing the epoch point.
            Err(TraceCsvError::InvalidTrace)
        );
        assert_eq!(trace_from_csv(""), Err(TraceCsvError::InvalidTrace));
    }
}
