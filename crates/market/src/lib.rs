//! A simulated dynamic resource market with EC2 spot semantics.
//!
//! The Proteus paper (EuroSys 2017) exploits Amazon EC2's spot market:
//! machines rent at a steep discount but can be revoked whenever the
//! market price rises above the customer's bid. This crate reproduces the
//! market *mechanisms* BidBrain reasons about (Sec. 2.2 of the paper):
//!
//! * customers bid per instance type and zone; they pay the **market**
//!   price, not their bid;
//! * billing is at hourly granularity, with the price fixed at the start of
//!   each billing hour;
//! * if the market price rises above the bid, the instances are revoked
//!   after a two-minute warning and the current partial hour is refunded
//!   ("free compute");
//! * voluntary termination forfeits the remainder of the paid hour;
//! * a bid cannot be changed once the resource is granted.
//!
//! Since real 2016 AWS price traces are unavailable offline, the
//! [`gen`] module synthesizes price traces with the qualitative character
//! of the paper's Fig. 3 — long stretches of cheap, mildly-jittering prices
//! punctuated by sharp spikes above the on-demand price — and the
//! [`trace`] module also supports fully scripted traces for tests.
//!
//! [`gce`] models Google Compute Engine preemptible instances (fixed 70 %
//! discount, 30-second warning, 24-hour lifetime) to demonstrate that the
//! allocation machinery is not EC2-specific.
//!
//! The [`fault`] module adds seed-deterministic provider-side fault
//! regimes (capacity droughts, API throttling, boot delays, infant
//! mortality); all are off by default.

// Fault- and refusal-reachable paths must return typed errors; the few
// retained `expect`s document real invariants at their use sites.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod analytics;
pub mod billing;
pub mod error;
pub mod fault;
pub mod gce;
pub mod gen;
pub mod instance;
pub mod io;
pub mod provider;
pub mod spot;
pub mod trace;

pub use analytics::{find_spikes, market_stats, MarketStats, Spike};
pub use billing::{BillingAccount, LedgerEntry, LedgerKind, UsageBreakdown};
pub use error::MarketError;
pub use fault::{
    BootDelayRule, CapacityRule, InfantMortalityRule, MarketFaultPlan, MarketFaultStats, TenantId,
    ThrottleRule,
};
pub use gen::{MarketModel, TraceGenerator};
pub use instance::{catalog, InstanceType, MarketKey, Zone};
pub use io::{trace_from_csv, trace_to_csv, TraceCsvError};
pub use provider::{
    obs_keys, AllocationId, CloudProvider, ProviderEvent, SpotAllocation, SpotGrant,
};
pub use trace::{PriceTrace, TraceSet};

use proteus_simtime::SimDuration;

/// Warning lead time EC2 has provided before spot revocations since 2015.
pub const EC2_EVICTION_WARNING: SimDuration = SimDuration::from_secs(120);
