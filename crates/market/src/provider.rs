//! The simulated cloud provider: grants, bills, warns, and evicts.
//!
//! [`CloudProvider`] is the single authority the rest of the workspace
//! talks to. It replays a [`TraceSet`] of spot prices, grants spot and
//! on-demand allocations, charges a [`BillingAccount`] at hourly
//! granularity, and — when a market price crosses above an allocation's
//! bid — issues a two-minute [`ProviderEvent::EvictionWarning`] followed by
//! [`ProviderEvent::Evicted`] with the current hour refunded.
//!
//! Time is advanced explicitly with [`CloudProvider::advance_to`], which
//! returns every event that fired in order; the caller (BidBrain's driver
//! or the cost simulator) decides how to react.

use std::collections::BTreeMap;
use std::fmt;

use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::billing::{BillingAccount, LedgerEntry, LedgerKind};
use crate::error::MarketError;
use crate::instance::MarketKey;
use crate::spot::{SpotLease, SpotState};
use crate::trace::TraceSet;

/// Identifies one allocation (spot or on-demand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AllocationId(pub u64);

impl fmt::Display for AllocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc-{}", self.0)
    }
}

/// A read-only view of a live spot allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotAllocation {
    /// Stable identifier.
    pub id: AllocationId,
    /// Market the instances belong to.
    pub market: MarketKey,
    /// Instance count.
    pub count: u32,
    /// Immutable bid per instance-hour.
    pub bid: f64,
    /// Grant instant (billing anchor).
    pub granted_at: SimTime,
    /// Start of the current billing hour.
    pub hour_start: SimTime,
    /// Whether an eviction warning is outstanding.
    pub warned: bool,
    /// When the outstanding warning will evict the instances, if warned.
    pub evict_at: Option<SimTime>,
}

/// An on-demand allocation (never evicted by the provider).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct OnDemandLease {
    id: AllocationId,
    market: MarketKey,
    count: u32,
    granted_at: SimTime,
    hour_start: SimTime,
}

/// Events produced while advancing simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderEvent {
    /// The market price crossed above the bid; the allocation terminates at
    /// `evict_at` (warning lead time later).
    EvictionWarning {
        /// Affected allocation.
        allocation: AllocationId,
        /// When the instances will disappear.
        evict_at: SimTime,
    },
    /// The allocation's instances were revoked and the current billing
    /// hour refunded.
    Evicted {
        /// Affected allocation.
        allocation: AllocationId,
    },
    /// A new billing hour started (and was charged) for an allocation.
    HourCharged {
        /// Affected allocation.
        allocation: AllocationId,
        /// Total dollars charged for the hour across all instances.
        amount: f64,
    },
}

/// The simulated provider.
///
/// The trace set is held as a [`Cow`](std::borrow::Cow): pass a
/// `&TraceSet` to share one price history across many providers (the
/// cost-study engine runs thousands of simulations against a single
/// generated history) or an owned `TraceSet` for a self-contained
/// provider.
pub struct CloudProvider<'a> {
    traces: std::borrow::Cow<'a, TraceSet>,
    now: SimTime,
    next_id: u64,
    spot: BTreeMap<AllocationId, SpotLease>,
    on_demand: BTreeMap<AllocationId, OnDemandLease>,
    account: BillingAccount,
    warning_lead: SimDuration,
}

impl<'a> CloudProvider<'a> {
    /// Creates a provider over the given price traces (owned or
    /// borrowed), using the EC2 two-minute eviction warning.
    pub fn new(traces: impl Into<std::borrow::Cow<'a, TraceSet>>) -> Self {
        Self::with_warning_lead(traces, crate::EC2_EVICTION_WARNING)
    }

    /// Creates a provider with a custom warning lead (e.g. 30 s for a
    /// GCE-style provider, or zero to model warning-less revocation).
    pub fn with_warning_lead(
        traces: impl Into<std::borrow::Cow<'a, TraceSet>>,
        warning_lead: SimDuration,
    ) -> Self {
        CloudProvider {
            traces: traces.into(),
            now: SimTime::EPOCH,
            next_id: 0,
            spot: BTreeMap::new(),
            on_demand: BTreeMap::new(),
            account: BillingAccount::new(),
            warning_lead,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The spot price of `market` at the current time.
    pub fn spot_price(&self, market: MarketKey) -> Result<f64, MarketError> {
        self.spot_price_at(market, self.now)
    }

    /// The spot price of `market` at an arbitrary instant.
    pub fn spot_price_at(&self, market: MarketKey, t: SimTime) -> Result<f64, MarketError> {
        self.traces
            .get(&market)
            .map(|trace| trace.price_at(t))
            .ok_or(MarketError::UnknownMarket(market))
    }

    /// The registered price traces (read-only; used by β estimation).
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// The billing account.
    pub fn account(&self) -> &BillingAccount {
        &self.account
    }

    /// Read-only views of all live spot allocations, in id order.
    pub fn spot_allocations(&self) -> Vec<SpotAllocation> {
        self.spot
            .values()
            .filter(|l| l.is_live())
            .map(|l| SpotAllocation {
                id: l.id,
                market: l.market,
                count: l.count,
                bid: l.bid,
                granted_at: l.granted_at,
                hour_start: l.hour_start,
                warned: l.is_warned(),
                evict_at: match l.state {
                    SpotState::WarningIssued { evict_at } => Some(evict_at),
                    _ => None,
                },
            })
            .collect()
    }

    /// Look up one live spot allocation.
    pub fn spot_allocation(&self, id: AllocationId) -> Option<SpotAllocation> {
        self.spot_allocations().into_iter().find(|a| a.id == id)
    }

    /// Total instances currently live across spot and on-demand.
    pub fn live_instance_count(&self) -> u32 {
        let spot: u32 = self
            .spot
            .values()
            .filter(|l| l.is_live())
            .map(|l| l.count)
            .sum();
        let od: u32 = self.on_demand.values().map(|l| l.count).sum();
        spot + od
    }

    /// Places a spot bid: `count` instances in `market` at `bid` dollars
    /// per instance-hour.
    ///
    /// Grants immediately if the bid is at or above the current market
    /// price; the first billing hour is charged at the market price.
    pub fn request_spot(
        &mut self,
        market: MarketKey,
        count: u32,
        bid: f64,
    ) -> Result<AllocationId, MarketError> {
        if count == 0 {
            return Err(MarketError::EmptyRequest);
        }
        let price = self.spot_price(market)?;
        if bid < price {
            return Err(MarketError::BidBelowMarket {
                market,
                bid,
                market_price: price,
            });
        }
        let id = self.fresh_id();
        let charge = price * f64::from(count);
        self.account.record(LedgerEntry {
            time: self.now,
            allocation: id,
            kind: LedgerKind::SpotHour,
            amount: charge,
            instances: count,
        });
        self.spot
            .insert(id, SpotLease::new(id, market, count, bid, self.now, charge));
        Ok(id)
    }

    /// Provisions `count` on-demand instances in `market` (charged the
    /// fixed on-demand price each hour; never evicted by the provider).
    pub fn request_on_demand(
        &mut self,
        market: MarketKey,
        count: u32,
    ) -> Result<AllocationId, MarketError> {
        if count == 0 {
            return Err(MarketError::EmptyRequest);
        }
        let id = self.fresh_id();
        let price = market.instance_type().on_demand_price;
        self.account.record(LedgerEntry {
            time: self.now,
            allocation: id,
            kind: LedgerKind::OnDemandHour,
            amount: price * f64::from(count),
            instances: count,
        });
        self.on_demand.insert(
            id,
            OnDemandLease {
                id,
                market,
                count,
                granted_at: self.now,
                hour_start: self.now,
            },
        );
        Ok(id)
    }

    /// Voluntarily terminates an allocation (spot or on-demand).
    ///
    /// The current billing hour has already been paid and is forfeited;
    /// usage up to `now` is recorded as paid.
    pub fn terminate(&mut self, id: AllocationId) -> Result<(), MarketError> {
        if let Some(lease) = self.spot.remove(&id) {
            if !lease.is_live() {
                return Err(MarketError::UnknownAllocation(id));
            }
            // Removal from the registry is the terminal state; usage up
            // to now was paid for.
            let used = self.now.since(lease.hour_start).as_hours_f64();
            self.account.add_spot_usage(used * f64::from(lease.count));
            return Ok(());
        }
        if let Some(lease) = self.on_demand.remove(&id) {
            let used = self.now.since(lease.hour_start).as_hours_f64();
            self.account
                .add_on_demand_usage(used * f64::from(lease.count));
            return Ok(());
        }
        Err(MarketError::UnknownAllocation(id))
    }

    /// Advances simulated time to `target`, processing hour boundaries,
    /// bid crossings, warnings, and evictions in order.
    ///
    /// Returns every event that fired, tagged with its fire time, in
    /// non-decreasing time order.
    pub fn advance_to(
        &mut self,
        target: SimTime,
    ) -> Result<Vec<(SimTime, ProviderEvent)>, MarketError> {
        if target < self.now {
            return Err(MarketError::TimeWentBackwards);
        }
        let mut events = Vec::new();
        // Process one earliest pending happening at a time until nothing
        // fires at or before `target`.
        loop {
            let next = self.next_happening(target);
            match next {
                Some((t, h)) => {
                    self.now = t;
                    self.apply_happening(t, h, &mut events);
                }
                None => break,
            }
        }
        self.now = target;
        Ok(events)
    }

    fn fresh_id(&mut self) -> AllocationId {
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        id
    }

    /// The earliest internal happening at or before `target`, if any.
    fn next_happening(&self, target: SimTime) -> Option<(SimTime, Happening)> {
        let mut best: Option<(SimTime, Happening)> = None;
        let mut consider = |t: SimTime, h: Happening| {
            if t > target {
                return;
            }
            match &best {
                Some((bt, _)) if *bt <= t => {}
                _ => best = Some((t, h)),
            }
        };

        for lease in self.spot.values().filter(|l| l.is_live()) {
            // Scheduled eviction (if warned).
            if let SpotState::WarningIssued { evict_at } = lease.state {
                consider(evict_at, Happening::Evict(lease.id));
                // A warned lease no longer bills new hours or crosses.
                continue;
            }
            // Next hour boundary.
            consider(lease.hour_end(), Happening::SpotHour(lease.id));
            // Next bid crossing. Search from `now` up to the earlier of
            // the target and the hour end (crossings after the hour end
            // are found after the hour boundary is processed).
            if let Some(trace) = self.traces.get(&lease.market) {
                let horizon = target.min(lease.hour_end());
                if let Some(ct) = trace.first_crossing_above(lease.bid, self.now, horizon) {
                    consider(ct, Happening::Crossing(lease.id));
                }
            }
        }
        for lease in self.on_demand.values() {
            let hour_end = lease.hour_start + SimDuration::from_hours(1);
            consider(hour_end, Happening::OnDemandHour(lease.id));
        }
        best
    }

    fn apply_happening(
        &mut self,
        t: SimTime,
        h: Happening,
        events: &mut Vec<(SimTime, ProviderEvent)>,
    ) {
        match h {
            Happening::SpotHour(id) => {
                let market;
                let count;
                {
                    let lease = self.spot.get_mut(&id).expect("lease exists");
                    // The completed hour was fully used and paid.
                    self.account.add_spot_usage(f64::from(lease.count));
                    lease.hour_start = t;
                    market = lease.market;
                    count = lease.count;
                }
                let price = self
                    .spot_price_at(market, t)
                    .expect("trace existed at grant time");
                let charge = price * f64::from(count);
                self.account.record(LedgerEntry {
                    time: t,
                    allocation: id,
                    kind: LedgerKind::SpotHour,
                    amount: charge,
                    instances: count,
                });
                if let Some(lease) = self.spot.get_mut(&id) {
                    lease.current_hour_charge = charge;
                }
                events.push((
                    t,
                    ProviderEvent::HourCharged {
                        allocation: id,
                        amount: charge,
                    },
                ));
            }
            Happening::OnDemandHour(id) => {
                let lease = self.on_demand.get_mut(&id).expect("lease exists");
                self.account.add_on_demand_usage(f64::from(lease.count));
                lease.hour_start = t;
                let price = lease.market.instance_type().on_demand_price;
                let charge = price * f64::from(lease.count);
                let count = lease.count;
                self.account.record(LedgerEntry {
                    time: t,
                    allocation: id,
                    kind: LedgerKind::OnDemandHour,
                    amount: charge,
                    instances: count,
                });
                events.push((
                    t,
                    ProviderEvent::HourCharged {
                        allocation: id,
                        amount: charge,
                    },
                ));
            }
            Happening::Crossing(id) => {
                let lease = self.spot.get_mut(&id).expect("lease exists");
                let evict_at = t + self.warning_lead;
                lease.state = SpotState::WarningIssued { evict_at };
                events.push((
                    t,
                    ProviderEvent::EvictionWarning {
                        allocation: id,
                        evict_at,
                    },
                ));
            }
            Happening::Evict(id) => {
                let lease = self.spot.remove(&id).expect("lease exists");
                // Refund the current billing hour; its usage was free.
                self.account.record(LedgerEntry {
                    time: t,
                    allocation: id,
                    kind: LedgerKind::EvictionRefund,
                    amount: -lease.current_hour_charge,
                    instances: lease.count,
                });
                let used = t.since(lease.hour_start).as_hours_f64();
                self.account.add_free_usage(used * f64::from(lease.count));
                events.push((t, ProviderEvent::Evicted { allocation: id }));
            }
        }
    }
}

/// Internal happenings the provider steps through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Happening {
    /// A spot allocation reached a billing-hour boundary.
    SpotHour(AllocationId),
    /// An on-demand allocation reached a billing-hour boundary.
    OnDemandHour(AllocationId),
    /// A market price crossed above a lease's bid.
    Crossing(AllocationId),
    /// A warned lease reached its termination instant.
    Evict(AllocationId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{catalog, Zone};
    use crate::trace::PriceTrace;

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    fn provider_with(points: Vec<(SimTime, f64)>) -> CloudProvider<'static> {
        let mut set = TraceSet::new();
        set.insert(key(), PriceTrace::from_points(points).expect("trace"));
        CloudProvider::new(set)
    }

    #[test]
    fn grant_charges_first_hour_at_market_price() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let id = p.request_spot(key(), 4, 0.10).expect("granted");
        assert!((p.account().total_cost() - 0.20).abs() < 1e-12);
        assert_eq!(p.spot_allocation(id).unwrap().count, 4);
    }

    #[test]
    fn bid_below_market_is_rejected() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.50)]);
        let err = p.request_spot(key(), 1, 0.10).unwrap_err();
        assert!(matches!(err, MarketError::BidBelowMarket { .. }));
        assert_eq!(p.account().total_cost(), 0.0);
    }

    #[test]
    fn zero_count_requests_rejected() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        assert_eq!(
            p.request_spot(key(), 0, 1.0),
            Err(MarketError::EmptyRequest)
        );
        assert_eq!(
            p.request_on_demand(key(), 0),
            Err(MarketError::EmptyRequest)
        );
    }

    #[test]
    fn hour_boundaries_recharge_at_current_price() {
        let mut p = provider_with(vec![
            (SimTime::EPOCH, 0.05),
            (SimTime::from_millis(30 * 60 * 1000), 0.08),
        ]);
        let id = p.request_spot(key(), 1, 0.10).expect("granted");
        let events = p.advance_to(SimTime::from_hours(2)).expect("advance");
        // Two hour boundaries at t=1h (price 0.08) and t=2h (price 0.08).
        let charges: Vec<f64> = events
            .iter()
            .filter_map(|(_, e)| match e {
                ProviderEvent::HourCharged { allocation, amount } if *allocation == id => {
                    Some(*amount)
                }
                _ => None,
            })
            .collect();
        assert_eq!(charges.len(), 2);
        assert!((charges[0] - 0.08).abs() < 1e-12);
        // Total: 0.05 (grant) + 0.08 + 0.08.
        assert!((p.account().total_cost() - 0.21).abs() < 1e-12);
        // Two full spot hours were used and paid.
        assert!((p.account().usage().spot_paid_hours - 2.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_triggers_warning_then_eviction_with_refund() {
        // Price jumps above the bid 30 minutes in.
        let cross = SimTime::EPOCH + SimDuration::from_mins(30);
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05), (cross, 0.50)]);
        let id = p.request_spot(key(), 2, 0.10).expect("granted");
        let events = p.advance_to(SimTime::from_hours(1)).expect("advance");

        let warn = events
            .iter()
            .find(|(_, e)| matches!(e, ProviderEvent::EvictionWarning { .. }))
            .expect("warning fired");
        assert_eq!(warn.0, cross);
        let evict = events
            .iter()
            .find(|(_, e)| matches!(e, ProviderEvent::Evicted { .. }))
            .expect("eviction fired");
        assert_eq!(evict.0, cross + crate::EC2_EVICTION_WARNING);

        // Grant charged 2 × 0.05 = 0.10, fully refunded: net zero.
        assert!(p.account().total_cost().abs() < 1e-12);
        // 32 minutes of free usage × 2 instances.
        let free = p.account().usage().free_hours;
        assert!((free - 2.0 * (32.0 / 60.0)).abs() < 1e-9, "free={free}");
        assert!(p.spot_allocation(id).is_none());
    }

    #[test]
    fn warned_lease_does_not_recharge_next_hour() {
        // Cross 59 minutes in: warning at :59, eviction at 1:01, which is
        // after the hour boundary — but no new hour should be charged.
        let cross = SimTime::EPOCH + SimDuration::from_mins(59);
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05), (cross, 0.50)]);
        let _id = p.request_spot(key(), 1, 0.10).expect("granted");
        let events = p.advance_to(SimTime::from_hours(2)).expect("advance");
        assert!(
            !events
                .iter()
                .any(|(_, e)| matches!(e, ProviderEvent::HourCharged { .. })),
            "no hour recharge after a warning: {events:?}"
        );
        // Net cost: first hour charged then refunded → zero.
        assert!(p.account().total_cost().abs() < 1e-12);
    }

    #[test]
    fn voluntary_termination_keeps_charge_and_records_paid_usage() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let id = p.request_spot(key(), 1, 0.10).expect("granted");
        p.advance_to(SimTime::EPOCH + SimDuration::from_mins(30))
            .expect("advance");
        p.terminate(id).expect("terminate");
        assert!((p.account().total_cost() - 0.05).abs() < 1e-12);
        assert!((p.account().usage().spot_paid_hours - 0.5).abs() < 1e-9);
        assert!(p.terminate(id).is_err(), "double terminate rejected");
    }

    #[test]
    fn on_demand_survives_price_spikes() {
        let cross = SimTime::EPOCH + SimDuration::from_mins(10);
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05), (cross, 9.0)]);
        let id = p.request_on_demand(key(), 3).expect("granted");
        let events = p.advance_to(SimTime::from_hours(1)).expect("advance");
        assert!(!events
            .iter()
            .any(|(_, e)| matches!(e, ProviderEvent::Evicted { .. })));
        // Hour boundary recharges 3 × on-demand price.
        let od = key().instance_type().on_demand_price;
        assert!((p.account().total_cost() - 2.0 * 3.0 * od).abs() < 1e-9);
        p.terminate(id).expect("terminate");
    }

    #[test]
    fn time_cannot_go_backwards() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        p.advance_to(SimTime::from_hours(1)).expect("advance");
        assert_eq!(
            p.advance_to(SimTime::EPOCH),
            Err(MarketError::TimeWentBackwards)
        );
    }

    #[test]
    fn unknown_market_is_an_error() {
        let p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let missing = MarketKey::new(catalog::c4_2xlarge(), Zone(3));
        assert!(matches!(
            p.spot_price(missing),
            Err(MarketError::UnknownMarket(_))
        ));
    }

    #[test]
    fn live_instance_count_sums_both_kinds() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        p.request_spot(key(), 4, 0.10).expect("spot");
        p.request_on_demand(key(), 3).expect("od");
        assert_eq!(p.live_instance_count(), 7);
    }

    #[test]
    fn crossing_after_hour_boundary_is_found_in_later_hour() {
        // Price stays low for 1.5 hours, then spikes. The crossing is in
        // billing hour 1, after a boundary recharge.
        let cross = SimTime::EPOCH + SimDuration::from_mins(90);
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05), (cross, 0.50)]);
        let _ = p.request_spot(key(), 1, 0.10).expect("granted");
        let events = p.advance_to(SimTime::from_hours(3)).expect("advance");
        let kinds: Vec<&ProviderEvent> = events.iter().map(|(_, e)| e).collect();
        assert!(matches!(kinds[0], ProviderEvent::HourCharged { .. }));
        assert!(matches!(kinds[1], ProviderEvent::EvictionWarning { .. }));
        assert!(matches!(kinds[2], ProviderEvent::Evicted { .. }));
        // Hour 0 paid (0.05), hour 1 charged then refunded → total 0.05.
        assert!((p.account().total_cost() - 0.05).abs() < 1e-12);
        // Hour 0 fully paid usage; 32 minutes free in hour 1.
        assert!((p.account().usage().spot_paid_hours - 1.0).abs() < 1e-12);
    }
}
