//! The simulated cloud provider: grants, bills, warns, and evicts.
//!
//! [`CloudProvider`] is the single authority the rest of the workspace
//! talks to. It replays a [`TraceSet`] of spot prices, grants spot and
//! on-demand allocations, charges a [`BillingAccount`] at hourly
//! granularity, and — when a market price crosses above an allocation's
//! bid — issues a two-minute [`ProviderEvent::EvictionWarning`] followed by
//! [`ProviderEvent::Evicted`] with the current hour refunded.
//!
//! Time is advanced explicitly with [`CloudProvider::advance_to`], which
//! returns every event that fired in order; the caller (BidBrain's driver
//! or the cost simulator) decides how to react.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use proteus_obs::{Event, MarketEvent, Recorder};
use proteus_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::billing::{BillingAccount, LedgerEntry, LedgerKind};
use crate::error::MarketError;
use crate::fault::{FaultState, MarketFaultPlan, MarketFaultStats, TenantId};
use crate::instance::MarketKey;
use crate::spot::{SpotLease, SpotState};
use crate::trace::TraceSet;

/// Metrics-registry counters mirroring [`MarketFaultStats`], so chaos
/// suites can assert on recorded totals instead of re-deriving them
/// (and totals survive a plan being replaced mid-run).
pub mod obs_keys {
    /// Mirrors [`super::MarketFaultStats::throttled`].
    pub const THROTTLED: &str = "market.faults.throttled";
    /// Mirrors [`super::MarketFaultStats::capacity_refusals`].
    pub const CAPACITY_REFUSALS: &str = "market.faults.capacity_refusals";
    /// Mirrors [`super::MarketFaultStats::partial_grants`].
    pub const PARTIAL_GRANTS: &str = "market.faults.partial_grants";
    /// Mirrors [`super::MarketFaultStats::launch_failures`].
    pub const LAUNCH_FAILURES: &str = "market.faults.launch_failures";
    /// Mirrors [`super::MarketFaultStats::infant_deaths`].
    pub const INFANT_DEATHS: &str = "market.faults.infant_deaths";
    /// Spot grants issued (full or partial).
    pub const SPOT_GRANTS: &str = "market.spot_grants";
    /// On-demand grants issued.
    pub const ON_DEMAND_GRANTS: &str = "market.on_demand_grants";
    /// Provider-initiated evictions (warned or infant death).
    pub const EVICTIONS: &str = "market.evictions";
}

/// Identifies one allocation (spot or on-demand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AllocationId(pub u64);

impl fmt::Display for AllocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc-{}", self.0)
    }
}

/// A read-only view of a live spot allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotAllocation {
    /// Stable identifier.
    pub id: AllocationId,
    /// Market the instances belong to.
    pub market: MarketKey,
    /// Instance count.
    pub count: u32,
    /// Immutable bid per instance-hour.
    pub bid: f64,
    /// Grant instant (billing anchor).
    pub granted_at: SimTime,
    /// Start of the current billing hour.
    pub hour_start: SimTime,
    /// Whether an eviction warning is outstanding.
    pub warned: bool,
    /// When the outstanding warning will evict the instances, if warned.
    pub evict_at: Option<SimTime>,
    /// Whether the instances are still booting (granted, not yet
    /// usable, nothing billed) — only under a boot-delay fault regime.
    pub booting: bool,
    /// When the instances become (or became) usable; equals
    /// `granted_at` unless the launch was delayed.
    pub usable_at: SimTime,
}

/// What a successful [`CloudProvider::request_spot`] granted.
///
/// Under fault regimes a grant can be **partial** (`granted <
/// requested`, a capacity cap bound) or **delayed** (`usable_at` after
/// the request time; billing starts at launch). With no fault plan
/// installed every grant is full and immediate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotGrant {
    /// The allocation created.
    pub id: AllocationId,
    /// Instances asked for.
    pub requested: u32,
    /// Instances actually granted.
    pub granted: u32,
    /// When the instances become usable (the request time unless a
    /// boot-delay regime deferred the launch).
    pub usable_at: SimTime,
}

impl SpotGrant {
    /// Whether the market granted fewer instances than requested.
    pub fn is_partial(&self) -> bool {
        self.granted < self.requested
    }
}

/// An on-demand allocation (never evicted by the provider).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct OnDemandLease {
    id: AllocationId,
    market: MarketKey,
    count: u32,
    granted_at: SimTime,
    hour_start: SimTime,
}

/// Events produced while advancing simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderEvent {
    /// The market price crossed above the bid; the allocation terminates at
    /// `evict_at` (warning lead time later).
    EvictionWarning {
        /// Affected allocation.
        allocation: AllocationId,
        /// When the instances will disappear.
        evict_at: SimTime,
    },
    /// The allocation's instances were revoked and the current billing
    /// hour refunded.
    Evicted {
        /// Affected allocation.
        allocation: AllocationId,
    },
    /// A new billing hour started (and was charged) for an allocation.
    HourCharged {
        /// Affected allocation.
        allocation: AllocationId,
        /// Total dollars charged for the hour across all instances.
        amount: f64,
    },
    /// A boot-delayed allocation's instances came up; billing starts
    /// now (only emitted under a boot-delay fault regime).
    Launched {
        /// Affected allocation.
        allocation: AllocationId,
    },
    /// The market price crossed above the bid while the instances were
    /// still booting: the launch is aborted and nothing was billed
    /// (only emitted under a boot-delay fault regime).
    LaunchFailed {
        /// Affected allocation.
        allocation: AllocationId,
    },
}

/// The simulated provider.
///
/// The trace set is held as a [`Cow`](std::borrow::Cow): pass a
/// `&TraceSet` to share one price history across many providers (the
/// cost-study engine runs thousands of simulations against a single
/// generated history) or an owned `TraceSet` for a self-contained
/// provider.
pub struct CloudProvider<'a> {
    traces: std::borrow::Cow<'a, TraceSet>,
    now: SimTime,
    next_id: u64,
    spot: BTreeMap<AllocationId, SpotLease>,
    on_demand: BTreeMap<AllocationId, OnDemandLease>,
    account: BillingAccount,
    warning_lead: SimDuration,
    /// Installed fault regimes; `None` (the default) means a pristine
    /// market: every request granted in full, immediately, forever.
    faults: Option<FaultState>,
    /// Observability sink; `None` (the default) records nothing and
    /// costs one branch per decision point. Recording is passive — it
    /// never changes a grant, a draw, or a bill.
    obs: Option<Arc<Recorder>>,
}

impl<'a> CloudProvider<'a> {
    /// Creates a provider over the given price traces (owned or
    /// borrowed), using the EC2 two-minute eviction warning.
    pub fn new(traces: impl Into<std::borrow::Cow<'a, TraceSet>>) -> Self {
        Self::with_warning_lead(traces, crate::EC2_EVICTION_WARNING)
    }

    /// Creates a provider with a custom warning lead (e.g. 30 s for a
    /// GCE-style provider, or zero to model warning-less revocation).
    pub fn with_warning_lead(
        traces: impl Into<std::borrow::Cow<'a, TraceSet>>,
        warning_lead: SimDuration,
    ) -> Self {
        CloudProvider {
            traces: traces.into(),
            now: SimTime::EPOCH,
            next_id: 0,
            spot: BTreeMap::new(),
            on_demand: BTreeMap::new(),
            account: BillingAccount::new(),
            warning_lead,
            faults: None,
            obs: None,
        }
    }

    /// Attaches an observability recorder: market events (grants,
    /// refusals, evictions, billing line items) are appended to its
    /// timeline and fault-regime activity mirrors into its counters
    /// (see [`obs_keys`]).
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        self.obs = Some(rec);
    }

    /// Emits one market event stamped with the provider's clock.
    fn obs_event(&self, t: SimTime, ev: MarketEvent) {
        if let Some(rec) = self.obs.as_deref() {
            rec.record(t, Event::Market(ev));
        }
    }

    /// Bumps a recorder counter (no-op without a recorder).
    fn obs_count(&self, name: &'static str) {
        if let Some(rec) = self.obs.as_deref() {
            rec.counter_add(name, 1);
        }
    }

    /// Installs a fault plan (capacity caps, throttling, boot delay,
    /// infant mortality). Replaces any existing plan and resets its
    /// draw stream and counters.
    pub fn set_fault_plan(&mut self, plan: MarketFaultPlan) {
        self.faults = Some(FaultState::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&MarketFaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Fault-regime activity counters, if a plan is installed.
    pub fn fault_stats(&self) -> Option<&MarketFaultStats> {
        self.faults.as_ref().map(|f| &f.stats)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The spot price of `market` at the current time.
    pub fn spot_price(&self, market: MarketKey) -> Result<f64, MarketError> {
        self.spot_price_at(market, self.now)
    }

    /// The spot price of `market` at an arbitrary instant.
    pub fn spot_price_at(&self, market: MarketKey, t: SimTime) -> Result<f64, MarketError> {
        self.traces
            .get(&market)
            .map(|trace| trace.price_at(t))
            .ok_or(MarketError::UnknownMarket(market))
    }

    /// The registered price traces (read-only; used by β estimation).
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// The billing account.
    pub fn account(&self) -> &BillingAccount {
        &self.account
    }

    /// Read-only views of all live spot allocations, in id order.
    pub fn spot_allocations(&self) -> Vec<SpotAllocation> {
        self.spot
            .values()
            .filter(|l| l.is_live())
            .map(|l| SpotAllocation {
                id: l.id,
                market: l.market,
                count: l.count,
                bid: l.bid,
                granted_at: l.granted_at,
                hour_start: l.hour_start,
                warned: l.is_warned(),
                evict_at: match l.state {
                    SpotState::WarningIssued { evict_at } => Some(evict_at),
                    _ => None,
                },
                booting: l.is_booting(),
                usable_at: l.usable_at,
            })
            .collect()
    }

    /// Look up one live spot allocation.
    pub fn spot_allocation(&self, id: AllocationId) -> Option<SpotAllocation> {
        self.spot_allocations().into_iter().find(|a| a.id == id)
    }

    /// Total instances currently live across spot and on-demand.
    pub fn live_instance_count(&self) -> u32 {
        let spot: u32 = self
            .spot
            .values()
            .filter(|l| l.is_live())
            .map(|l| l.count)
            .sum();
        let od: u32 = self.on_demand.values().map(|l| l.count).sum();
        spot + od
    }

    /// Places a spot bid: `count` instances in `market` at `bid` dollars
    /// per instance-hour.
    ///
    /// Grants immediately if the bid is at or above the current market
    /// price; the first billing hour is charged at the market price.
    /// Under an installed [`MarketFaultPlan`] the request may instead
    /// be throttled ([`MarketError::RequestLimitExceeded`]), refused
    /// ([`MarketError::InsufficientCapacity`]), granted partially, or
    /// granted with a delayed launch (billing then starts at
    /// [`SpotGrant::usable_at`], and the grant may be fated to die
    /// young) — see [`SpotGrant`].
    pub fn request_spot(
        &mut self,
        market: MarketKey,
        count: u32,
        bid: f64,
    ) -> Result<SpotGrant, MarketError> {
        self.request_spot_inner(TenantId::DEFAULT, market, count, bid, false)
    }

    /// [`request_spot`](Self::request_spot) on behalf of a tenant: fault
    /// draws (throttle, boot delay, infant mortality) come from that
    /// tenant's own seed-split stream, so one tenant's request pattern
    /// never perturbs another's fate. `TenantId::DEFAULT` reproduces
    /// `request_spot` bit-for-bit.
    pub fn request_spot_for(
        &mut self,
        tenant: TenantId,
        market: MarketKey,
        count: u32,
        bid: f64,
    ) -> Result<SpotGrant, MarketError> {
        self.request_spot_inner(tenant, market, count, bid, false)
    }

    /// All-or-nothing spot request: either every one of the `count`
    /// instances is granted as a single allocation, or the request is
    /// refused and **nothing is billed**. Capacity shortfalls that
    /// would partially grant a plain request instead return
    /// [`MarketError::InsufficientCapacity`] carrying the available
    /// headroom. This is the gang-scheduling primitive: a job's minimum
    /// worker set launches atomically or not at all, so a half-launched
    /// gang can never bleed money.
    pub fn request_spot_gang(
        &mut self,
        tenant: TenantId,
        market: MarketKey,
        count: u32,
        bid: f64,
    ) -> Result<SpotGrant, MarketError> {
        self.request_spot_inner(tenant, market, count, bid, true)
    }

    fn request_spot_inner(
        &mut self,
        tenant: TenantId,
        market: MarketKey,
        count: u32,
        bid: f64,
        atomic: bool,
    ) -> Result<SpotGrant, MarketError> {
        if count == 0 {
            return Err(MarketError::EmptyRequest);
        }
        // The API gate sits in front of the market itself.
        let throttled = self
            .faults
            .as_mut()
            .and_then(|fs| fs.draw_throttle(tenant, self.now));
        if let Some(retry_after) = throttled {
            self.obs_count(obs_keys::THROTTLED);
            self.obs_event(
                self.now,
                MarketEvent::Throttled {
                    market: market.interned_name(),
                    retry_after_ms: retry_after.as_millis(),
                },
            );
            return Err(MarketError::RequestLimitExceeded { retry_after });
        }
        let price = self.spot_price(market)?;
        if bid < price {
            self.obs_event(
                self.now,
                MarketEvent::BidRejected {
                    market: market.interned_name(),
                    bid,
                    price,
                },
            );
            return Err(MarketError::BidBelowMarket {
                market,
                bid,
                market_price: price,
            });
        }
        let mut granted = count;
        let cap = self
            .faults
            .as_ref()
            .and_then(|fs| fs.plan.capacity_limit(market, self.now));
        if let Some(cap) = cap {
            let live: u32 = self
                .spot
                .values()
                .filter(|l| l.is_live() && l.market == market)
                .map(|l| l.count)
                .sum();
            let available = cap.saturating_sub(live);
            if available == 0 || (atomic && available < count) {
                // An atomic (gang) request refuses rather than accept a
                // partial grant; nothing has been billed yet.
                if let Some(fs) = self.faults.as_mut() {
                    fs.stats.capacity_refusals += 1;
                }
                self.obs_count(obs_keys::CAPACITY_REFUSALS);
                self.obs_event(
                    self.now,
                    MarketEvent::CapacityRefused {
                        market: market.interned_name(),
                        requested: u64::from(count),
                    },
                );
                return Err(MarketError::InsufficientCapacity {
                    market,
                    requested: count,
                    available,
                });
            }
            if available < count {
                if let Some(fs) = self.faults.as_mut() {
                    fs.stats.partial_grants += 1;
                }
                self.obs_count(obs_keys::PARTIAL_GRANTS);
                self.obs_event(
                    self.now,
                    MarketEvent::PartialGrant {
                        market: market.interned_name(),
                        requested: u64::from(count),
                        granted: u64::from(available),
                    },
                );
                granted = available;
            }
        }
        let (usable_at, dies_at) = match self.faults.as_mut() {
            None => (self.now, None),
            Some(fs) => {
                let usable_at = self.now + fs.draw_boot_delay(tenant);
                (usable_at, fs.draw_infant_death(tenant, usable_at))
            }
        };
        let id = self.fresh_id();
        let mut lease = if usable_at > self.now {
            // Nothing billed until the instances come up; the Launch
            // happening charges the first hour at the price then.
            SpotLease::new(id, market, granted, bid, self.now, 0.0).booting_until(usable_at)
        } else {
            let charge = price * f64::from(granted);
            self.account.record(LedgerEntry {
                time: self.now,
                allocation: id,
                kind: LedgerKind::SpotHour,
                amount: charge,
                instances: granted,
            });
            SpotLease::new(id, market, granted, bid, self.now, charge)
        };
        if let Some(dies_at) = dies_at {
            lease = lease.doomed_at(dies_at);
        }
        self.spot.insert(id, lease);
        self.obs_count(obs_keys::SPOT_GRANTS);
        self.obs_event(
            self.now,
            MarketEvent::SpotGranted {
                market: market.interned_name(),
                allocation: id.0,
                count: u64::from(granted),
                bid,
            },
        );
        Ok(SpotGrant {
            id,
            requested: count,
            granted,
            usable_at,
        })
    }

    /// Provisions `count` on-demand instances in `market` (charged the
    /// fixed on-demand price each hour; never evicted by the provider).
    pub fn request_on_demand(
        &mut self,
        market: MarketKey,
        count: u32,
    ) -> Result<AllocationId, MarketError> {
        if count == 0 {
            return Err(MarketError::EmptyRequest);
        }
        let id = self.fresh_id();
        let price = market.instance_type().on_demand_price;
        self.account.record(LedgerEntry {
            time: self.now,
            allocation: id,
            kind: LedgerKind::OnDemandHour,
            amount: price * f64::from(count),
            instances: count,
        });
        self.on_demand.insert(
            id,
            OnDemandLease {
                id,
                market,
                count,
                granted_at: self.now,
                hour_start: self.now,
            },
        );
        self.obs_count(obs_keys::ON_DEMAND_GRANTS);
        self.obs_event(
            self.now,
            MarketEvent::OnDemandGranted {
                allocation: id.0,
                count: u64::from(count),
                price,
            },
        );
        Ok(id)
    }

    /// Voluntarily terminates an allocation (spot or on-demand).
    ///
    /// The current billing hour has already been paid and is forfeited;
    /// usage up to `now` is recorded as paid.
    pub fn terminate(&mut self, id: AllocationId) -> Result<(), MarketError> {
        if let Some(lease) = self.spot.remove(&id) {
            if !lease.is_live() {
                return Err(MarketError::UnknownAllocation(id));
            }
            if lease.is_booting() {
                // Nothing was billed and no compute happened; cancelling
                // a boot is free.
                self.obs_event(self.now, MarketEvent::Terminated { allocation: id.0 });
                return Ok(());
            }
            // Removal from the registry is the terminal state; usage up
            // to now was paid for.
            let used = self.now.since(lease.hour_start).as_hours_f64();
            self.account.add_spot_usage(used * f64::from(lease.count));
            self.obs_event(self.now, MarketEvent::Terminated { allocation: id.0 });
            return Ok(());
        }
        if let Some(lease) = self.on_demand.remove(&id) {
            let used = self.now.since(lease.hour_start).as_hours_f64();
            self.account
                .add_on_demand_usage(used * f64::from(lease.count));
            self.obs_event(self.now, MarketEvent::Terminated { allocation: id.0 });
            return Ok(());
        }
        Err(MarketError::UnknownAllocation(id))
    }

    /// Revokes a spot allocation with eviction settlement: the current
    /// billing hour is refunded and usage up to `now` was free.
    ///
    /// This is the scheduler-preemption primitive. Where
    /// [`terminate`](Self::terminate) models a tenant walking away (the
    /// paid hour is forfeited), `revoke` models the platform reclaiming
    /// the instances — the tenant is made whole exactly as if the
    /// provider had evicted them, so billing-conservation properties
    /// hold identically for market evictions and fleet preemptions.
    /// Revoking a still-booting allocation is free (nothing was billed).
    pub fn revoke(&mut self, id: AllocationId) -> Result<(), MarketError> {
        match self.spot.get(&id) {
            Some(lease) if lease.is_live() => {}
            _ => return Err(MarketError::UnknownAllocation(id)),
        }
        // The lookup above proved the lease is present and live.
        #[allow(clippy::expect_used)]
        let lease = self.spot.remove(&id).expect("lease exists");
        if lease.is_booting() {
            // Nothing billed, nothing computed: a free cancel.
            self.obs_event(self.now, MarketEvent::Evicted { allocation: id.0 });
            return Ok(());
        }
        self.account.record(LedgerEntry {
            time: self.now,
            allocation: id,
            kind: LedgerKind::EvictionRefund,
            amount: -lease.current_hour_charge,
            instances: lease.count,
        });
        let used = self.now.since(lease.hour_start).as_hours_f64();
        self.account.add_free_usage(used * f64::from(lease.count));
        self.obs_count(obs_keys::EVICTIONS);
        self.obs_event(self.now, MarketEvent::Evicted { allocation: id.0 });
        Ok(())
    }

    /// Advances simulated time to `target`, processing hour boundaries,
    /// bid crossings, warnings, and evictions in order.
    ///
    /// Returns every event that fired, tagged with its fire time, in
    /// non-decreasing time order.
    pub fn advance_to(
        &mut self,
        target: SimTime,
    ) -> Result<Vec<(SimTime, ProviderEvent)>, MarketError> {
        if target < self.now {
            return Err(MarketError::TimeWentBackwards);
        }
        let mut events = Vec::new();
        // Process one earliest pending happening at a time until nothing
        // fires at or before `target`.
        loop {
            let next = self.next_happening(target);
            match next {
                Some((t, h)) => {
                    self.now = t;
                    self.apply_happening(t, h, &mut events);
                }
                None => break,
            }
        }
        self.now = target;
        Ok(events)
    }

    fn fresh_id(&mut self) -> AllocationId {
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        id
    }

    /// The earliest internal happening at or before `target`, if any.
    fn next_happening(&self, target: SimTime) -> Option<(SimTime, Happening)> {
        let mut best: Option<(SimTime, Happening)> = None;
        let mut consider = |t: SimTime, h: Happening| {
            if t > target {
                return;
            }
            match &best {
                Some((bt, _)) if *bt <= t => {}
                _ => best = Some((t, h)),
            }
        };

        for lease in self.spot.values().filter(|l| l.is_live()) {
            // Scheduled eviction (if warned).
            if let SpotState::WarningIssued { evict_at } = lease.state {
                consider(evict_at, Happening::Evict(lease.id));
                // A warned lease no longer bills new hours or crosses.
                continue;
            }
            if lease.is_booting() {
                // Launch is considered before a same-instant crossing
                // (`consider` keeps the first happening at equal times):
                // the instances come up, then the crossing warns them.
                consider(lease.usable_at, Happening::Launch(lease.id));
                // A crossing during boot aborts the launch (unbilled).
                if let Some(trace) = self.traces.get(&lease.market) {
                    let horizon = target.min(lease.usable_at);
                    if let Some(ct) = trace.first_crossing_above(lease.bid, self.now, horizon) {
                        consider(ct, Happening::Crossing(lease.id));
                    }
                }
                continue;
            }
            // Scheduled warning-less death (infant mortality), considered
            // before a same-instant hour boundary so a dying lease never
            // opens a fresh billing hour first.
            if let Some(dies_at) = lease.dies_at {
                consider(dies_at, Happening::InfantDeath(lease.id));
            }
            // Next hour boundary.
            consider(lease.hour_end(), Happening::SpotHour(lease.id));
            // Next bid crossing. Search from `now` up to the earlier of
            // the target and the hour end (crossings after the hour end
            // are found after the hour boundary is processed).
            if let Some(trace) = self.traces.get(&lease.market) {
                let horizon = target.min(lease.hour_end());
                if let Some(ct) = trace.first_crossing_above(lease.bid, self.now, horizon) {
                    consider(ct, Happening::Crossing(lease.id));
                }
            }
        }
        for lease in self.on_demand.values() {
            let hour_end = lease.hour_start + SimDuration::from_hours(1);
            consider(hour_end, Happening::OnDemandHour(lease.id));
        }
        best
    }

    // Invariant: every `Happening` carries the id of a lease that was
    // live when `next_happening` built it, and nothing removes leases
    // between building and applying — the lookups cannot fail. Traces
    // are never unregistered, so any market that granted still prices.
    #[allow(clippy::expect_used)]
    fn apply_happening(
        &mut self,
        t: SimTime,
        h: Happening,
        events: &mut Vec<(SimTime, ProviderEvent)>,
    ) {
        match h {
            Happening::SpotHour(id) => {
                let market;
                let count;
                {
                    let lease = self.spot.get_mut(&id).expect("lease exists");
                    // The completed hour was fully used and paid.
                    self.account.add_spot_usage(f64::from(lease.count));
                    lease.hour_start = t;
                    market = lease.market;
                    count = lease.count;
                }
                let price = self
                    .spot_price_at(market, t)
                    .expect("trace existed at grant time");
                let charge = price * f64::from(count);
                self.account.record(LedgerEntry {
                    time: t,
                    allocation: id,
                    kind: LedgerKind::SpotHour,
                    amount: charge,
                    instances: count,
                });
                if let Some(lease) = self.spot.get_mut(&id) {
                    lease.current_hour_charge = charge;
                }
                self.obs_event(
                    t,
                    MarketEvent::HourCharged {
                        allocation: id.0,
                        amount: charge,
                    },
                );
                events.push((
                    t,
                    ProviderEvent::HourCharged {
                        allocation: id,
                        amount: charge,
                    },
                ));
            }
            Happening::OnDemandHour(id) => {
                let lease = self.on_demand.get_mut(&id).expect("lease exists");
                self.account.add_on_demand_usage(f64::from(lease.count));
                lease.hour_start = t;
                let price = lease.market.instance_type().on_demand_price;
                let charge = price * f64::from(lease.count);
                let count = lease.count;
                self.account.record(LedgerEntry {
                    time: t,
                    allocation: id,
                    kind: LedgerKind::OnDemandHour,
                    amount: charge,
                    instances: count,
                });
                self.obs_event(
                    t,
                    MarketEvent::HourCharged {
                        allocation: id.0,
                        amount: charge,
                    },
                );
                events.push((
                    t,
                    ProviderEvent::HourCharged {
                        allocation: id,
                        amount: charge,
                    },
                ));
            }
            Happening::Launch(id) => {
                let market;
                let count;
                {
                    let lease = self.spot.get_mut(&id).expect("lease exists");
                    lease.state = SpotState::Running;
                    // Billing hours re-anchor at the actual launch.
                    lease.hour_start = t;
                    market = lease.market;
                    count = lease.count;
                }
                let price = self
                    .spot_price_at(market, t)
                    .expect("trace existed at grant time");
                let charge = price * f64::from(count);
                self.account.record(LedgerEntry {
                    time: t,
                    allocation: id,
                    kind: LedgerKind::SpotHour,
                    amount: charge,
                    instances: count,
                });
                if let Some(lease) = self.spot.get_mut(&id) {
                    lease.current_hour_charge = charge;
                }
                // Like the immediate-grant charge, the first hour is not
                // reported as HourCharged; Launched marks it.
                self.obs_event(t, MarketEvent::Launched { allocation: id.0 });
                events.push((t, ProviderEvent::Launched { allocation: id }));
            }
            Happening::Crossing(id) => {
                if self.spot.get(&id).expect("lease exists").is_booting() {
                    // The market moved above the bid before the instances
                    // came up: the launch silently fails. Nothing was
                    // billed, nothing computed.
                    self.spot.remove(&id);
                    if let Some(fs) = self.faults.as_mut() {
                        fs.stats.launch_failures += 1;
                    }
                    self.obs_count(obs_keys::LAUNCH_FAILURES);
                    self.obs_event(t, MarketEvent::LaunchFailed { allocation: id.0 });
                    events.push((t, ProviderEvent::LaunchFailed { allocation: id }));
                    return;
                }
                let lease = self.spot.get_mut(&id).expect("lease exists");
                let evict_at = t + self.warning_lead;
                lease.state = SpotState::WarningIssued { evict_at };
                self.obs_event(
                    t,
                    MarketEvent::EvictionWarning {
                        allocation: id.0,
                        evict_at_ms: evict_at.as_millis(),
                    },
                );
                events.push((
                    t,
                    ProviderEvent::EvictionWarning {
                        allocation: id,
                        evict_at,
                    },
                ));
            }
            Happening::InfantDeath(id) => {
                let lease = self.spot.remove(&id).expect("lease exists");
                // A warning-less death settles exactly like an eviction:
                // the current hour is refunded and its usage was free.
                self.account.record(LedgerEntry {
                    time: t,
                    allocation: id,
                    kind: LedgerKind::EvictionRefund,
                    amount: -lease.current_hour_charge,
                    instances: lease.count,
                });
                let used = t.since(lease.hour_start).as_hours_f64();
                self.account.add_free_usage(used * f64::from(lease.count));
                if let Some(fs) = self.faults.as_mut() {
                    fs.stats.infant_deaths += 1;
                }
                self.obs_count(obs_keys::INFANT_DEATHS);
                self.obs_count(obs_keys::EVICTIONS);
                self.obs_event(t, MarketEvent::Evicted { allocation: id.0 });
                events.push((t, ProviderEvent::Evicted { allocation: id }));
            }
            Happening::Evict(id) => {
                let lease = self.spot.remove(&id).expect("lease exists");
                // Refund the current billing hour; its usage was free.
                self.account.record(LedgerEntry {
                    time: t,
                    allocation: id,
                    kind: LedgerKind::EvictionRefund,
                    amount: -lease.current_hour_charge,
                    instances: lease.count,
                });
                let used = t.since(lease.hour_start).as_hours_f64();
                self.account.add_free_usage(used * f64::from(lease.count));
                self.obs_count(obs_keys::EVICTIONS);
                self.obs_event(t, MarketEvent::Evicted { allocation: id.0 });
                events.push((t, ProviderEvent::Evicted { allocation: id }));
            }
        }
    }
}

/// Internal happenings the provider steps through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Happening {
    /// A spot allocation reached a billing-hour boundary.
    SpotHour(AllocationId),
    /// An on-demand allocation reached a billing-hour boundary.
    OnDemandHour(AllocationId),
    /// A market price crossed above a lease's bid.
    Crossing(AllocationId),
    /// A warned lease reached its termination instant.
    Evict(AllocationId),
    /// A boot-delayed lease's instances came up (billing starts).
    Launch(AllocationId),
    /// A doomed lease reached its scheduled warning-less death.
    InfantDeath(AllocationId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{catalog, Zone};
    use crate::trace::PriceTrace;

    fn key() -> MarketKey {
        MarketKey::new(catalog::c4_xlarge(), Zone(0))
    }

    fn provider_with(points: Vec<(SimTime, f64)>) -> CloudProvider<'static> {
        let mut set = TraceSet::new();
        set.insert(key(), PriceTrace::from_points(points).expect("trace"));
        CloudProvider::new(set)
    }

    #[test]
    fn grant_charges_first_hour_at_market_price() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let grant = p.request_spot(key(), 4, 0.10).expect("granted");
        assert_eq!(grant.granted, 4);
        assert!(!grant.is_partial());
        assert_eq!(grant.usable_at, SimTime::EPOCH);
        let id = grant.id;
        assert!((p.account().total_cost() - 0.20).abs() < 1e-12);
        assert_eq!(p.spot_allocation(id).unwrap().count, 4);
    }

    #[test]
    fn bid_below_market_is_rejected() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.50)]);
        let err = p.request_spot(key(), 1, 0.10).unwrap_err();
        assert!(matches!(err, MarketError::BidBelowMarket { .. }));
        assert_eq!(p.account().total_cost(), 0.0);
    }

    #[test]
    fn zero_count_requests_rejected() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        assert_eq!(
            p.request_spot(key(), 0, 1.0),
            Err(MarketError::EmptyRequest)
        );
        assert_eq!(
            p.request_on_demand(key(), 0),
            Err(MarketError::EmptyRequest)
        );
    }

    #[test]
    fn hour_boundaries_recharge_at_current_price() {
        let mut p = provider_with(vec![
            (SimTime::EPOCH, 0.05),
            (SimTime::from_millis(30 * 60 * 1000), 0.08),
        ]);
        let id = p.request_spot(key(), 1, 0.10).expect("granted").id;
        let events = p.advance_to(SimTime::from_hours(2)).expect("advance");
        // Two hour boundaries at t=1h (price 0.08) and t=2h (price 0.08).
        let charges: Vec<f64> = events
            .iter()
            .filter_map(|(_, e)| match e {
                ProviderEvent::HourCharged { allocation, amount } if *allocation == id => {
                    Some(*amount)
                }
                _ => None,
            })
            .collect();
        assert_eq!(charges.len(), 2);
        assert!((charges[0] - 0.08).abs() < 1e-12);
        // Total: 0.05 (grant) + 0.08 + 0.08.
        assert!((p.account().total_cost() - 0.21).abs() < 1e-12);
        // Two full spot hours were used and paid.
        assert!((p.account().usage().spot_paid_hours - 2.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_triggers_warning_then_eviction_with_refund() {
        // Price jumps above the bid 30 minutes in.
        let cross = SimTime::EPOCH + SimDuration::from_mins(30);
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05), (cross, 0.50)]);
        let id = p.request_spot(key(), 2, 0.10).expect("granted").id;
        let events = p.advance_to(SimTime::from_hours(1)).expect("advance");

        let warn = events
            .iter()
            .find(|(_, e)| matches!(e, ProviderEvent::EvictionWarning { .. }))
            .expect("warning fired");
        assert_eq!(warn.0, cross);
        let evict = events
            .iter()
            .find(|(_, e)| matches!(e, ProviderEvent::Evicted { .. }))
            .expect("eviction fired");
        assert_eq!(evict.0, cross + crate::EC2_EVICTION_WARNING);

        // Grant charged 2 × 0.05 = 0.10, fully refunded: net zero.
        assert!(p.account().total_cost().abs() < 1e-12);
        // 32 minutes of free usage × 2 instances.
        let free = p.account().usage().free_hours;
        assert!((free - 2.0 * (32.0 / 60.0)).abs() < 1e-9, "free={free}");
        assert!(p.spot_allocation(id).is_none());
    }

    #[test]
    fn warned_lease_does_not_recharge_next_hour() {
        // Cross 59 minutes in: warning at :59, eviction at 1:01, which is
        // after the hour boundary — but no new hour should be charged.
        let cross = SimTime::EPOCH + SimDuration::from_mins(59);
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05), (cross, 0.50)]);
        let _id = p.request_spot(key(), 1, 0.10).expect("granted");
        let events = p.advance_to(SimTime::from_hours(2)).expect("advance");
        assert!(
            !events
                .iter()
                .any(|(_, e)| matches!(e, ProviderEvent::HourCharged { .. })),
            "no hour recharge after a warning: {events:?}"
        );
        // Net cost: first hour charged then refunded → zero.
        assert!(p.account().total_cost().abs() < 1e-12);
    }

    #[test]
    fn voluntary_termination_keeps_charge_and_records_paid_usage() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let id = p.request_spot(key(), 1, 0.10).expect("granted").id;
        p.advance_to(SimTime::EPOCH + SimDuration::from_mins(30))
            .expect("advance");
        p.terminate(id).expect("terminate");
        assert!((p.account().total_cost() - 0.05).abs() < 1e-12);
        assert!((p.account().usage().spot_paid_hours - 0.5).abs() < 1e-9);
        assert!(p.terminate(id).is_err(), "double terminate rejected");
    }

    #[test]
    fn on_demand_survives_price_spikes() {
        let cross = SimTime::EPOCH + SimDuration::from_mins(10);
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05), (cross, 9.0)]);
        let id = p.request_on_demand(key(), 3).expect("granted");
        let events = p.advance_to(SimTime::from_hours(1)).expect("advance");
        assert!(!events
            .iter()
            .any(|(_, e)| matches!(e, ProviderEvent::Evicted { .. })));
        // Hour boundary recharges 3 × on-demand price.
        let od = key().instance_type().on_demand_price;
        assert!((p.account().total_cost() - 2.0 * 3.0 * od).abs() < 1e-9);
        p.terminate(id).expect("terminate");
    }

    #[test]
    fn time_cannot_go_backwards() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        p.advance_to(SimTime::from_hours(1)).expect("advance");
        assert_eq!(
            p.advance_to(SimTime::EPOCH),
            Err(MarketError::TimeWentBackwards)
        );
    }

    #[test]
    fn unknown_market_is_an_error() {
        let p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let missing = MarketKey::new(catalog::c4_2xlarge(), Zone(3));
        assert!(matches!(
            p.spot_price(missing),
            Err(MarketError::UnknownMarket(_))
        ));
    }

    #[test]
    fn live_instance_count_sums_both_kinds() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        p.request_spot(key(), 4, 0.10).expect("spot");
        p.request_on_demand(key(), 3).expect("od");
        assert_eq!(p.live_instance_count(), 7);
    }

    #[test]
    fn capacity_cap_grants_partially_then_refuses() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        p.set_fault_plan(MarketFaultPlan::new(7).with_drought(
            SimTime::EPOCH,
            SimTime::from_hours(10),
            3,
        ));
        let grant = p.request_spot(key(), 5, 0.10).expect("partial grant");
        assert!(grant.is_partial());
        assert_eq!(grant.granted, 3);
        assert_eq!(grant.requested, 5);
        // Only the granted instances were billed.
        assert!((p.account().total_cost() - 3.0 * 0.05).abs() < 1e-12);
        // The market is now full.
        let err = p.request_spot(key(), 1, 0.10).unwrap_err();
        assert!(matches!(
            err,
            MarketError::InsufficientCapacity { available: 0, .. }
        ));
        assert!(err.is_transient());
        let stats = p.fault_stats().expect("plan installed");
        assert_eq!(stats.partial_grants, 1);
        assert_eq!(stats.capacity_refusals, 1);
        // Capacity frees up once the allocation terminates.
        p.terminate(grant.id).expect("terminate");
        assert!(p.request_spot(key(), 3, 0.10).is_ok());
    }

    #[test]
    fn capacity_cap_outside_window_is_inert() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        p.set_fault_plan(MarketFaultPlan::new(7).with_drought(
            SimTime::from_hours(5),
            SimTime::from_hours(6),
            0,
        ));
        let grant = p.request_spot(key(), 8, 0.10).expect("granted");
        assert!(!grant.is_partial());
    }

    #[test]
    fn throttle_refuses_with_retry_after() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let retry = SimDuration::from_mins(1);
        p.set_fault_plan(MarketFaultPlan::new(3).with_throttle(1.0, retry));
        let err = p.request_spot(key(), 1, 0.10).unwrap_err();
        assert_eq!(
            err,
            MarketError::RequestLimitExceeded { retry_after: retry }
        );
        assert!(err.is_transient());
        assert_eq!(p.fault_stats().expect("plan").throttled, 1);
        // Throttling happens before billing: nothing charged.
        assert_eq!(p.account().total_cost(), 0.0);
    }

    #[test]
    fn boot_delay_defers_billing_to_launch() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let delay = SimDuration::from_mins(10);
        p.set_fault_plan(MarketFaultPlan::new(11).with_boot_delay(delay, delay));
        let grant = p.request_spot(key(), 2, 0.10).expect("granted");
        assert_eq!(grant.usable_at, SimTime::EPOCH + delay);
        // Nothing billed while booting.
        assert_eq!(p.account().total_cost(), 0.0);
        let view = p.spot_allocation(grant.id).expect("live");
        assert!(view.booting);

        let events = p.advance_to(SimTime::from_hours(2)).expect("advance");
        assert!(matches!(
            events[0],
            (t, ProviderEvent::Launched { allocation }) if t == grant.usable_at && allocation == grant.id
        ));
        // Billing hours anchor at launch: the next boundary is 10 min
        // past the first wall-clock hour.
        let view = p.spot_allocation(grant.id).expect("live");
        assert!(!view.booting);
        assert_eq!(
            view.hour_start,
            grant.usable_at + SimDuration::from_hours(1)
        );
        // First hour charged at launch + one boundary recharge.
        assert!((p.account().total_cost() - 2.0 * (0.05 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn crossing_during_boot_aborts_launch_unbilled() {
        let cross = SimTime::EPOCH + SimDuration::from_mins(5);
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05), (cross, 0.50)]);
        let delay = SimDuration::from_mins(10);
        p.set_fault_plan(MarketFaultPlan::new(11).with_boot_delay(delay, delay));
        let grant = p.request_spot(key(), 4, 0.10).expect("granted");
        let events = p.advance_to(SimTime::from_hours(1)).expect("advance");
        assert_eq!(
            events,
            vec![(
                cross,
                ProviderEvent::LaunchFailed {
                    allocation: grant.id
                }
            )]
        );
        assert_eq!(p.account().total_cost(), 0.0);
        assert_eq!(p.account().usage().free_hours, 0.0);
        assert!(p.spot_allocation(grant.id).is_none());
        assert_eq!(p.fault_stats().expect("plan").launch_failures, 1);
    }

    #[test]
    fn infant_death_settles_like_a_warning_less_eviction() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        p.set_fault_plan(
            MarketFaultPlan::new(13).with_infant_mortality(1.0, SimDuration::from_mins(30)),
        );
        let grant = p.request_spot(key(), 2, 0.10).expect("granted");
        let dies_at = p
            .spot
            .get(&grant.id)
            .and_then(|l| l.dies_at)
            .expect("doomed");
        assert!(dies_at > SimTime::EPOCH);
        assert!(dies_at <= SimTime::EPOCH + SimDuration::from_mins(30));
        let events = p.advance_to(SimTime::from_hours(1)).expect("advance");
        assert_eq!(
            events,
            vec![(
                dies_at,
                ProviderEvent::Evicted {
                    allocation: grant.id
                }
            )]
        );
        // Charge refunded; the usage up to the death was free.
        assert!(p.account().total_cost().abs() < 1e-12);
        let expect_free = dies_at.since(SimTime::EPOCH).as_hours_f64() * 2.0;
        assert!((p.account().usage().free_hours - expect_free).abs() < 1e-9);
        assert_eq!(p.fault_stats().expect("plan").infant_deaths, 1);
    }

    #[test]
    fn fault_draws_replay_from_seed() {
        let run = |seed: u64| {
            let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
            p.set_fault_plan(
                MarketFaultPlan::new(seed)
                    .with_throttle(0.4, SimDuration::from_mins(1))
                    .with_boot_delay(SimDuration::from_secs(30), SimDuration::from_mins(5))
                    .with_infant_mortality(0.3, SimDuration::from_mins(45)),
            );
            let mut outcomes = Vec::new();
            for _ in 0..20 {
                outcomes.push(p.request_spot(key(), 1, 0.10));
            }
            (outcomes, p.fault_stats().cloned().expect("plan"))
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds should diverge");
    }

    #[test]
    fn gang_request_is_all_or_nothing() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        p.set_fault_plan(MarketFaultPlan::new(7).with_drought(
            SimTime::EPOCH,
            SimTime::from_hours(10),
            3,
        ));
        // A plain request would be partially granted; the gang refuses.
        let err = p
            .request_spot_gang(TenantId(1), key(), 5, 0.10)
            .unwrap_err();
        assert_eq!(
            err,
            MarketError::InsufficientCapacity {
                market: key(),
                requested: 5,
                available: 3,
            }
        );
        // A refused gang bills nothing and leaves no allocation behind.
        assert_eq!(p.account().total_cost(), 0.0);
        assert!(p.account().entries().is_empty());
        assert_eq!(p.live_instance_count(), 0);
        assert_eq!(p.fault_stats().expect("plan").capacity_refusals, 1);
        // A gang that fits is granted in full.
        let grant = p
            .request_spot_gang(TenantId(1), key(), 3, 0.10)
            .expect("granted");
        assert_eq!(grant.granted, 3);
        assert!(!grant.is_partial());
    }

    #[test]
    fn revoke_settles_like_an_eviction() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let id = p.request_spot(key(), 2, 0.10).expect("granted").id;
        p.advance_to(SimTime::EPOCH + SimDuration::from_mins(30))
            .expect("advance");
        p.revoke(id).expect("revoke");
        // Charge refunded; the half hour of usage was free.
        assert!(p.account().total_cost().abs() < 1e-12);
        assert!((p.account().usage().free_hours - 1.0).abs() < 1e-9);
        assert_eq!(p.account().usage().spot_paid_hours, 0.0);
        assert!(p.spot_allocation(id).is_none());
        assert!(p.revoke(id).is_err(), "double revoke rejected");
    }

    #[test]
    fn revoke_of_booting_allocation_is_free() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let delay = SimDuration::from_mins(10);
        p.set_fault_plan(MarketFaultPlan::new(11).with_boot_delay(delay, delay));
        let grant = p.request_spot(key(), 4, 0.10).expect("granted");
        p.revoke(grant.id).expect("revoke");
        assert_eq!(p.account().total_cost(), 0.0);
        assert!(p.account().entries().is_empty());
        assert_eq!(p.account().usage().free_hours, 0.0);
    }

    #[test]
    fn revoke_rejects_on_demand_and_unknown_ids() {
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
        let od = p.request_on_demand(key(), 1).expect("od");
        assert!(p.revoke(od).is_err(), "on-demand is never revoked");
        assert!(p.revoke(AllocationId(999)).is_err());
    }

    #[test]
    fn tenant_fates_are_independent_of_other_tenants_traffic() {
        // Tenant 5's k-th request must draw the same fate whether or not
        // other tenants issued requests in between.
        let plan = || {
            MarketFaultPlan::new(21)
                .with_throttle(0.4, SimDuration::from_mins(1))
                .with_boot_delay(SimDuration::from_secs(30), SimDuration::from_mins(5))
                .with_infant_mortality(0.3, SimDuration::from_mins(45))
        };
        let solo = {
            let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
            p.set_fault_plan(plan());
            (0..10)
                .map(|_| p.request_spot_for(TenantId(5), key(), 1, 0.10))
                .collect::<Vec<_>>()
        };
        let interleaved = {
            let mut p = provider_with(vec![(SimTime::EPOCH, 0.05)]);
            p.set_fault_plan(plan());
            let mut out = Vec::new();
            for _ in 0..10 {
                let _ = p.request_spot(key(), 1, 0.10);
                let _ = p.request_spot_for(TenantId(9), key(), 1, 0.10);
                out.push(p.request_spot_for(TenantId(5), key(), 1, 0.10));
            }
            out
        };
        // Allocation ids differ (the interleaved run mints more), so
        // compare the fate-bearing fields only.
        let fates = |v: &[Result<SpotGrant, MarketError>]| {
            v.iter()
                .map(|r| match r {
                    Ok(g) => Ok((g.granted, g.usable_at)),
                    Err(e) => Err(e.clone()),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(fates(&solo), fates(&interleaved));
    }

    #[test]
    fn crossing_after_hour_boundary_is_found_in_later_hour() {
        // Price stays low for 1.5 hours, then spikes. The crossing is in
        // billing hour 1, after a boundary recharge.
        let cross = SimTime::EPOCH + SimDuration::from_mins(90);
        let mut p = provider_with(vec![(SimTime::EPOCH, 0.05), (cross, 0.50)]);
        let _ = p.request_spot(key(), 1, 0.10).expect("granted");
        let events = p.advance_to(SimTime::from_hours(3)).expect("advance");
        let kinds: Vec<&ProviderEvent> = events.iter().map(|(_, e)| e).collect();
        assert!(matches!(kinds[0], ProviderEvent::HourCharged { .. }));
        assert!(matches!(kinds[1], ProviderEvent::EvictionWarning { .. }));
        assert!(matches!(kinds[2], ProviderEvent::Evicted { .. }));
        // Hour 0 paid (0.05), hour 1 charged then refunded → total 0.05.
        assert!((p.account().total_cost() - 0.05).abs() < 1e-12);
        // Hour 0 fully paid usage; 32 minutes free in hour 1.
        assert!((p.account().usage().spot_paid_hours - 1.0).abs() < 1e-12);
    }
}
